/// End-to-end pipeline tests: application -> profile/trace -> graph ->
/// provisioning -> network replay, plus the windowed-reconfiguration path.

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include "hfast/analysis/experiment.hpp"
#include "hfast/core/provision.hpp"
#include "hfast/core/reconfigure.hpp"
#include "hfast/netsim/replay.hpp"
#include "hfast/topo/fat_tree.hpp"
#include "hfast/topo/mesh.hpp"
#include "hfast/trace/window.hpp"

namespace hfast {
namespace {

TEST(Pipeline, ProvisionedFabricServesEveryApp) {
  for (const char* app :
       {"cactus", "gtc", "lbmhd", "superlu", "pmemd", "paratec"}) {
    // LBMHD's offset stencil needs at least a 5x5 process grid.
    const int p = std::string(app) == "lbmhd" ? 25 : 16;
    const auto r = analysis::run_experiment(app, p);
    for (auto strategy : {core::ProvisionStrategy::kGreedyPerNode,
                          core::ProvisionStrategy::kCliqueShared}) {
      const auto prov = core::provision(r.comm_graph, {}, strategy);
      prov.fabric.validate();
      EXPECT_TRUE(prov.fabric.serves(r.comm_graph, graph::kBdpCutoffBytes))
          << app << " strategy " << static_cast<int>(strategy);
    }
  }
}

TEST(Pipeline, GreedyBlockCountMatchesDegreeFormula) {
  // The on-demand chain allocator must land exactly on the paper's
  // ceil((d-1)/(S-2)) block count for every node.
  const auto r = analysis::run_experiment("pmemd", 16);
  const auto prov = core::provision_greedy(r.comm_graph);
  const auto degrees = r.comm_graph.degrees(graph::kBdpCutoffBytes);
  int expected_blocks = 0;
  for (int d : degrees) expected_blocks += core::greedy_blocks_for_degree(d, 16);
  EXPECT_EQ(prov.stats.num_blocks, expected_blocks);
}

TEST(Pipeline, ReplayOnAllThreeNetworksCompletes) {
  const auto r = analysis::run_experiment("lbmhd", 25);
  const auto steady = r.trace.filter_region(apps::kSteadyRegion);
  ASSERT_GT(steady.events().size(), 0u);

  const netsim::LinkParams link;
  const auto prov = core::provision_greedy(r.comm_graph);
  netsim::FabricNetwork hfast_net(prov.fabric, link, 50e-9);
  const topo::MeshTorus torus(topo::MeshTorus::balanced_dims(25, 3), true);
  netsim::DirectNetwork torus_net(torus, link);
  const topo::FatTree ft(25, 8);
  netsim::FatTreeNetwork ft_net(ft, link);

  const auto on_hfast = netsim::replay(steady, hfast_net);
  const auto on_torus = netsim::replay(steady, torus_net);
  const auto on_ft = netsim::replay(steady, ft_net);

  // Conservation: same messages and bytes on every network.
  EXPECT_EQ(on_hfast.messages, on_torus.messages);
  EXPECT_EQ(on_hfast.messages, on_ft.messages);
  EXPECT_EQ(on_hfast.bytes, on_torus.bytes);
  EXPECT_GT(on_hfast.makespan_s, 0.0);

  // LBMHD's scattered pattern dilates on a torus: more switch hops than on
  // the provisioned HFAST fabric (dedicated trunks: at most 2 blocks).
  EXPECT_LE(on_hfast.max_switch_hops, 3);
  EXPECT_GT(on_torus.avg_switch_hops, on_hfast.avg_switch_hops);
}

TEST(Pipeline, HfastHopCountBeatsDeepFatTree) {
  // For a bounded-TDC code, a worst-case fat-tree route crosses 2L-1
  // packet switches; the HFAST greedy fabric crosses at most a few blocks.
  const auto r = analysis::run_experiment("cactus", 64);
  const auto prov = core::provision_greedy(r.comm_graph);
  const topo::FatTree deep(64, 4);  // radix-4: L=5, worst case 9 layers
  EXPECT_EQ(deep.worst_case_traversals(), 9);
  EXPECT_LE(prov.stats.max_switch_hops, 4);
}

TEST(Pipeline, WindowedReconfigurationOnRealTrace) {
  const auto r = analysis::run_experiment("gtc", 128);
  const auto steady = r.trace.filter_region(apps::kSteadyRegion);
  const auto graphs = trace::windowed_graphs(steady, 4);
  ASSERT_EQ(graphs.size(), 4u);
  // Union of windows equals the full steady graph's edges.
  std::size_t union_edges = 0;
  {
    std::set<std::pair<int, int>> all;
    for (const auto& g : graphs) {
      for (const auto& [uv, stats] : g.edges()) {
        (void)stats;
        all.insert(uv);
      }
    }
    union_edges = all.size();
  }
  EXPECT_EQ(union_edges, r.comm_graph.num_edges());

  const auto report = core::plan_reconfigurations(graphs);
  EXPECT_GT(report.peak_circuits, 0);
  EXPECT_LE(report.peak_circuits, report.static_circuits);
}

TEST(Pipeline, TraceRoundTripPreservesReplay) {
  const auto r = analysis::run_experiment("cactus", 8);
  const auto steady = r.trace.filter_region(apps::kSteadyRegion);
  std::stringstream ss;
  steady.save_text(ss);
  const auto loaded = trace::Trace::load_text(ss);

  const topo::MeshTorus torus({2, 2, 2}, true);
  const netsim::LinkParams link;
  netsim::DirectNetwork net1(torus, link);
  netsim::DirectNetwork net2(torus, link);
  const auto a = netsim::replay(steady, net1);
  const auto b = netsim::replay(loaded, net2);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
}

}  // namespace
}  // namespace hfast
