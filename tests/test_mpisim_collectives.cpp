#include <gtest/gtest.h>

#include "hfast/util/assert.hpp"

#include "hfast/ipm/profile.hpp"
#include "hfast/mpisim/runtime.hpp"

namespace hfast::mpisim {
namespace {

RuntimeConfig cfg(int nranks) {
  RuntimeConfig c;
  c.nranks = nranks;
  c.watchdog = std::chrono::milliseconds(5000);
  return c;
}

TEST(Collectives, BarrierCompletesForAll) {
  Runtime rt(cfg(8));
  rt.run([](RankContext& ctx) {
    for (int i = 0; i < 5; ++i) ctx.barrier();
  });
}

TEST(Collectives, AllreduceSumIsGloballyCorrect) {
  Runtime rt(cfg(8));
  rt.run([](RankContext& ctx) {
    const double sum =
        ctx.allreduce_sum(ctx.world(), static_cast<double>(ctx.rank()));
    EXPECT_DOUBLE_EQ(sum, 0 + 1 + 2 + 3 + 4 + 5 + 6 + 7);
  });
}

TEST(Collectives, BcastValuePropagatesFromRoot) {
  Runtime rt(cfg(6));
  rt.run([](RankContext& ctx) {
    const double v = ctx.bcast_value(ctx.world(), /*root=*/3,
                                     ctx.rank() == 3 ? 42.5 : -1.0);
    EXPECT_DOUBLE_EQ(v, 42.5);
  });
}

TEST(Collectives, GatherValuesArriveIndexedBySource) {
  Runtime rt(cfg(5));
  rt.run([](RankContext& ctx) {
    const auto vals =
        ctx.gather_values(ctx.world(), /*root=*/0, ctx.rank() * 10.0);
    if (ctx.rank() == 0) {
      ASSERT_EQ(vals.size(), 5u);
      for (int i = 0; i < 5; ++i) {
        EXPECT_DOUBLE_EQ(vals[static_cast<std::size_t>(i)], i * 10.0);
      }
    } else {
      EXPECT_TRUE(vals.empty());
    }
  });
}

TEST(Collectives, SizeOnlyCollectivesSynchronize) {
  Runtime rt(cfg(6));
  rt.run([](RankContext& ctx) {
    ctx.bcast(0, 1024);
    ctx.reduce(2, 64);
    ctx.allreduce(8);
    ctx.gather(1, 100);
    ctx.allgather(32);
    ctx.scatter(0, 256);
    ctx.alltoall(128);
    ctx.alltoallv(ctx.world(), std::vector<std::uint64_t>(6, 16));
  });
}

TEST(Collectives, AlltoallvValidatesCounts) {
  Runtime rt(cfg(4));
  EXPECT_THROW(rt.run([](RankContext& ctx) {
                 ctx.alltoallv(ctx.world(), {1, 2});  // wrong length
               }),
               ContractViolation);
}

TEST(Collectives, SplitFormsConsistentSubgroups) {
  Runtime rt(cfg(8));
  rt.run([](RankContext& ctx) {
    // Two colors: even vs odd rank; key reverses order within the group.
    const int color = ctx.rank() % 2;
    Communicator sub = ctx.split(ctx.world(), color, -ctx.rank());
    EXPECT_EQ(sub.size(), 4);
    // Reversed key: the largest world rank is comm rank 0.
    EXPECT_EQ(sub.world_rank(0), color == 0 ? 6 : 7);
    EXPECT_EQ(sub.world_rank(3), color == 0 ? 0 : 1);
    // The subcommunicator is usable for further collectives.
    const double sum = ctx.allreduce_sum(sub, 1.0);
    EXPECT_DOUBLE_EQ(sum, 4.0);
  });
}

TEST(Collectives, SplitSingletonGroups) {
  Runtime rt(cfg(4));
  rt.run([](RankContext& ctx) {
    Communicator solo = ctx.split(ctx.world(), ctx.rank(), 0);
    EXPECT_EQ(solo.size(), 1);
    EXPECT_EQ(solo.rank(), 0);
    ctx.barrier(solo);  // degenerate collective must not hang
    const double s = ctx.allreduce_sum(solo, 5.0);
    EXPECT_DOUBLE_EQ(s, 5.0);
  });
}

TEST(Collectives, PointToPointOnSubcommunicator) {
  Runtime rt(cfg(8));
  rt.run([](RankContext& ctx) {
    Communicator sub = ctx.split(ctx.world(), ctx.rank() % 2, ctx.rank());
    // Within the subcomm, comm-rank 0 pings comm-rank 1.
    if (sub.rank() == 0) {
      ctx.send(sub, 1, 77, /*tag=*/5);
    } else if (sub.rank() == 1) {
      Message m = ctx.recv(sub, 0, 77, /*tag=*/5);
      EXPECT_EQ(m.bytes, 77u);
      EXPECT_EQ(m.src_world, ctx.rank() % 2 == 0 ? 0 : 1);
    }
  });
}

TEST(Collectives, InternalPlumbingInvisibleToObservers) {
  Runtime rt(cfg(4));
  std::vector<std::unique_ptr<ipm::RankProfile>> profiles;
  for (int r = 0; r < 4; ++r) {
    profiles.push_back(std::make_unique<ipm::RankProfile>(r));
  }
  rt.run(
      [](RankContext& ctx) {
        ctx.allreduce(64);
        ctx.gather(0, 128);
        ctx.barrier();
      },
      [&profiles](Rank r) { return profiles[static_cast<std::size_t>(r)].get(); });
  for (const auto& p : profiles) {
    // Collectives recorded as calls...
    std::uint64_t collective_calls = 0;
    for (const auto& rec : p->call_records()) {
      EXPECT_TRUE(is_collective(rec.call));
      collective_calls += rec.count;
    }
    EXPECT_EQ(collective_calls, 3u);
    // ...but no point-to-point transfers leak into the topology data.
    EXPECT_TRUE(p->sent_messages().empty());
  }
}

TEST(Collectives, RootValidation) {
  Runtime rt(cfg(2));
  EXPECT_THROW(rt.run([](RankContext& ctx) { ctx.bcast(9, 8); }),
               ContractViolation);
}

}  // namespace
}  // namespace hfast::mpisim
