/// SmpFabricNetwork unit tests: the backplane tier's cost model, the
/// single-occupancy degeneration that makes cores_per_node = 1 structurally
/// identical to FabricNetwork, and contention on the shared hub links.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "hfast/core/provision.hpp"
#include "hfast/graph/comm_graph.hpp"
#include "hfast/netsim/network.hpp"
#include "hfast/netsim/smp_network.hpp"

namespace hfast {
namespace {

/// Ring task graph: every task talks to both neighbors.
graph::CommGraph ring_graph(int n, std::uint64_t bytes = 4096) {
  graph::CommGraph g(n);
  for (int i = 0; i < n; ++i) g.add_message(i, (i + 1) % n, bytes);
  return g;
}

std::vector<int> identity_map(int n) {
  std::vector<int> m(static_cast<std::size_t>(n));
  std::iota(m.begin(), m.end(), 0);
  return m;
}

/// A 2-node fabric (one circuit between them) hosting `node_of_task`.
struct TwoNodeRig {
  core::Provisioned prov;
  netsim::SmpFabricNetwork net;

  explicit TwoNodeRig(std::vector<int> node_of_task,
                      const netsim::LinkParams& backplane =
                          netsim::kBackplaneDefaults)
      : prov(core::provision_greedy(ring_graph(2), {.cutoff = 0})),
        net(prov.fabric, std::move(node_of_task), netsim::LinkParams{},
            backplane, 50e-9) {}
};

/// At one task per node the SMP network must behave exactly like
/// FabricNetwork over the same fabric: same hop counts and bit-identical
/// transfer times for an identical call sequence (this is the structural
/// half of the SmpParity contract).
TEST(NetsimSmp, SingleOccupancyIsFabricNetwork) {
  constexpr int kTasks = 8;
  const auto g = ring_graph(kTasks);
  const auto prov = core::provision_greedy(g, {.cutoff = 0});
  const netsim::LinkParams link;

  netsim::FabricNetwork fab(prov.fabric, link, 50e-9);
  netsim::SmpFabricNetwork smp(prov.fabric, identity_map(kTasks), link,
                               netsim::kBackplaneDefaults, 50e-9);

  EXPECT_EQ(smp.num_endpoints(), fab.num_endpoints());
  EXPECT_EQ(smp.num_nodes(), kTasks);
  for (int n = 0; n < kTasks; ++n) EXPECT_FALSE(smp.node_has_backplane(n));
  EXPECT_DOUBLE_EQ(smp.min_transfer_latency_s(), fab.min_transfer_latency_s());

  for (int i = 0; i < kTasks; ++i) {
    for (int j = 0; j < kTasks; ++j) {
      if (i == j) continue;
      EXPECT_EQ(smp.switch_hops(i, j), fab.switch_hops(i, j)) << i << "->" << j;
    }
  }

  // Identical transfer sequence, including repeats that hit warm occupancy.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < kTasks; ++i) {
      const int j = (i + 1 + round) % kTasks;
      if (i == j) continue;
      const std::uint64_t bytes = 512u * static_cast<std::uint64_t>(i + 1);
      const double start = 1e-6 * round;
      EXPECT_EQ(fab.transfer(i, j, bytes, start),
                smp.transfer(i, j, bytes, start))
          << "round " << round << ": " << i << "->" << j;
    }
  }
}

/// Co-resident tasks exchange over exactly two backplane links and zero
/// packet switches; the arrival time is the cut-through cost of those two
/// links and nothing else.
TEST(NetsimSmp, CoResidentTransferRidesTheBackplaneOnly) {
  TwoNodeRig rig({0, 0, 1, 1});
  EXPECT_EQ(rig.net.num_endpoints(), 4);
  EXPECT_EQ(rig.net.num_nodes(), 2);
  EXPECT_TRUE(rig.net.shares_node(0, 1));
  EXPECT_FALSE(rig.net.shares_node(1, 2));
  EXPECT_TRUE(rig.net.node_has_backplane(0));
  EXPECT_TRUE(rig.net.node_has_backplane(1));

  EXPECT_EQ(rig.net.switch_hops(0, 1), 0);
  EXPECT_EQ(rig.net.switch_hops(2, 3), 0);
  EXPECT_GT(rig.net.switch_hops(0, 2), 0);

  constexpr std::uint64_t kBytes = 1024;
  const auto& bp = netsim::kBackplaneDefaults;
  const double ser = static_cast<double>(kBytes) / bp.bandwidth_bps;
  const double per_link = bp.latency_s + bp.switch_overhead_s;
  const double arrival = rig.net.transfer(0, 1, kBytes, 0.0);
  EXPECT_DOUBLE_EQ(arrival, per_link + per_link + ser);
}

/// A cross-node transfer pays source backplane + fabric route + destination
/// backplane. With the backplane parameterized identically to the circuit
/// tier the surcharge is exactly two extra link traversals (the transfer is
/// cut-through, so only head latency accumulates per link; the tail trails
/// by the final link's serialization, which is the same either way here).
TEST(NetsimSmp, CrossNodeTransferPaysBothBackplanes) {
  const netsim::LinkParams uniform{};  // backplane == circuit tier
  TwoNodeRig rig({0, 0, 1, 1}, uniform);
  netsim::FabricNetwork node_fab(rig.prov.fabric, uniform, 50e-9);

  constexpr std::uint64_t kBytes = 2048;
  const double fabric_only = node_fab.transfer(0, 1, kBytes, 0.0);
  const double task_level = rig.net.transfer(0, 2, kBytes, 0.0);
  const double per_link = uniform.latency_s + uniform.switch_overhead_s;
  EXPECT_DOUBLE_EQ(task_level, fabric_only + 2.0 * per_link);

  // Hop count is the node-level fabric's, not inflated by the backplane.
  EXPECT_EQ(rig.net.switch_hops(0, 2), node_fab.switch_hops(0, 1));
}

/// A node whose quotient group holds one task keeps the paper's baseline
/// picture: the core owns the NIC, no hub, and (at uniform link parameters)
/// exactly one link traversal less on the path than a hubbed destination.
TEST(NetsimSmp, LoneTaskNodeHasNoBackplane) {
  const netsim::LinkParams uniform{};
  TwoNodeRig multi({0, 0, 1, 1}, uniform);
  TwoNodeRig lone({0, 0, 1}, uniform);

  EXPECT_TRUE(lone.net.node_has_backplane(0));
  EXPECT_FALSE(lone.net.node_has_backplane(1));

  constexpr std::uint64_t kBytes = 2048;
  const double to_lone = lone.net.transfer(0, 2, kBytes, 0.0);
  const double to_multi = multi.net.transfer(0, 2, kBytes, 0.0);
  const double per_link = uniform.latency_s + uniform.switch_overhead_s;
  EXPECT_DOUBLE_EQ(to_multi, to_lone + per_link);
}

/// Two co-resident senders to the same remote node contend on the shared
/// hub->fabric path: the second injection at t=0 arrives strictly later.
TEST(NetsimSmp, CoResidentSendersContendOnTheHub) {
  TwoNodeRig rig({0, 0, 1, 1});
  constexpr std::uint64_t kBytes = 1u << 20;  // big enough to serialize
  const double first = rig.net.transfer(0, 2, kBytes, 0.0);
  const double second = rig.net.transfer(1, 3, kBytes, 0.0);
  EXPECT_GT(second, first);

  // After reset() the same sequence replays bit-identically.
  rig.net.reset();
  EXPECT_EQ(rig.net.transfer(0, 2, kBytes, 0.0), first);
  EXPECT_EQ(rig.net.transfer(1, 3, kBytes, 0.0), second);
}

/// Constructor contract: the task map must be total and in range.
TEST(NetsimSmp, RejectsMalformedTaskMaps) {
  const auto prov = core::provision_greedy(ring_graph(2), {.cutoff = 0});
  const netsim::LinkParams link;
  EXPECT_THROW(netsim::SmpFabricNetwork(prov.fabric, {0, 0, 2, 1}, link,
                                        netsim::kBackplaneDefaults, 50e-9),
               ContractViolation);
  EXPECT_THROW(netsim::SmpFabricNetwork(prov.fabric, {0, -1, 1, 1}, link,
                                        netsim::kBackplaneDefaults, 50e-9),
               ContractViolation);
  EXPECT_THROW(netsim::SmpFabricNetwork(prov.fabric, {}, link,
                                        netsim::kBackplaneDefaults, 50e-9),
               ContractViolation);
  // A node with no resident task cannot stand in a route.
  EXPECT_THROW(netsim::SmpFabricNetwork(prov.fabric, {0, 0, 0, 0}, link,
                                        netsim::kBackplaneDefaults, 50e-9),
               ContractViolation);
}

}  // namespace
}  // namespace hfast
