#include <gtest/gtest.h>

#include "hfast/core/reconfigure.hpp"

namespace hfast::core {
namespace {

graph::CommGraph window_with_edges(
    int n, const std::vector<std::pair<int, int>>& edges,
    std::uint64_t bytes = 8192) {
  graph::CommGraph g(n);
  for (const auto& [u, v] : edges) g.add_message(u, v, bytes);
  return g;
}

TEST(Reconfigure, StablePatternReconfiguresOnce) {
  std::vector<graph::CommGraph> windows;
  for (int w = 0; w < 4; ++w) {
    windows.push_back(window_with_edges(4, {{0, 1}, {2, 3}}));
  }
  const auto report = plan_reconfigurations(windows);
  // Window 0 is setup, later windows change nothing.
  EXPECT_EQ(report.total_reconfigurations, 0);
  EXPECT_EQ(report.total_added, 2);
  EXPECT_EQ(report.total_removed, 0);
  EXPECT_EQ(report.peak_circuits, 2);
  EXPECT_EQ(report.static_circuits, 2);
}

TEST(Reconfigure, PhaseChangeSwapsCircuits) {
  std::vector<graph::CommGraph> windows;
  windows.push_back(window_with_edges(4, {{0, 1}}));
  windows.push_back(window_with_edges(4, {{0, 1}}));
  windows.push_back(window_with_edges(4, {{2, 3}}));  // phase shift
  windows.push_back(window_with_edges(4, {{2, 3}}));
  ReconfigParams params;
  params.hysteresis_windows = 0;
  const auto report = plan_reconfigurations(windows, params);
  EXPECT_EQ(report.total_added, 2);
  EXPECT_EQ(report.total_removed, 1);  // {0,1} torn down after going idle
  EXPECT_GT(report.total_reconfigurations, 0);
  EXPECT_EQ(report.peak_circuits, 1);
  EXPECT_EQ(report.static_circuits, 2);
  EXPECT_DOUBLE_EQ(report.reconfig_time_seconds,
                   params.reconfig_seconds * report.total_reconfigurations);
}

TEST(Reconfigure, HysteresisDelaysTeardown) {
  std::vector<graph::CommGraph> windows;
  windows.push_back(window_with_edges(4, {{0, 1}}));
  windows.push_back(window_with_edges(4, {{2, 3}}));
  windows.push_back(window_with_edges(4, {{0, 1}}));  // comes back
  windows.push_back(window_with_edges(4, {{2, 3}}));

  ReconfigParams eager;
  eager.hysteresis_windows = 0;
  const auto flappy = plan_reconfigurations(windows, eager);

  ReconfigParams patient;
  patient.hysteresis_windows = 2;
  const auto calm = plan_reconfigurations(windows, patient);

  EXPECT_GT(flappy.total_removed, calm.total_removed);
  EXPECT_GE(calm.peak_circuits, flappy.peak_circuits);
}

TEST(Reconfigure, CutoffFiltersSmallTraffic) {
  std::vector<graph::CommGraph> windows;
  windows.push_back(window_with_edges(4, {{0, 1}}, /*bytes=*/100));
  const auto report = plan_reconfigurations(windows);
  EXPECT_EQ(report.peak_circuits, 0);  // nothing above 2 KB
  EXPECT_EQ(report.static_circuits, 0);
}

TEST(Reconfigure, EmptyInput) {
  const auto report = plan_reconfigurations({});
  EXPECT_TRUE(report.deltas.empty());
  EXPECT_EQ(report.total_reconfigurations, 0);
}

TEST(Reconfigure, ActiveCountTracksAddsAndRemoves) {
  std::vector<graph::CommGraph> windows;
  windows.push_back(window_with_edges(6, {{0, 1}, {2, 3}, {4, 5}}));
  windows.push_back(window_with_edges(6, {{0, 1}}));
  windows.push_back(window_with_edges(6, {{0, 1}}));
  ReconfigParams params;
  params.hysteresis_windows = 0;
  const auto report = plan_reconfigurations(windows, params);
  ASSERT_EQ(report.deltas.size(), 3u);
  EXPECT_EQ(report.deltas[0].circuits_active, 3);
  // With zero hysteresis, circuits idle in window 1 are torn down there.
  EXPECT_EQ(report.deltas[1].circuits_active, 1);
  EXPECT_EQ(report.deltas[1].circuits_removed, 2);
  EXPECT_EQ(report.deltas[2].circuits_active, 1);
}

}  // namespace
}  // namespace hfast::core
