#include <gtest/gtest.h>

#include "hfast/util/assert.hpp"

#include "hfast/graph/comm_graph.hpp"
#include "hfast/graph/tdc.hpp"

namespace hfast::graph {
namespace {

TEST(CommGraph, EdgesAreUndirectedAndAggregated) {
  CommGraph g(4);
  g.add_message(0, 1, 100);
  g.add_message(1, 0, 200);  // same edge, other direction
  EXPECT_EQ(g.num_edges(), 1u);
  const EdgeStats* e = g.edge(0, 1);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->messages, 2u);
  EXPECT_EQ(e->bytes, 300u);
  EXPECT_EQ(e->max_message, 200u);
  EXPECT_EQ(g.edge(1, 0), e);
  EXPECT_EQ(g.edge(2, 3), nullptr);
}

TEST(CommGraph, SelfAndOutOfRangeRejected) {
  CommGraph g(3);
  EXPECT_THROW(g.add_message(1, 1, 10), ContractViolation);
  EXPECT_THROW(g.add_message(0, 3, 10), ContractViolation);
}

TEST(CommGraph, PartnersRespectCutoff) {
  CommGraph g(4);
  g.add_message(0, 1, 100);
  g.add_message(0, 2, 5000);
  g.add_message(0, 3, 2048);
  EXPECT_EQ(g.partners(0).size(), 3u);
  const auto big = g.partners(0, 2048);
  ASSERT_EQ(big.size(), 2u);
  EXPECT_EQ(big[0], 2);
  EXPECT_EQ(big[1], 3);
}

TEST(CommGraph, CutoffUsesMaxMessageOnEdge) {
  CommGraph g(2);
  g.add_message(0, 1, 100, 1000);  // many small
  g.add_message(0, 1, 4096, 1);   // one big: edge survives 2 KB cutoff
  EXPECT_EQ(g.degrees(2048)[0], 1);
}

TEST(CommGraph, DegreesAndVolumeMatrix) {
  CommGraph g(3);
  g.add_message(0, 1, 10);
  g.add_message(1, 2, 20);
  const auto deg = g.degrees();
  EXPECT_EQ(deg, (std::vector<int>{1, 2, 1}));
  const auto vol = g.volume_matrix();
  EXPECT_DOUBLE_EQ(vol[0][1], 10.0);
  EXPECT_DOUBLE_EQ(vol[1][0], 10.0);
  EXPECT_DOUBLE_EQ(vol[1][2], 20.0);
  EXPECT_DOUBLE_EQ(vol[0][2], 0.0);
  EXPECT_EQ(g.total_bytes(), 30u);
}

TEST(CommGraph, ThresholdedSubgraph) {
  CommGraph g(4);
  g.add_message(0, 1, 100);
  g.add_message(2, 3, 8192);
  const auto t = g.thresholded(2048);
  EXPECT_EQ(t.num_edges(), 1u);
  EXPECT_EQ(t.num_nodes(), 4);
  EXPECT_NE(t.edge(2, 3), nullptr);
  EXPECT_EQ(t.edge(0, 1), nullptr);
}

TEST(Tdc, StatsOnRing) {
  CommGraph g(6);
  for (int i = 0; i < 6; ++i) g.add_message(i, (i + 1) % 6, 4096);
  const auto t = tdc(g);
  EXPECT_EQ(t.max, 2);
  EXPECT_EQ(t.min, 2);
  EXPECT_DOUBLE_EQ(t.avg, 2.0);
  EXPECT_EQ(t.median, 2);
}

TEST(Tdc, SweepIsMonotoneNonIncreasing) {
  CommGraph g(8);
  for (int i = 1; i < 8; ++i) g.add_message(0, i, 1u << (6 + i));
  const auto sweep = tdc_sweep(g);
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_LE(sweep[i].stats.max, sweep[i - 1].stats.max);
    EXPECT_LE(sweep[i].stats.avg, sweep[i - 1].stats.avg);
  }
  EXPECT_EQ(sweep.front().cutoff, 0u);
  EXPECT_EQ(sweep.back().cutoff, 1024u * 1024u);
}

TEST(Tdc, StandardCutoffsMatchPaperAxis) {
  const auto c = standard_cutoffs();
  ASSERT_EQ(c.size(), 15u);  // 0, 128 ... 1024k
  EXPECT_EQ(c[0], 0u);
  EXPECT_EQ(c[1], 128u);
  EXPECT_EQ(c.back(), 1024u * 1024u);
}

TEST(Tdc, FcnUtilization) {
  CommGraph g(5);  // star: center talks to everyone
  for (int i = 1; i < 5; ++i) g.add_message(0, i, 4096);
  // degrees: 4,1,1,1,1 -> avg 1.6; P-1 = 4.
  EXPECT_NEAR(fcn_utilization(g, 0), 1.6 / 4.0, 1e-12);
  CommGraph full(4);
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) full.add_message(i, j, 4096);
  }
  EXPECT_DOUBLE_EQ(fcn_utilization(full, 0), 1.0);
}

TEST(CommGraph, FromProfileSkipsSelfTraffic) {
  ipm::RankProfile p0(0), p1(1);
  p0.on_message(1, 100, true);
  p0.on_message(0, 999, true);  // self: must not become an edge
  p1.on_message(0, 50, true);
  const ipm::RankProfile* ranks[] = {&p0, &p1};
  const auto w = ipm::WorkloadProfile::merge(ranks);
  const auto g = CommGraph::from_profile(w);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.edge(0, 1)->bytes, 150u);
}

}  // namespace
}  // namespace hfast::graph
