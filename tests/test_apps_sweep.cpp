/// Parameterized concurrency sweeps: each kernel's structural invariants
/// must hold at every supported P, not just the paper's 64/256.

#include <gtest/gtest.h>

#include "hfast/util/assert.hpp"

#include "hfast/analysis/experiment.hpp"
#include "hfast/graph/metrics.hpp"
#include "hfast/graph/tdc.hpp"

namespace hfast::apps {
namespace {

using analysis::run_experiment;

class CactusSweep : public ::testing::TestWithParam<int> {};
TEST_P(CactusSweep, MaxSixNeighborsAnyP) {
  const auto r = run_experiment("cactus", GetParam());
  const auto t = graph::tdc(r.comm_graph, graph::kBdpCutoffBytes);
  EXPECT_LE(t.max, 6);
  EXPECT_GT(t.avg, 0.0);
  // Threshold-insensitive.
  EXPECT_EQ(t.max, graph::tdc(r.comm_graph, 0).max);
}
INSTANTIATE_TEST_SUITE_P(P, CactusSweep, ::testing::Values(8, 16, 27, 48, 64));

class LbmhdSweep : public ::testing::TestWithParam<int> {};
TEST_P(LbmhdSweep, ExactlyTwelvePartnersAnySquareP) {
  const auto r = run_experiment("lbmhd", GetParam());
  const auto t = graph::tdc(r.comm_graph, graph::kBdpCutoffBytes);
  EXPECT_EQ(t.max, 12);
  EXPECT_EQ(t.min, 12);
}
INSTANTIATE_TEST_SUITE_P(P, LbmhdSweep, ::testing::Values(25, 36, 49, 64, 81));

class SuperluSweep : public ::testing::TestWithParam<int> {};
TEST_P(SuperluSweep, ThresholdedDegreeIsTwiceSqrtPMinusOne) {
  const int p = GetParam();
  const auto r = run_experiment("superlu", p);
  int side = 1;
  while (side * side < p) ++side;
  const auto cut = graph::tdc(r.comm_graph, graph::kBdpCutoffBytes);
  EXPECT_EQ(cut.max, 2 * (side - 1));
  EXPECT_EQ(cut.min, 2 * (side - 1));
  // Tiny pivot messages reach everyone across the run.
  EXPECT_EQ(graph::tdc(r.comm_graph, 0).max, p - 1);
}
INSTANTIATE_TEST_SUITE_P(P, SuperluSweep, ::testing::Values(16, 25, 36, 64));

class PmemdSweep : public ::testing::TestWithParam<int> {};
TEST_P(PmemdSweep, EveryPairExchangesAndMasterStaysHot) {
  const int p = GetParam();
  const auto r = run_experiment("pmemd", p);
  EXPECT_EQ(graph::tdc(r.comm_graph, 0).max, p - 1);
  EXPECT_EQ(graph::tdc(r.comm_graph, 0).min, p - 1);
  // Rank 0's edges never fall below the threshold (master floor).
  EXPECT_EQ(r.comm_graph.partners(0, graph::kBdpCutoffBytes).size(),
            static_cast<std::size_t>(p - 1));
}
INSTANTIATE_TEST_SUITE_P(P, PmemdSweep, ::testing::Values(8, 16, 32, 64));

class ParatecSweep : public ::testing::TestWithParam<int> {};
TEST_P(ParatecSweep, FullConnectivityUpTo32K) {
  const int p = GetParam();
  const auto r = run_experiment("paratec", p);
  EXPECT_EQ(graph::tdc(r.comm_graph, graph::kBdpCutoffBytes).max, p - 1);
  EXPECT_EQ(graph::tdc(r.comm_graph, 32 * 1024).max, p - 1);
  EXPECT_LT(graph::tdc(r.comm_graph, 64 * 1024).max, p - 1);
  EXPECT_EQ(r.steady.median_ptp_buffer(), 64u);
}
INSTANTIATE_TEST_SUITE_P(P, ParatecSweep, ::testing::Values(12, 16, 32, 64));

class GtcSweep : public ::testing::TestWithParam<int> {};
TEST_P(GtcSweep, RingBelowToroidalExtentLeadersAbove) {
  const int p = GetParam();
  const auto r = run_experiment("gtc", p);
  const auto cut = graph::tdc(r.comm_graph, graph::kBdpCutoffBytes);
  if (p <= 64) {
    EXPECT_EQ(cut.max, 2);
    EXPECT_DOUBLE_EQ(cut.avg, 2.0);
  } else {
    EXPECT_GT(cut.max, 2);
    EXPECT_LT(cut.avg, static_cast<double>(cut.max));
  }
}
INSTANTIATE_TEST_SUITE_P(P, GtcSweep, ::testing::Values(16, 32, 64, 128));

// Collective-plumbing conservation: whatever the kernel, no unmatched
// messages remain (the runtime's leak check throws otherwise) and the
// steady profile is nonempty.
class AllAppsSweep
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};
TEST_P(AllAppsSweep, RunsCleanAndProfiles) {
  const auto [name, p] = GetParam();
  const auto r = run_experiment(name, p);
  EXPECT_GT(r.steady.total_calls(), 0u);
  EXPECT_GT(r.comm_graph.num_edges(), 0u);
  EXPECT_EQ(r.steady.dropped(), 0u);  // IPM hash never overflows here
  // Steady-state point-to-point graphs of real codes are connected; a
  // split graph signals a kernel modeling bug.
  EXPECT_TRUE(graph::is_connected(r.comm_graph)) << name;
}
INSTANTIATE_TEST_SUITE_P(
    Matrix, AllAppsSweep,
    ::testing::Values(std::tuple{"cactus", 36}, std::tuple{"lbmhd", 49},
                      std::tuple{"gtc", 32}, std::tuple{"superlu", 25},
                      std::tuple{"pmemd", 24}, std::tuple{"paratec", 24}),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) + "_" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace hfast::apps
