#include <gtest/gtest.h>

#include "hfast/util/assert.hpp"

#include "hfast/netsim/replay.hpp"
#include "hfast/topo/fcn.hpp"
#include "hfast/topo/mesh.hpp"

namespace hfast::netsim {
namespace {

using trace::CommEvent;
using trace::EventKind;
using trace::Trace;

Trace make_trace(int nranks, std::vector<CommEvent> events) {
  std::uint64_t op = 0;
  std::vector<std::uint64_t> per_rank(static_cast<std::size_t>(nranks), 0);
  (void)op;
  for (auto& e : events) {
    e.op_index = per_rank[static_cast<std::size_t>(e.rank)]++;
  }
  return Trace(nranks, std::move(events), {""});
}

CommEvent send(int rank, int peer, std::uint64_t bytes) {
  CommEvent e;
  e.rank = rank;
  e.kind = EventKind::kSend;
  e.peer = peer;
  e.bytes = bytes;
  return e;
}

CommEvent recv(int rank, int peer, std::uint64_t bytes) {
  CommEvent e;
  e.rank = rank;
  e.kind = EventKind::kRecv;
  e.peer = peer;
  e.bytes = bytes;
  return e;
}

CommEvent collective(int rank, std::uint64_t bytes) {
  CommEvent e;
  e.rank = rank;
  e.kind = EventKind::kCollective;
  e.call = mpisim::CallType::kAllreduce;
  e.peer = mpisim::kNoPeer;
  e.bytes = bytes;
  return e;
}

LinkParams simple_link() {
  LinkParams l;
  l.latency_s = 1e-6;
  l.bandwidth_bps = 1e9;
  l.switch_overhead_s = 0.0;
  return l;
}

TEST(Replay, PingPongMakespan) {
  const auto t = make_trace(
      2, {send(0, 1, 1000), recv(1, 0, 1000), send(1, 0, 1000),
          recv(0, 1, 1000)});
  topo::FullyConnected fcn(2);
  DirectNetwork net(fcn, simple_link());
  ReplayParams params;
  params.send_overhead_s = 0.0;
  params.recv_overhead_s = 0.0;
  const auto r = replay(t, net, params);
  EXPECT_EQ(r.messages, 2u);
  EXPECT_EQ(r.bytes, 2000u);
  // Each direction: 1us latency + 1us serialization = 2us; total 4us.
  EXPECT_NEAR(r.makespan_s, 4e-6, 1e-9);
  EXPECT_NEAR(r.avg_message_latency_s, 2e-6, 1e-9);
}

TEST(Replay, RecvBlocksUntilSendArrives) {
  // Rank 1's receive is issued long before rank 0 sends anything useful:
  // rank 0 first does local "work" modeled as a collective delay.
  const auto t = make_trace(
      2, {collective(0, 1024), send(0, 1, 100), recv(1, 0, 100)});
  topo::FullyConnected fcn(2);
  DirectNetwork net(fcn, simple_link());
  const auto r = replay(t, net);
  EXPECT_GT(r.total_recv_wait_s, 0.0);
}

TEST(Replay, FifoChannelMatchingPreservesOrder) {
  const auto t = make_trace(
      2, {send(0, 1, 10), send(0, 1, 20), recv(1, 0, 10), recv(1, 0, 20)});
  topo::FullyConnected fcn(2);
  DirectNetwork net(fcn, simple_link());
  EXPECT_NO_THROW(replay(t, net));
}

TEST(Replay, StalledTraceThrows) {
  const auto t = make_trace(2, {recv(1, 0, 100)});  // send never happens
  topo::FullyConnected fcn(2);
  DirectNetwork net(fcn, simple_link());
  EXPECT_THROW(replay(t, net), Error);
}

TEST(Replay, CollectiveCostScalesWithRanksAndBytes) {
  topo::FullyConnected fcn(16);
  DirectNetwork net(fcn, simple_link());
  ReplayParams params;
  params.send_overhead_s = 0.0;
  const auto small = replay(make_trace(16, {collective(0, 64)}), net, params);
  const auto big = replay(make_trace(16, {collective(0, 1 << 20)}), net, params);
  EXPECT_GT(big.makespan_s, small.makespan_s);
}

TEST(Replay, ContentionExtendsMakespan) {
  // Eight ranks all send a large message to rank 0 (ejection hotspot).
  std::vector<CommEvent> events;
  for (int r = 1; r < 8; ++r) events.push_back(send(r, 0, 1000000));
  for (int r = 1; r < 8; ++r) events.push_back(recv(0, r, 1000000));
  const auto t = make_trace(8, events);

  topo::MeshTorus ring({8}, true);
  DirectNetwork congested(ring, simple_link());
  const auto hot = replay(t, congested, {});

  // The same volume spread across disjoint pairs finishes much faster.
  std::vector<CommEvent> spread;
  for (int r = 0; r < 8; r += 2) {
    spread.push_back(send(r, r + 1, 1000000));
    spread.push_back(recv(r + 1, r, 1000000));
  }
  DirectNetwork fresh(ring, simple_link());
  const auto cool = replay(make_trace(8, spread), fresh, {});
  EXPECT_GT(hot.makespan_s, 2 * cool.makespan_s);
}

TEST(Replay, HopStatisticsReported) {
  const auto t = make_trace(
      2, {send(0, 1, 1000), recv(1, 0, 1000)});
  topo::MeshTorus path({4}, false);
  DirectNetwork net(path, simple_link());
  const auto r = replay(t, net);
  EXPECT_EQ(r.max_switch_hops, 1);
  EXPECT_DOUBLE_EQ(r.avg_switch_hops, 1.0);
}

TEST(Replay, TraceLargerThanNetworkRejected) {
  const auto t = make_trace(4, {send(0, 1, 10), recv(1, 0, 10)});
  topo::FullyConnected fcn(2);
  DirectNetwork net(fcn, simple_link());
  EXPECT_THROW(replay(t, net), ContractViolation);
}

}  // namespace
}  // namespace hfast::netsim
