/// Parity and error-path tests for the partitioned-clock parallel replay.
/// The contract under test is exact: parallel_replay() must produce a
/// ReplayResult bitwise equal to serial replay() — same doubles, same
/// counters — for every shard count, on synthetic traffic (TSan-covered)
/// and on all six application traces from the fiber engine.

#include <gtest/gtest.h>

#include "hfast/util/assert.hpp"

#include <string>
#include <vector>

#include "hfast/analysis/experiment.hpp"
#include "hfast/core/provision.hpp"
#include "hfast/graph/comm_graph.hpp"
#include "hfast/mpisim/engine.hpp"
#include "hfast/netsim/replay.hpp"
#include "hfast/netsim/replay_parallel.hpp"
#include "hfast/topo/fcn.hpp"
#include "hfast/topo/mesh.hpp"
#include "hfast/util/random.hpp"

namespace hfast::netsim {
namespace {

using trace::CommEvent;
using trace::EventKind;
using trace::Trace;

constexpr int kShardCounts[] = {1, 2, 4, 7};

/// Random deadlock-free trace: every rank issues all its sends first, then
/// receives (in randomized order) everything destined to it.
Trace random_trace(int nranks, int messages, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<CommEvent>> per_rank(
      static_cast<std::size_t>(nranks));
  std::vector<std::vector<CommEvent>> recvs(static_cast<std::size_t>(nranks));
  for (int m = 0; m < messages; ++m) {
    const int src =
        static_cast<int>(rng.uniform(static_cast<std::uint64_t>(nranks)));
    int dst = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(nranks)));
    if (dst == src) dst = (dst + 1) % nranks;
    const std::uint64_t bytes = 64 + rng.uniform(64 * 1024);
    CommEvent send;
    send.rank = src;
    send.kind = EventKind::kSend;
    send.peer = dst;
    send.bytes = bytes;
    per_rank[static_cast<std::size_t>(src)].push_back(send);
    CommEvent recv;
    recv.rank = dst;
    recv.kind = EventKind::kRecv;
    recv.peer = src;
    recv.bytes = bytes;
    recvs[static_cast<std::size_t>(dst)].push_back(recv);
  }
  std::vector<CommEvent> all;
  for (int r = 0; r < nranks; ++r) {
    auto& mine = per_rank[static_cast<std::size_t>(r)];
    rng.shuffle(recvs[static_cast<std::size_t>(r)]);
    for (CommEvent e : recvs[static_cast<std::size_t>(r)]) mine.push_back(e);
    std::uint64_t op = 0;
    for (CommEvent& e : mine) e.op_index = op++;
    all.insert(all.end(), mine.begin(), mine.end());
  }
  return Trace(nranks, std::move(all), {""});
}

Trace make_trace(int nranks, std::vector<CommEvent> events) {
  std::vector<std::uint64_t> per_rank(static_cast<std::size_t>(nranks), 0);
  for (auto& e : events) {
    e.op_index = per_rank[static_cast<std::size_t>(e.rank)]++;
  }
  return Trace(nranks, std::move(events), {""});
}

CommEvent send(int rank, int peer, std::uint64_t bytes) {
  CommEvent e;
  e.rank = rank;
  e.kind = EventKind::kSend;
  e.peer = peer;
  e.bytes = bytes;
  return e;
}

CommEvent recv(int rank, int peer, std::uint64_t bytes) {
  CommEvent e;
  e.rank = rank;
  e.kind = EventKind::kRecv;
  e.peer = peer;
  e.bytes = bytes;
  return e;
}

/// Field-by-field exact comparison so a parity break names the field.
void expect_identical(const ReplayResult& serial, const ReplayResult& parallel,
                      const std::string& context) {
  EXPECT_EQ(serial.makespan_s, parallel.makespan_s) << context;
  EXPECT_EQ(serial.total_recv_wait_s, parallel.total_recv_wait_s) << context;
  EXPECT_EQ(serial.messages, parallel.messages) << context;
  EXPECT_EQ(serial.bytes, parallel.bytes) << context;
  EXPECT_EQ(serial.avg_message_latency_s, parallel.avg_message_latency_s)
      << context;
  EXPECT_EQ(serial.max_message_latency_s, parallel.max_message_latency_s)
      << context;
  EXPECT_EQ(serial.avg_switch_hops, parallel.avg_switch_hops) << context;
  EXPECT_EQ(serial.max_switch_hops, parallel.max_switch_hops) << context;
  EXPECT_TRUE(serial == parallel) << context;
}

// --- synthetic traffic (runs under TSan; no fibers involved) -----------------

TEST(ParallelReplay, MatchesSerialOnRandomTraces) {
  const topo::MeshTorus torus({4, 4, 4}, true);
  const LinkParams link;
  for (const std::uint64_t seed : {3u, 17u}) {
    const auto t = random_trace(64, 600, seed);
    DirectNetwork serial_net(torus, link);
    const auto serial = replay(t, serial_net);
    for (const int shards : kShardCounts) {
      DirectNetwork net(torus, link);
      const auto parallel =
          parallel_replay(t, net, {}, {.shards = shards});
      expect_identical(serial, parallel,
                       "seed=" + std::to_string(seed) +
                           " shards=" + std::to_string(shards));
    }
  }
}

TEST(ParallelReplay, MatchesSerialAtP256) {
  const auto t = random_trace(256, 2000, 99);
  const topo::MeshTorus torus(topo::MeshTorus::balanced_dims(256, 3), true);
  const LinkParams link;
  DirectNetwork serial_net(torus, link);
  const auto serial = replay(t, serial_net);
  DirectNetwork net(torus, link);
  const auto parallel = parallel_replay(t, net, {}, {.shards = 4});
  expect_identical(serial, parallel, "P=256 shards=4");
}

TEST(ParallelReplay, MatchesSerialOnFabricNetwork) {
  graph::CommGraph g(64);
  util::Rng rng(7);
  for (int m = 0; m < 300; ++m) {
    const int src = static_cast<int>(rng.uniform(64));
    int dst = static_cast<int>(rng.uniform(64));
    if (dst == src) dst = (dst + 1) % 64;
    g.add_message(src, dst, 64 + rng.uniform(4096));
  }
  const auto t = random_trace(64, 600, 7);
  const auto prov = core::provision_greedy(g, {.cutoff = 0});
  const LinkParams link;
  FabricNetwork serial_net(prov.fabric, link, 50e-9);
  const auto serial = replay(t, serial_net);
  for (const int shards : {2, 4}) {
    FabricNetwork net(prov.fabric, link, 50e-9);
    const auto parallel = parallel_replay(t, net, {}, {.shards = shards});
    expect_identical(serial, parallel, "fabric shards=" + std::to_string(shards));
  }
}

TEST(ParallelReplay, TinyChannelCapacityStillExact) {
  // capacity=1 forces maximal producer backpressure: every submission
  // blocks until the sequencer drains. Exercises the no-deadlock design.
  const auto t = random_trace(32, 400, 21);
  topo::FullyConnected fcn(32);
  const LinkParams link;
  DirectNetwork serial_net(fcn, link);
  const auto serial = replay(t, serial_net);
  DirectNetwork net(fcn, link);
  const auto parallel =
      parallel_replay(t, net, {}, {.shards = 4, .channel_capacity = 1});
  expect_identical(serial, parallel, "capacity=1");
}

TEST(ParallelReplay, ShardCountClampedToRanks) {
  const auto t = random_trace(8, 60, 5);
  topo::FullyConnected fcn(8);
  const LinkParams link;
  DirectNetwork serial_net(fcn, link);
  const auto serial = replay(t, serial_net);
  DirectNetwork net(fcn, link);
  const auto parallel = parallel_replay(t, net, {}, {.shards = 64});
  expect_identical(serial, parallel, "shards=64 on 8 ranks");
}

TEST(ParallelReplay, ZeroLookaheadFallsBackToSerial) {
  // Zero link latency, zero switch overhead, zero send overhead: the
  // conservative window degenerates, so parallel_replay must detect it and
  // produce the serial result anyway.
  const auto t = random_trace(16, 150, 13);
  LinkParams free_link;
  free_link.latency_s = 0.0;
  free_link.switch_overhead_s = 0.0;
  ReplayParams params;
  params.send_overhead_s = 0.0;
  topo::FullyConnected fcn(16);
  DirectNetwork serial_net(fcn, free_link);
  const auto serial = replay(t, serial_net, params);
  DirectNetwork net(fcn, free_link);
  const auto parallel = parallel_replay(t, net, params, {.shards = 4});
  expect_identical(serial, parallel, "zero lookahead");
}

TEST(ParallelReplay, UnmatchedSendsStillCountedLikeSerial) {
  // A send nobody receives must still traverse the network for the stats,
  // exactly as in serial replay.
  const auto t = make_trace(4, {send(0, 3, 512), send(1, 2, 256),
                                recv(2, 1, 256)});
  topo::FullyConnected fcn(4);
  const LinkParams link;
  DirectNetwork serial_net(fcn, link);
  const auto serial = replay(t, serial_net);
  EXPECT_EQ(serial.messages, 2u);
  DirectNetwork net(fcn, link);
  const auto parallel = parallel_replay(t, net, {}, {.shards = 2});
  expect_identical(serial, parallel, "unmatched send");
}

TEST(ParallelReplay, StalledTraceThrows) {
  const auto t = make_trace(4, {recv(1, 0, 64), send(2, 3, 64),
                                recv(3, 2, 64)});
  topo::FullyConnected fcn(4);
  const LinkParams link;
  for (const int shards : {1, 2, 4}) {
    DirectNetwork net(fcn, link);
    EXPECT_THROW((void)parallel_replay(t, net, {}, {.shards = shards}), Error)
        << "shards=" << shards;
  }
}

TEST(ParallelReplay, MalformedRankThrows) {
  auto events = std::vector<CommEvent>{send(0, 1, 64), recv(1, 0, 64)};
  events.push_back(send(0, 1, 64));
  events.back().rank = 9;  // outside [0, 4)
  const auto t = Trace(4, std::move(events), {""});
  topo::FullyConnected fcn(4);
  const LinkParams link;
  DirectNetwork serial_net(fcn, link);
  EXPECT_THROW((void)replay(t, serial_net), Error);
  DirectNetwork net(fcn, link);
  EXPECT_THROW((void)parallel_replay(t, net, {}, {.shards = 2}), Error);
}

TEST(ParallelReplay, MalformedPeerThrows) {
  const auto t = make_trace(4, {send(0, 7, 64)});  // peer outside [0, 4)
  topo::FullyConnected fcn(4);
  const LinkParams link;
  DirectNetwork serial_net(fcn, link);
  EXPECT_THROW((void)replay(t, serial_net), Error);
  DirectNetwork net(fcn, link);
  EXPECT_THROW((void)parallel_replay(t, net, {}, {.shards = 2}), Error);
}

TEST(ParallelReplay, InvalidOptionsRejected) {
  const auto t = random_trace(4, 10, 1);
  topo::FullyConnected fcn(4);
  const LinkParams link;
  DirectNetwork net(fcn, link);
  EXPECT_THROW((void)parallel_replay(t, net, {}, {.shards = -1}),
               ContractViolation);
  EXPECT_THROW(
      (void)parallel_replay(t, net, {}, {.shards = 2, .channel_capacity = 0}),
      ContractViolation);
}

TEST(ParallelReplay, SerialResultByteStableAcrossRuns) {
  // The (clock, rank) tie-break pins the serial schedule to a total order:
  // repeated runs must agree exactly, not approximately.
  const auto t = random_trace(24, 400, 31);
  const topo::MeshTorus torus({4, 3, 2}, true);
  const LinkParams link;
  DirectNetwork a(torus, link);
  DirectNetwork b(torus, link);
  const auto ra = replay(t, a);
  const auto rb = replay(t, b);
  EXPECT_TRUE(ra == rb);
  // And replaying on the same network after reset() is just as stable.
  const auto rc = replay(t, a);
  EXPECT_TRUE(ra == rc);
}

// --- application traces (fiber engine; skips where fibers are unsupported) ---

class ParallelReplayParity : public ::testing::TestWithParam<const char*> {};

TEST_P(ParallelReplayParity, AppTraceMatchesSerialAtEveryShardCount) {
  if (!mpisim::fibers_supported()) GTEST_SKIP() << "fibers unsupported";
  const std::string app = GetParam();
  for (const int nranks : {64, 256}) {
    analysis::ExperimentConfig cfg;
    cfg.app = app;
    cfg.nranks = nranks;
    cfg.engine = mpisim::EngineKind::kFibers;
    const auto r = analysis::run_experiment(cfg);
    ASSERT_FALSE(r.trace.events().empty()) << app;

    const topo::MeshTorus torus(topo::MeshTorus::balanced_dims(nranks, 3),
                                true);
    const LinkParams link;
    DirectNetwork serial_net(torus, link);
    const auto serial = replay(r.trace, serial_net);
    for (const int shards : kShardCounts) {
      DirectNetwork net(torus, link);
      const auto parallel =
          parallel_replay(r.trace, net, {}, {.shards = shards});
      expect_identical(serial, parallel,
                       app + " P=" + std::to_string(nranks) +
                           " shards=" + std::to_string(shards));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Apps, ParallelReplayParity,
                         ::testing::Values("cactus", "gtc", "lbmhd", "superlu",
                                           "pmemd", "paratec"));

}  // namespace
}  // namespace hfast::netsim
