/// Property tests: provisioning invariants over randomized communication
/// graphs (parameterized over seeds and densities).

#include <gtest/gtest.h>

#include "hfast/util/assert.hpp"

#include "hfast/core/provision.hpp"
#include "hfast/graph/clique.hpp"
#include "hfast/util/random.hpp"

namespace hfast::core {
namespace {

struct RandomGraphCase {
  std::uint64_t seed;
  int nodes;
  double density;
  int block_size;
};

graph::CommGraph random_graph(const RandomGraphCase& c) {
  util::Rng rng(c.seed);
  graph::CommGraph g(c.nodes);
  for (int i = 0; i < c.nodes; ++i) {
    for (int j = i + 1; j < c.nodes; ++j) {
      if (rng.chance(c.density)) {
        // Mix sizes so thresholding has something to do.
        const std::uint64_t bytes = rng.chance(0.7) ? 4096 + rng.uniform(65536)
                                                    : 1 + rng.uniform(1024);
        g.add_message(i, j, bytes, 1 + rng.uniform(8));
      }
    }
  }
  return g;
}

class ProvisionProperty : public ::testing::TestWithParam<RandomGraphCase> {};

TEST_P(ProvisionProperty, BothStrategiesProduceValidServingFabrics) {
  const auto g = random_graph(GetParam());
  ProvisionParams params;
  params.block_size = GetParam().block_size;

  for (auto strategy : {ProvisionStrategy::kGreedyPerNode,
                        ProvisionStrategy::kCliqueShared}) {
    const auto prov = provision(g, params, strategy);
    // Structural invariants.
    prov.fabric.validate();
    // Every thresholded edge routable.
    EXPECT_TRUE(prov.fabric.serves(g, params.cutoff));
    // Port budgets respected everywhere.
    for (int b = 0; b < prov.fabric.num_blocks(); ++b) {
      const auto& blk = prov.fabric.block(b);
      EXPECT_GE(blk.num_free(), 0);
      EXPECT_EQ(blk.num_free() + blk.num_host() + blk.num_trunk(),
                blk.num_ports());
    }
    // Every node has exactly one home.
    for (int n = 0; n < g.num_nodes(); ++n) {
      EXPECT_GE(prov.fabric.home_block(n), 0);
    }
    // Accounting consistency.
    EXPECT_EQ(prov.stats.num_blocks, prov.fabric.num_blocks());
    EXPECT_EQ(prov.fabric.total_host_ports(), g.num_nodes());
    EXPECT_EQ(prov.fabric.total_trunk_ports() % 2, 0);
  }
}

TEST_P(ProvisionProperty, GreedyBlockCountMatchesClosedForm) {
  const auto g = random_graph(GetParam());
  ProvisionParams params;
  params.block_size = GetParam().block_size;
  const auto prov = provision_greedy(g, params);
  int expected = 0;
  for (int d : g.degrees(params.cutoff)) {
    expected += greedy_blocks_for_degree(d, params.block_size);
  }
  EXPECT_EQ(prov.stats.num_blocks, expected);
}

TEST_P(ProvisionProperty, CliqueNeverUsesMoreBlocksThanGreedy) {
  const auto g = random_graph(GetParam());
  ProvisionParams params;
  params.block_size = GetParam().block_size;
  const auto greedy = provision_greedy(g, params);
  const auto clique = provision_clique(g, params);
  EXPECT_LE(clique.stats.num_blocks, greedy.stats.num_blocks);
}

TEST_P(ProvisionProperty, CliqueCoverIsValid) {
  const auto g = random_graph(GetParam()).thresholded(graph::kBdpCutoffBytes);
  const auto cover = graph::greedy_edge_clique_cover(
      g, static_cast<std::size_t>(GetParam().block_size - 1));
  EXPECT_TRUE(graph::is_valid_clique_cover(g, cover));
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, ProvisionProperty,
    ::testing::Values(RandomGraphCase{1, 12, 0.15, 16},
                      RandomGraphCase{2, 12, 0.5, 16},
                      RandomGraphCase{3, 12, 0.9, 16},
                      RandomGraphCase{4, 24, 0.3, 16},
                      RandomGraphCase{5, 24, 0.7, 8},
                      RandomGraphCase{6, 40, 0.1, 16},
                      RandomGraphCase{7, 40, 0.5, 8},
                      RandomGraphCase{8, 64, 0.2, 16},
                      RandomGraphCase{9, 64, 0.8, 16},
                      RandomGraphCase{10, 96, 0.05, 6}),
    [](const ::testing::TestParamInfo<RandomGraphCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "_n" +
             std::to_string(info.param.nodes) + "_s" +
             std::to_string(info.param.block_size);
    });

}  // namespace
}  // namespace hfast::core
