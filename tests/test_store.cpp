/// hfast::store — the three contracts the sweep caching layer stands on:
/// (1) the cache key is a pure, stable function of the config (every field
/// perturbs it, nothing else does), (2) encode/decode is lossless for every
/// application's full result, and (3) corrupt entries — truncated, bit
/// flipped, stale version — are clean misses, never errors or UB.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "hfast/analysis/batch.hpp"
#include "hfast/mpisim/engine.hpp"
#include "hfast/store/codec.hpp"
#include "hfast/store/store.hpp"
#include "hfast/util/assert.hpp"

namespace hfast::store {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test store directory under the system temp dir.
fs::path temp_store(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("hfast_test_" + name);
  fs::remove_all(dir);
  return dir;
}

analysis::ExperimentConfig base_config() {
  analysis::ExperimentConfig c;
  c.app = "cactus";
  c.nranks = 64;
  c.iterations = 0;
  c.seed = 1;
  c.capture_trace = true;
  c.engine = mpisim::EngineKind::kThreads;
  c.sched_seed = 0;
  return c;
}

/// The engine every experiment in this file runs under: fibers when the
/// platform supports them (single-threaded and deterministic), else threads.
mpisim::EngineKind test_engine() {
  return mpisim::fibers_supported() ? mpisim::EngineKind::kFibers
                                    : mpisim::EngineKind::kThreads;
}

void expect_profile_eq(const ipm::WorkloadProfile& a,
                       const ipm::WorkloadProfile& b, const char* what,
                       bool timings = true) {
  const auto sa = a.snapshot();
  const auto sb = b.snapshot();
  EXPECT_EQ(sa.nranks, sb.nranks) << what;
  EXPECT_EQ(sa.total_calls, sb.total_calls) << what;
  EXPECT_EQ(sa.dropped, sb.dropped) << what;
  EXPECT_EQ(sa.counts, sb.counts) << what;
  if (timings) {
    EXPECT_EQ(sa.times, sb.times) << what;  // the f64 codec is bit-exact
  }
  EXPECT_EQ(sa.ptp_buffers.raw(), sb.ptp_buffers.raw()) << what;
  EXPECT_EQ(sa.collective_buffers.raw(), sb.collective_buffers.raw()) << what;
  EXPECT_EQ(sa.sent, sb.sent) << what;
}

void expect_graph_eq(const graph::CommGraph& a, const graph::CommGraph& b,
                     const char* what) {
  EXPECT_EQ(a.num_nodes(), b.num_nodes()) << what;
  EXPECT_EQ(a.edges(), b.edges()) << what;  // EdgeStats operator==
}

void expect_smp_eq(const analysis::SmpArtifacts& a,
                   const analysis::SmpArtifacts& b) {
  EXPECT_EQ(a.num_nodes, b.num_nodes);
  EXPECT_EQ(a.backplane_bytes, b.backplane_bytes);
  EXPECT_EQ(a.node_tdc_max, b.node_tdc_max);
  EXPECT_EQ(a.node_tdc_avg, b.node_tdc_avg);  // f64 codec is bit-exact
  EXPECT_EQ(a.block_size, b.block_size);
  EXPECT_EQ(a.node_of_task, b.node_of_task);
  expect_graph_eq(a.node_graph, b.node_graph, "smp.node_graph");
  EXPECT_TRUE(a.provision == b.provision);  // ProvisionStats operator==
}

/// Field-for-field equality. `timings=false` drops the wall-clock fields
/// (wall_seconds, per-call times) — the right comparison between a cached
/// result and an independent recomputation, whose measured times differ
/// even though every modeled quantity is identical.
void expect_result_eq(const analysis::ExperimentResult& a,
                      const analysis::ExperimentResult& b,
                      bool timings = true) {
  EXPECT_EQ(a.config.app, b.config.app);
  EXPECT_EQ(a.config.nranks, b.config.nranks);
  EXPECT_EQ(a.config.iterations, b.config.iterations);
  EXPECT_EQ(a.config.seed, b.config.seed);
  EXPECT_EQ(a.config.capture_trace, b.config.capture_trace);
  EXPECT_EQ(a.config.engine, b.config.engine);
  EXPECT_EQ(a.config.sched_seed, b.config.sched_seed);
  EXPECT_TRUE(a.config.smp == b.config.smp);  // SmpConfig operator==
  if (timings) {
    EXPECT_EQ(a.wall_seconds, b.wall_seconds);
  }
  expect_profile_eq(a.steady, b.steady, "steady", timings);
  expect_profile_eq(a.all_regions, b.all_regions, "all_regions", timings);
  expect_graph_eq(a.comm_graph, b.comm_graph, "comm_graph");
  expect_graph_eq(a.comm_graph_all, b.comm_graph_all, "comm_graph_all");
  EXPECT_EQ(a.trace.nranks(), b.trace.nranks());
  EXPECT_EQ(a.trace.region_names(), b.trace.region_names());
  EXPECT_EQ(a.trace.events(), b.trace.events());  // CommEvent operator==
  expect_smp_eq(a.smp, b.smp);
}

analysis::ExperimentResult roundtrip(const analysis::ExperimentResult& r) {
  Encoder enc;
  encode_result(enc, r);
  Decoder dec(enc.bytes());
  return decode_result(dec);
}

// --- cache key -------------------------------------------------------------

TEST(StoreKey, IdenticalConfigsShareOneKey) {
  EXPECT_EQ(config_key(base_config()), config_key(base_config()));
}

TEST(StoreKey, GoldenKeyIsStableAcrossSessions) {
  // Pinned value of config_key(base_config()). If this fails you changed
  // the canonical encoding (field list, order, widths, or the hash) —
  // which is fine, but you MUST bump store::kFormatVersion so old cache
  // entries invalidate instead of colliding, then re-pin this constant.
  // (Format v2 appended the SMP fields and artifacts.)
  EXPECT_EQ(config_key(base_config()), UINT64_C(0x5db6c1a505eb50a9));
}

TEST(StoreKey, EveryConfigFieldPerturbsTheKey) {
  using Config = analysis::ExperimentConfig;
  const std::uint64_t base = config_key(base_config());
  const std::vector<
      std::pair<const char*, std::function<void(Config&)>>>
      perturbations{
          {"app", [](Config& c) { c.app = "gtc"; }},
          {"nranks", [](Config& c) { c.nranks = 128; }},
          {"iterations", [](Config& c) { c.iterations = 3; }},
          {"seed", [](Config& c) { c.seed = 2; }},
          {"capture_trace", [](Config& c) { c.capture_trace = false; }},
          {"engine",
           [](Config& c) { c.engine = mpisim::EngineKind::kFibers; }},
          {"sched_seed", [](Config& c) { c.sched_seed = 99; }},
          {"smp_cores_per_node",
           [](Config& c) { c.smp.cores_per_node = 4; }},
          {"smp_packing",
           [](Config& c) { c.smp.packing = core::SmpPacking::kAffinity; }},
      };
  for (const auto& [name, perturb] : perturbations) {
    Config c = base_config();
    perturb(c);
    EXPECT_NE(config_key(c), base) << "field `" << name
                                   << "` does not reach the cache key";
  }
}

TEST(StoreKey, ConfigEncodingIsCanonical) {
  // Two encodes of the same config must produce identical bytes — the key
  // is a hash of this stream, so any nondeterminism here breaks caching.
  Encoder a, b;
  encode_config(a, base_config());
  encode_config(b, base_config());
  EXPECT_EQ(a.bytes(), b.bytes());
}

// --- codec round-trips -----------------------------------------------------

TEST(StoreCodec, ConfigRoundTripsLosslessly) {
  auto c = base_config();
  c.app = "paratec";
  c.iterations = 5;
  c.seed = 42;
  c.capture_trace = false;
  c.engine = mpisim::EngineKind::kFibers;
  c.sched_seed = 7;
  Encoder enc;
  encode_config(enc, c);
  Decoder dec(enc.bytes());
  const auto back = decode_config(dec);
  EXPECT_TRUE(dec.done());
  EXPECT_EQ(back.app, c.app);
  EXPECT_EQ(back.nranks, c.nranks);
  EXPECT_EQ(back.iterations, c.iterations);
  EXPECT_EQ(back.seed, c.seed);
  EXPECT_EQ(back.capture_trace, c.capture_trace);
  EXPECT_EQ(back.engine, c.engine);
  EXPECT_EQ(back.sched_seed, c.sched_seed);
}

TEST(StoreCodec, ResultRoundTripsForAllSixAppsAtP64) {
  // The paper's full application set at the paper's base concurrency:
  // decode(encode(r)) must reproduce every field — profiles (counts,
  // times, histograms, per-destination maps), both graphs, and the full
  // event trace.
  for (const char* app :
       {"cactus", "gtc", "lbmhd", "superlu", "pmemd", "paratec"}) {
    auto cfg = base_config();
    cfg.app = app;
    cfg.engine = test_engine();
    const auto r = analysis::run_experiment(cfg);
    SCOPED_TRACE(app);
    expect_result_eq(r, roundtrip(r));
  }
}

TEST(StoreCodec, SmpResultRoundTrips) {
  // A result carrying a nontrivial SMP packing (multi-occupancy nodes,
  // nonzero backplane bytes, a real node graph) must survive the codec
  // bit-for-bit — including the node_of_task map and ProvisionStats.
  for (const core::SmpPacking packing :
       {core::SmpPacking::kRankOrder, core::SmpPacking::kAffinity}) {
    auto cfg = base_config();
    cfg.nranks = 16;
    cfg.engine = test_engine();
    cfg.smp = {4, packing};
    const auto r = analysis::run_experiment(cfg);
    SCOPED_TRACE(core::packing_name(packing));
    EXPECT_EQ(r.smp.num_nodes, 4);
    EXPECT_GT(r.smp.backplane_bytes, 0u);
    expect_result_eq(r, roundtrip(r));
  }
}

TEST(StoreCodec, SmpTaskMapOutOfRangeRejected) {
  auto cfg = base_config();
  cfg.nranks = 8;
  cfg.capture_trace = false;
  cfg.engine = test_engine();
  cfg.smp = {2, core::SmpPacking::kRankOrder};
  auto r = analysis::run_experiment(cfg);
  r.smp.node_of_task.back() = r.smp.num_nodes;  // one past the node range
  Encoder enc;
  encode_result(enc, r);
  Decoder dec(enc.bytes());
  EXPECT_THROW((void)decode_result(dec), Error);
}

TEST(StoreCodec, TracelessResultRoundTrips) {
  auto cfg = base_config();
  cfg.nranks = 8;
  cfg.capture_trace = false;
  cfg.engine = test_engine();
  const auto r = analysis::run_experiment(cfg);
  EXPECT_TRUE(r.trace.events().empty());
  expect_result_eq(r, roundtrip(r));
}

TEST(StoreCodec, TruncatedPayloadThrowsCleanError) {
  auto cfg = base_config();
  cfg.nranks = 8;
  cfg.engine = test_engine();
  Encoder enc;
  encode_result(enc, analysis::run_experiment(cfg));
  const auto full = enc.bytes();
  // Every proper prefix must fail with hfast::Error — bounds checks fire
  // before any length field is trusted. Stride keeps the test fast.
  for (std::size_t n = 0; n < full.size(); n += 97) {
    Decoder dec(std::span<const std::byte>(full.data(), n));
    EXPECT_THROW((void)decode_result(dec), Error) << "prefix " << n;
  }
}

TEST(StoreCodec, TrailingBytesRejected) {
  Encoder enc;
  encode_config(enc, base_config());
  enc.u8(0);  // one stray byte after a valid config is not a valid result
  Decoder dec(enc.bytes());
  EXPECT_THROW((void)decode_result(dec), Error);
}

// --- store persistence and corruption --------------------------------------

class StoreFixture : public ::testing::Test {
 protected:
  /// One small experiment shared by every corruption test in this binary.
  static const analysis::ExperimentResult& small_result() {
    static const analysis::ExperimentResult r = [] {
      auto cfg = base_config();
      cfg.nranks = 8;
      cfg.engine = test_engine();
      return analysis::run_experiment(cfg);
    }();
    return r;
  }
};

TEST_F(StoreFixture, SaveLoadRoundTripsThroughDisk) {
  const fs::path dir = temp_store("save_load");
  ResultStore st(dir);
  const auto& r = small_result();

  EXPECT_FALSE(st.load(r.config).has_value());  // cold probe
  ASSERT_TRUE(st.save(r));
  const auto back = st.load(r.config);
  ASSERT_TRUE(back.has_value());
  expect_result_eq(r, *back);

  const auto c = st.counters();
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.stores, 1u);
  EXPECT_EQ(c.corrupt_misses, 0u);

  const auto entries = st.list();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_TRUE(entries[0].valid);
  EXPECT_EQ(entries[0].key, ResultStore::key(r.config));
  ASSERT_TRUE(entries[0].config.has_value());
  EXPECT_EQ(entries[0].config->app, r.config.app);

  EXPECT_TRUE(st.evict(ResultStore::key(r.config)));
  EXPECT_FALSE(st.load(r.config).has_value());
  EXPECT_EQ(st.stats().entries, 0u);
  fs::remove_all(dir);
}

TEST_F(StoreFixture, TruncatedEntryIsACleanMiss) {
  const fs::path dir = temp_store("truncated");
  ResultStore st(dir);
  const auto& r = small_result();
  ASSERT_TRUE(st.save(r));
  const fs::path path = st.entry_path(r.config);

  // Truncate to half: tears the payload mid-stream.
  const auto half = fs::file_size(path) / 2;
  fs::resize_file(path, half);

  EXPECT_FALSE(st.load(r.config).has_value());
  const auto c = st.counters();
  EXPECT_EQ(c.corrupt_misses, 1u);
  EXPECT_EQ(c.hits, 0u);

  // The store heals by re-saving; the sweep would recompute and do this.
  ASSERT_TRUE(st.save(r));
  EXPECT_TRUE(st.load(r.config).has_value());
  fs::remove_all(dir);
}

TEST_F(StoreFixture, FlippedByteIsACleanMiss) {
  const fs::path dir = temp_store("flipped");
  ResultStore st(dir);
  const auto& r = small_result();
  ASSERT_TRUE(st.save(r));
  const fs::path path = st.entry_path(r.config);

  // Flip one payload byte mid-file: the CRC32 footer must catch it.
  const auto size = static_cast<std::streamoff>(fs::file_size(path));
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekg(size / 2);
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  f.seekp(size / 2);
  f.write(&byte, 1);
  f.close();

  EXPECT_FALSE(st.load(r.config).has_value());
  EXPECT_EQ(st.counters().corrupt_misses, 1u);

  const auto report = st.verify(/*evict_corrupt=*/true);
  EXPECT_EQ(report.checked, 1u);
  ASSERT_EQ(report.corrupt.size(), 1u);
  EXPECT_EQ(report.evicted, 1u);
  EXPECT_FALSE(fs::exists(path));
  fs::remove_all(dir);
}

TEST_F(StoreFixture, WrongFormatVersionIsACleanMiss) {
  const fs::path dir = temp_store("version");
  ResultStore st(dir);
  const auto& r = small_result();
  ASSERT_TRUE(st.save(r));
  const fs::path path = st.entry_path(r.config);

  // Overwrite the u32 format version (bytes 4..8, after the magic) with a
  // future version: the entry must read as stale, not be misparsed.
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekp(4);
  const char future[4] = {'\xff', '\xff', '\xff', '\xff'};
  f.write(future, 4);
  f.close();

  EXPECT_FALSE(st.load(r.config).has_value());
  EXPECT_EQ(st.counters().corrupt_misses, 1u);

  const auto entries = st.list();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_FALSE(entries[0].valid);
  EXPECT_FALSE(entries[0].error.empty());
  fs::remove_all(dir);
}

TEST_F(StoreFixture, GarbageFileNeverCrashesTheIndex) {
  const fs::path dir = temp_store("garbage");
  ResultStore st(dir);
  // A file with the right name shape but arbitrary junk inside.
  {
    std::ofstream f(dir / ResultStore::entry_filename(0xdeadbeef));
    f << "this is not an hfast store entry at all";
  }
  const auto entries = st.list();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_FALSE(entries[0].valid);
  const auto report = st.verify(/*evict_corrupt=*/true);
  EXPECT_EQ(report.evicted, 1u);
  EXPECT_EQ(st.stats().entries, 0u);
  fs::remove_all(dir);
}

TEST_F(StoreFixture, OrphanedTempFilesAreSweptOnOpen) {
  const fs::path dir = temp_store("orphan_tmp");
  fs::create_directories(dir);
  {
    std::ofstream f(dir / ".tmp-0123456789abcdef-1");
    f << "torn write from a crashed sweep";
  }
  ResultStore st(dir);  // constructor sweeps leftovers
  EXPECT_FALSE(fs::exists(dir / ".tmp-0123456789abcdef-1"));
  EXPECT_EQ(st.stats().entries, 0u);
  fs::remove_all(dir);
}

// --- batch integration: the resume story ------------------------------------
// Named BatchRunnerStore so the TSan job's `-R ...|BatchRunner|...` filter
// exercises concurrent save() from sweep workers.

TEST(BatchRunnerStore, ResumeRunsOnlyMissingJobs) {
  const fs::path dir = temp_store("batch_resume");
  auto configs = analysis::sweep_configs({"cactus"}, {8, 16}, {1, 7});
  for (auto& c : configs) c.engine = test_engine();
  ASSERT_EQ(configs.size(), 4u);

  ResultStore st(dir);
  const analysis::BatchRunner runner({.result_store = &st});

  // Cold sweep: everything computes, everything persists.
  const auto cold = runner.run(configs);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold.cache.hits, 0u);
  EXPECT_EQ(cold.cache.misses, 4u);
  EXPECT_EQ(cold.cache.stores, 4u);
  EXPECT_EQ(st.stats().valid, 4u);

  // Warm sweep: pure cache replay, nothing recomputes.
  const auto warm = runner.run(configs);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm.cache.hits, 4u);
  EXPECT_EQ(warm.cache.misses, 0u);
  EXPECT_EQ(warm.cache.stores, 0u);

  // Kill half the store — the "sweep died midway" state — and re-run:
  // exactly the missing half recomputes, and every result matches the
  // cold sweep field for field.
  ASSERT_TRUE(st.evict(ResultStore::key(configs[1])));
  ASSERT_TRUE(st.evict(ResultStore::key(configs[3])));
  const auto resumed = runner.run(configs);
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(resumed.cache.hits, 2u);
  EXPECT_EQ(resumed.cache.misses, 2u);
  EXPECT_EQ(resumed.cache.stores, 2u);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    ASSERT_TRUE(resumed.results[i].has_value()) << "job " << i;
    SCOPED_TRACE("job " + std::to_string(i));
    // Jobs 0/2 are cache hits: byte-identical, measured times included.
    // Jobs 1/3 recomputed: every modeled quantity must still match (cactus
    // is deterministic — no wildcard receives), but their wall-clock
    // measurements are fresh.
    const bool was_hit = (i == 0 || i == 2);
    expect_result_eq(*cold.results[i], *resumed.results[i],
                     /*timings=*/was_hit);
  }
  fs::remove_all(dir);
}

TEST(BatchRunnerStore, FailingJobsBypassTheStore) {
  const fs::path dir = temp_store("batch_errors");
  std::vector<analysis::ExperimentConfig> configs(2);
  configs[0].app = "cactus";
  configs[0].nranks = 8;
  configs[0].engine = test_engine();
  configs[1].app = "no-such-app";
  configs[1].nranks = 8;

  ResultStore st(dir);
  const auto batch = analysis::BatchRunner({.result_store = &st}).run(configs);
  EXPECT_FALSE(batch.ok());
  ASSERT_EQ(batch.errors.size(), 1u);
  EXPECT_EQ(batch.errors[0].index, 1u);
  EXPECT_EQ(batch.cache.stores, 1u);  // only the good job persisted
  EXPECT_EQ(st.stats().valid, 1u);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace hfast::store
