#include <gtest/gtest.h>

#include "hfast/util/assert.hpp"

#include <bit>

#include "hfast/topo/fcn.hpp"
#include "hfast/topo/hypercube.hpp"
#include "hfast/topo/mesh.hpp"

namespace hfast::topo {
namespace {

TEST(MeshTorus, CoordinateRoundTrip) {
  MeshTorus m({4, 3, 2}, false);
  EXPECT_EQ(m.num_nodes(), 24);
  for (Node u = 0; u < m.num_nodes(); ++u) {
    EXPECT_EQ(m.node_at(m.coords(u)), u);
  }
}

TEST(MeshTorus, MeshNeighborsRespectBoundaries) {
  MeshTorus m({3, 3}, false);
  // Corner node 0 = (0,0): neighbors (0,1)=1 and (1,0)=3.
  EXPECT_EQ(m.neighbors(0), (std::vector<Node>{1, 3}));
  // Center node 4 = (1,1): four neighbors.
  EXPECT_EQ(m.neighbors(4), (std::vector<Node>{1, 3, 5, 7}));
}

TEST(MeshTorus, TorusWrapsAround) {
  MeshTorus t({4}, true);
  EXPECT_EQ(t.neighbors(0), (std::vector<Node>{1, 3}));
  EXPECT_EQ(t.distance(0, 3), 1);  // wrap link
  MeshTorus m({4}, false);
  EXPECT_EQ(m.distance(0, 3), 3);
}

TEST(MeshTorus, TwoExtentDimensionHasNoDuplicateWrapLink) {
  MeshTorus t({2, 2}, true);
  for (Node u = 0; u < 4; ++u) {
    const auto n = t.neighbors(u);
    EXPECT_EQ(n.size(), 2u) << "node " << u;
  }
}

TEST(MeshTorus, DistanceMatchesRouteLength) {
  MeshTorus t({4, 4, 4}, true);
  for (Node u : {0, 13, 37, 63}) {
    for (Node v : {0, 5, 21, 62}) {
      const auto path = t.route(u, v);
      EXPECT_EQ(static_cast<int>(path.size()) - 1, t.distance(u, v));
      EXPECT_EQ(path.front(), u);
      EXPECT_EQ(path.back(), v);
      // Each step is a unit move between neighbors.
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        EXPECT_EQ(t.distance(path[i], path[i + 1]), 1);
      }
    }
  }
}

TEST(MeshTorus, BalancedDims) {
  EXPECT_EQ(MeshTorus::balanced_dims(64, 3), (std::vector<int>{4, 4, 4}));
  EXPECT_EQ(MeshTorus::balanced_dims(256, 3), (std::vector<int>{8, 8, 4}));
  EXPECT_EQ(MeshTorus::balanced_dims(12, 2), (std::vector<int>{4, 3}));
  EXPECT_EQ(MeshTorus::balanced_dims(7, 3), (std::vector<int>{7, 1, 1}));
}

TEST(MeshTorus, ValidatesInput) {
  EXPECT_THROW(MeshTorus({}, false), ContractViolation);
  EXPECT_THROW(MeshTorus({0}, false), ContractViolation);
}

TEST(Hypercube, NeighborsDifferByOneBit) {
  Hypercube h(4);
  EXPECT_EQ(h.num_nodes(), 16);
  const auto n = h.neighbors(0b0101);
  ASSERT_EQ(n.size(), 4u);
  for (Node v : n) {
    EXPECT_EQ(std::popcount(static_cast<unsigned>(v ^ 0b0101)), 1);
  }
}

TEST(Hypercube, DistanceIsHamming) {
  Hypercube h(5);
  EXPECT_EQ(h.distance(0, 31), 5);
  EXPECT_EQ(h.distance(0b10101, 0b10101), 0);
  EXPECT_EQ(h.distance(0b10101, 0b10001), 1);
}

TEST(Hypercube, RouteFixesBitsInOrder) {
  Hypercube h(4);
  const auto path = h.route(0b0000, 0b1011);
  ASSERT_EQ(path.size(), 4u);  // 3 bit flips + start
  EXPECT_EQ(path.front(), 0);
  EXPECT_EQ(path.back(), 0b1011);
}

TEST(FullyConnected, EverythingOneHop) {
  FullyConnected f(10);
  EXPECT_EQ(f.neighbors(3).size(), 9u);
  EXPECT_EQ(f.distance(2, 9), 1);
  EXPECT_EQ(f.distance(4, 4), 0);
  EXPECT_EQ(f.route(1, 8), (std::vector<Node>{1, 8}));
  EXPECT_EQ(f.max_degree(), 9);
  EXPECT_EQ(f.num_links(), 90u);
}

TEST(DirectTopology, GenericBfsAgreesWithAnalyticDistance) {
  // Exercise the base-class BFS by comparing against the torus formula,
  // via a wrapper that only exposes the wiring (neighbors).
  class BfsOnly final : public DirectTopology {
   public:
    explicit BfsOnly(MeshTorus inner) : inner_(std::move(inner)) {}
    std::string name() const override { return "bfs-wrapper"; }
    int num_nodes() const override { return inner_.num_nodes(); }
    std::vector<Node> neighbors(Node u) const override {
      return inner_.neighbors(u);
    }

   private:
    MeshTorus inner_;
  };
  BfsOnly bfs(MeshTorus({4, 4}, true));
  MeshTorus exact({4, 4}, true);
  for (Node u = 0; u < 16; ++u) {
    for (Node v = 0; v < 16; ++v) {
      EXPECT_EQ(bfs.distance(u, v), exact.distance(u, v))
          << u << "->" << v;
    }
  }
}

}  // namespace
}  // namespace hfast::topo
