/// Integration tests asserting the paper's Table 3 reductions end-to-end:
/// runtime -> IPM profile -> communication graph -> TDC with the 2 KB
/// threshold, at both published concurrencies. These are the headline
/// reproduction checks (tolerances noted inline; see EXPERIMENTS.md).

#include <gtest/gtest.h>

#include "hfast/analysis/experiment.hpp"
#include "hfast/analysis/paper_tables.hpp"
#include "hfast/core/classify.hpp"

namespace hfast::analysis {
namespace {

struct Expected {
  const char* app;
  int procs;
  double ptp_pct;       // paper %PTP calls
  double ptp_pct_tol;
  int tdc_max;          // paper TDC@2KB max
  double tdc_avg;       // paper TDC@2KB avg
  double tdc_avg_tol;
};

class Table3Test : public ::testing::TestWithParam<Expected> {};

TEST_P(Table3Test, MatchesPaperReductions) {
  const Expected e = GetParam();
  const auto r = run_experiment(e.app, e.procs);
  const auto row = table3_row(r);
  EXPECT_NEAR(row.ptp_call_percent, e.ptp_pct, e.ptp_pct_tol) << e.app;
  EXPECT_EQ(row.tdc_max_at_cutoff, e.tdc_max) << e.app;
  EXPECT_NEAR(row.tdc_avg_at_cutoff, e.tdc_avg, e.tdc_avg_tol) << e.app;
}

INSTANTIATE_TEST_SUITE_P(
    PaperTable3, Table3Test,
    ::testing::Values(
        // app, P, %PTP, tol, TDC max, TDC avg, tol
        Expected{"gtc", 64, 42.0, 6.0, 2, 2.0, 0.1},
        Expected{"gtc", 256, 40.2, 13.0, 10, 4.0, 0.8},
        Expected{"cactus", 64, 99.4, 0.5, 6, 5.0, 0.6},
        Expected{"cactus", 256, 99.5, 0.5, 6, 5.0, 0.2},
        Expected{"lbmhd", 64, 99.8, 0.8, 12, 11.5, 0.6},
        Expected{"lbmhd", 256, 99.9, 0.8, 12, 11.8, 0.3},
        Expected{"superlu", 64, 89.8, 5.5, 14, 14.0, 0.1},
        Expected{"superlu", 256, 92.8, 2.5, 30, 30.0, 0.1},
        Expected{"pmemd", 64, 99.1, 0.5, 63, 63.0, 0.1},
        Expected{"pmemd", 256, 98.6, 1.3, 255, 55.0, 1.5},
        Expected{"paratec", 64, 99.5, 0.6, 63, 63.0, 0.1},
        Expected{"paratec", 256, 99.9, 0.2, 255, 255.0, 0.1}),
    [](const ::testing::TestParamInfo<Expected>& info) {
      return std::string(info.param.app) + "_P" +
             std::to_string(info.param.procs);
    });

TEST(PaperIntegration, MedianBufferSizes) {
  // Table 3 median buffer columns (values as printed in the paper; ours
  // match the magnitude and class — exact bytes noted in EXPERIMENTS.md).
  const auto gtc = run_experiment("gtc", 64);
  EXPECT_EQ(gtc.steady.median_ptp_buffer(), 128u * 1024u);   // paper: 128k
  EXPECT_EQ(gtc.steady.median_collective_buffer(), 100u);    // paper: 100

  const auto cactus = run_experiment("cactus", 64);
  EXPECT_NEAR(static_cast<double>(cactus.steady.median_ptp_buffer()),
              299.0 * 1024.0, 8 * 1024.0);                   // paper: 299k
  EXPECT_EQ(cactus.steady.median_collective_buffer(), 8u);   // paper: 8

  const auto superlu = run_experiment("superlu", 64);
  EXPECT_EQ(superlu.steady.median_ptp_buffer(), 64u);        // paper: 64
  EXPECT_EQ(superlu.steady.median_collective_buffer(), 24u); // paper: 24

  const auto paratec = run_experiment("paratec", 64);
  EXPECT_EQ(paratec.steady.median_ptp_buffer(), 64u);        // paper: 64b
}

TEST(PaperIntegration, FcnUtilizationColumn) {
  // util = avg TDC@2KB / (P-1): 3% gtc, ~9% cactus, 19% lbmhd, 22% superlu
  // at P=64 (paper values; cactus lands ~7% because our avg is 4.5).
  const auto gtc = run_experiment("gtc", 64);
  EXPECT_NEAR(table3_row(gtc).fcn_utilization, 0.03, 0.005);
  const auto lbmhd = run_experiment("lbmhd", 64);
  EXPECT_NEAR(table3_row(lbmhd).fcn_utilization, 0.19, 0.01);
  const auto superlu = run_experiment("superlu", 64);
  EXPECT_NEAR(table3_row(superlu).fcn_utilization, 0.22, 0.01);
  const auto pmemd = run_experiment("pmemd", 64);
  EXPECT_NEAR(table3_row(pmemd).fcn_utilization, 1.0, 0.001);
}

TEST(PaperIntegration, GtcRawMaxTdcIs17AtP256) {
  // Figure 5: raw (no cutoff) max TDC ~17, falling to 10 at the 2 KB cutoff.
  const auto gtc = run_experiment("gtc", 256);
  EXPECT_EQ(graph::tdc(gtc.comm_graph, 0).max, 17);
  EXPECT_EQ(graph::tdc(gtc.comm_graph, graph::kBdpCutoffBytes).max, 10);
}

TEST(PaperIntegration, SuperluThresholdCollapse) {
  // Figure 8: raw connectivity = P, collapsing to 30 at 2 KB (P=256).
  const auto r = run_experiment("superlu", 256);
  EXPECT_EQ(graph::tdc(r.comm_graph, 0).max, 255);
  EXPECT_EQ(graph::tdc(r.comm_graph, graph::kBdpCutoffBytes).max, 30);
}

TEST(PaperIntegration, ParatecInsensitiveUntil32K) {
  // Figure 10: only a >32 KB cutoff reduces PARATEC's connectivity.
  const auto r = run_experiment("paratec", 64);
  EXPECT_EQ(graph::tdc(r.comm_graph, 32 * 1024).max, 63);
  EXPECT_LT(graph::tdc(r.comm_graph, 64 * 1024).max, 63);
}

TEST(PaperIntegration, CollectiveBuffersMostlyUnder2K) {
  // Figure 3: ~90% of collective payloads at or below the 2 KB BDP.
  util::LogHistogram all;
  for (const char* app :
       {"cactus", "gtc", "lbmhd", "superlu", "pmemd", "paratec"}) {
    const auto r = run_experiment(app, 64);
    all.merge(r.steady.collective_buffers());
  }
  EXPECT_GE(all.percent_at_or_below(2048), 85.0);
  EXPECT_LT(all.percent_at_or_below(2048), 100.0);  // PMEMD allgather tail
  EXPECT_GE(all.percent_at_or_below(100), 45.0);    // ~half under 100 bytes
}

TEST(PaperIntegration, ClassificationMatchesSection52) {
  using core::CommCase;
  const auto classify_app = [](const char* app) {
    const auto s = run_experiment(app, 64);
    const auto l = run_experiment(app, 256);
    return core::classify(s.comm_graph, l.comm_graph).comm_case;
  };
  EXPECT_EQ(classify_app("cactus"), CommCase::kCaseI);
  EXPECT_EQ(classify_app("lbmhd"), CommCase::kCaseII);
  EXPECT_EQ(classify_app("gtc"), CommCase::kCaseIII);
  EXPECT_EQ(classify_app("superlu"), CommCase::kCaseIII);
  EXPECT_EQ(classify_app("pmemd"), CommCase::kCaseIII);
  EXPECT_EQ(classify_app("paratec"), CommCase::kCaseIV);
}

}  // namespace
}  // namespace hfast::analysis
