#include <gtest/gtest.h>

#include "hfast/util/assert.hpp"

#include <array>
#include <atomic>
#include <set>

#include "hfast/mpisim/runtime.hpp"

namespace hfast::mpisim {
namespace {

RuntimeConfig small_cfg(int nranks) {
  RuntimeConfig cfg;
  cfg.nranks = nranks;
  cfg.watchdog = std::chrono::milliseconds(5000);
  return cfg;
}

TEST(Runtime, RunsEveryRankToCompletion) {
  Runtime rt(small_cfg(8));
  std::atomic<int> count{0};
  rt.run([&count](RankContext& ctx) {
    (void)ctx;
    ++count;
  });
  EXPECT_EQ(count.load(), 8);
}

TEST(Runtime, PingPongDeliversBytes) {
  Runtime rt(small_cfg(2));
  rt.run([](RankContext& ctx) {
    if (ctx.rank() == 0) {
      ctx.send(1, 4096, /*tag=*/7);
      Message m = ctx.recv(1, 128, /*tag=*/8);
      EXPECT_EQ(m.bytes, 128u);
      EXPECT_EQ(m.src_world, 1);
      EXPECT_EQ(m.tag, 8);
    } else {
      Message m = ctx.recv(0, 4096, /*tag=*/7);
      EXPECT_EQ(m.bytes, 4096u);
      ctx.send(0, 128, /*tag=*/8);
    }
  });
}

TEST(Runtime, PayloadIntegrityWhenCaptured) {
  auto cfg = small_cfg(2);
  cfg.capture_payload = true;
  Runtime rt(cfg);
  rt.run([](RankContext& ctx) {
    if (ctx.rank() == 0) {
      std::vector<std::byte> data(256);
      for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<std::byte>(i * 3);
      }
      ctx.send_bytes(ctx.world(), 1, data, /*tag=*/1);
    } else {
      Message m = ctx.recv(0, 256, /*tag=*/1);
      ASSERT_NE(m.payload, nullptr);
      ASSERT_EQ(m.payload->size(), 256u);
      for (std::size_t i = 0; i < 256; ++i) {
        EXPECT_EQ((*m.payload)[i], static_cast<std::byte>(i * 3));
      }
    }
  });
}

TEST(Runtime, TagMatchingIsSelective) {
  Runtime rt(small_cfg(2));
  rt.run([](RankContext& ctx) {
    if (ctx.rank() == 0) {
      ctx.send(1, 10, /*tag=*/1);
      ctx.send(1, 20, /*tag=*/2);
    } else {
      // Receive out of send order by tag.
      Message second = ctx.recv(0, 20, /*tag=*/2);
      Message first = ctx.recv(0, 10, /*tag=*/1);
      EXPECT_EQ(second.bytes, 20u);
      EXPECT_EQ(first.bytes, 10u);
    }
  });
}

TEST(Runtime, ChannelOrderIsFifoPerTag) {
  Runtime rt(small_cfg(2));
  rt.run([](RankContext& ctx) {
    if (ctx.rank() == 0) {
      for (int i = 0; i < 5; ++i) ctx.send(1, 100 + static_cast<std::uint64_t>(i), 0);
    } else {
      for (int i = 0; i < 5; ++i) {
        Message m = ctx.recv(0, 0, /*tag=*/0);
        EXPECT_EQ(m.bytes, 100u + static_cast<std::uint64_t>(i));
      }
    }
  });
}

TEST(Runtime, AnySourceReceivesFromAll) {
  Runtime rt(small_cfg(4));
  rt.run([](RankContext& ctx) {
    if (ctx.rank() == 0) {
      std::uint64_t total = 0;
      for (int i = 0; i < 3; ++i) {
        total += ctx.recv(kAnySource, 0, kAnyTag).bytes;
      }
      EXPECT_EQ(total, 1u + 2u + 3u);
    } else {
      ctx.send(0, static_cast<std::uint64_t>(ctx.rank()), ctx.rank());
    }
  });
}

TEST(Runtime, NonblockingWaitAllWaitAny) {
  Runtime rt(small_cfg(2));
  rt.run([](RankContext& ctx) {
    if (ctx.rank() == 0) {
      std::vector<Request> reqs;
      reqs.push_back(ctx.irecv(1, 64, 1));
      reqs.push_back(ctx.irecv(1, 64, 2));
      reqs.push_back(ctx.isend(1, 64, 3));
      // waitany must return each request exactly once.
      std::set<std::size_t> seen;
      for (int i = 0; i < 3; ++i) seen.insert(ctx.waitany(reqs));
      EXPECT_EQ(seen.size(), 3u);
      EXPECT_THROW(ctx.waitany(reqs), ContractViolation);  // all consumed
    } else {
      ctx.send(0, 64, 1);
      ctx.send(0, 64, 2);
      (void)ctx.recv(0, 64, 3);
    }
  });
}

TEST(Runtime, WaitOnConsumedRequestIsNoOp) {
  Runtime rt(small_cfg(2));
  rt.run([](RankContext& ctx) {
    if (ctx.rank() == 0) {
      Request r = ctx.irecv(1, 8, 0);
      ctx.wait(r);
      ctx.wait(r);  // MPI_REQUEST_NULL semantics: no error, no re-match
    } else {
      ctx.send(0, 8, 0);
    }
  });
}

TEST(Runtime, SendrecvExchanges) {
  Runtime rt(small_cfg(4));
  rt.run([](RankContext& ctx) {
    const int p = ctx.nranks();
    const int right = (ctx.rank() + 1) % p;
    const int left = (ctx.rank() + p - 1) % p;
    Message in = ctx.sendrecv(right, 500, left, 500, /*tag=*/0);
    EXPECT_EQ(in.src_world, left);
    EXPECT_EQ(in.bytes, 500u);
  });
}

TEST(Runtime, DeadlockDetectedByWatchdog) {
  auto cfg = small_cfg(2);
  cfg.watchdog = std::chrono::milliseconds(200);
  Runtime rt(cfg);
  EXPECT_THROW(rt.run([](RankContext& ctx) {
                 if (ctx.rank() == 0) {
                   (void)ctx.recv(1, 8, /*tag=*/42);  // never sent
                 }
               }),
               Error);
}

TEST(Runtime, LeakedMessagesDetected) {
  Runtime rt(small_cfg(2));
  EXPECT_THROW(rt.run([](RankContext& ctx) {
                 if (ctx.rank() == 0) ctx.send(1, 8, 0);  // never received
               }),
               Error);
}

TEST(Runtime, LeakCheckCanBeDisabled) {
  auto cfg = small_cfg(2);
  cfg.check_leaks = false;
  Runtime rt(cfg);
  EXPECT_NO_THROW(rt.run([](RankContext& ctx) {
    if (ctx.rank() == 0) ctx.send(1, 8, 0);
  }));
}

TEST(Runtime, RankExceptionPropagatesAndUnwindsOthers) {
  Runtime rt(small_cfg(4));
  try {
    rt.run([](RankContext& ctx) {
      if (ctx.rank() == 2) throw Error("boom on rank 2");
      // Other ranks block forever; the abort must wake them.
      (void)ctx.recv(kAnySource, 0, 999);
    });
    FAIL() << "expected exception";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
  }
}

TEST(Runtime, AbortUnblocksPeerPromptly) {
  // Regression for the interrupt() lost-wakeup race: rank 0 throws while
  // rank 1 is (or is about to be) parked in a blocking receive. The abort
  // must unblock rank 1 well before the watchdog — with the race, the
  // notify could land between rank 1's abort check and its wait, stalling
  // the job for the full watchdog interval.
  auto cfg = small_cfg(2);
  cfg.watchdog = std::chrono::milliseconds(20000);
  Runtime rt(cfg);
  for (int round = 0; round < 20; ++round) {
    const auto start = std::chrono::steady_clock::now();
    EXPECT_THROW(rt.run([](RankContext& ctx) {
                   if (ctx.rank() == 0) throw Error("rank 0 failed");
                   (void)ctx.recv(0, 8, /*tag=*/1);  // never satisfied
                 }),
                 Error);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    // Bounded wait: promptly unblocked, not watchdog-expired.
    EXPECT_LT(elapsed, std::chrono::milliseconds(5000));
  }
}

TEST(Runtime, SendrecvOversizedMessageIsTruncationError) {
  // MPI truncation semantics: a matched message larger than the posted
  // receive is an error, not a silent clip.
  Runtime rt(small_cfg(2));
  try {
    rt.run([](RankContext& ctx) {
      const Rank peer = 1 - ctx.rank();
      if (ctx.rank() == 0) {
        // Sends 4096 but posts only a 64-byte receive for the 4096-byte
        // reply coming back.
        (void)ctx.sendrecv(peer, 4096, peer, 64, /*tag=*/0);
      } else {
        (void)ctx.sendrecv(peer, 4096, peer, 4096, /*tag=*/0);
      }
    });
    FAIL() << "expected truncation error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("truncation"), std::string::npos);
  }
}

TEST(Runtime, SendrecvExactFitIsNotTruncation) {
  Runtime rt(small_cfg(2));
  rt.run([](RankContext& ctx) {
    const Rank peer = 1 - ctx.rank();
    Message in = ctx.sendrecv(peer, 512, peer, 512, /*tag=*/3);
    EXPECT_EQ(in.bytes, 512u);
  });
}

TEST(Runtime, ReusableAcrossRuns) {
  Runtime rt(small_cfg(3));
  for (int round = 0; round < 3; ++round) {
    rt.run([](RankContext& ctx) {
      if (ctx.rank() == 0) {
        ctx.send(1, 8, 0);
      } else if (ctx.rank() == 1) {
        (void)ctx.recv(0, 8, 0);
      }
    });
  }
}

TEST(Runtime, RngStreamsDifferPerRankButAreStable) {
  Runtime rt(small_cfg(4));
  std::array<std::uint64_t, 4> first{};
  rt.run([&first](RankContext& ctx) {
    first[static_cast<std::size_t>(ctx.rank())] = ctx.rng()();
  });
  std::array<std::uint64_t, 4> second{};
  rt.run([&second](RankContext& ctx) {
    second[static_cast<std::size_t>(ctx.rank())] = ctx.rng()();
  });
  EXPECT_EQ(first, second);  // deterministic across runs
  EXPECT_NE(first[0], first[1]);
  EXPECT_NE(first[1], first[2]);
}

TEST(Runtime, InvalidConfigRejected) {
  RuntimeConfig cfg;
  cfg.nranks = 0;
  EXPECT_THROW(Runtime bad(cfg), ContractViolation);
  Runtime rt(small_cfg(2));
  EXPECT_THROW(rt.run(nullptr), ContractViolation);
}

TEST(Runtime, SendToInvalidRankIsContractViolation) {
  Runtime rt(small_cfg(2));
  EXPECT_THROW(rt.run([](RankContext& ctx) {
                 if (ctx.rank() == 0) ctx.send(5, 8, 0);
               }),
               ContractViolation);
}

TEST(Runtime, SplitPresizesDerivedCommBucketsOnMembers) {
  Runtime rt(small_cfg(6));
  rt.run([](RankContext& ctx) {
    const auto sub = ctx.split(ctx.world(), ctx.rank() % 2, ctx.rank());
    EXPECT_EQ(sub.size(), 3);
    // A quick exchange over the derived communicator proves the pre-sized
    // buckets actually carry traffic.
    if (sub.rank() == 0) {
      ctx.send(sub, 1, 64, /*tag=*/1);
    } else if (sub.rank() == 1) {
      (void)ctx.recv(sub, 0, 64, /*tag=*/1);
    }
    ctx.barrier();
  });
  // Split created comm ids 1 and 2, one per color (which color drew which
  // id depends on scheduling — the two group leaders race on the id
  // counter). allocate_comm_id pre-created the bucket arrays on every
  // member's mailbox at id-allocation time — and only on members.
  const int even_comm = rt.mailbox(0).has_comm_buckets(1) ? 1 : 2;
  const int odd_comm = 3 - even_comm;
  for (int r = 0; r < 6; ++r) {
    const int my_comm = (r % 2 == 0) ? even_comm : odd_comm;
    const int other_comm = 3 - my_comm;
    EXPECT_TRUE(rt.mailbox(r).has_comm_buckets(my_comm)) << "rank " << r;
    EXPECT_FALSE(rt.mailbox(r).has_comm_buckets(other_comm)) << "rank " << r;
  }
}

}  // namespace
}  // namespace hfast::mpisim
