/// Execution engines: the fiber engine must run unmodified RankPrograms to
/// the same reduced paper metrics as the threaded engine (exactly — not
/// statistically), be deterministic run-to-run at fixed seed including
/// wildcard-receive match order, diagnose deadlock and poll livelock with
/// the stuck rank identified, and open concurrencies (P=1024) the
/// thread-per-rank engine cannot reach.
///
/// Suite names deliberately avoid the TSan CI job's test filter: the fiber
/// engine is unsupported under ThreadSanitizer (swapcontext is opaque to
/// it), so every fiber test also skips itself when fibers_supported() is
/// false.

#include <gtest/gtest.h>

#include "hfast/util/assert.hpp"

#include <sstream>
#include <string>
#include <vector>

#include "hfast/analysis/batch.hpp"
#include "hfast/analysis/experiment.hpp"
#include "hfast/graph/tdc.hpp"
#include "hfast/mpisim/runtime.hpp"

namespace hfast {
namespace {

using mpisim::EngineKind;

constexpr const char* kAllApps[] = {"cactus", "gtc",   "lbmhd",
                                    "superlu", "pmemd", "paratec"};

mpisim::RuntimeConfig fiber_cfg(int nranks) {
  mpisim::RuntimeConfig cfg;
  cfg.nranks = nranks;
  cfg.engine = EngineKind::kFibers;
  cfg.watchdog = std::chrono::milliseconds(5000);
  return cfg;
}

/// Every reduced metric the paper's tables consume, serialized: call mix
/// (per call type), buffer-size histograms (exact raw maps), TDC with and
/// without the 2 KB cutoff, and the communication-graph totals. Engines
/// must agree on this byte for byte.
std::string metric_fingerprint(const analysis::ExperimentResult& r) {
  std::ostringstream os;
  os << r.config.app << "|P=" << r.config.nranks << "|seed=" << r.config.seed
     << '\n';
  os << "calls=" << r.steady.total_calls() << '/'
     << r.all_regions.total_calls() << '\n';
  for (int c = 0; c < mpisim::kNumCallTypes; ++c) {
    const auto call = static_cast<mpisim::CallType>(c);
    const auto n = r.steady.calls_of(call);
    if (n != 0) os << mpisim::call_name(call) << '=' << n << '\n';
  }
  const auto dump_hist = [&os](const char* name,
                               const util::LogHistogram& h) {
    os << name << ':';
    for (const auto& [size, count] : h.raw()) os << ' ' << size << 'x' << count;
    os << '\n';
  };
  dump_hist("ptp", r.steady.ptp_buffers());
  dump_hist("col", r.steady.collective_buffers());
  for (const std::uint64_t cutoff : {std::uint64_t{0}, graph::kBdpCutoffBytes}) {
    const auto t = graph::tdc(r.comm_graph, cutoff);
    os << "tdc@" << cutoff << "=max" << t.max << ",avg" << t.avg << ",median"
       << t.median << '\n';
  }
  os << "graph=" << r.comm_graph.total_bytes() << '/'
     << r.comm_graph.num_edges() << " all=" << r.comm_graph_all.total_bytes()
     << '/' << r.comm_graph_all.num_edges() << '\n';
  return os.str();
}

std::string trace_text(const analysis::ExperimentResult& r) {
  std::ostringstream os;
  r.trace.save_text(os);
  return os.str();
}

analysis::ExperimentConfig app_cfg(const std::string& app, int nranks,
                                   EngineKind engine, bool capture_trace) {
  analysis::ExperimentConfig cfg;
  cfg.app = app;
  cfg.nranks = nranks;
  cfg.engine = engine;
  cfg.capture_trace = capture_trace;
  return cfg;
}

// --- engine selection --------------------------------------------------------

TEST(EngineSelect, NamesRoundTrip) {
  EXPECT_EQ(mpisim::engine_name(EngineKind::kThreads), "threads");
  EXPECT_EQ(mpisim::engine_name(EngineKind::kFibers), "fibers");
  EXPECT_EQ(mpisim::parse_engine("threads"), EngineKind::kThreads);
  EXPECT_EQ(mpisim::parse_engine("fibers"), EngineKind::kFibers);
  EXPECT_THROW((void)mpisim::parse_engine("coroutines"), Error);
}

TEST(EngineSelect, DefaultConfigUsesThreads) {
  EXPECT_EQ(mpisim::RuntimeConfig{}.engine, EngineKind::kThreads);
  EXPECT_EQ(analysis::ExperimentConfig{}.engine, EngineKind::kThreads);
}

// --- batch admission weight --------------------------------------------------

TEST(EngineBatch, FiberJobWeighsOneThread) {
  analysis::ExperimentConfig cfg;
  cfg.app = "cactus";
  cfg.nranks = 256;
  EXPECT_EQ(analysis::experiment_thread_weight(cfg), 256);
  cfg.engine = EngineKind::kFibers;
  EXPECT_EQ(analysis::experiment_thread_weight(cfg), 1);
}

TEST(EngineBatch, SweepConfigsPropagateEngine) {
  const auto configs = analysis::sweep_configs({"cactus"}, {8, 16}, {1, 2},
                                               EngineKind::kFibers);
  ASSERT_EQ(configs.size(), 4u);
  for (const auto& c : configs) EXPECT_EQ(c.engine, EngineKind::kFibers);
}

TEST(EngineBatch, TinyBudgetStillRunsFiberSweep) {
  if (!mpisim::fibers_supported()) GTEST_SKIP() << "fibers unsupported";
  // Under the threaded engine a 2-thread budget serializes 16-rank jobs;
  // fiber jobs weigh 1, so both fit concurrently — either way the sweep
  // must complete with every result present.
  analysis::BatchOptions opts;
  opts.thread_budget = 2;
  auto configs =
      analysis::sweep_configs({"cactus"}, {8, 16}, {1}, EngineKind::kFibers);
  for (auto& c : configs) c.capture_trace = false;
  const auto batch = analysis::BatchRunner(opts).run(configs);
  EXPECT_TRUE(batch.ok());
  for (const auto& r : batch.results) EXPECT_TRUE(r.has_value());
}

// --- fiber engine basics -----------------------------------------------------

TEST(FiberEngine, PingPongAndCollectives) {
  if (!mpisim::fibers_supported()) GTEST_SKIP() << "fibers unsupported";
  mpisim::Runtime rt(fiber_cfg(8));
  rt.run([](mpisim::RankContext& ctx) {
    if (ctx.rank() == 0) {
      ctx.send(1, 4096, /*tag=*/7);
      const mpisim::Message m = ctx.recv(1, 128, /*tag=*/8);
      EXPECT_EQ(m.bytes, 128u);
      EXPECT_EQ(m.src_world, 1);
    } else if (ctx.rank() == 1) {
      const mpisim::Message m = ctx.recv(0, 4096, /*tag=*/7);
      EXPECT_EQ(m.bytes, 4096u);
      ctx.send(0, 128, /*tag=*/8);
    }
    ctx.barrier();
    const double sum = ctx.allreduce_sum(ctx.world(), 1.0);
    EXPECT_DOUBLE_EQ(sum, 8.0);
    ctx.bcast(0, 256);
    ctx.alltoall(64);
  });
}

TEST(FiberEngine, WildcardSourceAndWaitany) {
  if (!mpisim::fibers_supported()) GTEST_SKIP() << "fibers unsupported";
  mpisim::Runtime rt(fiber_cfg(6));
  rt.run([](mpisim::RankContext& ctx) {
    if (ctx.rank() == 0) {
      std::uint64_t got = 0;
      for (int i = 1; i < ctx.nranks(); ++i) {
        got += ctx.recv(mpisim::kAnySource, 64, /*tag=*/1).bytes;
      }
      EXPECT_EQ(got, 5u * 64u);
      std::vector<mpisim::Request> reqs;
      for (int i = 1; i < ctx.nranks(); ++i) {
        reqs.push_back(ctx.irecv(mpisim::kAnySource, 32, /*tag=*/2));
      }
      for (std::size_t n = 0; n < reqs.size(); ++n) {
        (void)ctx.waitany(reqs);
      }
    } else {
      ctx.send(0, 64, /*tag=*/1);
      ctx.send(0, 32, /*tag=*/2);
    }
  });
}

TEST(FiberEngine, CommSplitPresizesMemberBuckets) {
  if (!mpisim::fibers_supported()) GTEST_SKIP() << "fibers unsupported";
  mpisim::Runtime rt(fiber_cfg(8));
  rt.run([](mpisim::RankContext& ctx) {
    const auto sub = ctx.split(ctx.world(), ctx.rank() % 2, ctx.rank());
    EXPECT_EQ(sub.size(), 4);
    // Ring exchange inside the derived communicator exercises the
    // pre-sized buckets.
    const int next = (sub.rank() + 1) % sub.size();
    const int prev = (sub.rank() + sub.size() - 1) % sub.size();
    (void)ctx.sendrecv(sub, next, 512, prev, 512, /*tag=*/3);
  });
  // Split allocated comm ids 1 and 2 (one per color; which color drew
  // which id depends on the seeded schedule); every member's mailbox got
  // its buckets created at allocation time.
  const int even_comm = rt.mailbox(0).has_comm_buckets(1) ? 1 : 2;
  for (int r = 0; r < 8; ++r) {
    EXPECT_TRUE(
        rt.mailbox(r).has_comm_buckets(r % 2 == 0 ? even_comm : 3 - even_comm))
        << "rank " << r;
  }
}

TEST(FiberEngine, RankFailureAbortsPeers) {
  if (!mpisim::fibers_supported()) GTEST_SKIP() << "fibers unsupported";
  mpisim::Runtime rt(fiber_cfg(4));
  try {
    rt.run([](mpisim::RankContext& ctx) {
      if (ctx.rank() == 2) throw std::runtime_error("boom on rank 2");
      // Everyone else parks in a receive that never completes; the abort
      // must wake and unwind them instead of a watchdog stall.
      (void)ctx.recv(mpisim::kAnySource, 1, /*tag=*/9);
    });
    FAIL() << "expected the rank failure to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom on rank 2");
  }
}

TEST(FiberEngine, DiagnosesDeadlockInstantly) {
  if (!mpisim::fibers_supported()) GTEST_SKIP() << "fibers unsupported";
  auto cfg = fiber_cfg(2);
  // Deliberately generous: the fiber engine must not need the watchdog to
  // see an empty ready queue.
  cfg.watchdog = std::chrono::minutes(10);
  mpisim::Runtime rt(cfg);
  const auto start = std::chrono::steady_clock::now();
  try {
    rt.run([](mpisim::RankContext& ctx) {
      // Both ranks receive first: a classic head-to-head deadlock.
      (void)ctx.recv(1 - ctx.rank(), 64, /*tag=*/1);
      ctx.send(1 - ctx.rank(), 64, /*tag=*/1);
    });
    FAIL() << "expected a deadlock diagnosis";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("deadlock"), std::string::npos) << what;
    EXPECT_NE(what.find("rank"), std::string::npos) << what;
    EXPECT_NE(what.find("last completed call"), std::string::npos) << what;
  }
  EXPECT_LT(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count(),
            60.0);
}

TEST(FiberEngine, DiagnosesPollingLivelockViaWatchdog) {
  if (!mpisim::fibers_supported()) GTEST_SKIP() << "fibers unsupported";
  auto cfg = fiber_cfg(2);
  cfg.watchdog = std::chrono::milliseconds(200);
  mpisim::Runtime rt(cfg);
  try {
    rt.run([](mpisim::RankContext& ctx) {
      if (ctx.rank() == 0) {
        // Spin on a receive that can never be satisfied. The ready queue
        // never empties (test() yields), so only the progress watchdog can
        // call it: no deliveries for a full watchdog interval.
        mpisim::Request req = ctx.irecv(1, 64, /*tag=*/5);
        while (!ctx.test(req)) {
        }
      }
    });
    FAIL() << "expected a livelock diagnosis";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("watchdog expired"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 0"), std::string::npos) << what;
    EXPECT_NE(what.find("likely application deadlock"), std::string::npos)
        << what;
  }
}

TEST(FiberEngine, StackPoolRecyclesMappingsAcrossJobs) {
  if (!mpisim::fibers_supported()) GTEST_SKIP() << "fibers unsupported";
  // The pool is process-wide and other fiber tests run in this binary, so
  // assert on deltas, not absolutes. Two identical jobs back to back: the
  // second must be served (at least partly) from stacks the first retired.
  const auto run_job = [] {
    mpisim::Runtime rt(fiber_cfg(16));
    rt.run([](mpisim::RankContext& ctx) {
      ctx.barrier();
    });
  };
  run_job();
  const auto before = mpisim::fiber_stack_pool_stats();
  EXPECT_GE(before.pooled, 16u);  // the first job's stacks are idle, pooled
  run_job();
  const auto after = mpisim::fiber_stack_pool_stats();
  EXPECT_GE(after.reused, before.reused + 16);
  EXPECT_EQ(after.mapped, before.mapped);  // nothing new was mmap'd

  // Trim releases every idle stack and the next job maps fresh ones.
  EXPECT_GE(mpisim::trim_fiber_stack_pool(), 16u);
  const auto trimmed = mpisim::fiber_stack_pool_stats();
  EXPECT_EQ(trimmed.pooled, 0u);
  EXPECT_EQ(trimmed.pooled_bytes, 0u);
  run_job();
  const auto remapped = mpisim::fiber_stack_pool_stats();
  EXPECT_GE(remapped.mapped, trimmed.mapped + 16);
}

// --- determinism -------------------------------------------------------------

TEST(EngineDeterminism, SameSeedSameTraceBytesWildcardAppsIncluded) {
  if (!mpisim::fibers_supported()) GTEST_SKIP() << "fibers unsupported";
  // gtc and superlu receive from kAnySource, which makes their event
  // traces scheduling-dependent under threads (PR 1 had to settle for
  // aggregate equality there). The fiber engine's seeded cooperative
  // schedule makes even those byte-identical at fixed seed.
  for (const char* app : {"gtc", "superlu", "cactus"}) {
    const auto cfg =
        app_cfg(app, 64, EngineKind::kFibers, /*capture_trace=*/true);
    const auto a = analysis::run_experiment(cfg);
    const auto b = analysis::run_experiment(cfg);
    EXPECT_EQ(metric_fingerprint(a), metric_fingerprint(b)) << app;
    EXPECT_EQ(trace_text(a), trace_text(b)) << app;
    EXPECT_FALSE(a.trace.events().empty()) << app;
  }
}

TEST(EngineDeterminism, SchedulerSeedPerturbsScheduleNotMetrics) {
  if (!mpisim::fibers_supported()) GTEST_SKIP() << "fibers unsupported";
  // A different sched_seed changes the cooperative interleaving (and with
  // it wildcard match order), but every Table-3 reduction must be
  // invariant: the sends, sizes, and merged statistics are fixed by the
  // app seed alone.
  auto base = app_cfg("gtc", 64, EngineKind::kFibers, /*capture_trace=*/true);
  auto other = base;
  other.sched_seed = 0xfeedfaceULL;
  const auto a = analysis::run_experiment(base);
  const auto b = analysis::run_experiment(other);
  EXPECT_EQ(metric_fingerprint(a), metric_fingerprint(b));
}

// --- cross-engine parity -----------------------------------------------------

void expect_engine_parity(int nranks) {
  for (const char* app : kAllApps) {
    const auto threaded = analysis::run_experiment(
        app_cfg(app, nranks, EngineKind::kThreads, /*capture_trace=*/false));
    const auto fibered = analysis::run_experiment(
        app_cfg(app, nranks, EngineKind::kFibers, /*capture_trace=*/false));
    EXPECT_EQ(metric_fingerprint(threaded), metric_fingerprint(fibered))
        << app << " P=" << nranks;
  }
}

TEST(EngineParity, ReducedMetricsIdenticalAcrossEnginesP64) {
  if (!mpisim::fibers_supported()) GTEST_SKIP() << "fibers unsupported";
  expect_engine_parity(64);
}

TEST(EngineParity, ReducedMetricsIdenticalAcrossEnginesP256) {
  if (!mpisim::fibers_supported()) GTEST_SKIP() << "fibers unsupported";
  expect_engine_parity(256);
}

TEST(EngineParity, CactusTraceBytesIdenticalAcrossEngines) {
  if (!mpisim::fibers_supported()) GTEST_SKIP() << "fibers unsupported";
  // Cactus has no wildcard receives, so even the full event trace is
  // engine-independent.
  const auto threaded = analysis::run_experiment(
      app_cfg("cactus", 64, EngineKind::kThreads, /*capture_trace=*/true));
  const auto fibered = analysis::run_experiment(
      app_cfg("cactus", 64, EngineKind::kFibers, /*capture_trace=*/true));
  EXPECT_EQ(trace_text(threaded), trace_text(fibered));
}

// --- scale -------------------------------------------------------------------

TEST(EngineScale, AllSixAppsCompleteAtP1024OnFibers) {
  if (!mpisim::fibers_supported()) GTEST_SKIP() << "fibers unsupported";
  // The acceptance gate for the whole refactor: one OS thread carries 1024
  // ranks per app through run_experiment. Trace capture stays off — the
  // reductions are what the P>=1024 studies consume.
  for (const char* app : kAllApps) {
    const auto r = analysis::run_experiment(
        app_cfg(app, 1024, EngineKind::kFibers, /*capture_trace=*/false));
    EXPECT_GT(r.steady.total_calls(), 0u) << app;
    EXPECT_GT(r.comm_graph.num_edges(), 0u) << app;
  }
}

}  // namespace
}  // namespace hfast
