#include <gtest/gtest.h>

#include "hfast/util/assert.hpp"

#include "hfast/core/provision.hpp"
#include "hfast/graph/tdc.hpp"

namespace hfast::core {
namespace {

graph::CommGraph ring(int n, std::uint64_t bytes = 4096) {
  graph::CommGraph g(n);
  for (int i = 0; i < n; ++i) g.add_message(i, (i + 1) % n, bytes);
  return g;
}

graph::CommGraph star(int n, std::uint64_t bytes = 4096) {
  graph::CommGraph g(n);
  for (int i = 1; i < n; ++i) g.add_message(0, i, bytes);
  return g;
}

graph::CommGraph complete(int n, std::uint64_t bytes = 4096) {
  graph::CommGraph g(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) g.add_message(i, j, bytes);
  }
  return g;
}

TEST(GreedyBlocksForDegree, MatchesPaperFormula) {
  // Block size 16: one port to the host leaves degree 15 in one block;
  // beyond that, chains expose 14 extra ports per block.
  EXPECT_EQ(greedy_blocks_for_degree(0, 16), 1);
  EXPECT_EQ(greedy_blocks_for_degree(6, 16), 1);
  EXPECT_EQ(greedy_blocks_for_degree(15, 16), 1);
  EXPECT_EQ(greedy_blocks_for_degree(16, 16), 2);
  EXPECT_EQ(greedy_blocks_for_degree(29, 16), 2);
  EXPECT_EQ(greedy_blocks_for_degree(30, 16), 3);
  EXPECT_EQ(greedy_blocks_for_degree(255, 16), 19);  // ceil(254/14)
  EXPECT_EQ(greedy_blocks_for_degree(3, 4), 1);
  EXPECT_EQ(greedy_blocks_for_degree(4, 4), 2);
}

TEST(ProvisionGreedy, OneBlockPerNodeForBoundedTdc) {
  const auto g = ring(8);
  const auto prov = provision_greedy(g);
  prov.fabric.validate();
  // TDC 2 << 15: exactly one block per node (the Cactus worked example).
  EXPECT_EQ(prov.stats.num_blocks, 8);
  EXPECT_EQ(prov.stats.edges_provisioned, 8);
  EXPECT_EQ(prov.stats.internal_edges, 0);
  EXPECT_TRUE(prov.fabric.serves(g, graph::kBdpCutoffBytes));
  // Every edge crosses exactly two blocks: 3 circuit traversals.
  EXPECT_EQ(prov.stats.max_circuit_traversals, 3);
  EXPECT_DOUBLE_EQ(prov.stats.avg_circuit_traversals, 3.0);
}

TEST(ProvisionGreedy, DedicatedTrunkPerEdge) {
  const auto g = ring(6);
  const auto prov = provision_greedy(g);
  for (const auto& [uv, stats] : g.edges()) {
    (void)stats;
    const int bu = prov.fabric.home_block(uv.first);
    const int bv = prov.fabric.home_block(uv.second);
    EXPECT_EQ(prov.fabric.trunks_between(bu, bv), 1);
  }
}

TEST(ProvisionGreedy, HighDegreeNodeGetsChain) {
  // Star with center degree 20 > 15: the center needs a 2-block chain, the
  // leaves one block each -> 21 + 2 = 23 blocks... (20 leaves + 2 center).
  const auto g = star(21);
  const auto prov = provision_greedy(g);
  prov.fabric.validate();
  EXPECT_EQ(prov.stats.num_blocks, 20 + greedy_blocks_for_degree(20, 16));
  EXPECT_EQ(prov.stats.num_blocks, 22);
  EXPECT_TRUE(prov.fabric.serves(g, 0));
  // Edges landing on the chain's second block pay one extra hop.
  EXPECT_EQ(prov.stats.max_switch_hops, 3);
}

TEST(ProvisionGreedy, BlockCountMatchesFormulaOnCompleteGraph) {
  const auto g = complete(20);  // every node degree 19 -> 2 blocks each
  const auto prov = provision_greedy(g);
  prov.fabric.validate();
  EXPECT_EQ(prov.stats.num_blocks, 20 * greedy_blocks_for_degree(19, 16));
  EXPECT_TRUE(prov.fabric.serves(g, 0));
}

TEST(ProvisionGreedy, CutoffExcludesSmallEdges) {
  graph::CommGraph g(4);
  g.add_message(0, 1, 4096);
  g.add_message(2, 3, 100);  // latency-bound: no circuit provisioned
  ProvisionParams params;
  const auto prov = provision_greedy(g, params);
  EXPECT_EQ(prov.stats.edges_provisioned, 1);
  EXPECT_TRUE(prov.fabric.serves(g, params.cutoff));
  EXPECT_FALSE(prov.fabric.serves(g, 0));
  // Isolated nodes still get a block (connectivity pool).
  EXPECT_EQ(prov.stats.num_blocks, 4);
}

TEST(ProvisionClique, CompleteGraphSharesOneBlock) {
  const auto g = complete(8);
  const auto prov = provision_clique(g);
  prov.fabric.validate();
  // All 8 nodes fit one 16-port block; every edge is internal.
  EXPECT_EQ(prov.stats.num_blocks, 1);
  EXPECT_EQ(prov.stats.internal_edges, 28);
  EXPECT_EQ(prov.stats.num_trunks, 0);
  EXPECT_EQ(prov.stats.max_circuit_traversals, 2);
  EXPECT_TRUE(prov.fabric.serves(g, 0));
}

TEST(ProvisionClique, NeverWorseThanTwiceOptimalOnRing) {
  // A ring is triangle-free: cliques are edges, so pairs share blocks.
  const auto g = ring(16);
  const auto greedy = provision_greedy(g);
  const auto clique = provision_clique(g);
  clique.fabric.validate();
  EXPECT_TRUE(clique.fabric.serves(g, graph::kBdpCutoffBytes));
  EXPECT_LT(clique.stats.num_blocks, greedy.stats.num_blocks);
  EXPECT_GT(clique.stats.internal_edges, 0);
}

TEST(ProvisionClique, HandlesHighDegreeViaExpansion) {
  const auto g = star(40);  // center degree 39 > 15
  const auto prov = provision_clique(g);
  prov.fabric.validate();
  EXPECT_TRUE(prov.fabric.serves(g, 0));
}

TEST(Provision, SmallBlockSizesStillServe) {
  const auto g = complete(10);
  for (int size : {4, 5, 8}) {
    ProvisionParams params;
    params.block_size = size;
    for (auto strategy : {ProvisionStrategy::kGreedyPerNode,
                          ProvisionStrategy::kCliqueShared}) {
      const auto prov = provision(g, params, strategy);
      prov.fabric.validate();
      EXPECT_TRUE(prov.fabric.serves(g, 0))
          << "size=" << size << " strategy=" << static_cast<int>(strategy);
    }
  }
}

TEST(Provision, PortBudgetsNeverExceeded) {
  const auto g = complete(12);
  for (auto strategy : {ProvisionStrategy::kGreedyPerNode,
                        ProvisionStrategy::kCliqueShared}) {
    const auto prov = provision(g, {}, strategy);
    for (int b = 0; b < prov.fabric.num_blocks(); ++b) {
      const auto& blk = prov.fabric.block(b);
      EXPECT_EQ(blk.num_free() + blk.num_host() + blk.num_trunk(),
                blk.num_ports());
      EXPECT_GE(blk.num_free(), 0);
    }
  }
}

TEST(Provision, RejectsTinyBlocks) {
  EXPECT_THROW(provision(ring(4), ProvisionParams{.block_size = 3},
                         ProvisionStrategy::kGreedyPerNode),
               ContractViolation);
}

}  // namespace
}  // namespace hfast::core
