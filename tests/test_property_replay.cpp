/// Property tests for trace replay: conservation and monotonicity over
/// randomized (but deadlock-free) traffic patterns on all network models.

#include <gtest/gtest.h>

#include "hfast/util/assert.hpp"

#include "hfast/core/provision.hpp"
#include "hfast/netsim/fat_tree_net.hpp"
#include "hfast/netsim/replay.hpp"
#include "hfast/topo/fcn.hpp"
#include "hfast/topo/mesh.hpp"
#include "hfast/util/random.hpp"

namespace hfast::netsim {
namespace {

using trace::CommEvent;
using trace::EventKind;
using trace::Trace;

/// Random deadlock-free trace: every rank issues all its sends first, then
/// receives (in randomized order) everything destined to it.
Trace random_trace(int nranks, int messages, std::uint64_t seed,
                   graph::CommGraph* graph_out = nullptr) {
  util::Rng rng(seed);
  std::vector<std::vector<CommEvent>> per_rank(
      static_cast<std::size_t>(nranks));
  std::vector<std::vector<CommEvent>> recvs(static_cast<std::size_t>(nranks));
  if (graph_out != nullptr) *graph_out = graph::CommGraph(nranks);

  for (int m = 0; m < messages; ++m) {
    const int src = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(nranks)));
    int dst = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(nranks)));
    if (dst == src) dst = (dst + 1) % nranks;
    const std::uint64_t bytes = 64 + rng.uniform(64 * 1024);
    CommEvent send;
    send.rank = src;
    send.kind = EventKind::kSend;
    send.peer = dst;
    send.bytes = bytes;
    per_rank[static_cast<std::size_t>(src)].push_back(send);
    CommEvent recv;
    recv.rank = dst;
    recv.kind = EventKind::kRecv;
    recv.peer = src;
    recv.bytes = bytes;
    recvs[static_cast<std::size_t>(dst)].push_back(recv);
    if (graph_out != nullptr) graph_out->add_message(src, dst, bytes);
  }

  std::vector<CommEvent> all;
  for (int r = 0; r < nranks; ++r) {
    auto& mine = per_rank[static_cast<std::size_t>(r)];
    rng.shuffle(recvs[static_cast<std::size_t>(r)]);
    for (CommEvent e : recvs[static_cast<std::size_t>(r)]) mine.push_back(e);
    std::uint64_t op = 0;
    for (CommEvent& e : mine) e.op_index = op++;
    all.insert(all.end(), mine.begin(), mine.end());
  }
  return Trace(nranks, std::move(all), {""});
}

class ReplayProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReplayProperty, ConservationAcrossAllNetworkModels) {
  graph::CommGraph g(16);
  const auto t = random_trace(16, 200, GetParam(), &g);
  const std::uint64_t expected_bytes = g.total_bytes();

  const LinkParams link;
  topo::FullyConnected fcn(16);
  DirectNetwork fcn_net(fcn, link);
  const topo::MeshTorus torus({4, 4}, true);
  DirectNetwork torus_net(torus, link);
  StructuralFatTree sft(16, 8, link);
  const auto prov = core::provision_greedy(g, {.cutoff = 0});
  FabricNetwork fab(prov.fabric, link, 50e-9);

  double last_makespan = 0.0;
  for (Network* net : {static_cast<Network*>(&fcn_net),
                       static_cast<Network*>(&torus_net),
                       static_cast<Network*>(&sft),
                       static_cast<Network*>(&fab)}) {
    const auto r = replay(t, *net);
    EXPECT_EQ(r.messages, 200u) << net->name();
    EXPECT_EQ(r.bytes, expected_bytes) << net->name();
    EXPECT_GT(r.makespan_s, 0.0) << net->name();
    EXPECT_GE(r.max_message_latency_s, r.avg_message_latency_s);
    EXPECT_GE(r.max_switch_hops, 1);
    last_makespan = r.makespan_s;
  }
  (void)last_makespan;
}

TEST_P(ReplayProperty, SlowerLinksNeverShortenMakespan) {
  const auto t = random_trace(8, 80, GetParam());
  topo::FullyConnected fcn(8);
  LinkParams fast;
  fast.bandwidth_bps = 10e9;
  LinkParams slow = fast;
  slow.bandwidth_bps = 1e9;
  DirectNetwork fast_net(fcn, fast);
  DirectNetwork slow_net(fcn, slow);
  const auto rf = replay(t, fast_net);
  const auto rs = replay(t, slow_net);
  EXPECT_LE(rf.makespan_s, rs.makespan_s);
  EXPECT_LE(rf.avg_message_latency_s, rs.avg_message_latency_s);
}

TEST_P(ReplayProperty, ReplayIsDeterministic) {
  const auto t = random_trace(12, 150, GetParam());
  const topo::MeshTorus torus({3, 2, 2}, true);
  const LinkParams link;
  DirectNetwork a(torus, link);
  DirectNetwork b(torus, link);
  const auto ra = replay(t, a);
  const auto rb = replay(t, b);
  EXPECT_DOUBLE_EQ(ra.makespan_s, rb.makespan_s);
  EXPECT_DOUBLE_EQ(ra.total_recv_wait_s, rb.total_recv_wait_s);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplayProperty,
                         ::testing::Values(11ULL, 22ULL, 33ULL, 44ULL, 55ULL));

}  // namespace
}  // namespace hfast::netsim
