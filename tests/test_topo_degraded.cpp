#include <gtest/gtest.h>

#include "hfast/util/assert.hpp"

#include "hfast/topo/degraded.hpp"
#include "hfast/topo/embedding.hpp"
#include "hfast/topo/mesh.hpp"

namespace hfast::topo {
namespace {

TEST(Degraded, HealthyWrapperIsTransparent) {
  MeshTorus torus({4, 4}, true);
  DegradedTopology d(torus);
  EXPECT_EQ(d.num_nodes(), 16);
  for (Node u = 0; u < 16; ++u) {
    EXPECT_EQ(d.neighbors(u), torus.neighbors(u));
  }
  EXPECT_EQ(d.distance(0, 10), torus.distance(0, 10));
}

TEST(Degraded, FailedNodeDisappearsFromWiring) {
  MeshTorus torus({4, 4}, true);
  DegradedTopology d(torus);
  d.fail_node(5);
  EXPECT_TRUE(d.node_failed(5));
  EXPECT_EQ(d.num_failed_nodes(), 1);
  EXPECT_TRUE(d.neighbors(5).empty());
  for (Node u : torus.neighbors(5)) {
    const auto nbrs = d.neighbors(u);
    EXPECT_EQ(std::find(nbrs.begin(), nbrs.end(), 5), nbrs.end());
  }
  EXPECT_EQ(d.healthy_nodes().size(), 15u);
}

TEST(Degraded, RoutesDetourAroundFailures) {
  // A ring: failing one node forces the long way around.
  MeshTorus ring({8}, true);
  DegradedTopology d(ring);
  EXPECT_EQ(d.distance(0, 2), 2);
  d.fail_node(1);
  EXPECT_EQ(d.distance(0, 2), 6);  // all the way around
}

TEST(Degraded, FailedLinkOnly) {
  MeshTorus ring({6}, true);
  DegradedTopology d(ring);
  d.fail_link(0, 1);
  // Nodes stay up, the link is gone both ways.
  const auto n0 = d.neighbors(0);
  EXPECT_EQ(std::find(n0.begin(), n0.end(), 1), n0.end());
  const auto n1 = d.neighbors(1);
  EXPECT_EQ(std::find(n1.begin(), n1.end(), 0), n1.end());
  EXPECT_EQ(d.distance(0, 1), 5);
}

TEST(Degraded, DisconnectionIsDiagnosed) {
  MeshTorus path({4}, false);
  DegradedTopology d(path);
  d.fail_node(1);
  EXPECT_THROW(d.route(0, 2), ContractViolation);
}

TEST(Degraded, EmbeddingOnHealthySubsetAvoidsFailures) {
  MeshTorus torus({4, 4}, true);
  DegradedTopology d(torus);
  d.fail_node(3);
  d.fail_node(7);
  graph::CommGraph g(8);
  for (int i = 0; i < 8; ++i) g.add_message(i, (i + 1) % 8, 4096);
  const auto emb = greedy_embedding(g, d, d.healthy_nodes());
  for (Node n : emb.node_of_task) {
    EXPECT_FALSE(d.node_failed(n));
  }
  const auto q = evaluate_embedding(g, d, emb);
  EXPECT_GE(q.avg_dilation, 1.0);
}

TEST(Degraded, GreedyEmbeddingValidatesAllowedNodes) {
  MeshTorus torus({4}, true);
  graph::CommGraph g(2);
  g.add_message(0, 1, 64);
  EXPECT_THROW(greedy_embedding(g, torus, {0, 9}), ContractViolation);
  EXPECT_THROW(greedy_embedding(g, torus, {0}), ContractViolation);
}

}  // namespace
}  // namespace hfast::topo
