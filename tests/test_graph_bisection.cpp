#include <gtest/gtest.h>

#include "hfast/util/assert.hpp"

#include "hfast/graph/bisection.hpp"

namespace hfast::graph {
namespace {

TEST(Bisection, RingCutsExactlyTwoEdges) {
  CommGraph g(16);
  for (int i = 0; i < 16; ++i) g.add_message(i, (i + 1) % 16, 1000);
  const auto b = min_bisection(g);
  EXPECT_EQ(b.cut_bytes, 2000u);  // any contiguous half cuts 2 edges
  EXPECT_EQ(b.total_bytes, 16000u);
  EXPECT_NEAR(b.demand_fraction(), 2.0 / 16.0, 1e-12);
  // Balanced.
  int ones = 0;
  for (bool s : b.side) ones += s ? 1 : 0;
  EXPECT_EQ(ones, 8);
}

TEST(Bisection, CompleteGraphDemandsHalfTheTraffic) {
  CommGraph g(12);
  for (int i = 0; i < 12; ++i) {
    for (int j = i + 1; j < 12; ++j) g.add_message(i, j, 100);
  }
  const auto b = min_bisection(g);
  // Any balanced cut of K12 crosses 6*6 = 36 of 66 edges.
  EXPECT_EQ(b.cut_bytes, 3600u);
  EXPECT_NEAR(b.demand_fraction(), 36.0 / 66.0, 1e-12);
}

TEST(Bisection, TwoClustersSplitCleanly) {
  // Two dense 6-cliques joined by one thin edge: the bisection must cut
  // only the bridge.
  CommGraph g(12);
  for (int base : {0, 6}) {
    for (int i = 0; i < 6; ++i) {
      for (int j = i + 1; j < 6; ++j) {
        g.add_message(base + i, base + j, 10000);
      }
    }
  }
  g.add_message(0, 6, 7);
  const auto b = min_bisection(g);
  EXPECT_EQ(b.cut_bytes, 7u);
  EXPECT_NE(b.side[0], b.side[6]);
  EXPECT_EQ(b.side[0], b.side[5]);
}

TEST(Bisection, WeightsMatterNotEdgeCounts) {
  // A heavy edge must not be cut even if that costs several light edges.
  CommGraph g(4);
  g.add_message(0, 1, 1000000);  // heavy pair
  g.add_message(0, 2, 1);
  g.add_message(0, 3, 1);
  g.add_message(1, 2, 1);
  g.add_message(1, 3, 1);
  const auto b = min_bisection(g);
  EXPECT_EQ(b.side[0], b.side[1]);
  EXPECT_EQ(b.cut_bytes, 4u);
}

TEST(Bisection, DegenerateInputs) {
  CommGraph empty(0);
  EXPECT_EQ(min_bisection(empty).cut_bytes, 0u);
  CommGraph one(1);
  EXPECT_EQ(min_bisection(one).cut_bytes, 0u);
  CommGraph disconnected(4);
  EXPECT_EQ(min_bisection(disconnected).cut_bytes, 0u);
  EXPECT_DOUBLE_EQ(min_bisection(disconnected).demand_fraction(), 0.0);
}

TEST(Bisection, OddNodeCountsBalanceWithinOne) {
  CommGraph g(7);
  for (int i = 0; i < 7; ++i) g.add_message(i, (i + 1) % 7, 10);
  const auto b = min_bisection(g);
  int ones = 0;
  for (bool s : b.side) ones += s ? 1 : 0;
  EXPECT_TRUE(ones == 3 || ones == 4);
}

}  // namespace
}  // namespace hfast::graph
