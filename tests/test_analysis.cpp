#include <gtest/gtest.h>

#include "hfast/util/assert.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "hfast/analysis/export.hpp"
#include "hfast/analysis/experiment.hpp"
#include "hfast/analysis/paper_tables.hpp"

namespace hfast::analysis {
namespace {

namespace fs = std::filesystem;

class ExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "hfast_export_test";
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static std::string slurp(const fs::path& p) {
    std::ifstream in(p);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
  }

  fs::path dir_;
};

TEST_F(ExportTest, Table3Csv) {
  const auto r = run_experiment("cactus", 8);
  export_table3_csv(dir_, {table3_row(r)});
  const auto content = slurp(dir_ / "table3.csv");
  EXPECT_NE(content.find("code,procs"), std::string::npos);
  EXPECT_NE(content.find("cactus,8"), std::string::npos);
}

TEST_F(ExportTest, TdcSweepCsvHasAllCutoffs) {
  const auto r = run_experiment("cactus", 8);
  export_tdc_sweep_csv(dir_, r);
  const auto content = slurp(dir_ / "tdc_cactus_p8.csv");
  // Header + 15 cutoffs.
  EXPECT_EQ(std::count(content.begin(), content.end(), '\n'), 16);
  EXPECT_NE(content.find("cutoff_bytes"), std::string::npos);
}

TEST_F(ExportTest, BufferCdfCsvs) {
  const auto r = run_experiment("gtc", 16);
  export_buffer_cdfs_csv(dir_, r);
  const auto ptp = slurp(dir_ / "buffers_gtc_p16_ptp.csv");
  const auto col = slurp(dir_ / "buffers_gtc_p16_collective.csv");
  EXPECT_NE(ptp.find("131072"), std::string::npos);  // the 128 KB shift
  EXPECT_NE(col.find("100,"), std::string::npos);    // the 100 B gather
  // Cumulative percent ends at 100.
  EXPECT_NE(ptp.rfind(",100"), std::string::npos);
}

TEST_F(ExportTest, VolumeMatrixCsvIsDense) {
  const auto r = run_experiment("cactus", 8);
  export_volume_matrix_csv(dir_, r);
  const auto content = slurp(dir_ / "volume_cactus_p8.csv");
  EXPECT_EQ(std::count(content.begin(), content.end(), '\n'), 8);
  // 8 columns per row.
  const auto first_line = content.substr(0, content.find('\n'));
  EXPECT_EQ(std::count(first_line.begin(), first_line.end(), ','), 7);
}

TEST(PaperTables, RenderersProduceOutput) {
  const auto r = run_experiment("gtc", 16);
  EXPECT_GT(render_call_breakdown(r).num_rows(), 0u);
  EXPECT_GT(render_tdc_sweep(r).num_rows(), 0u);
  EXPECT_FALSE(render_volume_heatmap(r).empty());
  const auto row = table3_row(r);
  const auto table = render_table3({row});
  EXPECT_NE(table.to_string().find("gtc"), std::string::npos);
  const auto cdf =
      render_buffer_cdf(r.steady.ptp_buffers(), "gtc");
  EXPECT_NE(cdf.to_string().find("2k"), std::string::npos);
}

TEST(PaperTables, TdcChartNeedsTwoConcurrencies) {
  const auto small = run_experiment("cactus", 8);
  const auto large = run_experiment("cactus", 27);
  const auto chart = render_tdc_chart("cactus", small, large);
  EXPECT_NE(chart.find("max 8"), std::string::npos);
  EXPECT_NE(chart.find("avg 27"), std::string::npos);
}

TEST(Experiment, InvalidAppOrConcurrencyThrows) {
  EXPECT_THROW(run_experiment("nope", 16), Error);
  EXPECT_THROW(run_experiment("lbmhd", 10), Error);
}

TEST(Experiment, TraceCaptureCanBeDisabled) {
  ExperimentConfig cfg;
  cfg.app = "cactus";
  cfg.nranks = 8;
  cfg.capture_trace = false;
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.trace.events().empty());
  EXPECT_GT(r.steady.total_calls(), 0u);
}

TEST(Experiment, SeedChangesNothingStructural) {
  // The kernels are deterministic by construction; the seed feeds only the
  // rank-local RNG streams, which the paper kernels do not consume.
  ExperimentConfig a;
  a.app = "superlu";
  a.nranks = 16;
  a.seed = 1;
  ExperimentConfig b = a;
  b.seed = 999;
  const auto ra = run_experiment(a);
  const auto rb = run_experiment(b);
  EXPECT_EQ(ra.comm_graph.total_bytes(), rb.comm_graph.total_bytes());
  EXPECT_EQ(ra.steady.total_calls(), rb.steady.total_calls());
}

}  // namespace
}  // namespace hfast::analysis
