#include <gtest/gtest.h>

#include "hfast/util/assert.hpp"

#include "hfast/netsim/fat_tree_net.hpp"

namespace hfast::netsim {
namespace {

LinkParams simple_link() {
  LinkParams l;
  l.latency_s = 1e-6;
  l.bandwidth_bps = 1e9;
  l.switch_overhead_s = 0.0;
  return l;
}

TEST(StructuralFatTree, GeometryForRadix8) {
  // k = 4: 64 endpoints need n = 3 levels (4^3 = 64).
  StructuralFatTree net(64, 8, simple_link());
  EXPECT_EQ(net.levels(), 3);
  EXPECT_EQ(net.arity(), 4);
  EXPECT_EQ(net.num_switches(), 3u * 16u);
  EXPECT_EQ(net.num_endpoints(), 64);
}

TEST(StructuralFatTree, HopCountFollows2LMinus1) {
  StructuralFatTree net(64, 8, simple_link());
  EXPECT_EQ(net.switch_hops(0, 1), 1);    // same leaf (k=4: 0-3)
  EXPECT_EQ(net.switch_hops(0, 4), 3);    // same level-2 subtree
  EXPECT_EQ(net.switch_hops(0, 15), 3);
  EXPECT_EQ(net.switch_hops(0, 16), 5);   // crosses the top
  EXPECT_EQ(net.switch_hops(0, 63), 5);
  EXPECT_EQ(net.switch_hops(7, 7), 0);
  EXPECT_EQ(net.common_level(0, 63), 3);
}

TEST(StructuralFatTree, AllPairsRoutable) {
  StructuralFatTree net(32, 8, simple_link());
  for (int s = 0; s < 32; ++s) {
    for (int d = 0; d < 32; ++d) {
      if (s == d) continue;
      const double t = net.transfer(s, d, 100, 0.0);
      EXPECT_GT(t, 0.0) << s << "->" << d;
    }
    net.reset();
  }
}

TEST(StructuralFatTree, TransferTimingMatchesHops) {
  StructuralFatTree net(64, 8, simple_link());
  // Same-leaf: endpoint->leaf->endpoint = 2 links; far pair (common level
  // 3): 2*3 = 6 links. Cut-through: links*latency + 1 serialization.
  const double near = net.transfer(0, 1, 1000, 0.0);
  EXPECT_NEAR(near, 2 * 1e-6 + 1e-6, 1e-12);
  net.reset();
  const double far = net.transfer(0, 63, 1000, 0.0);
  EXPECT_NEAR(far, 6 * 1e-6 + 1e-6, 1e-12);
}

TEST(StructuralFatTree, InteriorContentionExists) {
  // Unlike the idealized FatTreeNetwork, concurrent flows that share an
  // interior link queue behind each other. All ranks of leaf 0 send to the
  // same remote leaf: the up-links from leaf 0 are shared pairwise by
  // destination (D-mod-k picks the up-path by destination digit).
  StructuralFatTree net(64, 8, simple_link());
  // src 0..3 all on leaf 0; destination 16 fixed: same up digits chosen ->
  // the four flows share the leaf's one chosen up-link and the ejection
  // path.
  const double t0 = net.transfer(0, 16, 1000000, 0.0);
  const double t1 = net.transfer(1, 16, 1000000, 0.0);
  const double t2 = net.transfer(2, 16, 1000000, 0.0);
  EXPECT_GT(t1, t0);
  EXPECT_GT(t2, t1);
}

TEST(StructuralFatTree, DisjointDestinationsSpreadLoad) {
  StructuralFatTree net(64, 8, simple_link());
  // Flows from one leaf to four *different* remote subtrees pick different
  // up-links (destination-based), so they do not serialize behind each
  // other the way same-destination flows do.
  const double same_a = net.transfer(0, 16, 1000000, 0.0);
  const double same_b = net.transfer(1, 16, 1000000, 0.0);
  const double same_delay = same_b - same_a;
  net.reset();
  const double diff_a = net.transfer(0, 16, 1000000, 0.0);
  const double diff_b = net.transfer(1, 21, 1000000, 0.0);  // other subtree
  (void)diff_a;
  // diff_b shares no link with diff_a beyond... the leaf uplink choice
  // differs by destination digit, so it should be faster than the
  // serialized same-destination case.
  EXPECT_LT(diff_b - 0.0, same_delay + same_a);
  EXPECT_THROW(net.transfer(3, 3, 10, 0.0), ContractViolation);
}

TEST(StructuralFatTree, CapacityRounding) {
  // 100 endpoints, k=8: 8^2=64 < 100 <= 8^3 -> 3 levels.
  StructuralFatTree net(100, 16, simple_link());
  EXPECT_EQ(net.levels(), 3);
  EXPECT_EQ(net.switch_hops(0, 99), 5);
  EXPECT_THROW(StructuralFatTree(4, 5, simple_link()), ContractViolation);
  EXPECT_THROW(StructuralFatTree(1, 8, simple_link()), ContractViolation);
}

}  // namespace
}  // namespace hfast::netsim
