#include <gtest/gtest.h>

#include "hfast/util/assert.hpp"

#include "hfast/core/cost_model.hpp"

namespace hfast::core {
namespace {

TEST(CostModel, CollectiveTreePorts) {
  EXPECT_EQ(collective_tree_ports(1), 0u);
  EXPECT_EQ(collective_tree_ports(2), 2u + 3u);
  EXPECT_EQ(collective_tree_ports(64), 64u + 3u * 63u);
}

TEST(CostModel, HfastBreakdown) {
  CostParams p;
  const auto c = hfast_cost(64, 64, p);  // one block per node
  EXPECT_EQ(c.packet_ports, 64u * 16u);
  EXPECT_EQ(c.circuit_ports, 64u + 1024u);
  EXPECT_DOUBLE_EQ(c.active_cost, 1024.0);
  EXPECT_DOUBLE_EQ(c.passive_cost, (64 + 1024) * 0.25);
  EXPECT_GT(c.collective_cost, 0.0);
  EXPECT_DOUBLE_EQ(c.total(),
                   c.active_cost + c.passive_cost + c.collective_cost);
}

TEST(CostModel, FatTreeUsesPaperPortFormula) {
  CostParams p;
  p.fat_tree_radix = 16;
  const auto c = fat_tree_cost(256, p);
  EXPECT_EQ(c.packet_ports, 256u * 5u);  // L=3 -> 1+2*2
  EXPECT_EQ(c.circuit_ports, 0u);
  EXPECT_DOUBLE_EQ(c.collective_cost, 0.0);
  const auto with_tree = fat_tree_cost(256, p, /*include_collective_tree=*/true);
  EXPECT_GT(with_tree.total(), c.total());
}

TEST(CostModel, MeshAndIcn) {
  CostParams p;
  const auto m = mesh_cost(64, 3, p);
  EXPECT_EQ(m.packet_ports, 64u * 7u);  // 6 router ports + NIC
  const auto i = icn_cost(64, 16, p);
  EXPECT_EQ(i.packet_ports, 4u * 32u);  // 4 blocks of 2k ports
  EXPECT_EQ(i.circuit_ports, 64u);
}

TEST(CostModel, HfastActiveCostScalesLinearlyForBoundedTdc) {
  CostParams p;
  // Bounded-TDC workload: blocks == nodes. Active cost per node constant.
  const auto small = hfast_cost(256, 256, p);
  const auto big = hfast_cost(4096, 4096, p);
  EXPECT_DOUBLE_EQ(big.active_cost / 4096.0, small.active_cost / 256.0);
  // Fat-tree ports per processor grow with system size.
  const auto fts = fat_tree_cost(256, p);
  const auto ftb = fat_tree_cost(65536, p);
  EXPECT_GT(static_cast<double>(ftb.packet_ports) / 65536.0,
            static_cast<double>(fts.packet_ports) / 256.0);
}

TEST(CostModel, CrossoverWithCheapCircuitPorts) {
  // At large P with bounded TDC, HFAST undercuts the fat-tree when (a) the
  // switch blocks are sized to the application degree — a TDC-6 workload
  // needs 8-port blocks, not 16 — and (b) circuit ports stay well below
  // packet-port price (the paper's MEMS premise). A P=65536 radix-8
  // fat-tree needs L=8 levels = 15 ports/processor; one 8-port block per
  // node is 8.
  CostParams cheap;
  cheap.circuit_port_cost = 0.1;
  cheap.block_size = 8;
  cheap.fat_tree_radix = 8;
  const auto h = hfast_cost(65536, 65536, cheap);
  const auto f = fat_tree_cost(65536, cheap, true);
  EXPECT_LT(h.total(), f.total());
  // With circuit ports priced like packet ports the advantage dies.
  CostParams pricey = cheap;
  pricey.circuit_port_cost = 1.5;
  const auto h2 = hfast_cost(65536, 65536, pricey);
  EXPECT_GT(h2.total(), f.total());
  EXPECT_GT(h2.total(), h.total());
}

TEST(CostModel, InputValidation) {
  CostParams p;
  EXPECT_THROW(hfast_cost(0, 1, p), ContractViolation);
  EXPECT_THROW(mesh_cost(4, 0, p), ContractViolation);
  EXPECT_THROW(icn_cost(0, 4, p), ContractViolation);
  EXPECT_THROW(collective_tree_ports(0), ContractViolation);
}

}  // namespace
}  // namespace hfast::core
