#include <gtest/gtest.h>

#include "hfast/util/assert.hpp"

#include "hfast/topo/anneal.hpp"
#include "hfast/topo/mesh.hpp"

namespace hfast::topo {
namespace {

graph::CommGraph grid_graph(int side) {
  graph::CommGraph g(side * side);
  for (int r = 0; r < side; ++r) {
    for (int c = 0; c < side; ++c) {
      const int u = r * side + c;
      g.add_message(u, r * side + (c + 1) % side, 8192);
      g.add_message(u, ((r + 1) % side) * side + c, 8192);
    }
  }
  return g;
}

TEST(Anneal, ImprovesRandomPlacement) {
  const auto g = grid_graph(4);
  MeshTorus torus({4, 4}, true);
  util::Rng rng(7);
  const auto start = random_embedding(16, 16, rng);
  const auto start_q = evaluate_embedding(g, torus, start);

  AnnealParams params;
  params.iterations = 30000;
  const auto result = anneal_embedding(g, torus, start, params);
  EXPECT_EQ(result.initial_cost, start_q.total_byte_hops);
  EXPECT_LT(result.final_cost, result.initial_cost);
  EXPECT_GT(result.improving_moves, 0);

  const auto final_q = evaluate_embedding(g, torus, result.embedding);
  EXPECT_EQ(final_q.total_byte_hops, result.final_cost);
}

TEST(Anneal, PerfectEmbeddingStaysOptimal) {
  // Identity placement of a 4x4 torus graph on a 4x4 torus is optimal
  // (every edge dilation 1); annealing must not make it worse.
  const auto g = grid_graph(4);
  MeshTorus torus({4, 4}, true);
  const auto result =
      anneal_embedding(g, torus, identity_embedding(16), {});
  EXPECT_EQ(result.final_cost, result.initial_cost);
  EXPECT_EQ(result.initial_cost, g.total_bytes());  // all dilation-1
}

TEST(Anneal, ResultIsPermutation) {
  const auto g = grid_graph(4);
  MeshTorus torus({4, 4}, true);
  util::Rng rng(3);
  const auto result =
      anneal_embedding(g, torus, random_embedding(16, 16, rng), {});
  std::set<Node> seen(result.embedding.node_of_task.begin(),
                      result.embedding.node_of_task.end());
  EXPECT_EQ(seen.size(), 16u);
}

TEST(Anneal, DeterministicUnderSeed) {
  const auto g = grid_graph(4);
  MeshTorus torus({4, 4}, true);
  util::Rng rng(9);
  const auto start = random_embedding(16, 16, rng);
  AnnealParams params;
  params.seed = 1234;
  const auto a = anneal_embedding(g, torus, start, params);
  const auto b = anneal_embedding(g, torus, start, params);
  EXPECT_EQ(a.final_cost, b.final_cost);
  EXPECT_EQ(a.embedding.node_of_task, b.embedding.node_of_task);
}

TEST(Anneal, ZeroIterationsIsIdentityTransform) {
  const auto g = grid_graph(4);
  MeshTorus torus({4, 4}, true);
  AnnealParams params;
  params.iterations = 0;
  const auto start = identity_embedding(16);
  const auto result = anneal_embedding(g, torus, start, params);
  EXPECT_EQ(result.embedding.node_of_task, start.node_of_task);
  EXPECT_EQ(result.accepted_moves, 0);
}

TEST(Anneal, InputValidation) {
  const auto g = grid_graph(4);
  MeshTorus torus({4, 4}, true);
  EXPECT_THROW(anneal_embedding(g, torus, Embedding{{0, 1}}, {}),
               ContractViolation);
  AnnealParams bad;
  bad.cooling = 1.5;
  EXPECT_THROW(anneal_embedding(g, torus, identity_embedding(16), bad),
               ContractViolation);
}

}  // namespace
}  // namespace hfast::topo
