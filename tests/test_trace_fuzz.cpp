/// TraceFuzz — randomized robustness of Trace::load_text. Trace files are
/// data (hand-edited, copied between machines, truncated by crashes), so
/// the loader's contract is: any malformed input throws hfast::Error naming
/// the 1-based line the problem is on — never undefined behavior, never an
/// unchecked allocation, never a silent crash. The suite mutates a real
/// captured trace under a seeded generator:
///   * whole-line truncations (a crashed writer) — "truncated region table"
///     / "truncated event stream" at the first missing line;
///   * known-invalid field substitutions in event lines — range errors at
///     exactly that event's line;
///   * structural duplications (header, region line) and header corruption;
///   * unconstrained byte-level corruption, where the only requirement is
///     "parses or throws Error" (the never-UB half, exercised under TSan
///     and ASan in CI).
///
/// Mutations are deliberately whole-line or whole-field: istream's numeric
/// parsing accepts any valid numeric prefix, so chopping trailing
/// characters off the final event line parses cleanly by design — that is
/// the text format's documented looseness, not a loader defect.

#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "hfast/analysis/experiment.hpp"
#include "hfast/mpisim/engine.hpp"
#include "hfast/mpisim/types.hpp"
#include "hfast/trace/trace.hpp"
#include "hfast/util/assert.hpp"

namespace hfast {
namespace {

struct TraceLines {
  std::vector<std::string> lines;  // [0] = header, then regions, then events
  std::size_t nregions = 0;
  std::size_t nevents = 0;
  int nranks = 0;

  std::string joined() const {
    std::string out;
    for (const std::string& l : lines) {
      out += l;
      out += '\n';
    }
    return out;
  }
  // 0-based index into `lines` of event j; +1 gives the 1-based file line.
  std::size_t event_index(std::size_t j) const { return 1 + nregions + j; }
};

TraceLines capture_base_trace() {
  analysis::ExperimentConfig cfg;
  cfg.app = "cactus";
  cfg.nranks = 8;
  cfg.engine = mpisim::fibers_supported() ? mpisim::EngineKind::kFibers
                                          : mpisim::EngineKind::kThreads;
  const auto r = analysis::run_experiment(cfg);
  std::ostringstream os;
  r.trace.save_text(os);

  TraceLines t;
  t.nranks = r.trace.nranks();
  t.nregions = r.trace.region_names().size();
  t.nevents = r.trace.events().size();
  std::istringstream is(os.str());
  std::string line;
  while (std::getline(is, line)) t.lines.push_back(line);
  EXPECT_EQ(t.lines.size(), 1 + t.nregions + t.nevents);
  return t;
}

/// Parse `text`; expect an Error whose message names `expected_line`.
void expect_error_at(const std::string& text, std::size_t expected_line,
                     const std::string& what) {
  std::istringstream is(text);
  try {
    trace::Trace::load_text(is);
    FAIL() << "load_text accepted malformed input (" << what << ")";
  } catch (const Error& e) {
    const std::string needle = "line " + std::to_string(expected_line) + ":";
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << what << ": expected error at " << needle << ", got: " << e.what();
  }
}

/// Replace 0-based field `field` of a space-separated line.
std::string with_field(const std::string& line, std::size_t field,
                       const std::string& value) {
  std::istringstream is(line);
  std::vector<std::string> tokens;
  std::string tok;
  while (is >> tok) tokens.push_back(tok);
  tokens.at(field) = value;
  std::string out;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (i != 0) out += ' ';
    out += tokens[i];
  }
  return out;
}

TEST(TraceFuzz, BaseTraceRoundTrips) {
  const TraceLines t = capture_base_trace();
  ASSERT_GT(t.nevents, 0u);
  ASSERT_GT(t.nregions, 0u);
  std::istringstream is(t.joined());
  const auto loaded = trace::Trace::load_text(is);
  EXPECT_EQ(loaded.nranks(), t.nranks);
  EXPECT_EQ(loaded.events().size(), t.nevents);
}

TEST(TraceFuzz, RandomTruncationsReportTheMissingLine) {
  const TraceLines t = capture_base_trace();
  std::mt19937 rng(20260807);
  std::uniform_int_distribution<std::size_t> keep_dist(1, t.lines.size() - 1);
  for (int trial = 0; trial < 64; ++trial) {
    const std::size_t keep = keep_dist(rng);
    std::string text;
    for (std::size_t i = 0; i < keep; ++i) text += t.lines[i] + "\n";
    // Line keep+1 (1-based) is the first one missing; the loader must name
    // it and say which table ran dry.
    const std::string what = "kept " + std::to_string(keep) + " lines";
    std::istringstream is(text);
    try {
      trace::Trace::load_text(is);
      FAIL() << "truncation accepted: " << what;
    } catch (const Error& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("line " + std::to_string(keep + 1) + ":"),
                std::string::npos)
          << what << ": " << msg;
      const bool in_regions = keep < 1 + t.nregions;
      EXPECT_NE(msg.find(in_regions ? "truncated region table"
                                    : "truncated event stream"),
                std::string::npos)
          << what << ": " << msg;
    }
  }
}

TEST(TraceFuzz, RandomInvalidFieldsReportTheEventLine) {
  const TraceLines t = capture_base_trace();
  std::mt19937 rng(987654321);
  std::uniform_int_distribution<std::size_t> event_dist(0, t.nevents - 1);
  // (field index in the event line, invalid value). Peer mutations apply
  // only to point-to-point events — collective peers are unchecked.
  const std::vector<std::pair<std::size_t, std::string>> kMutations = {
      {0, std::to_string(t.nranks)},                  // rank too large
      {0, "-1"},                                      // rank negative
      {1, "-7"},                                      // negative op index
      {2, "9"},                                       // bad event kind
      {3, std::to_string(mpisim::kNumCallTypes)},     // bad call type
      {4, std::to_string(t.nranks)},                  // peer too large
      {4, "-2"},                                      // peer negative
      {5, "-1"},                                      // negative byte count
      {6, std::to_string(t.nregions)},                // region out of range
  };
  std::uniform_int_distribution<std::size_t> mut_dist(0, kMutations.size() - 1);

  int applied = 0;
  while (applied < 96) {
    const std::size_t j = event_dist(rng);
    const auto& [field, value] = kMutations[mut_dist(rng)];
    const std::size_t idx = t.event_index(j);
    if (field == 4) {
      // Skip collective events: their peer field is ignored by design.
      std::istringstream ls(t.lines[idx]);
      long long rank = 0, op = 0;
      int kind = 0;
      ls >> rank >> op >> kind;
      if (kind == static_cast<int>(trace::EventKind::kCollective)) continue;
    }
    ++applied;
    TraceLines mutated = t;
    mutated.lines[idx] = with_field(mutated.lines[idx], field, value);
    expect_error_at(mutated.joined(), idx + 1,
                    "event " + std::to_string(j) + " field " +
                        std::to_string(field) + " := " + value);
  }
}

TEST(TraceFuzz, StructuralDuplicationsAndHeaderCorruption) {
  const TraceLines t = capture_base_trace();

  // Duplicated header: the copy lands where the first region line belongs.
  {
    TraceLines m = t;
    m.lines.insert(m.lines.begin() + 1, m.lines[0]);
    expect_error_at(m.joined(), 2, "duplicated header");
  }
  // Duplicated region line: the table shifts down one, so the last real
  // region line is read as the first event and fails numeric parsing.
  {
    TraceLines m = t;
    m.lines.insert(m.lines.begin() + 1, m.lines[1]);
    expect_error_at(m.joined(), 1 + t.nregions + 1, "duplicated region line");
  }
  // Deleted event line: the stream runs dry one line early.
  {
    TraceLines m = t;
    m.lines.erase(m.lines.end() - 1);
    expect_error_at(m.joined(), m.lines.size() + 1, "deleted event line");
  }
  // nranks=0: every event's rank is out of [0, 0).
  {
    TraceLines m = t;
    m.lines[0] = with_field(m.lines[0], 2, "nranks=0");
    expect_error_at(m.joined(), 1 + t.nregions + 1, "nranks=0 header");
  }
  // Negative nranks is rejected before any allocation.
  {
    TraceLines m = t;
    m.lines[0] = with_field(m.lines[0], 2, "nranks=-5");
    expect_error_at(m.joined(), 1, "negative nranks");
  }
  // Overflowing header value fails as unparseable, not as UB.
  {
    TraceLines m = t;
    m.lines[0] = with_field(m.lines[0], 2, "nranks=99999999999999999999");
    expect_error_at(m.joined(), 1, "overflowing nranks");
  }
  // Wrong magic / version.
  {
    TraceLines m = t;
    m.lines[0] = with_field(m.lines[0], 1, "v2");
    expect_error_at(m.joined(), 1, "bad version");
  }
}

/// The never-UB half: arbitrary byte corruption must either parse or throw
/// Error. No assertion about which — only that the loader stays inside its
/// contract (exercised under ASan/TSan in CI).
TEST(TraceFuzz, ArbitraryCorruptionNeverEscapesErrorContract) {
  const TraceLines t = capture_base_trace();
  const std::string base = t.joined();
  std::mt19937 rng(0xf002);
  std::uniform_int_distribution<std::size_t> pos_dist(0, base.size() - 1);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  std::uniform_int_distribution<int> count_dist(1, 8);
  for (int trial = 0; trial < 128; ++trial) {
    std::string text = base;
    const int edits = count_dist(rng);
    for (int k = 0; k < edits; ++k) {
      text[pos_dist(rng)] = static_cast<char>(byte_dist(rng));
    }
    std::istringstream is(text);
    try {
      const auto loaded = trace::Trace::load_text(is);
      // Accepted input must still satisfy the Trace invariants enough to
      // walk: iterate everything the loader produced.
      std::uint64_t sum = 0;
      for (const auto& e : loaded.events()) sum += e.bytes;
      (void)sum;
    } catch (const Error&) {
      // In-contract rejection.
    }
  }
}

}  // namespace
}  // namespace hfast
