#include <gtest/gtest.h>

#include "hfast/util/assert.hpp"

#include "hfast/util/histogram.hpp"

namespace hfast::util {
namespace {

TEST(LogHistogram, EmptyBehaviour) {
  LogHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.total(), 0u);
  EXPECT_TRUE(h.cdf().empty());
  EXPECT_DOUBLE_EQ(h.percent_at_or_below(100), 0.0);
  EXPECT_THROW(h.min_size(), ContractViolation);
}

TEST(LogHistogram, CdfIsMonotoneAndEndsAt100) {
  LogHistogram h;
  h.add(8, 10);
  h.add(1024, 30);
  h.add(64, 60);
  const auto cdf = h.cdf();
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_EQ(cdf[0].size, 8u);
  EXPECT_DOUBLE_EQ(cdf[0].cumulative_percent, 10.0);
  EXPECT_DOUBLE_EQ(cdf[1].cumulative_percent, 70.0);
  EXPECT_DOUBLE_EQ(cdf[2].cumulative_percent, 100.0);
}

TEST(LogHistogram, PercentAtOrBelow) {
  LogHistogram h;
  h.add(100, 50);
  h.add(3000, 50);
  EXPECT_DOUBLE_EQ(h.percent_at_or_below(99), 0.0);
  EXPECT_DOUBLE_EQ(h.percent_at_or_below(100), 50.0);
  EXPECT_DOUBLE_EQ(h.percent_at_or_below(2048), 50.0);
  EXPECT_DOUBLE_EQ(h.percent_at_or_below(3000), 100.0);
}

TEST(LogHistogram, MedianAndExtremes) {
  LogHistogram h;
  h.add(10, 3);
  h.add(1000, 2);
  EXPECT_EQ(h.median(), 10u);
  EXPECT_EQ(h.min_size(), 10u);
  EXPECT_EQ(h.max_size(), 1000u);
  EXPECT_EQ(h.total_bytes(), 10u * 3 + 1000u * 2);
}

TEST(LogHistogram, MergeAccumulates) {
  LogHistogram a, b;
  a.add(10, 1);
  b.add(10, 2);
  b.add(20, 1);
  a.merge(b);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.raw().at(10), 3u);
  EXPECT_EQ(a.raw().at(20), 1u);
}

TEST(LogHistogram, Pow2Buckets) {
  LogHistogram h;
  h.add(0, 1);
  h.add(1, 1);
  h.add(3, 1);   // -> bucket 4
  h.add(4, 1);   // -> bucket 4
  h.add(5, 1);   // -> bucket 8
  const auto buckets = h.pow2_buckets();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], (std::pair<std::uint64_t, std::uint64_t>{0, 1}));
  EXPECT_EQ(buckets[1], (std::pair<std::uint64_t, std::uint64_t>{1, 1}));
  EXPECT_EQ(buckets[2], (std::pair<std::uint64_t, std::uint64_t>{4, 2}));
  EXPECT_EQ(buckets[3], (std::pair<std::uint64_t, std::uint64_t>{8, 1}));
}

}  // namespace
}  // namespace hfast::util
