#include <gtest/gtest.h>

#include "hfast/util/assert.hpp"

#include "hfast/netsim/bdp.hpp"

namespace hfast::netsim {
namespace {

TEST(Bdp, Table1ValuesMatchPaper) {
  const auto specs = table1_specs();
  ASSERT_EQ(specs.size(), 5u);

  // SGI Altix: 1.1us x 1.9 GB/s ~= 2 KB.
  EXPECT_EQ(specs[0].system, "SGI Altix");
  EXPECT_NEAR(bandwidth_delay_product(specs[0]), 2090, 1);
  // Cray X1: 7.3us x 6.3 GB/s ~= 46 KB.
  EXPECT_NEAR(bandwidth_delay_product(specs[1]) / 1024.0, 44.9, 0.5);
  // Earth Simulator ~= 8.4 KB.
  EXPECT_NEAR(bandwidth_delay_product(specs[2]) / 1024.0, 8.2, 0.3);
  // Myrinet ~= 2.8 KB.
  EXPECT_NEAR(bandwidth_delay_product(specs[3]) / 1024.0, 2.78, 0.1);
  // XD1 ~= 3.4 KB.
  EXPECT_NEAR(bandwidth_delay_product(specs[4]) / 1024.0, 3.32, 0.1);
}

TEST(Bdp, BdpMessageReachesHalfPeak) {
  for (const auto& spec : table1_specs()) {
    const auto bdp =
        static_cast<std::uint64_t>(bandwidth_delay_product(spec));
    const double eff = effective_bandwidth(spec, bdp);
    EXPECT_NEAR(eff / spec.peak_bandwidth_bps, 0.5, 0.01) << spec.system;
  }
}

TEST(Bdp, EffectiveBandwidthMonotoneInSize) {
  const auto spec = table1_specs()[0];
  double prev = 0.0;
  for (std::uint64_t s = 64; s <= 16 * 1024 * 1024; s *= 4) {
    const double eff = effective_bandwidth(spec, s);
    EXPECT_GT(eff, prev);
    EXPECT_LT(eff, spec.peak_bandwidth_bps);
    prev = eff;
  }
  EXPECT_DOUBLE_EQ(effective_bandwidth(spec, 0), 0.0);
}

TEST(Bdp, SaturationSizeClosedForm) {
  const auto spec = table1_specs()[0];
  // 90% of peak needs 9x the BDP.
  EXPECT_NEAR(saturation_size(spec, 0.9),
              9.0 * bandwidth_delay_product(spec), 1e-6);
  // And indeed delivers 90%.
  const auto s = static_cast<std::uint64_t>(saturation_size(spec, 0.9));
  EXPECT_NEAR(effective_bandwidth(spec, s) / spec.peak_bandwidth_bps, 0.9,
              0.01);
  EXPECT_THROW(saturation_size(spec, 0.0), ContractViolation);
  EXPECT_THROW(saturation_size(spec, 1.0), ContractViolation);
}

TEST(Bdp, PaperThresholdTracksBestBdp) {
  double best = 1e18;
  for (const auto& spec : table1_specs()) {
    best = std::min(best, bandwidth_delay_product(spec));
  }
  // The paper picks 2 KB because the best BDP hovers close to 2 KB.
  EXPECT_NEAR(best, static_cast<double>(paper_threshold_bytes()), 128);
}

}  // namespace
}  // namespace hfast::netsim
