#include <gtest/gtest.h>

#include "hfast/util/assert.hpp"

#include "hfast/util/stats.hpp"

namespace hfast::util {
namespace {

TEST(Stats, MeanAndStddev) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({2.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(stddev({1.0}), 0.0);
  EXPECT_NEAR(stddev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}), 2.138, 1e-3);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 25.0);
  EXPECT_DOUBLE_EQ(median({5.0, 1.0, 3.0}), 3.0);
}

TEST(Stats, PercentileContract) {
  EXPECT_THROW(percentile({1.0}, -1), hfast::ContractViolation);
  EXPECT_THROW(percentile({1.0}, 101), hfast::ContractViolation);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(Stats, WeightedMedianLowerMedian) {
  std::map<std::uint64_t, std::uint64_t> counts;
  EXPECT_EQ(weighted_median(counts), 0u);
  counts[100] = 1;
  EXPECT_EQ(weighted_median(counts), 100u);
  counts[200] = 1;  // even total: lower median
  EXPECT_EQ(weighted_median(counts), 100u);
  counts[200] = 3;  // 1x100, 3x200 -> rank 2 of 4 -> 200
  EXPECT_EQ(weighted_median(counts), 200u);
  counts.clear();
  counts[64] = 1000;
  counts[1048576] = 999;
  EXPECT_EQ(weighted_median(counts), 64u);
}

TEST(Accumulator, TracksMinMaxMeanCount) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  acc.add(3.0);
  acc.add(-1.0);
  acc.add(4.0);
  EXPECT_EQ(acc.count(), 3u);
  EXPECT_DOUBLE_EQ(acc.min(), -1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 6.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.0);
}

}  // namespace
}  // namespace hfast::util
