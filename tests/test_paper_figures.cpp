/// Shape assertions for the paper's Figures 2-4 beyond Table 3's reduced
/// columns: call-mix dominance orderings, buffer-size CDF shapes, and the
/// bisection-demand signature that separates case iv from the rest.

#include <gtest/gtest.h>

#include "hfast/util/assert.hpp"

#include <algorithm>

#include "hfast/analysis/experiment.hpp"
#include "hfast/graph/bisection.hpp"

namespace hfast::analysis {
namespace {

using mpisim::CallType;

std::vector<CallType> dominance_order(const ExperimentResult& r,
                                      std::size_t top_n) {
  std::vector<CallType> order;
  for (const auto& e : r.steady.call_breakdown(0.0)) {
    if (e.call == CallType::kCount) continue;
    order.push_back(e.call);
    if (order.size() == top_n) break;
  }
  return order;
}

TEST(Figure2Shape, DominantCallsMatchPaperOrdering) {
  // P=64 is enough for the orderings (they are concurrency-stable).
  const auto cactus = run_experiment("cactus", 64);
  EXPECT_EQ(dominance_order(cactus, 1)[0], CallType::kWait);

  const auto lbmhd = run_experiment("lbmhd", 64);
  const auto l3 = dominance_order(lbmhd, 3);
  EXPECT_EQ(l3[2], CallType::kWaitall);  // isend/irecv tie above it

  const auto gtc = run_experiment("gtc", 64);
  const auto g2 = dominance_order(gtc, 2);
  EXPECT_EQ(g2[0], CallType::kGather);
  EXPECT_EQ(g2[1], CallType::kSendrecv);

  const auto pmemd = run_experiment("pmemd", 64);
  const auto p3 = dominance_order(pmemd, 3);
  EXPECT_TRUE(std::find(p3.begin(), p3.end(), CallType::kWaitany) != p3.end());

  const auto paratec = run_experiment("paratec", 64);
  EXPECT_EQ(dominance_order(paratec, 1)[0], CallType::kWait);

  const auto superlu = run_experiment("superlu", 64);
  EXPECT_EQ(dominance_order(superlu, 1)[0], CallType::kWait);
  // SuperLU uses blocking and nonblocking in comparable volume.
  EXPECT_GT(superlu.steady.calls_of(CallType::kSend), 0u);
  EXPECT_GT(superlu.steady.calls_of(CallType::kRecv), 0u);
  EXPECT_GT(superlu.steady.calls_of(CallType::kBcast), 0u);
}

TEST(Figure4Shape, PerAppBufferCdfs) {
  // Cactus: every PTP buffer is the ~300 KB ghost face.
  const auto cactus = run_experiment("cactus", 64);
  EXPECT_DOUBLE_EQ(cactus.steady.ptp_buffers().percent_at_or_below(100 * 1024),
                   0.0);
  EXPECT_EQ(cactus.steady.ptp_buffers().raw().size(), 1u);

  // LBMHD: single large size too.
  const auto lbmhd = run_experiment("lbmhd", 64);
  EXPECT_EQ(lbmhd.steady.ptp_buffers().min_size(), 811u * 1024u);

  // GTC: small spill buffers exist but >=80% of bytes move in >=128 KB
  // messages (the paper: "over 80% of the messaging occurs with 1MB or
  // larger transfers" — our shifts are 128 KB; assert the dominance, not
  // the absolute size).
  const auto gtc = run_experiment("gtc", 256);
  const auto& gh = gtc.steady.ptp_buffers().raw();
  std::uint64_t big_bytes = 0, all_bytes = 0;
  for (const auto& [size, count] : gh) {
    all_bytes += size * count;
    if (size >= 128 * 1024) big_bytes += size * count;
  }
  EXPECT_GT(static_cast<double>(big_bytes) / static_cast<double>(all_bytes),
            0.8);

  // SuperLU/PARATEC: wide spread, small sizes dominating the call count.
  for (const char* app : {"superlu", "paratec"}) {
    const auto r = run_experiment(app, 64);
    const auto& h = r.steady.ptp_buffers();
    EXPECT_GE(h.percent_at_or_below(64), 45.0) << app;
    EXPECT_GE(h.max_size(), 16u * 1024u) << app;
  }

  // PMEMD: many distinct sizes from the distance decay.
  const auto pmemd = run_experiment("pmemd", 64);
  EXPECT_GE(pmemd.steady.ptp_buffers().raw().size(), 10u);
}

TEST(BisectionDemand, SeparatesCaseIvFromLocalizedCodes) {
  // PARATEC's global transposes force ~half its traffic across any
  // balanced bipartition; Cactus's stencil traffic concentrates inside a
  // good half-split. (Restarts kept small: KL is O(n^3)-ish per pass.)
  const auto cactus = run_experiment("cactus", 16);
  const auto paratec = run_experiment("paratec", 16);
  graph::BisectionParams params;
  params.restarts = 2;
  const auto bc = graph::min_bisection(cactus.comm_graph, params);
  const auto bp = graph::min_bisection(paratec.comm_graph, params);
  EXPECT_LT(bc.demand_fraction(), 0.35);
  EXPECT_GT(bp.demand_fraction(), 0.4);
  EXPECT_GT(bp.demand_fraction(), 1.5 * bc.demand_fraction());
}

}  // namespace
}  // namespace hfast::analysis
