#include <gtest/gtest.h>

#include "hfast/util/assert.hpp"

#include <sstream>

#include "hfast/util/ascii_plot.hpp"
#include "hfast/util/format.hpp"
#include "hfast/util/table.hpp"

namespace hfast::util {
namespace {

TEST(Table, AlignsAndPrintsAllCells) {
  Table t({"Name", "Value"});
  t.row().add("alpha").add(std::int64_t{42});
  t.row().add("b").add(3.14159, 2);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_NE(s.find("3.14"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, RowOverflowIsContractViolation) {
  Table t({"A"});
  t.row().add("x");
  EXPECT_THROW(t.add("y"), ContractViolation);
  EXPECT_THROW(Table({}), ContractViolation);
}

TEST(Table, AddBeforeRowIsContractViolation) {
  Table t({"A"});
  EXPECT_THROW(t.add("x"), ContractViolation);
}

TEST(Table, CsvEscaping) {
  Table t({"x", "note"});
  t.row().add("1").add("hello, \"world\"");
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"hello, \"\"world\"\"\""), std::string::npos);
}

TEST(Format, SizeLabels) {
  EXPECT_EQ(size_label(0), "0");
  EXPECT_EQ(size_label(512), "512");
  EXPECT_EQ(size_label(2048), "2k");
  EXPECT_EQ(size_label(1024 * 1024), "1MB");
  EXPECT_EQ(size_label(1536), "1.5k");
}

TEST(Format, RateAndByteLabels) {
  EXPECT_EQ(rate_label(1.9e9), "1.9 GB/s");
  EXPECT_EQ(rate_label(500e6), "500 MB/s");
  EXPECT_EQ(bytes_label(2048), "2.0 KB");
  EXPECT_EQ(percent_label(12.34, 1), "12.3%");
}

TEST(Format, TimeLabels) {
  EXPECT_EQ(time_label(1.1e-6), "1.1us");
  EXPECT_EQ(time_label(2.5e-3), "2.5ms");
  EXPECT_EQ(time_label(3.0), "3.0s");
  EXPECT_EQ(time_label(50e-9), "50.0ns");
}

TEST(AsciiPlot, LineChartContainsSeriesAndLegend) {
  Series s1{"max", {1, 2, 3}};
  Series s2{"avg", {0.5, 1.0, 1.5}};
  const auto chart = line_chart("title", {"a", "b", "c"}, {s1, s2});
  EXPECT_NE(chart.find("title"), std::string::npos);
  EXPECT_NE(chart.find("legend"), std::string::npos);
  EXPECT_NE(chart.find("max"), std::string::npos);
  EXPECT_NE(chart.find("avg"), std::string::npos);
}

TEST(AsciiPlot, LineChartValidatesShape) {
  Series bad{"s", {1, 2}};
  EXPECT_THROW(line_chart("t", {"a", "b", "c"}, {bad}), ContractViolation);
  EXPECT_THROW(line_chart("t", {}, {}), ContractViolation);
}

TEST(AsciiPlot, HeatmapRendersSquareMatrix) {
  std::vector<std::vector<double>> m(8, std::vector<double>(8, 0.0));
  m[1][2] = 100.0;
  const auto hm = heatmap("vol", m);
  EXPECT_NE(hm.find("vol"), std::string::npos);
  EXPECT_NE(hm.find("8x8"), std::string::npos);
  // The hot cell renders with the densest ramp glyph.
  EXPECT_NE(hm.find('@'), std::string::npos);
}

TEST(AsciiPlot, HeatmapRejectsRaggedMatrix) {
  std::vector<std::vector<double>> m{{1.0, 2.0}, {3.0}};
  EXPECT_THROW(heatmap("x", m), ContractViolation);
}

}  // namespace
}  // namespace hfast::util
