/// SmpParity — the cores_per_node = 1 contract: promoting SMP packing to a
/// first-class provisioning mode must leave the classic per-task pipeline
/// bit-identical. At one core per node every packing policy is the
/// identity, so for all six paper applications:
///   * the recorded trace is byte-identical to the default pipeline's
///     (packing is post-simulation and never perturbs the run),
///   * the node-level ProvisionStats equal the task-level greedy
///     provisioning (same block sizing rule) field for field,
///   * replaying on the SMP fabric network equals replaying on the plain
///     FabricNetwork exactly — bitwise-equal ReplayResult under the serial
///     replay and the partitioned-clock parallel replay at K in {2, 4}.

#include <gtest/gtest.h>

#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "hfast/analysis/experiment.hpp"
#include "hfast/analysis/smp.hpp"
#include "hfast/core/provision.hpp"
#include "hfast/graph/tdc.hpp"
#include "hfast/mpisim/engine.hpp"
#include "hfast/netsim/replay.hpp"
#include "hfast/netsim/replay_parallel.hpp"

namespace hfast {
namespace {

constexpr const char* kApps[] = {"cactus",  "gtc",   "lbmhd",
                                 "superlu", "pmemd", "paratec"};

/// Fibers when supported: single-threaded and deterministic, so two runs of
/// one config produce identical traces (the byte-identity half of the
/// contract needs a deterministic engine).
mpisim::EngineKind test_engine() {
  return mpisim::fibers_supported() ? mpisim::EngineKind::kFibers
                                    : mpisim::EngineKind::kThreads;
}

std::string trace_text(const trace::Trace& t) {
  std::ostringstream os;
  t.save_text(os);
  return os.str();
}

/// The communication graph replay provisions from: every send the trace
/// contains (replay_traces' hfast path).
graph::CommGraph send_graph(const trace::Trace& t) {
  graph::CommGraph g(t.nranks());
  for (const trace::CommEvent& e : t.events()) {
    if (e.kind == trace::EventKind::kSend && e.peer != e.rank && e.peer >= 0) {
      g.add_message(e.rank, e.peer, e.bytes);
    }
  }
  return g;
}

/// The pre-SMP derivation of provisioning stats (what sec53_cost_model
/// computed by hand before the mode existed): blocks sized to the task
/// graph's thresholded TDC, greedy provisioning at the BDP cutoff.
core::ProvisionStats pre_smp_stats(const graph::CommGraph& g) {
  const auto t = graph::tdc(g, graph::kBdpCutoffBytes);
  core::ProvisionParams pp;
  pp.block_size = t.max < 8 ? 8 : 16;
  return core::provision_greedy(g, pp).stats;
}

analysis::ExperimentResult run(const char* app, int nranks,
                               const core::SmpConfig& smp) {
  analysis::ExperimentConfig cfg;
  cfg.app = app;
  cfg.nranks = nranks;
  cfg.engine = test_engine();
  cfg.smp = smp;
  return analysis::run_experiment(cfg);
}

void expect_identity_artifacts(const analysis::ExperimentResult& r) {
  const auto& smp = r.smp;
  EXPECT_EQ(smp.num_nodes, r.config.nranks);
  EXPECT_EQ(smp.backplane_bytes, 0u);
  std::vector<int> identity(static_cast<std::size_t>(r.config.nranks));
  std::iota(identity.begin(), identity.end(), 0);
  EXPECT_EQ(smp.node_of_task, identity);
  EXPECT_EQ(smp.node_graph.num_nodes(), r.comm_graph.num_nodes());
  EXPECT_EQ(smp.node_graph.edges(), r.comm_graph.edges());
  EXPECT_TRUE(smp.provision == pre_smp_stats(r.comm_graph));
  const auto t = graph::tdc(r.comm_graph, graph::kBdpCutoffBytes);
  EXPECT_EQ(smp.node_tdc_max, t.max);
  EXPECT_EQ(smp.node_tdc_avg, t.avg);
}

void expect_trace_and_provision_parity(int nranks) {
  for (const char* app : kApps) {
    SCOPED_TRACE(std::string(app) + " P=" + std::to_string(nranks));
    const auto base = run(app, nranks, {});  // today's default pipeline
    expect_identity_artifacts(base);
    for (const core::SmpPacking packing :
         {core::SmpPacking::kRankOrder, core::SmpPacking::kAffinity}) {
      SCOPED_TRACE(core::packing_name(packing));
      const auto smp = run(app, nranks, {1, packing});
      EXPECT_EQ(trace_text(base.trace), trace_text(smp.trace))
          << "cores_per_node = 1 perturbed the recorded trace";
      expect_identity_artifacts(smp);
    }
  }
}

TEST(SmpParity, TraceAndProvisionIdenticalAtP64) {
  expect_trace_and_provision_parity(64);
}

TEST(SmpParity, TraceAndProvisionIdenticalAtP256) {
  expect_trace_and_provision_parity(256);
}

/// Replay parity at P=64: serial and K in {2, 4} parallel shards, both
/// packings, all six applications.
TEST(SmpParity, ReplayIdenticalAtP64SerialAndSharded) {
  const netsim::LinkParams link;
  for (const char* app : kApps) {
    SCOPED_TRACE(app);
    const auto base = run(app, 64, {});
    const auto g = send_graph(base.trace);
    const auto pre = core::provision_greedy(g, {.cutoff = 0});
    netsim::FabricNetwork fab(pre.fabric, link, 50e-9);
    const auto serial_pre = netsim::replay(base.trace, fab);
    EXPECT_GT(serial_pre.messages, 0u);

    for (const core::SmpPacking packing :
         {core::SmpPacking::kRankOrder, core::SmpPacking::kAffinity}) {
      SCOPED_TRACE(core::packing_name(packing));
      auto bundle = analysis::make_smp_network(g, {1, packing}, link);
      EXPECT_EQ(bundle.backplane_bytes, 0u);
      const auto serial_smp = netsim::replay(base.trace, *bundle.net);
      EXPECT_TRUE(serial_pre == serial_smp)
          << "serial replay diverged: makespan " << serial_pre.makespan_s
          << " vs " << serial_smp.makespan_s;
      for (int shards : {2, 4}) {
        SCOPED_TRACE("shards=" + std::to_string(shards));
        const auto par = netsim::parallel_replay(base.trace, *bundle.net, {},
                                                 {.shards = shards});
        EXPECT_TRUE(serial_pre == par)
            << "parallel replay diverged: makespan " << serial_pre.makespan_s
            << " vs " << par.makespan_s;
      }
    }
  }
}

/// Replay parity at P=256 under the serial algorithm (the parallel replay's
/// serial-equivalence is its own suite's contract and is exercised against
/// the SMP network at P=64 above; the all-to-all codes' parallel replay at
/// P=256 is minutes of wall clock for no additional coverage).
TEST(SmpParity, ReplayIdenticalAtP256Serial) {
  const netsim::LinkParams link;
  for (const char* app : kApps) {
    SCOPED_TRACE(app);
    const auto base = run(app, 256, {});
    const auto g = send_graph(base.trace);
    const auto pre = core::provision_greedy(g, {.cutoff = 0});
    netsim::FabricNetwork fab(pre.fabric, link, 50e-9);
    const auto serial_pre = netsim::replay(base.trace, fab);
    EXPECT_GT(serial_pre.messages, 0u);
    auto bundle =
        analysis::make_smp_network(g, {1, core::SmpPacking::kRankOrder}, link);
    const auto serial_smp = netsim::replay(base.trace, *bundle.net);
    EXPECT_TRUE(serial_pre == serial_smp)
        << "serial replay diverged: makespan " << serial_pre.makespan_s
        << " vs " << serial_smp.makespan_s;
  }
}

}  // namespace
}  // namespace hfast
