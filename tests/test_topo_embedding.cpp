#include <gtest/gtest.h>

#include "hfast/util/assert.hpp"

#include "hfast/topo/embedding.hpp"
#include "hfast/topo/fcn.hpp"
#include "hfast/topo/mesh.hpp"

namespace hfast::topo {
namespace {

graph::CommGraph ring_graph(int n) {
  graph::CommGraph g(n);
  for (int i = 0; i < n; ++i) g.add_message(i, (i + 1) % n, 4096);
  return g;
}

TEST(Embedding, IdentityIsIota) {
  const auto e = identity_embedding(5);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(e(i), i);
}

TEST(Embedding, RandomIsPermutationOfSubset) {
  util::Rng rng(1);
  const auto e = random_embedding(6, 10, rng);
  ASSERT_EQ(e.node_of_task.size(), 6u);
  std::set<Node> uniq(e.node_of_task.begin(), e.node_of_task.end());
  EXPECT_EQ(uniq.size(), 6u);
  for (Node n : e.node_of_task) {
    EXPECT_GE(n, 0);
    EXPECT_LT(n, 10);
  }
  EXPECT_THROW(random_embedding(11, 10, rng), ContractViolation);
}

TEST(Embedding, EvaluateOnFcnIsAlwaysDilationOne) {
  const auto g = ring_graph(8);
  FullyConnected fcn(8);
  const auto q = evaluate_embedding(g, fcn, identity_embedding(8));
  EXPECT_DOUBLE_EQ(q.avg_dilation, 1.0);
  EXPECT_EQ(q.max_dilation, 1);
  EXPECT_EQ(q.max_link_load, 4096u);
}

TEST(Embedding, IdentityRingOnRingTorusIsPerfect) {
  const auto g = ring_graph(8);
  MeshTorus ring_topo({8}, true);
  const auto q = evaluate_embedding(g, ring_topo, identity_embedding(8));
  EXPECT_DOUBLE_EQ(q.avg_dilation, 1.0);
  EXPECT_EQ(q.max_dilation, 1);
}

TEST(Embedding, GreedyBeatsRandomOnStructuredPattern) {
  // 4x4 grid communication on a 4x4 torus: greedy placement should achieve
  // (near-)unit dilation, random placement almost surely not.
  graph::CommGraph g(16);
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      const int u = r * 4 + c;
      g.add_message(u, r * 4 + (c + 1) % 4, 8192);
      g.add_message(u, ((r + 1) % 4) * 4 + c, 8192);
    }
  }
  MeshTorus torus({4, 4}, true);
  const auto greedy = evaluate_embedding(g, torus, greedy_embedding(g, torus));
  util::Rng rng(99);
  const auto random = evaluate_embedding(
      g, torus, random_embedding(16, 16, rng));
  EXPECT_LT(greedy.avg_dilation, random.avg_dilation);
  EXPECT_LE(greedy.avg_dilation, 2.0);
}

TEST(Embedding, CongestionAccountsSharedLinks) {
  // Two tasks routing through the same middle node of a path.
  graph::CommGraph g(3);
  g.add_message(0, 2, 1000);
  g.add_message(1, 2, 500);
  MeshTorus path({3}, false);
  const auto q = evaluate_embedding(g, path, identity_embedding(3));
  // Edge 0-2 routes 0-1-2 (2 hops); link 1-2 carries both flows.
  EXPECT_EQ(q.max_link_load, 1500u);
  EXPECT_EQ(q.max_dilation, 2);
  EXPECT_EQ(q.total_byte_hops, 1000u * 2 + 500u * 1);
}

TEST(Embedding, SizeMismatchRejected) {
  const auto g = ring_graph(4);
  MeshTorus t({4}, true);
  Embedding bad{{0, 1}};
  EXPECT_THROW(evaluate_embedding(g, t, bad), ContractViolation);
}

}  // namespace
}  // namespace hfast::topo
