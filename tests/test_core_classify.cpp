#include <gtest/gtest.h>

#include "hfast/util/assert.hpp"

#include "hfast/core/classify.hpp"

namespace hfast::core {
namespace {

graph::CommGraph torus2d(int side) {
  graph::CommGraph g(side * side);
  for (int r = 0; r < side; ++r) {
    for (int c = 0; c < side; ++c) {
      const int u = r * side + c;
      g.add_message(u, r * side + (c + 1) % side, 8192);
      g.add_message(u, ((r + 1) % side) * side + c, 8192);
    }
  }
  return g;
}

graph::CommGraph diagonal(int side) {
  graph::CommGraph g(side * side);
  for (int r = 0; r < side; ++r) {
    for (int c = 0; c < side; ++c) {
      const int u = r * side + c;
      const int v = ((r + 1) % side) * side + (c + 1) % side;
      const int w = ((r + 1) % side) * side + (c + side - 1) % side;
      if (u != v) g.add_message(u, v, 8192);
      if (u != w) g.add_message(u, w, 8192);
    }
  }
  return g;
}

graph::CommGraph complete(int n) {
  graph::CommGraph g(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) g.add_message(i, j, 32768);
  }
  return g;
}

graph::CommGraph ring_plus_master(int n) {
  graph::CommGraph g(n);
  for (int i = 0; i < n; ++i) g.add_message(i, (i + 1) % n, 8192);
  for (int i = 2; i < n - 1; ++i) g.add_message(0, i, 8192);
  return g;
}

/// Degree ~ sqrt(P): row/column pattern on a square grid.
graph::CommGraph rowcol(int side) {
  graph::CommGraph g(side * side);
  for (int r = 0; r < side; ++r) {
    for (int c = 0; c < side; ++c) {
      const int u = r * side + c;
      for (int k = c + 1; k < side; ++k) g.add_message(u, r * side + k, 8192);
      for (int k = r + 1; k < side; ++k) g.add_message(u, k * side + c, 8192);
    }
  }
  return g;
}

TEST(Classify, TorusIsCaseI) {
  const auto cls = classify(torus2d(4), torus2d(8));
  EXPECT_EQ(cls.comm_case, CommCase::kCaseI);
  EXPECT_TRUE(cls.mesh_embeddable);
  EXPECT_TRUE(cls.isotropic);
  EXPECT_FALSE(cls.degree_scales_with_p);
}

TEST(Classify, DiagonalLatticeIsCaseII) {
  const auto cls = classify(diagonal(6), diagonal(12));
  EXPECT_EQ(cls.comm_case, CommCase::kCaseII);
  EXPECT_FALSE(cls.mesh_embeddable);
}

TEST(Classify, MasterWorkerIsCaseIII) {
  const auto cls = classify(ring_plus_master(16), ring_plus_master(64));
  EXPECT_EQ(cls.comm_case, CommCase::kCaseIII);
  EXPECT_GT(cls.tdc.max, 2 * cls.tdc.avg);
}

TEST(Classify, SqrtScalingIsCaseIII) {
  const auto cls = classify(rowcol(4), rowcol(8));
  EXPECT_EQ(cls.comm_case, CommCase::kCaseIII);
  EXPECT_TRUE(cls.degree_scales_with_p);
}

TEST(Classify, FullConnectivityIsCaseIV) {
  const auto cls = classify(complete(16), complete(32));
  EXPECT_EQ(cls.comm_case, CommCase::kCaseIV);
  EXPECT_DOUBLE_EQ(cls.fcn_utilization, 1.0);
}

TEST(Classify, SingleGraphOverloadWorks) {
  const auto cls = classify(torus2d(8));
  EXPECT_EQ(cls.comm_case, CommCase::kCaseI);
  EXPECT_FALSE(cls.degree_scales_with_p);
}

TEST(Classify, OrderContract) {
  EXPECT_THROW(classify(torus2d(8), torus2d(4)), ContractViolation);
}

TEST(Classify, ToStringCoversAllCases) {
  for (auto c : {CommCase::kCaseI, CommCase::kCaseII, CommCase::kCaseIII,
                 CommCase::kCaseIV}) {
    EXPECT_FALSE(to_string(c).empty());
  }
}

}  // namespace
}  // namespace hfast::core
