#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "hfast/mpisim/mailbox.hpp"
#include "hfast/util/assert.hpp"

namespace hfast::mpisim {
namespace {

Message make_msg(Rank src, Tag tag, std::uint64_t bytes, int comm = 0,
                 bool internal = false) {
  Message m;
  m.comm_id = comm;
  m.src_world = src;
  m.src_comm = src;
  m.tag = tag;
  m.bytes = bytes;
  m.internal = internal;
  return m;
}

class MailboxTest : public ::testing::Test {
 protected:
  std::atomic<bool> abort_{false};
  Mailbox mb_{&abort_, std::chrono::milliseconds(500)};
};

TEST_F(MailboxTest, ExactMatchRemovesMessage) {
  mb_.deliver(make_msg(3, 7, 100));
  Message out;
  EXPECT_FALSE(mb_.try_match(0, 2, 7, false, out));  // wrong src
  EXPECT_FALSE(mb_.try_match(0, 3, 8, false, out));  // wrong tag
  EXPECT_TRUE(mb_.try_match(0, 3, 7, false, out));
  EXPECT_EQ(out.bytes, 100u);
  EXPECT_EQ(mb_.pending(), 0u);
}

TEST_F(MailboxTest, WildcardsMatch) {
  mb_.deliver(make_msg(1, 5, 10));
  Message out;
  EXPECT_TRUE(mb_.try_match(0, kAnySource, kAnyTag, false, out));
  EXPECT_EQ(out.src_comm, 1);
}

TEST_F(MailboxTest, AnySourcePrefersEarliestArrival) {
  mb_.deliver(make_msg(5, 0, 111));
  mb_.deliver(make_msg(2, 0, 222));
  Message out;
  ASSERT_TRUE(mb_.try_match(0, kAnySource, 0, false, out));
  EXPECT_EQ(out.bytes, 111u);  // delivered first, despite higher src id
  ASSERT_TRUE(mb_.try_match(0, kAnySource, 0, false, out));
  EXPECT_EQ(out.bytes, 222u);
}

TEST_F(MailboxTest, FifoWithinChannel) {
  mb_.deliver(make_msg(1, 0, 1));
  mb_.deliver(make_msg(1, 0, 2));
  Message out;
  ASSERT_TRUE(mb_.try_match(0, 1, 0, false, out));
  EXPECT_EQ(out.bytes, 1u);
  ASSERT_TRUE(mb_.try_match(0, 1, 0, false, out));
  EXPECT_EQ(out.bytes, 2u);
}

TEST_F(MailboxTest, TagSelectionWithinChannel) {
  mb_.deliver(make_msg(1, 10, 1));
  mb_.deliver(make_msg(1, 20, 2));
  Message out;
  ASSERT_TRUE(mb_.try_match(0, 1, 20, false, out));
  EXPECT_EQ(out.bytes, 2u);
}

TEST_F(MailboxTest, InternalAndUserTrafficSegregated) {
  mb_.deliver(make_msg(1, 0, 50, 0, /*internal=*/true));
  Message out;
  EXPECT_FALSE(mb_.try_match(0, 1, 0, false, out));
  EXPECT_TRUE(mb_.try_match(0, 1, 0, true, out));
}

TEST_F(MailboxTest, CommunicatorsSegregated) {
  mb_.deliver(make_msg(1, 0, 50, /*comm=*/3));
  Message out;
  EXPECT_FALSE(mb_.try_match(0, 1, 0, false, out));
  EXPECT_TRUE(mb_.try_match(3, 1, 0, false, out));
}

TEST_F(MailboxTest, BlockingMatchWakesOnDelivery) {
  std::thread producer([this] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    mb_.deliver(make_msg(4, 9, 77));
  });
  Message m = mb_.match_blocking(0, 4, 9, false);
  EXPECT_EQ(m.bytes, 77u);
  producer.join();
}

TEST_F(MailboxTest, WatchdogThrowsOnTimeout) {
  EXPECT_THROW(mb_.match_blocking(0, 1, 1, false), Error);
}

TEST_F(MailboxTest, AbortUnblocksWaiters) {
  std::thread aborter([this] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    abort_.store(true);
    mb_.interrupt();
  });
  EXPECT_THROW(mb_.match_blocking(0, 1, 1, false), Error);
  aborter.join();
}

TEST_F(MailboxTest, VersionBumpsOnDelivery) {
  const auto v0 = mb_.version();
  mb_.deliver(make_msg(1, 0, 1));
  EXPECT_GT(mb_.version(), v0);
}

TEST_F(MailboxTest, WaitVersionChangeReturnsAfterDelivery) {
  const auto v0 = mb_.version();
  std::thread producer([this] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    mb_.deliver(make_msg(2, 0, 5));
  });
  mb_.wait_version_change(v0);
  producer.join();
  Message out;
  EXPECT_TRUE(mb_.try_match(0, 2, 0, false, out));
}

TEST_F(MailboxTest, ReserveCommPrecreatesBuckets) {
  EXPECT_FALSE(mb_.has_comm_buckets(3));
  mb_.reserve_comm(3, 4);
  EXPECT_TRUE(mb_.has_comm_buckets(3));
  EXPECT_FALSE(mb_.has_comm_buckets(5));

  // Delivery and matching work in the reserved communicator, including a
  // source index beyond the reserved count (the array grows on demand).
  mb_.deliver(make_msg(2, 1, 64, /*comm=*/3));
  mb_.deliver(make_msg(7, 1, 32, /*comm=*/3));
  Message out;
  EXPECT_TRUE(mb_.try_match(3, 2, 1, false, out));
  EXPECT_EQ(out.bytes, 64u);
  EXPECT_TRUE(mb_.try_match(3, 7, 1, false, out));
  EXPECT_EQ(out.bytes, 32u);

  // Reserving again (or smaller) never shrinks or drops queued state.
  mb_.deliver(make_msg(1, 0, 8, /*comm=*/3));
  mb_.reserve_comm(3, 2);
  EXPECT_EQ(mb_.pending(), 1u);
  EXPECT_TRUE(mb_.try_match(3, 1, 0, false, out));
}

}  // namespace
}  // namespace hfast::mpisim
