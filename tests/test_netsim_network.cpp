#include <gtest/gtest.h>

#include "hfast/util/assert.hpp"

#include "hfast/core/provision.hpp"
#include "hfast/netsim/network.hpp"
#include "hfast/topo/fcn.hpp"
#include "hfast/topo/mesh.hpp"

namespace hfast::netsim {
namespace {

LinkParams simple_link() {
  LinkParams l;
  l.latency_s = 1e-6;
  l.bandwidth_bps = 1e9;
  l.switch_overhead_s = 0.0;
  return l;
}

TEST(DirectNetwork, SingleHopTiming) {
  topo::FullyConnected fcn(2);
  DirectNetwork net(fcn, simple_link());
  // 1000 bytes at 1 GB/s = 1us serialization + 1us latency.
  const double t = net.transfer(0, 1, 1000, 0.0);
  EXPECT_NEAR(t, 2e-6, 1e-12);
}

TEST(DirectNetwork, MultiHopAddsLatencyNotSerialization) {
  topo::MeshTorus path({4}, false);
  DirectNetwork net(path, simple_link());
  // Cut-through over 3 hops: 3x latency + 1x serialization.
  const double t = net.transfer(0, 3, 1000, 0.0);
  EXPECT_NEAR(t, 3e-6 + 1e-6, 1e-12);
  EXPECT_EQ(net.switch_hops(0, 3), 3);
}

TEST(DirectNetwork, ContentionSerializesSharedLink) {
  topo::MeshTorus path({3}, false);
  DirectNetwork net(path, simple_link());
  // Two messages cross link 1-2 back to back.
  const double t1 = net.transfer(0, 2, 100000, 0.0);
  const double t2 = net.transfer(1, 2, 100000, 0.0);
  // Message 2 must queue behind message 1 on link 1->2 (100us each).
  EXPECT_GT(t2, 100e-6);
  EXPECT_GT(t1, 0.0);
  net.reset();
  const double fresh = net.transfer(1, 2, 100000, 0.0);
  EXPECT_LT(fresh, t2);  // no queueing after reset
}

TEST(DirectNetwork, DisjointPathsDoNotInterfere) {
  topo::MeshTorus ring({8}, true);
  DirectNetwork net(ring, simple_link());
  const double a = net.transfer(0, 1, 100000, 0.0);
  const double b = net.transfer(4, 5, 100000, 0.0);
  EXPECT_NEAR(a, b, 1e-12);
}

TEST(FabricNetwork, RouteThroughBlocksCountsOverheadPerBlock) {
  graph::CommGraph g(2);
  g.add_message(0, 1, 8192);
  const auto prov = core::provision_greedy(g);
  LinkParams circuit = simple_link();
  FabricNetwork net(prov.fabric, circuit, /*block_overhead_s=*/10e-6);
  // Path: node0 -> B0 -> B1 -> node1: 3 circuit links, 2 block entries.
  const double t = net.transfer(0, 1, 1000, 0.0);
  // 3 link latencies + 2 block overheads + serialization.
  EXPECT_NEAR(t, 3e-6 + 2 * 10e-6 + 1e-6, 1e-9);
  EXPECT_EQ(net.switch_hops(0, 1), 2);
}

TEST(FabricNetwork, SharedBlockIsSingleHop) {
  // Clique provisioning puts both endpoints on one block.
  graph::CommGraph g(2);
  g.add_message(0, 1, 8192);
  const auto prov = core::provision_clique(g);
  ASSERT_EQ(prov.stats.num_blocks, 1);
  FabricNetwork net(prov.fabric, simple_link(), 10e-6);
  EXPECT_EQ(net.switch_hops(0, 1), 1);
  const double t = net.transfer(0, 1, 1000, 0.0);
  EXPECT_NEAR(t, 2e-6 + 10e-6 + 1e-6, 1e-9);
}

TEST(FabricNetwork, SwitchHopsAgreeBeforeAndAfterTransfer) {
  // switch_hops() must answer identically whether the pair has been routed
  // by a transfer yet or not (the pre-transfer path memoizes lazily).
  graph::CommGraph g(4);
  g.add_message(0, 1, 8192);
  g.add_message(2, 3, 8192);
  g.add_message(0, 3, 8192);
  const auto prov = core::provision_greedy(g);
  FabricNetwork net(prov.fabric, simple_link(), 10e-6);
  const int n = net.num_endpoints();
  std::vector<int> before;
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      if (s != d) before.push_back(net.switch_hops(s, d));
    }
  }
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      if (s != d) (void)net.transfer(s, d, 1000, 0.0);
    }
  }
  std::vector<int> after;
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      if (s != d) after.push_back(net.switch_hops(s, d));
    }
  }
  EXPECT_EQ(before, after);
  // Repeated queries hit the memo and stay stable.
  EXPECT_EQ(net.switch_hops(0, 1), net.switch_hops(0, 1));
}

TEST(FatTreeNetwork, LatencyScalesWithTraversals) {
  const topo::FatTree tree(64, 8);  // subtrees 4, 16, capacity
  LinkParams link = simple_link();
  link.switch_overhead_s = 0.5e-6;
  FatTreeNetwork net(tree, link);
  const double near = net.transfer(0, 1, 1000, 0.0);  // 1 traversal
  net.reset();
  const double far = net.transfer(0, 63, 1000, 0.0);  // 5 traversals
  EXPECT_GT(far, near);
  EXPECT_NEAR(far - near, 4 * (1e-6 + 0.5e-6), 1e-9);
}

TEST(FatTreeNetwork, InjectionLinkContends) {
  const topo::FatTree tree(16, 8);
  FatTreeNetwork net(tree, simple_link());
  const double t1 = net.transfer(0, 1, 1000000, 0.0);  // 1ms serialization
  const double t2 = net.transfer(0, 2, 1000000, 0.0);  // same injection link
  EXPECT_GT(t2, t1);
  net.reset();
  const double t3 = net.transfer(3, 2, 1000000, 1e-9);  // different source,
  const double t4 = net.transfer(4, 2, 1000000, 2e-9);  // same destination:
  EXPECT_GT(t4, t3);  // ejection link contention
}

TEST(Network, SelfTransferRejected) {
  topo::FullyConnected fcn(4);
  DirectNetwork net(fcn, simple_link());
  EXPECT_THROW(net.transfer(2, 2, 100, 0.0), ContractViolation);
}

TEST(Network, PrewarmedSwitchHopsNeedNoMutation) {
  // After prewarm_route(), the const switch_hops() query is a pure cache
  // lookup; un-prewarmed pairs recompute and must agree with the cached
  // answer once the pair is warmed.
  graph::CommGraph g(6);
  g.add_message(0, 1, 8192);
  g.add_message(1, 2, 8192);
  g.add_message(2, 3, 8192);
  g.add_message(3, 4, 8192);
  g.add_message(0, 5, 8192);
  const auto prov = core::provision_greedy(g);
  FabricNetwork net(prov.fabric, simple_link(), 10e-6);
  const FabricNetwork& cnet = net;
  const int n = net.num_endpoints();
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      if (s == d) continue;
      const int cold = cnet.switch_hops(s, d);  // recomputed, not memoized
      net.prewarm_route(s, d);
      EXPECT_EQ(cnet.switch_hops(s, d), cold) << s << "->" << d;
    }
  }
}

TEST(Network, MinTransferLatencyBoundsObservedLatency) {
  // The lookahead bound: no transfer may complete sooner after injection
  // than min_transfer_latency_s() claims, on any model.
  const topo::MeshTorus torus({2, 3}, true);
  DirectNetwork direct(torus, simple_link());
  const topo::FatTree tree(16, 8);
  FatTreeNetwork fat(tree, simple_link());
  graph::CommGraph g(4);
  g.add_message(0, 1, 8192);
  g.add_message(2, 3, 8192);
  g.add_message(0, 3, 8192);
  const auto prov = core::provision_greedy(g);
  FabricNetwork fabric(prov.fabric, simple_link(), 10e-6);
  for (Network* net : {static_cast<Network*>(&direct),
                       static_cast<Network*>(&fat),
                       static_cast<Network*>(&fabric)}) {
    const double bound = net->min_transfer_latency_s();
    EXPECT_GT(bound, 0.0) << net->name();
    for (int d = 1; d < net->num_endpoints(); ++d) {
      net->reset();
      const double arrival = net->transfer(0, d, 1, 0.0);
      EXPECT_GE(arrival, bound) << net->name() << " 0->" << d;
    }
  }
}

TEST(Network, ResetClearsOccupancyButKeepsRoutes) {
  topo::FullyConnected fcn(3);
  DirectNetwork net(fcn, simple_link());
  const double first = net.transfer(0, 1, 1000000, 0.0);
  const double congested = net.transfer(0, 1, 1000000, 0.0);
  EXPECT_GT(congested, first);
  net.reset();
  EXPECT_DOUBLE_EQ(net.transfer(0, 1, 1000000, 0.0), first);
}

}  // namespace
}  // namespace hfast::netsim
