#include <gtest/gtest.h>

#include "hfast/analysis/experiment.hpp"
#include "hfast/graph/metrics.hpp"
#include "hfast/graph/tdc.hpp"

namespace hfast::apps {
namespace {

using analysis::run_experiment;

TEST(AppRegistry, HasPaperTable2Entries) {
  const auto& apps = registry();
  ASSERT_EQ(apps.size(), 6u);
  EXPECT_EQ(apps[0].info.name, "cactus");
  EXPECT_EQ(apps[0].info.lines_of_code, 84000);
  EXPECT_EQ(apps[1].info.name, "lbmhd");
  EXPECT_EQ(apps[2].info.name, "gtc");
  EXPECT_EQ(apps[3].info.name, "superlu");
  EXPECT_EQ(apps[4].info.name, "pmemd");
  EXPECT_EQ(apps[5].info.name, "paratec");
  EXPECT_EQ(find("paratec").info.discipline, "Material Science");
  EXPECT_THROW(find("nonsense"), Error);
}

TEST(AppRegistry, ConcurrencyValidation) {
  EXPECT_TRUE(valid_concurrency(find("cactus"), 64));
  EXPECT_TRUE(valid_concurrency(find("lbmhd"), 256));
  EXPECT_FALSE(valid_concurrency(find("lbmhd"), 60));  // not square
  EXPECT_TRUE(valid_concurrency(find("superlu"), 49));
  EXPECT_FALSE(valid_concurrency(find("superlu"), 50));
  EXPECT_TRUE(valid_concurrency(find("gtc"), 128));
  EXPECT_FALSE(valid_concurrency(find("gtc"), 96));
  EXPECT_FALSE(valid_concurrency(find("pmemd"), 2));
  EXPECT_THROW(run_experiment("lbmhd", 60), Error);
}

TEST(Cactus, StencilStructure) {
  const auto r = run_experiment("cactus", 27);  // 3x3x3 grid
  const auto t = graph::tdc(r.comm_graph, 0);
  EXPECT_EQ(t.max, 6);  // only the center rank has all six neighbors
  EXPECT_LT(t.avg, 6.0);
  // Threshold-insensitive: ghost faces are ~300 KB.
  const auto t2k = graph::tdc(r.comm_graph, graph::kBdpCutoffBytes);
  EXPECT_EQ(t2k.max, t.max);
  EXPECT_DOUBLE_EQ(t2k.avg, t.avg);
  EXPECT_TRUE(graph::embeds_in_mesh(r.comm_graph, 0, /*torus=*/false));
  EXPECT_GT(r.steady.ptp_call_percent(), 98.0);
}

TEST(Lbmhd, TwelveScatteredPartners) {
  const auto r = run_experiment("lbmhd", 36);  // 6x6 grid
  const auto t = graph::tdc(r.comm_graph, 0);
  EXPECT_EQ(t.max, 12);
  EXPECT_EQ(t.min, 12);  // periodic: perfectly regular
  EXPECT_TRUE(graph::is_isotropic(r.comm_graph));
  EXPECT_FALSE(graph::embeds_in_mesh(r.comm_graph));
  EXPECT_EQ(r.steady.median_ptp_buffer(), 811u * 1024u);
}

TEST(Gtc, RingOnlyAtOneRankPerPlane) {
  const auto r = run_experiment("gtc", 64);
  const auto t = graph::tdc(r.comm_graph, graph::kBdpCutoffBytes);
  EXPECT_EQ(t.max, 2);
  EXPECT_DOUBLE_EQ(t.avg, 2.0);
  EXPECT_EQ(r.steady.median_ptp_buffer(), 128u * 1024u);
  EXPECT_EQ(r.steady.median_collective_buffer(), 100u);
  // Gather-dominated call mix (Figure 2).
  EXPECT_GT(r.steady.calls_of(mpisim::CallType::kGather), 0u);
  EXPECT_GT(r.steady.collective_call_percent(), 40.0);
}

TEST(Gtc, LeadersInflateMaxTdcAt128) {
  const auto r = run_experiment("gtc", 128);  // 2 ranks per plane
  const auto raw = graph::tdc(r.comm_graph, 0);
  const auto cut = graph::tdc(r.comm_graph, graph::kBdpCutoffBytes);
  EXPECT_GT(raw.max, cut.max);  // diagnostics are sub-threshold
  EXPECT_GT(cut.max, 2);        // spill traffic beyond the ring
  EXPECT_LT(cut.avg, cut.max);  // anisotropic: case iii signature
}

TEST(Superlu, RowColumnThresholdStructure) {
  const auto r = run_experiment("superlu", 64);
  const auto raw = graph::tdc(r.comm_graph, 0);
  const auto cut = graph::tdc(r.comm_graph, graph::kBdpCutoffBytes);
  EXPECT_EQ(raw.max, 63);  // tiny pivot messages touch everyone
  EXPECT_EQ(cut.max, 14);  // 2*(sqrt(64)-1)
  EXPECT_EQ(cut.min, 14);
  // Median PTP buffer is the tiny notification size.
  EXPECT_EQ(r.steady.median_ptp_buffer(), 64u);
}

TEST(Superlu, SqrtPScaling) {
  const auto small = run_experiment("superlu", 16);
  const auto large = run_experiment("superlu", 64);
  const auto ts = graph::tdc(small.comm_graph, graph::kBdpCutoffBytes);
  const auto tl = graph::tdc(large.comm_graph, graph::kBdpCutoffBytes);
  EXPECT_EQ(ts.max, 6);   // 2*(4-1)
  EXPECT_EQ(tl.max, 14);  // 2*(8-1)
}

TEST(Superlu, InitRegionExcludedFromSteadyState) {
  const auto r = run_experiment("superlu", 16);
  // Raw graph including init: rank 0 scattered 1 MB to everyone.
  const auto all = graph::tdc(r.comm_graph_all, 1024 * 1024);
  EXPECT_EQ(all.max, 15);
  // Steady state has no 1 MB edges at all.
  const auto steady = graph::tdc(r.comm_graph, 1024 * 1024);
  EXPECT_EQ(steady.max, 0);
}

TEST(Pmemd, DistanceDecayAndMaster) {
  const auto r = run_experiment("pmemd", 32);
  const auto raw = graph::tdc(r.comm_graph, 0);
  EXPECT_EQ(raw.max, 31);
  EXPECT_EQ(raw.min, 31);  // everyone exchanges with everyone
  // Rank 0's edges all stay above threshold (master floor).
  const auto cut = r.comm_graph.partners(0, graph::kBdpCutoffBytes);
  EXPECT_EQ(cut.size(), 31u);
  EXPECT_GT(r.steady.calls_of(mpisim::CallType::kWaitany), 0u);
}

TEST(Paratec, GlobalTransposePlusBandDiagonal) {
  const auto r = run_experiment("paratec", 16);
  const auto raw = graph::tdc(r.comm_graph, 0);
  const auto cut2k = graph::tdc(r.comm_graph, graph::kBdpCutoffBytes);
  const auto cut64k = graph::tdc(r.comm_graph, 64 * 1024);
  EXPECT_EQ(raw.max, 15);
  EXPECT_EQ(cut2k.max, 15);   // 32 KB transposes survive 2 KB
  EXPECT_EQ(cut64k.max, 0);   // nothing above 64 KB
  EXPECT_EQ(r.steady.median_ptp_buffer(), 64u);  // band packets dominate
}

TEST(AllApps, DeterministicAcrossRuns) {
  for (const char* name : {"cactus", "gtc"}) {
    const auto a = run_experiment(name, 16);
    const auto b = run_experiment(name, 16);
    EXPECT_EQ(a.steady.total_calls(), b.steady.total_calls()) << name;
    EXPECT_EQ(a.comm_graph.num_edges(), b.comm_graph.num_edges()) << name;
    EXPECT_EQ(a.comm_graph.total_bytes(), b.comm_graph.total_bytes()) << name;
  }
}

TEST(AllApps, TraceAndProfileAgreeOnTransferCounts) {
  const auto r = run_experiment("cactus", 16);
  const auto steady_trace = r.trace.filter_region(kSteadyRegion);
  std::uint64_t trace_sends = 0;
  for (const auto& e : steady_trace.events()) {
    if (e.kind == trace::EventKind::kSend) ++trace_sends;
  }
  std::uint64_t profile_sends = 0;
  for (const auto& rank_sent : r.steady.sent()) {
    for (const auto& [key, count] : rank_sent) profile_sends += count;
  }
  EXPECT_EQ(trace_sends, profile_sends);
  EXPECT_EQ(steady_trace.total_ptp_bytes(), r.comm_graph.total_bytes());
}

}  // namespace
}  // namespace hfast::apps
