#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "hfast/graph/clique.hpp"
#include "hfast/graph/contraction.hpp"
#include "hfast/graph/metrics.hpp"

namespace hfast::graph {
namespace {

CommGraph complete_graph(int n) {
  CommGraph g(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) g.add_message(i, j, 4096);
  }
  return g;
}

CommGraph ring(int n) {
  CommGraph g(n);
  for (int i = 0; i < n; ++i) g.add_message(i, (i + 1) % n, 4096);
  return g;
}

TEST(CliqueCover, CompleteGraphIsOneClique) {
  const auto g = complete_graph(6);
  const auto cover = greedy_edge_clique_cover(g, 8);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].members.size(), 6u);
  EXPECT_TRUE(is_valid_clique_cover(g, cover));
}

TEST(CliqueCover, RespectsMaxSize) {
  const auto g = complete_graph(8);
  const auto cover = greedy_edge_clique_cover(g, 4);
  EXPECT_TRUE(is_valid_clique_cover(g, cover));
  for (const auto& c : cover) {
    EXPECT_LE(c.members.size(), 4u);
  }
  EXPECT_GT(cover.size(), 1u);
}

TEST(CliqueCover, TriangleFreeGraphYieldsEdges) {
  const auto g = ring(6);  // no triangles
  const auto cover = greedy_edge_clique_cover(g, 8);
  EXPECT_EQ(cover.size(), g.num_edges());
  for (const auto& c : cover) EXPECT_EQ(c.members.size(), 2u);
  EXPECT_TRUE(is_valid_clique_cover(g, cover));
}

TEST(CliqueCover, ValidatorRejectsNonCover) {
  const auto g = ring(4);
  std::vector<Clique> partial{{{0, 1}}};
  EXPECT_FALSE(is_valid_clique_cover(g, partial));
  std::vector<Clique> notclique{{{0, 2}}};  // 0-2 not an edge in the 4-ring
  EXPECT_FALSE(is_valid_clique_cover(g, notclique));
}

TEST(CliqueCover, EmptyGraph) {
  CommGraph g(4);
  EXPECT_TRUE(greedy_edge_clique_cover(g, 4).empty());
}

TEST(Contraction, RingContractsForAnyK) {
  // A ring's blocks of size k have external degree 2 <= k for k >= 2.
  const auto g = ring(12);
  for (int k : {2, 3, 4, 6}) {
    const auto res = bounded_contraction(g, k);
    EXPECT_TRUE(res.feasible) << "k=" << k;
    EXPECT_LE(res.worst_external_degree, k);
    // Every node assigned to exactly one block.
    for (int b : res.block_of) EXPECT_GE(b, 0);
  }
}

TEST(Contraction, CompleteGraphInfeasibleForSmallK) {
  const auto g = complete_graph(12);
  const auto res = bounded_contraction(g, 3);
  EXPECT_FALSE(res.feasible);  // each 3-block sees 9 outside partners
  EXPECT_GT(res.worst_external_degree, 3);
}

TEST(Contraction, BlockSizesBounded) {
  const auto g = ring(10);
  const auto res = bounded_contraction(g, 3);
  std::map<int, int> sizes;
  for (int b : res.block_of) ++sizes[b];
  for (const auto& [block, size] : sizes) {
    EXPECT_LE(size, 3) << "block " << block;
  }
}

TEST(Metrics, RingIsIsotropicStarIsNot) {
  EXPECT_TRUE(is_isotropic(ring(8)));
  CommGraph star(8);
  for (int i = 1; i < 8; ++i) star.add_message(0, i, 4096);
  EXPECT_FALSE(is_isotropic(star, 0, 0.2));
}

TEST(Metrics, GridFactorizations) {
  const auto f12 = grid_factorizations(12);
  // Contains {12}, {3,4}, {4,3}, {2,6}, {6,2}, {2,2,3}, ...
  EXPECT_NE(std::find(f12.begin(), f12.end(), std::vector<int>{12}), f12.end());
  EXPECT_NE(std::find(f12.begin(), f12.end(), std::vector<int>{3, 4}),
            f12.end());
  EXPECT_NE(std::find(f12.begin(), f12.end(), std::vector<int>{2, 2, 3}),
            f12.end());
}

TEST(Metrics, TorusNeighborGraphEmbedsInMesh) {
  // 2D 4x4 torus neighbor traffic.
  CommGraph g(16);
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      const int u = r * 4 + c;
      g.add_message(u, r * 4 + (c + 1) % 4, 4096);
      g.add_message(u, ((r + 1) % 4) * 4 + c, 4096);
    }
  }
  EXPECT_TRUE(embeds_in_mesh(g));
}

TEST(Metrics, DiagonalPatternDoesNotEmbed) {
  // 4x4 grid with only diagonal exchanges (LBMHD-like): not unit steps.
  CommGraph g(16);
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      const int u = r * 4 + c;
      const int v = ((r + 1) % 4) * 4 + (c + 1) % 4;
      if (u != v) g.add_message(u, v, 4096);
    }
  }
  EXPECT_FALSE(embeds_in_mesh(g));
}

TEST(Metrics, ConnectedComponents) {
  EXPECT_EQ(connected_components(ring(8)), 1);
  EXPECT_TRUE(is_connected(ring(8)));
  CommGraph two(6);
  two.add_message(0, 1, 4096);
  two.add_message(1, 2, 4096);
  two.add_message(3, 4, 4096);
  // Components: {0,1,2}, {3,4}, {5}.
  EXPECT_EQ(connected_components(two), 3);
  EXPECT_FALSE(is_connected(two));
  // Thresholding can disconnect: the bridging edge is latency-bound.
  CommGraph bridged(4);
  bridged.add_message(0, 1, 8192);
  bridged.add_message(2, 3, 8192);
  bridged.add_message(1, 2, 128);
  EXPECT_TRUE(is_connected(bridged, 0));
  EXPECT_FALSE(is_connected(bridged, 2048));
  // Degenerate graphs.
  EXPECT_TRUE(is_connected(CommGraph(0)));
  EXPECT_TRUE(is_connected(CommGraph(1)));
}

TEST(Metrics, DegreeCv) {
  EXPECT_DOUBLE_EQ(degree_cv(ring(8)), 0.0);
  CommGraph star(8);
  for (int i = 1; i < 8; ++i) star.add_message(0, i, 4096);
  EXPECT_GT(degree_cv(star), 0.5);
}

}  // namespace
}  // namespace hfast::graph
