#include <gtest/gtest.h>

#include "hfast/util/assert.hpp"

#include <set>

#include "hfast/util/random.hpp"

namespace hfast::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.uniform(bound), bound);
    }
  }
}

TEST(Rng, UniformZeroBoundIsContractViolation) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform(0), ContractViolation);
}

TEST(Rng, UniformInInclusiveRange) {
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.uniform_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
  // All seven values should appear over 500 draws.
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_in(-3, 3));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SampleWithoutReplacement) {
  Rng rng(9);
  for (std::size_t k : {0UL, 1UL, 5UL, 50UL, 100UL}) {
    const auto s = rng.sample_without_replacement(100, k);
    ASSERT_EQ(s.size(), k);
    std::set<std::size_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), k);  // distinct
    for (auto x : s) EXPECT_LT(x, 100u);
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
  }
}

TEST(Rng, SampleMoreThanPopulationThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), ContractViolation);
}

TEST(Splitmix, KnownStability) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
  // Regression-pin the first output of seed 0 (reference splitmix64).
  std::uint64_t z = 0;
  EXPECT_EQ(splitmix64(z), 0xe220a8397b1dcdafULL);
}

}  // namespace
}  // namespace hfast::util
