#include <gtest/gtest.h>

#include <sstream>

#include "hfast/trace/trace.hpp"
#include "hfast/trace/window.hpp"

namespace hfast::trace {
namespace {

TEST(TraceRecorder, RecordsTransfersAndCollectives) {
  TraceRecorder rec(2);
  rec.on_message(5, 1024, /*is_send=*/true);
  rec.on_message(5, 1024, /*is_send=*/false);
  rec.on_call(CallType::kAllreduce, mpisim::kNoPeer, 8, 0.0);
  rec.on_call(CallType::kIsend, 5, 1024, 0.0);  // PTP calls not duplicated

  ASSERT_EQ(rec.events().size(), 3u);
  EXPECT_EQ(rec.events()[0].kind, EventKind::kSend);
  EXPECT_EQ(rec.events()[1].kind, EventKind::kRecv);
  EXPECT_EQ(rec.events()[2].kind, EventKind::kCollective);
  EXPECT_EQ(rec.events()[0].op_index, 0u);
  EXPECT_EQ(rec.events()[2].op_index, 2u);
}

TEST(TraceRecorder, RegionsInterned) {
  TraceRecorder rec(0);
  rec.on_region("init", true);
  rec.on_message(1, 10, true);
  rec.on_region("init", false);
  rec.on_message(1, 20, true);
  EXPECT_EQ(rec.events()[0].region, 1u);
  EXPECT_EQ(rec.events()[1].region, 0u);  // global
}

Trace two_rank_trace() {
  TraceRecorder r0(0), r1(1);
  r0.on_region("steady", true);
  r0.on_message(1, 4096, true);
  r0.on_message(1, 64, false);
  r0.on_region("steady", false);
  r1.on_region("steady", true);
  r1.on_message(0, 64, true);
  r1.on_message(0, 4096, false);
  r1.on_region("steady", false);
  const TraceRecorder* recs[] = {&r0, &r1};
  return Trace::merge(recs);
}

TEST(Trace, MergeUnifiesRegionIds) {
  const auto t = two_rank_trace();
  EXPECT_EQ(t.nranks(), 2);
  EXPECT_EQ(t.events().size(), 4u);
  for (const auto& e : t.events()) {
    EXPECT_EQ(t.region_names()[e.region], "steady");
  }
}

TEST(Trace, FilterRegionAndPtpOnly) {
  TraceRecorder r0(0);
  r0.on_region("init", true);
  r0.on_message(1, 100, true);
  r0.on_region("init", false);
  r0.on_region("steady", true);
  r0.on_message(1, 200, true);
  r0.on_call(CallType::kBarrier, mpisim::kNoPeer, 0, 0.0);
  r0.on_region("steady", false);
  TraceRecorder r1(1);
  const TraceRecorder* recs[] = {&r0, &r1};
  const auto t = Trace::merge(recs);

  const auto steady = t.filter_region("steady");
  ASSERT_EQ(steady.events().size(), 2u);
  EXPECT_EQ(steady.events()[0].bytes, 200u);

  const auto ptp = steady.point_to_point_only();
  EXPECT_EQ(ptp.events().size(), 1u);
  EXPECT_EQ(t.total_ptp_bytes(), 300u);
}

TEST(Trace, TextRoundTrip) {
  const auto t = two_rank_trace();
  std::stringstream ss;
  t.save_text(ss);
  const auto loaded = Trace::load_text(ss);
  EXPECT_EQ(loaded.nranks(), t.nranks());
  ASSERT_EQ(loaded.events().size(), t.events().size());
  for (std::size_t i = 0; i < t.events().size(); ++i) {
    EXPECT_EQ(loaded.events()[i].rank, t.events()[i].rank);
    EXPECT_EQ(loaded.events()[i].op_index, t.events()[i].op_index);
    EXPECT_EQ(loaded.events()[i].kind, t.events()[i].kind);
    EXPECT_EQ(loaded.events()[i].peer, t.events()[i].peer);
    EXPECT_EQ(loaded.events()[i].bytes, t.events()[i].bytes);
    EXPECT_EQ(loaded.events()[i].region, t.events()[i].region);
  }
  EXPECT_EQ(loaded.region_names(), t.region_names());
}

TEST(Trace, LoadRejectsGarbage) {
  std::stringstream ss("not a trace\n");
  EXPECT_THROW(Trace::load_text(ss), Error);
}

/// Expect load_text to reject `text` with an Error naming `line`.
void expect_load_error(const std::string& text, int line,
                       const std::string& needle) {
  std::stringstream ss(text);
  try {
    (void)Trace::load_text(ss);
    FAIL() << "accepted malformed trace: " << text;
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line " + std::to_string(line)), std::string::npos)
        << what;
    EXPECT_NE(what.find(needle), std::string::npos) << what;
  }
}

TEST(Trace, LoadRejectsMalformedFieldsWithLineNumbers) {
  const std::string header = "hfast-trace v1 nranks=2 events=1 regions=1\n";
  const std::string region = "region 0 <global>\n";
  // Event line layout: rank op_index kind call peer bytes region.
  expect_load_error(header + region + "5 0 0 0 1 100 0\n", 3, "rank 5");
  expect_load_error(header + region + "-1 0 0 0 1 100 0\n", 3, "rank -1");
  expect_load_error(header + region + "0 0 0 0 7 100 0\n", 3, "peer 7");
  expect_load_error(header + region + "0 0 0 0 -1 100 0\n", 3, "peer -1");
  expect_load_error(header + region + "0 0 9 0 1 100 0\n", 3, "kind");
  expect_load_error(header + region + "0 0 0 99 1 100 0\n", 3, "call type");
  expect_load_error(header + region + "0 0 0 0 1 -100 0\n", 3, "byte count");
  expect_load_error(header + region + "0 0 0 0 1 100 3\n", 3, "region index");
  expect_load_error(header + region + "0 0 0 0 1 nan 0\n", 3, "unparseable");
  expect_load_error(header + region, 3, "truncated event stream");
  expect_load_error("hfast-trace v1 nranks=-2 events=0 regions=0\n", 1,
                    "negative nranks");
  expect_load_error("hfast-trace v1 nranks=zz events=0 regions=0\n", 1,
                    "unparseable header field");
  expect_load_error(header + "not-a-region 0 x\n" + "0 0 0 0 1 100 0\n", 2,
                    "bad region line");
}

TEST(Trace, LoadAllowsCollectivePeerSentinel) {
  // Collectives carry the kNoPeer sentinel; only point-to-point peers are
  // range-checked.
  std::stringstream ss(
      "hfast-trace v1 nranks=2 events=1 regions=1\n"
      "region 0 <global>\n"
      "0 0 2 3 -2 64 0\n");
  const auto t = Trace::load_text(ss);
  ASSERT_EQ(t.events().size(), 1u);
  EXPECT_EQ(t.events()[0].kind, EventKind::kCollective);
  EXPECT_EQ(t.events()[0].peer, mpisim::kNoPeer);
}

TEST(Window, SplitsStreamsEvenly) {
  TraceRecorder r0(0), r1(1);
  // Rank 0: phase A talks to 1 with big messages, phase B small.
  for (int i = 0; i < 10; ++i) r0.on_message(1, 8192, true);
  for (int i = 0; i < 10; ++i) r0.on_message(1, 16, true);
  const TraceRecorder* recs[] = {&r0, &r1};
  const auto t = Trace::merge(recs);

  const auto graphs = windowed_graphs(t, 2);
  ASSERT_EQ(graphs.size(), 2u);
  EXPECT_EQ(graphs[0].edge(0, 1)->max_message, 8192u);
  EXPECT_EQ(graphs[1].edge(0, 1)->max_message, 16u);

  const auto stats = windowed_tdc(t, 2, 2048);
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].max_tdc, 1);
  EXPECT_EQ(stats[1].max_tdc, 0);  // small messages thresholded away
}

TEST(Window, SingleWindowEqualsWholeTrace) {
  const auto t = two_rank_trace();
  const auto graphs = windowed_graphs(t, 1);
  ASSERT_EQ(graphs.size(), 1u);
  EXPECT_EQ(graphs[0].num_edges(), 1u);
  EXPECT_EQ(graphs[0].edge(0, 1)->bytes, 4096u + 64u);
}

}  // namespace
}  // namespace hfast::trace
