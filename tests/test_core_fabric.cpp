#include <gtest/gtest.h>

#include "hfast/util/assert.hpp"

#include <set>

#include "hfast/core/fabric.hpp"

namespace hfast::core {
namespace {

TEST(SwitchBlock, PortLifecycle) {
  SwitchBlock b(0, 4);
  EXPECT_EQ(b.num_free(), 4);
  const int h = b.attach_host(7);
  EXPECT_EQ(b.port(h).use, PortUse::kHost);
  EXPECT_EQ(b.port(h).host_node, 7);
  const int t = b.attach_trunk({1, 0});
  EXPECT_EQ(b.port(t).use, PortUse::kTrunk);
  EXPECT_EQ(b.num_free(), 2);
  EXPECT_EQ(b.num_host(), 1);
  EXPECT_EQ(b.num_trunk(), 1);
  EXPECT_EQ(b.hosted_nodes(), std::vector<int>{7});
  b.release(t);
  EXPECT_EQ(b.num_free(), 3);
}

TEST(SwitchBlock, ExhaustionThrows) {
  SwitchBlock b(0, 2);
  b.attach_host(0);
  b.attach_host(1);
  EXPECT_THROW(b.attach_host(2), ContractViolation);
  EXPECT_THROW(b.attach_trunk({}), ContractViolation);
}

TEST(Fabric, PaperFigure1Examples) {
  // Paper Figure 1 (right): 6 nodes, blocks of 4 ports. Nodes 1 and 2
  // share SB1: a message crosses the circuit switch twice and one block.
  // Node 1 -> node 6 goes SB1 -> SB2: 3 traversals, 2 blocks.
  Fabric f(6, 4);
  const int sb1 = f.add_block();
  const int sb2 = f.add_block();
  f.attach_host(0, sb1);  // node 1
  f.attach_host(1, sb1);  // node 2
  f.attach_host(5, sb2);  // node 6
  f.connect_trunk(sb1, sb2);
  f.validate();

  const auto near = f.route(0, 1);
  EXPECT_EQ(near.switch_hops(), 1);
  EXPECT_EQ(near.circuit_traversals(), 2);

  const auto far = f.route(0, 5);
  EXPECT_EQ(far.switch_hops(), 2);
  EXPECT_EQ(far.circuit_traversals(), 3);
}

TEST(Fabric, RouteRequiresAttachment) {
  Fabric f(3, 4);
  const int b = f.add_block();
  f.attach_host(0, b);
  EXPECT_THROW(f.route(0, 1), Error);  // node 1 unattached
  EXPECT_FALSE(f.reachable(0, 1));
}

TEST(Fabric, DisconnectedBlocksUnreachable) {
  Fabric f(2, 4);
  const int a = f.add_block();
  const int b = f.add_block();
  f.attach_host(0, a);
  f.attach_host(1, b);
  EXPECT_FALSE(f.reachable(0, 1));
  f.connect_trunk(a, b);
  EXPECT_TRUE(f.reachable(0, 1));
  EXPECT_EQ(f.trunks_between(a, b), 1);
  f.connect_trunk(a, b);
  EXPECT_EQ(f.trunks_between(a, b), 2);
}

TEST(Fabric, DoubleAttachRejected) {
  Fabric f(2, 4);
  const int a = f.add_block();
  f.attach_host(0, a);
  EXPECT_THROW(f.attach_host(0, a), ContractViolation);
}

TEST(Fabric, PortAccounting) {
  Fabric f(4, 8);
  const int a = f.add_block();
  const int b = f.add_block();
  f.attach_host(0, a);
  f.attach_host(1, b);
  f.connect_trunk(a, b);
  EXPECT_EQ(f.packet_ports(), 16u);
  EXPECT_EQ(f.circuit_ports(), 4u + 16u);
  EXPECT_EQ(f.total_host_ports(), 2);
  EXPECT_EQ(f.total_trunk_ports(), 2);
  EXPECT_EQ(f.total_free_ports(), 12);
  f.validate();
}

TEST(Fabric, ServesChecksEveryEdge) {
  graph::CommGraph g(3);
  g.add_message(0, 1, 4096);
  g.add_message(1, 2, 100);  // below cutoff

  Fabric f(3, 4);
  const int a = f.add_block();
  f.attach_host(0, a);
  f.attach_host(1, a);
  // Node 2 unattached: edge (1,2) unroutable, but it is under the cutoff.
  const int b = f.add_block();
  f.attach_host(2, b);
  EXPECT_FALSE(f.serves(g, 0));     // raw graph includes (1,2)
  EXPECT_TRUE(f.serves(g, 2048));   // thresholded graph only needs (0,1)
}

TEST(Fabric, MultiHopChainRoute) {
  Fabric f(2, 4);
  std::vector<int> chain;
  for (int i = 0; i < 4; ++i) chain.push_back(f.add_block());
  for (int i = 0; i + 1 < 4; ++i) f.connect_trunk(chain[i], chain[i + 1]);
  f.attach_host(0, chain.front());
  f.attach_host(1, chain.back());
  const auto r = f.route(0, 1);
  EXPECT_EQ(r.switch_hops(), 4);
  EXPECT_EQ(r.circuit_traversals(), 5);
  EXPECT_EQ(r.blocks, chain);
  f.validate();
}

TEST(Fabric, ConstructionValidation) {
  EXPECT_THROW(Fabric(0, 4), ContractViolation);
  EXPECT_THROW(Fabric(4, 2), ContractViolation);
}

}  // namespace
}  // namespace hfast::core
