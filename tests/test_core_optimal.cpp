#include <gtest/gtest.h>

#include "hfast/util/assert.hpp"

#include "hfast/core/optimal.hpp"
#include "hfast/core/provision.hpp"
#include "hfast/util/random.hpp"

namespace hfast::core {
namespace {

graph::CommGraph complete(int n) {
  graph::CommGraph g(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) g.add_message(i, j, 4096);
  }
  return g;
}

graph::CommGraph ring(int n) {
  graph::CommGraph g(n);
  for (int i = 0; i < n; ++i) g.add_message(i, (i + 1) % n, 4096);
  return g;
}

TEST(Optimal, CompleteGraphFitsOneBlock) {
  const auto opt = optimal_blocks(complete(6), 16);
  ASSERT_TRUE(opt.has_value());
  EXPECT_EQ(opt->num_blocks, 1);
  EXPECT_EQ(opt->internal_edges, 15);
}

TEST(Optimal, RingPairsShareBlocks) {
  // An 8-ring: pairs of adjacent nodes share a block (2 hosts + 2 external
  // trunk endpoints = 4 ports <= 16). Optimal = 4 blocks... or fewer with
  // larger groups: 4 consecutive nodes = 4 hosts + 2 external = 6 ports,
  // so 2 blocks of 4+4 suffice; even all 8 in one block = 8 ports.
  const auto opt = optimal_blocks(ring(8), 16);
  ASSERT_TRUE(opt.has_value());
  EXPECT_EQ(opt->num_blocks, 1);
}

TEST(Optimal, SmallBlocksForceSplits) {
  // Block size 4: a group of 3 ring nodes uses 3 hosts + 2 external = 5 > 4;
  // a pair uses 2 + 2 = 4. So the 8-ring needs exactly 4 blocks.
  const auto opt = optimal_blocks(ring(8), 4);
  ASSERT_TRUE(opt.has_value());
  EXPECT_EQ(opt->num_blocks, 4);
}

TEST(Optimal, ReturnsNulloptWhenChainsRequired) {
  // A degree-5 node cannot fit a 4-port block without expansion chains.
  graph::CommGraph star(6);
  for (int i = 1; i < 6; ++i) star.add_message(0, i, 4096);
  EXPECT_FALSE(optimal_blocks(star, 4).has_value());
}

TEST(Optimal, RejectsLargeGraphs) {
  EXPECT_THROW(optimal_blocks(ring(12), 16), Error);
  EXPECT_NO_THROW(optimal_blocks(ring(12), 16, 0, 12));
}

TEST(Optimal, RespectsCutoff) {
  graph::CommGraph g(4);
  g.add_message(0, 1, 100);   // below cutoff: free
  g.add_message(2, 3, 8192);
  const auto opt = optimal_blocks(g, 4, 2048);
  ASSERT_TRUE(opt.has_value());
  // Nodes 2,3 share a block; 0,1 have no surviving edges and can pile into
  // the same block as hosts (4 hosts + 0 trunks = 4 ports).
  EXPECT_EQ(opt->num_blocks, 1);
}

TEST(Optimal, PortAccountingAgainstExactSearch) {
  // Port identities on random graphs small enough for the exact search.
  // (The paper's "potentially twice as many switch ports as an optimal
  // embedding" is a loose upper bound on the greedy construction; the
  // exact relationship is: greedy pays n hosts + 2 trunk ports per edge,
  // the optimum saves exactly 2 ports per edge it internalizes.)
  util::Rng rng(2025);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 5 + static_cast<int>(rng.uniform(4));  // 5..8 nodes
    graph::CommGraph g(n);
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        if (rng.chance(0.4)) g.add_message(i, j, 4096);
      }
    }
    const int block_size = 8;
    const auto opt = optimal_blocks(g, block_size);
    if (!opt.has_value()) continue;  // would need chains
    const auto prov = provision_greedy(g, {.block_size = block_size});
    const auto clique = provision_clique(g, {.block_size = block_size});

    const int edges = static_cast<int>(g.num_edges());
    const int greedy_ports =
        prov.fabric.total_host_ports() + prov.fabric.total_trunk_ports();
    EXPECT_EQ(greedy_ports, n + 2 * edges) << "trial " << trial;

    const int optimal_ports = n + 2 * (edges - opt->internal_edges);
    EXPECT_EQ(greedy_ports, optimal_ports + 2 * opt->internal_edges);

    // The exact search is a true lower bound on every heuristic.
    EXPECT_LE(opt->num_blocks, prov.stats.num_blocks) << "trial " << trial;
    EXPECT_LE(opt->num_blocks, clique.stats.num_blocks) << "trial " << trial;
    // And the clique heuristic internalizes no more than the optimum plus
    // its own cover slack — sanity: it never *invents* internal edges.
    EXPECT_LE(clique.stats.internal_edges, edges);
  }
}

TEST(Optimal, CliqueHeuristicNearOptimal) {
  // The clique provisioner should land within 2x of the exact block count
  // on small dense graphs.
  const auto g = complete(8);
  const auto opt = optimal_blocks(g, 16);
  ASSERT_TRUE(opt.has_value());
  const auto clique = provision_clique(g);
  EXPECT_LE(clique.stats.num_blocks, 2 * opt->num_blocks);
}

}  // namespace
}  // namespace hfast::core
