/// SmpProperties — invariants of the SMP packing mode that must hold for
/// every application, concurrency, and aggregation level, not just the
/// cells the paper tables print. One simulation per (app, P) feeds a grid
/// of build_smp_artifacts derivations (the packing is post-simulation, so
/// re-deriving from one comm graph is free).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "hfast/analysis/experiment.hpp"
#include "hfast/graph/tdc.hpp"
#include "hfast/mpisim/engine.hpp"

namespace hfast {
namespace {

constexpr const char* kApps[] = {"cactus",  "gtc",   "lbmhd",
                                 "superlu", "pmemd", "paratec"};
constexpr int kConcurrencies[] = {64, 256};
constexpr int kCores[] = {2, 4, 8};

analysis::ExperimentResult simulate(const char* app, int nranks) {
  analysis::ExperimentConfig cfg;
  cfg.app = app;
  cfg.nranks = nranks;
  cfg.capture_trace = false;  // only the comm graph feeds the derivations
  cfg.engine = mpisim::fibers_supported() ? mpisim::EngineKind::kFibers
                                          : mpisim::EngineKind::kThreads;
  return analysis::run_experiment(cfg);
}

void expect_artifacts_eq(const analysis::SmpArtifacts& a,
                         const analysis::SmpArtifacts& b) {
  EXPECT_EQ(a.num_nodes, b.num_nodes);
  EXPECT_EQ(a.backplane_bytes, b.backplane_bytes);
  EXPECT_EQ(a.node_tdc_max, b.node_tdc_max);
  EXPECT_EQ(a.node_tdc_avg, b.node_tdc_avg);
  EXPECT_EQ(a.block_size, b.block_size);
  EXPECT_EQ(a.node_of_task, b.node_of_task);
  EXPECT_EQ(a.node_graph.edges(), b.node_graph.edges());
  EXPECT_TRUE(a.provision == b.provision);
}

TEST(SmpProperties, PackingInvariantsAcrossAppsAndAggregations) {
  for (const char* app : kApps) {
    for (int nranks : kConcurrencies) {
      SCOPED_TRACE(std::string(app) + " P=" + std::to_string(nranks));
      const auto r = simulate(app, nranks);
      const std::uint64_t total = r.comm_graph.total_bytes();
      // Raw (cutoff-0) task degree bounds the node degree: a node of c
      // tasks can talk to at most c * max_task_degree distinct tasks, and
      // quotienting only merges endpoints.
      const int task_degree_max = graph::tdc(r.comm_graph, 0).max;

      for (int cores : kCores) {
        std::uint64_t rank_order_backplane = 0;
        for (const core::SmpPacking packing :
             {core::SmpPacking::kRankOrder, core::SmpPacking::kAffinity}) {
          SCOPED_TRACE(std::string(core::packing_name(packing)) + " cores=" +
                       std::to_string(cores));
          const auto smp =
              analysis::build_smp_artifacts(r.comm_graph, {cores, packing});

          // Conservation: every byte is either node-internal (backplane)
          // or survives into the interconnect-visible quotient graph.
          EXPECT_EQ(smp.node_graph.total_bytes() + smp.backplane_bytes, total);

          // Node count is exactly ceil(P / cores) — the packing never
          // leaves a node empty or over-allocates machines.
          EXPECT_EQ(smp.num_nodes, (nranks + cores - 1) / cores);
          EXPECT_EQ(smp.node_graph.num_nodes(), smp.num_nodes);

          // The task->node map is total, in range, and respects capacity.
          ASSERT_EQ(smp.node_of_task.size(),
                    static_cast<std::size_t>(nranks));
          std::vector<int> occupancy(
              static_cast<std::size_t>(smp.num_nodes), 0);
          for (int node : smp.node_of_task) {
            ASSERT_GE(node, 0);
            ASSERT_LT(node, smp.num_nodes);
            ++occupancy[static_cast<std::size_t>(node)];
          }
          for (int occ : occupancy) {
            EXPECT_GE(occ, 1);
            EXPECT_LE(occ, cores);
          }

          // Aggregation cannot manufacture connectivity beyond the union
          // of the members' task-level neighborhoods.
          EXPECT_LE(smp.node_tdc_max, cores * task_degree_max);

          // Blocks follow the paper's §5.3 sizing rule at node level.
          EXPECT_EQ(smp.block_size, smp.node_tdc_max < 8 ? 8 : 16);

          // Deriving twice from the same graph is bit-identical — the
          // packing and provisioning pipeline is deterministic.
          expect_artifacts_eq(
              smp, analysis::build_smp_artifacts(r.comm_graph,
                                                 {cores, packing}));

          // Affinity packing never localizes fewer bytes than rank order
          // (graph::quotient_by_affinity's documented guarantee).
          if (packing == core::SmpPacking::kRankOrder) {
            rank_order_backplane = smp.backplane_bytes;
          } else {
            EXPECT_GE(smp.backplane_bytes, rank_order_backplane);
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace hfast
