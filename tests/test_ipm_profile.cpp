#include <gtest/gtest.h>

#include "hfast/ipm/profile.hpp"
#include "hfast/util/assert.hpp"
#include "hfast/ipm/report.hpp"

namespace hfast::ipm {
namespace {

using mpisim::CallType;

TEST(CallTable, AggregatesIdenticalSignatures) {
  CallTable t(64);
  t.record(CallType::kSend, 3, 1024, 0, 0.5);
  t.record(CallType::kSend, 3, 1024, 0, 1.5);
  t.record(CallType::kSend, 3, 2048, 0, 1.0);  // different size: new entry
  const auto recs = t.records();
  ASSERT_EQ(recs.size(), 2u);
  for (const auto& r : recs) {
    if (r.bytes == 1024) {
      EXPECT_EQ(r.count, 2u);
      EXPECT_DOUBLE_EQ(r.time_total, 2.0);
      EXPECT_DOUBLE_EQ(r.time_min, 0.5);
      EXPECT_DOUBLE_EQ(r.time_max, 1.5);
    } else {
      EXPECT_EQ(r.count, 1u);
    }
  }
}

TEST(CallTable, FixedFootprintDropsOnOverflow) {
  CallTable t(16);  // tiny table
  for (int i = 0; i < 100; ++i) {
    t.record(CallType::kSend, i, 8, 0, 0.0);
  }
  EXPECT_LE(t.size(), t.capacity() - 1);
  EXPECT_GT(t.dropped(), 0u);
  // Existing entries keep aggregating even when the table is full.
  const auto before = t.records();
  t.record(CallType::kSend, before[0].peer, before[0].bytes, 0, 0.0);
  std::uint64_t count_after = 0;
  for (const auto& r : t.records()) {
    if (r.peer == before[0].peer && r.bytes == before[0].bytes) {
      count_after = r.count;
    }
  }
  EXPECT_EQ(count_after, before[0].count + 1);
}

TEST(CallTable, RejectsNonPowerOfTwoCapacity) {
  EXPECT_THROW(CallTable t(100), ContractViolation);
  EXPECT_THROW(CallTable t(8), ContractViolation);
}

TEST(RankProfile, RegionsSeparateActivity) {
  RankProfile p(0);
  p.on_region("init", true);
  p.on_call(CallType::kSend, 1, 1000, 0.0);
  p.on_message(1, 1000, true);
  p.on_region("init", false);
  p.on_region("steady", true);
  p.on_call(CallType::kSend, 2, 2000, 0.0);
  p.on_message(2, 2000, true);
  p.on_region("steady", false);

  RegionId init_id = 0, steady_id = 0;
  ASSERT_TRUE(p.find_region("init", init_id));
  ASSERT_TRUE(p.find_region("steady", steady_id));
  EXPECT_NE(init_id, steady_id);

  int init_records = 0, steady_records = 0;
  for (const auto& r : p.call_records()) {
    if (r.region == init_id) ++init_records;
    if (r.region == steady_id) ++steady_records;
  }
  EXPECT_EQ(init_records, 1);
  EXPECT_EQ(steady_records, 1);
}

TEST(RankProfile, MismatchedRegionEndThrows) {
  RankProfile p(0);
  EXPECT_THROW(p.on_region("x", false), ContractViolation);
  p.on_region("a", true);
  EXPECT_THROW(p.on_region("b", false), ContractViolation);
}

TEST(RankProfile, OnlySendsContributeToTopologyData) {
  RankProfile p(0);
  p.on_message(1, 100, /*is_send=*/true);
  p.on_message(2, 100, /*is_send=*/false);  // receive: not recorded
  EXPECT_EQ(p.sent_messages().size(), 1u);
  EXPECT_EQ(p.sent_messages().begin()->first.peer, 1);
}

TEST(WorkloadProfile, MergeComputesBreakdownAndPercentages) {
  RankProfile a(0), b(1);
  for (int i = 0; i < 9; ++i) a.on_call(CallType::kIsend, 1, 4096, 0.0);
  a.on_call(CallType::kAllreduce, mpisim::kNoPeer, 8, 0.0);
  for (int i = 0; i < 9; ++i) b.on_call(CallType::kIrecv, 0, 4096, 0.0);
  b.on_call(CallType::kAllreduce, mpisim::kNoPeer, 8, 0.0);

  const RankProfile* ranks[] = {&a, &b};
  const auto w = WorkloadProfile::merge(ranks);
  EXPECT_EQ(w.total_calls(), 20u);
  EXPECT_DOUBLE_EQ(w.ptp_call_percent(), 90.0);
  EXPECT_DOUBLE_EQ(w.collective_call_percent(), 10.0);
  EXPECT_EQ(w.calls_of(CallType::kIsend), 9u);
  EXPECT_EQ(w.median_ptp_buffer(), 4096u);
  EXPECT_EQ(w.median_collective_buffer(), 8u);

  const auto breakdown = w.call_breakdown(0.0);
  ASSERT_EQ(breakdown.size(), 3u);
  EXPECT_EQ(breakdown[0].count, 9u);  // sorted by count desc
}

TEST(WorkloadProfile, BreakdownFoldsSmallEntriesIntoOther) {
  RankProfile a(0);
  for (int i = 0; i < 99; ++i) a.on_call(CallType::kIsend, 1, 8, 0.0);
  a.on_call(CallType::kBarrier, mpisim::kNoPeer, 0, 0.0);
  const RankProfile* ranks[] = {&a};
  const auto w = WorkloadProfile::merge(ranks);
  const auto breakdown = w.call_breakdown(5.0);
  ASSERT_EQ(breakdown.size(), 2u);
  EXPECT_EQ(breakdown.back().call, CallType::kCount);  // "Other"
  EXPECT_EQ(breakdown.back().count, 1u);
}

TEST(WorkloadProfile, RegionFilterSelectsActivity) {
  RankProfile a(0);
  a.on_region("init", true);
  for (int i = 0; i < 5; ++i) {
    a.on_call(CallType::kSend, 1, 1000, 0.0);
    a.on_message(1, 1000, true);
  }
  a.on_region("init", false);
  a.on_region("steady", true);
  a.on_call(CallType::kSend, 2, 64, 0.0);
  a.on_message(2, 64, true);
  a.on_region("steady", false);

  const RankProfile* ranks[] = {&a};
  const auto steady = WorkloadProfile::merge(ranks, "steady");
  EXPECT_EQ(steady.total_calls(), 1u);
  EXPECT_EQ(steady.median_ptp_buffer(), 64u);
  ASSERT_EQ(steady.sent().size(), 1u);
  EXPECT_EQ(steady.sent()[0].size(), 1u);

  const auto all = WorkloadProfile::merge(ranks, "");
  EXPECT_EQ(all.total_calls(), 6u);

  const auto missing = WorkloadProfile::merge(ranks, "nonexistent");
  EXPECT_EQ(missing.total_calls(), 0u);
}

TEST(WorkloadProfile, WaitsCarryNoBufferSizes) {
  RankProfile a(0);
  a.on_call(CallType::kWait, mpisim::kNoPeer, 0, 0.0);
  a.on_call(CallType::kWaitall, mpisim::kNoPeer, 0, 0.0);
  const RankProfile* ranks[] = {&a};
  const auto w = WorkloadProfile::merge(ranks);
  EXPECT_TRUE(w.ptp_buffers().empty());
  EXPECT_DOUBLE_EQ(w.ptp_call_percent(), 100.0);
}

}  // namespace
}  // namespace hfast::ipm
