/// BatchRunner: the parallel sweep must be indistinguishable from the
/// sequential loop it replaces — same results, same order — and one bad
/// job must surface as a JobError without poisoning its siblings.

#include <gtest/gtest.h>

#include "hfast/util/assert.hpp"

#include <sstream>

#include "hfast/analysis/batch.hpp"
#include "hfast/topo/mesh.hpp"

namespace hfast::analysis {
namespace {

/// Structural fingerprint of an experiment result: every field that is
/// deterministic by construction (timings excluded), with the full event
/// trace serialized byte for byte.
std::string fingerprint(const ExperimentResult& r) {
  std::ostringstream os;
  os << r.config.app << '|' << r.config.nranks << '|' << r.config.seed << '|'
     << r.steady.total_calls() << '|' << r.steady.ptp_buffers().total_bytes()
     << '|' << r.all_regions.total_calls() << '|'
     << r.comm_graph.total_bytes() << '|'
     << r.comm_graph.num_edges() << '|' << r.comm_graph_all.total_bytes()
     << '|';
  r.trace.save_text(os);
  return os.str();
}

/// Aggregate-only fingerprint for apps whose kernels receive from
/// kAnySource (gtc, superlu): wildcard match order is scheduling-dependent
/// even across two sequential runs, so the raw event stream is excluded
/// while every send-side and merged statistic must still agree.
std::string aggregate_fingerprint(const ExperimentResult& r) {
  std::ostringstream os;
  os << r.config.app << '|' << r.config.nranks << '|' << r.config.seed << '|'
     << r.steady.total_calls() << '|' << r.steady.ptp_buffers().total_bytes()
     << '|' << r.all_regions.total_calls() << '|'
     << r.comm_graph.total_bytes() << '|' << r.comm_graph.num_edges() << '|'
     << r.comm_graph_all.total_bytes() << '|' << r.trace.events().size();
  return os.str();
}

TEST(BatchRunner, ParallelSweepMatchesSequentialByteForByte) {
  // Cactus has no wildcard receives, so its full event trace is
  // deterministic: the batched sweep must reproduce the sequential loop
  // byte for byte, trace included.
  const auto configs = sweep_configs({"cactus"}, {8, 16}, {1, 7});
  ASSERT_EQ(configs.size(), 4u);

  std::vector<std::string> sequential;
  for (const auto& cfg : configs) {
    sequential.push_back(fingerprint(run_experiment(cfg)));
  }

  const auto batch = BatchRunner().run(configs);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch.results.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    ASSERT_TRUE(batch.results[i].has_value()) << "job " << i;
    EXPECT_EQ(fingerprint(*batch.results[i]), sequential[i]) << "job " << i;
  }
  EXPECT_GT(batch.wall_seconds, 0.0);
}

TEST(BatchRunner, MixedSweepMatchesSequentialAggregates) {
  // Mixed widths so admission order and completion order differ; gtc and
  // superlu exercise wildcard receives, so compare the deterministic
  // aggregates (see aggregate_fingerprint).
  const auto configs = sweep_configs({"cactus", "gtc", "superlu"}, {8, 16},
                                     {1, 7});
  ASSERT_GT(configs.size(), 4u);

  std::vector<std::string> sequential;
  for (const auto& cfg : configs) {
    sequential.push_back(aggregate_fingerprint(run_experiment(cfg)));
  }

  const auto batch = BatchRunner().run(configs);
  ASSERT_TRUE(batch.ok());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    ASSERT_TRUE(batch.results[i].has_value()) << "job " << i;
    EXPECT_EQ(aggregate_fingerprint(*batch.results[i]), sequential[i])
        << "job " << i;
  }
}

TEST(BatchRunner, NarrowBudgetStillRunsWideJobs) {
  // A 16-rank experiment under a 1-thread budget must still run (clamped,
  // alone) — and a budget of 1 degenerates to a sequential sweep.
  const auto configs = sweep_configs({"cactus"}, {8, 16});
  const auto batch = BatchRunner({.thread_budget = 1}).run(configs);
  ASSERT_TRUE(batch.ok());
  for (const auto& r : batch.results) {
    ASSERT_TRUE(r.has_value());
    EXPECT_GT(r->steady.total_calls(), 0u);
  }
}

TEST(BatchRunner, FailingJobIsReportedWithoutPoisoningSiblings) {
  std::vector<ExperimentConfig> configs;
  ExperimentConfig good;
  good.app = "cactus";
  good.nranks = 8;
  configs.push_back(good);
  ExperimentConfig bad;
  bad.app = "no-such-app";
  bad.nranks = 8;
  configs.push_back(bad);
  ExperimentConfig invalid;
  invalid.app = "lbmhd";
  invalid.nranks = 10;  // not a valid LBMHD grid
  configs.push_back(invalid);
  configs.push_back(good);

  const auto batch = BatchRunner().run(configs);
  EXPECT_FALSE(batch.ok());
  ASSERT_EQ(batch.errors.size(), 2u);
  EXPECT_EQ(batch.errors[0].index, 1u);
  EXPECT_NE(batch.errors[0].job.find("no-such-app"), std::string::npos);
  EXPECT_FALSE(batch.errors[0].message.empty());
  EXPECT_EQ(batch.errors[1].index, 2u);

  ASSERT_TRUE(batch.results[0].has_value());
  EXPECT_FALSE(batch.results[1].has_value());
  EXPECT_FALSE(batch.results[2].has_value());
  ASSERT_TRUE(batch.results[3].has_value());
  EXPECT_EQ(fingerprint(*batch.results[0]), fingerprint(*batch.results[3]));
}

TEST(BatchRunner, ReplayBatchMatchesDirectReplay) {
  const auto r = run_experiment("cactus", 8);
  const auto steady = r.trace.filter_region(apps::kSteadyRegion);
  const topo::MeshTorus torus(topo::MeshTorus::balanced_dims(8, 3), true);
  const netsim::LinkParams link;

  std::vector<ReplayJob> jobs;
  for (int i = 0; i < 4; ++i) {
    ReplayJob j;
    j.label = "torus replay " + std::to_string(i);
    j.trace = &steady;
    j.make_network = [&torus, link] {
      return std::make_unique<netsim::DirectNetwork>(torus, link);
    };
    jobs.push_back(std::move(j));
  }

  netsim::DirectNetwork reference_net(torus, link);
  const auto reference = netsim::replay(steady, reference_net, {});

  const auto batch = BatchRunner().run_replays(jobs);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch.results.size(), jobs.size());
  for (const auto& res : batch.results) {
    ASSERT_TRUE(res.has_value());
    EXPECT_DOUBLE_EQ(res->makespan_s, reference.makespan_s);
    EXPECT_EQ(res->messages, reference.messages);
    EXPECT_EQ(res->bytes, reference.bytes);
    EXPECT_DOUBLE_EQ(res->total_recv_wait_s, reference.total_recv_wait_s);
    EXPECT_EQ(res->max_switch_hops, reference.max_switch_hops);
  }
}

TEST(BatchRunner, ShardedReplayJobsMatchSerial) {
  const auto r = run_experiment("gtc", 8);
  const auto steady = r.trace.filter_region(apps::kSteadyRegion);
  const topo::MeshTorus torus(topo::MeshTorus::balanced_dims(8, 3), true);
  const netsim::LinkParams link;

  netsim::DirectNetwork reference_net(torus, link);
  const auto reference = netsim::replay(steady, reference_net, {});

  std::vector<ReplayJob> jobs;
  for (const int shards : {1, 2, 4, 7}) {
    ReplayJob j;
    j.label = "sharded replay K=" + std::to_string(shards);
    j.trace = &steady;
    j.shards = shards;
    j.make_network = [&torus, link] {
      return std::make_unique<netsim::DirectNetwork>(torus, link);
    };
    jobs.push_back(std::move(j));
  }
  // A 2-thread budget makes the K=4 and K=7 jobs wider than the budget:
  // they must still run (alone), charged at their declared shard weight.
  const auto batch = BatchRunner({.thread_budget = 2}).run_replays(jobs);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch.results.size(), jobs.size());
  for (const auto& res : batch.results) {
    ASSERT_TRUE(res.has_value());
    EXPECT_TRUE(*res == reference);
  }
}

TEST(BatchRunner, ReplayJobErrorsAreIsolated) {
  const auto r = run_experiment("cactus", 8);
  const auto steady = r.trace.filter_region(apps::kSteadyRegion);
  const topo::MeshTorus torus(topo::MeshTorus::balanced_dims(8, 3), true);
  const topo::MeshTorus tiny(topo::MeshTorus::balanced_dims(4, 2), true);
  const netsim::LinkParams link;

  std::vector<ReplayJob> jobs(2);
  jobs[0].label = "ok";
  jobs[0].trace = &steady;
  jobs[0].make_network = [&torus, link] {
    return std::make_unique<netsim::DirectNetwork>(torus, link);
  };
  jobs[1].label = "network too small";
  jobs[1].trace = &steady;
  jobs[1].make_network = [&tiny, link] {
    // 4 endpoints for an 8-rank trace: replay's precondition fails.
    return std::make_unique<netsim::DirectNetwork>(tiny, link);
  };

  const auto batch = BatchRunner().run_replays(jobs);
  ASSERT_EQ(batch.errors.size(), 1u);
  EXPECT_EQ(batch.errors[0].index, 1u);
  EXPECT_EQ(batch.errors[0].job, "network too small");
  ASSERT_TRUE(batch.results[0].has_value());
  EXPECT_FALSE(batch.results[1].has_value());
}

TEST(SweepConfigs, CrossProductSkipsInvalidConcurrency) {
  // 10 is not a valid LBMHD concurrency (needs a square grid, >= 5x5), so
  // the lbmhd x 10 cell drops out while cactus x 10 survives. No
  // experiment runs here — this only exercises config generation.
  const auto configs = sweep_configs({"cactus", "lbmhd"}, {64, 10}, {1, 2});
  std::size_t cactus = 0, lbmhd = 0;
  for (const auto& c : configs) {
    if (c.app == "cactus") ++cactus;
    if (c.app == "lbmhd") {
      EXPECT_NE(c.nranks, 10);
      ++lbmhd;
    }
  }
  EXPECT_EQ(cactus, 4u);  // 2 concurrencies x 2 seeds
  EXPECT_EQ(lbmhd, 2u);   // only P=64 (8x8) survives
  EXPECT_THROW(sweep_configs({"nope"}, {8}), Error);
}

}  // namespace
}  // namespace hfast::analysis
