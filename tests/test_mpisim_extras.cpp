#include <gtest/gtest.h>

#include "hfast/util/assert.hpp"

#include <sstream>

#include "hfast/ipm/text_report.hpp"
#include "hfast/mpisim/runtime.hpp"

namespace hfast::mpisim {
namespace {

RuntimeConfig cfg(int nranks) {
  RuntimeConfig c;
  c.nranks = nranks;
  c.watchdog = std::chrono::milliseconds(5000);
  return c;
}

TEST(Extras, TestPollsWithoutBlocking) {
  Runtime rt(cfg(2));
  rt.run([](RankContext& ctx) {
    if (ctx.rank() == 0) {
      Request r = ctx.irecv(1, 64, /*tag=*/3);
      // Poll until completion (the partner may be slow to send).
      int polls = 0;
      while (!ctx.test(r)) {
        ++polls;
        ASSERT_LT(polls, 1000000) << "test() never completed";
      }
      // A further test on the consumed request reports complete.
      EXPECT_TRUE(ctx.test(r));
    } else {
      ctx.send(0, 64, /*tag=*/3);
    }
  });
}

TEST(Extras, TestOnCompletedSendIsTrue) {
  Runtime rt(cfg(2));
  rt.run([](RankContext& ctx) {
    if (ctx.rank() == 0) {
      Request s = ctx.isend(1, 16, 0);
      EXPECT_TRUE(ctx.test(s));  // eager sends complete at post
    } else {
      (void)ctx.recv(0, 16, 0);
    }
  });
}

TEST(Extras, IprobeSeesWithoutConsuming) {
  Runtime rt(cfg(2));
  rt.run([](RankContext& ctx) {
    if (ctx.rank() == 0) {
      // Busy-wait until the probe sees the message.
      Rank src = kAnySource;
      std::uint64_t bytes = 0;
      while (!ctx.iprobe(ctx.world(), kAnySource, kAnyTag, &src, &bytes)) {
      }
      EXPECT_EQ(src, 1);
      EXPECT_EQ(bytes, 777u);
      // Probing does not consume: the receive still matches.
      Message m = ctx.recv(1, 777, kAnyTag);
      EXPECT_EQ(m.bytes, 777u);
      // Nothing left now.
      EXPECT_FALSE(ctx.iprobe(ctx.world(), kAnySource, kAnyTag));
    } else {
      ctx.send(0, 777, /*tag=*/9);
    }
  });
}

TEST(Extras, ReduceScatterAndScanSynchronize) {
  Runtime rt(cfg(6));
  rt.run([](RankContext& ctx) {
    ctx.reduce_scatter(ctx.world(), 128);
    ctx.scan(ctx.world(), 64);
    ctx.scan(ctx.world(), 64);  // back-to-back scans must not cross-match
    ctx.reduce_scatter(ctx.world(), 128);
  });
}

TEST(Extras, NewCallsLandInProfileTaxonomy) {
  Runtime rt(cfg(2));
  std::vector<std::unique_ptr<ipm::RankProfile>> profiles;
  for (int r = 0; r < 2; ++r) {
    profiles.push_back(std::make_unique<ipm::RankProfile>(r));
  }
  rt.run(
      [](RankContext& ctx) {
        if (ctx.rank() == 0) {
          Request r = ctx.irecv(1, 8, 0);
          while (!ctx.test(r)) {
          }
          (void)ctx.iprobe(ctx.world(), kAnySource, kAnyTag);
        } else {
          ctx.send(0, 8, 0);
        }
        ctx.reduce_scatter(ctx.world(), 32);
        ctx.scan(ctx.world(), 16);
      },
      [&profiles](Rank r) { return profiles[static_cast<std::size_t>(r)].get(); });

  const ipm::RankProfile* ptrs[] = {profiles[0].get(), profiles[1].get()};
  const auto w = ipm::WorkloadProfile::merge(ptrs);
  EXPECT_GT(w.calls_of(CallType::kTest), 0u);
  EXPECT_EQ(w.calls_of(CallType::kIprobe), 1u);
  EXPECT_EQ(w.calls_of(CallType::kReduceScatter), 2u);
  EXPECT_EQ(w.calls_of(CallType::kScan), 2u);
  // Taxonomy: test/iprobe count as PTP activity, the others as collectives.
  EXPECT_TRUE(is_point_to_point(CallType::kTest));
  EXPECT_TRUE(is_point_to_point(CallType::kIprobe));
  EXPECT_TRUE(is_collective(CallType::kReduceScatter));
  EXPECT_TRUE(is_collective(CallType::kScan));
  EXPECT_FALSE(carries_buffer(CallType::kIprobe));
}

TEST(Extras, TextReportContainsSections) {
  Runtime rt(cfg(4));
  std::vector<std::unique_ptr<ipm::RankProfile>> profiles;
  for (int r = 0; r < 4; ++r) {
    profiles.push_back(std::make_unique<ipm::RankProfile>(r));
  }
  rt.run(
      [](RankContext& ctx) {
        ctx.region_begin("init");
        ctx.bcast(0, 1024);
        ctx.region_end("init");
        ctx.region_begin("steady");
        const int right = (ctx.rank() + 1) % ctx.nranks();
        const int left = (ctx.rank() + ctx.nranks() - 1) % ctx.nranks();
        (void)ctx.sendrecv(right, 4096, left, 4096, 0);
        ctx.allreduce(8);
        ctx.region_end("steady");
      },
      [&profiles](Rank r) { return profiles[static_cast<std::size_t>(r)].get(); });

  std::vector<const ipm::RankProfile*> ptrs;
  for (const auto& p : profiles) ptrs.push_back(p.get());
  std::ostringstream os;
  ipm::write_text_report(os, ptrs, {.job_name = "ringtest"});
  const std::string report = os.str();
  EXPECT_NE(report.find("ringtest"), std::string::npos);
  EXPECT_NE(report.find("whole job"), std::string::npos);
  EXPECT_NE(report.find("region: init"), std::string::npos);
  EXPECT_NE(report.find("region: steady"), std::string::npos);
  EXPECT_NE(report.find("MPI_Sendrecv"), std::string::npos);
  EXPECT_NE(report.find("hash:"), std::string::npos);
  EXPECT_EQ(report.find("WARNING"), std::string::npos);
}

TEST(Extras, TextReportEmptyWorkload) {
  ipm::RankProfile p(0);
  const ipm::RankProfile* ptrs[] = {&p};
  std::ostringstream os;
  ipm::write_text_report(os, ptrs);
  EXPECT_NE(os.str().find("no communication recorded"), std::string::npos);
}

}  // namespace
}  // namespace hfast::mpisim
