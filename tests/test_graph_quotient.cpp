#include <gtest/gtest.h>

#include "hfast/util/assert.hpp"

#include <map>

#include "hfast/graph/quotient.hpp"
#include "hfast/graph/tdc.hpp"

namespace hfast::graph {
namespace {

CommGraph ring(int n, std::uint64_t bytes = 8192) {
  CommGraph g(n);
  for (int i = 0; i < n; ++i) g.add_message(i, (i + 1) % n, bytes);
  return g;
}

TEST(Quotient, ExplicitMappingContractsEdges) {
  // 4-ring onto 2 nodes: {0,1} and {2,3}.
  const auto g = ring(4);
  const auto q = quotient_graph(g, {0, 0, 1, 1}, 2);
  EXPECT_EQ(q.graph.num_nodes(), 2);
  EXPECT_EQ(q.graph.num_edges(), 1u);  // edges (1,2) and (3,0) merge
  EXPECT_EQ(q.internal_bytes, 2u * 8192u);  // (0,1) and (2,3) absorbed
  EXPECT_EQ(q.graph.edge(0, 1)->bytes, 2u * 8192u);
}

TEST(Quotient, ConservesTraffic) {
  const auto g = ring(12, 1000);
  for (int cores : {2, 3, 4, 6}) {
    const auto q = quotient_by_blocks(g, cores);
    EXPECT_EQ(q.internal_bytes + q.graph.total_bytes(), g.total_bytes())
        << cores;
  }
}

TEST(Quotient, PreservesMaxMessageForThresholding) {
  CommGraph g(4);
  g.add_message(0, 2, 100, 50);   // many small across the cut
  g.add_message(1, 3, 8192, 1);   // one big across the cut
  const auto q = quotient_graph(g, {0, 0, 1, 1}, 2);
  // The quotient edge keeps a >=8192-byte max message, so the 2 KB
  // threshold still sees it.
  EXPECT_GE(q.graph.edge(0, 1)->max_message, 8192u);
  EXPECT_EQ(tdc(q.graph, kBdpCutoffBytes).max, 1);
}

TEST(Quotient, BlockPackingShapesRing) {
  // A 16-ring at 4 tasks/node becomes a 4-ring.
  const auto g = ring(16);
  const auto q = quotient_by_blocks(g, 4);
  EXPECT_EQ(q.graph.num_nodes(), 4);
  const auto t = tdc(q.graph, 0);
  EXPECT_EQ(t.max, 2);
  EXPECT_EQ(t.min, 2);
  EXPECT_EQ(q.internal_bytes, 12u * 8192u);  // 3 internal edges per node
}

TEST(Quotient, AffinityAbsorbsAtLeastAsMuchAsRankOrderOnRing) {
  const auto g = ring(16);
  const auto naive = quotient_by_blocks(g, 4);
  const auto affine = quotient_by_affinity(g, 4);
  EXPECT_GE(affine.internal_bytes, naive.internal_bytes);
  EXPECT_EQ(affine.graph.num_nodes(), naive.graph.num_nodes());
  // Every task assigned, capacity respected.
  std::map<int, int> load;
  for (int nd : affine.node_of_task) ++load[nd];
  for (const auto& [node, count] : load) {
    EXPECT_LE(count, 4) << "node " << node;
  }
}

TEST(Quotient, AffinityPrefersHeavyEdges) {
  // Two heavy pairs plus light cross traffic: affinity must co-locate the
  // heavy pairs.
  CommGraph g(4);
  g.add_message(0, 3, 1000000);
  g.add_message(1, 2, 1000000);
  g.add_message(0, 1, 10);
  g.add_message(2, 3, 10);
  const auto q = quotient_by_affinity(g, 2);
  EXPECT_EQ(q.node_of_task[0], q.node_of_task[3]);
  EXPECT_EQ(q.node_of_task[1], q.node_of_task[2]);
  EXPECT_EQ(q.internal_bytes, 2000000u);
}

TEST(Quotient, InputValidation) {
  const auto g = ring(4);
  EXPECT_THROW(quotient_graph(g, {0, 0, 1}, 2), ContractViolation);
  EXPECT_THROW(quotient_graph(g, {0, 0, 1, 5}, 2), ContractViolation);
  EXPECT_THROW(quotient_by_blocks(g, 0), ContractViolation);
}

TEST(Quotient, SingleCorePerNodeIsIdentity) {
  const auto g = ring(6);
  const auto q = quotient_by_blocks(g, 1);
  EXPECT_EQ(q.graph.num_nodes(), 6);
  EXPECT_EQ(q.graph.num_edges(), g.num_edges());
  EXPECT_EQ(q.internal_bytes, 0u);
}

}  // namespace
}  // namespace hfast::graph
