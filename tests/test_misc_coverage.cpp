/// Edge-case coverage for API surface not exercised elsewhere: communicator
/// contracts, fabric port release, trace per-rank views, and cross-model
/// replay on a clique-provisioned fabric.

#include <gtest/gtest.h>

#include "hfast/util/assert.hpp"

#include "hfast/analysis/experiment.hpp"
#include "hfast/core/provision.hpp"
#include "hfast/mpisim/runtime.hpp"
#include "hfast/netsim/replay.hpp"
#include "hfast/topo/anneal.hpp"
#include "hfast/topo/fcn.hpp"

namespace hfast {
namespace {

TEST(Communicator, ContractsAndAccessors) {
  mpisim::Communicator c(7, {3, 5, 9}, 1);
  EXPECT_EQ(c.id(), 7);
  EXPECT_EQ(c.size(), 3);
  EXPECT_EQ(c.rank(), 1);
  EXPECT_EQ(c.world_rank(0), 3);
  EXPECT_EQ(c.world_rank(2), 9);
  EXPECT_THROW(c.world_rank(3), ContractViolation);
  EXPECT_THROW(mpisim::Communicator(1, {3, 5}, 2), ContractViolation);
}

TEST(SwitchBlock, ReleaseRecyclesLowestPortFirst) {
  core::SwitchBlock b(0, 4);
  const int p0 = b.attach_host(1);
  const int p1 = b.attach_trunk({2, 0});
  EXPECT_EQ(p0, 0);
  EXPECT_EQ(p1, 1);
  b.release(p0);
  // first_free returns the lowest-index free port.
  EXPECT_EQ(b.first_free(), 0);
  const int again = b.attach_host(9);
  EXPECT_EQ(again, 0);
  EXPECT_THROW(b.release(7), ContractViolation);
}

TEST(Trace, RankEventsViewIsOrdered) {
  const auto r = analysis::run_experiment("cactus", 8);
  const auto mine = r.trace.rank_events(3);
  ASSERT_FALSE(mine.empty());
  for (std::size_t i = 1; i < mine.size(); ++i) {
    EXPECT_EQ(mine[i].rank, 3);
    EXPECT_GT(mine[i].op_index, mine[i - 1].op_index);
  }
}

TEST(Replay, CliqueProvisionedFabricCarriesAppTrace) {
  const auto r = analysis::run_experiment("superlu", 16);
  const auto steady = r.trace.filter_region(apps::kSteadyRegion);
  // Clique fabric provisioned at cutoff 0 so even the tiny pivot messages
  // have a route.
  core::ProvisionParams params;
  params.cutoff = 0;
  const auto prov = core::provision_clique(r.comm_graph, params);
  prov.fabric.validate();
  netsim::LinkParams link;
  netsim::FabricNetwork net(prov.fabric, link, 50e-9);
  const auto result = netsim::replay(steady, net);
  EXPECT_GT(result.messages, 0u);
  EXPECT_GT(result.makespan_s, 0.0);
  // Shared blocks keep some routes at a single switch hop.
  EXPECT_LE(result.avg_switch_hops, 3.0);
}

TEST(Anneal, FcnHasNothingToImprove) {
  graph::CommGraph g(8);
  for (int i = 0; i < 8; ++i) g.add_message(i, (i + 1) % 8, 4096);
  topo::FullyConnected fcn(8);
  const auto result =
      anneal_embedding(g, fcn, topo::identity_embedding(8), {});
  // Every placement on an FCN has dilation 1: cost never changes.
  EXPECT_EQ(result.final_cost, result.initial_cost);
  EXPECT_EQ(result.improving_moves, 0);
}

TEST(CommGraphThresholded, PreservesStatsOfSurvivors) {
  graph::CommGraph g(3);
  g.add_message(0, 1, 4096, 5);
  g.add_message(1, 2, 64, 9);
  const auto t = g.thresholded(2048);
  ASSERT_NE(t.edge(0, 1), nullptr);
  EXPECT_EQ(t.edge(0, 1)->messages, 5u);
  EXPECT_EQ(t.edge(0, 1)->bytes, 5u * 4096u);
  EXPECT_EQ(t.partners(1, 0), std::vector<int>{0});
}

TEST(RuntimeConfigDefaults, AreSane) {
  mpisim::RuntimeConfig cfg;
  EXPECT_EQ(cfg.nranks, 4);
  EXPECT_FALSE(cfg.capture_payload);
  EXPECT_TRUE(cfg.check_leaks);
  EXPECT_GE(cfg.watchdog.count(), 1000);
}

TEST(ProvisionStats, AverageBoundedByMax) {
  for (const char* app : {"gtc", "superlu"}) {
    const auto r = analysis::run_experiment(app, 16);
    for (auto strategy : {core::ProvisionStrategy::kGreedyPerNode,
                          core::ProvisionStrategy::kCliqueShared}) {
      const auto prov = core::provision(r.comm_graph, {}, strategy);
      EXPECT_LE(prov.stats.avg_circuit_traversals,
                static_cast<double>(prov.stats.max_circuit_traversals));
      EXPECT_LE(prov.stats.avg_switch_hops,
                static_cast<double>(prov.stats.max_switch_hops));
      EXPECT_EQ(prov.stats.avg_circuit_traversals,
                prov.stats.avg_switch_hops + 1.0);
    }
  }
}

}  // namespace
}  // namespace hfast
