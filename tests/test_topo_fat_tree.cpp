#include <gtest/gtest.h>

#include "hfast/util/assert.hpp"

#include "hfast/topo/fat_tree.hpp"

namespace hfast::topo {
namespace {

TEST(FatTree, PaperWorkedExample) {
  // Paper 5.3 quotes "a 6 layer fat-tree composed of 8-port switches
  // requires 11 switch ports for each processor for a network of 2048
  // processors". Under the paper's own capacity formula P = 2*(N/2)^L,
  // 2048 endpoints need exactly L=5 (2*4^5 = 2048); a 6-level tree serves
  // 8192. We follow the formula (see EXPERIMENTS.md): the 11-ports figure
  // holds at L=6.
  const FatTree exact(2048, 8);
  EXPECT_EQ(exact.levels(), 5);
  EXPECT_EQ(exact.capacity(), 2048u);
  EXPECT_EQ(exact.ports_per_processor(), 9);
  const FatTree six(8192, 8);
  EXPECT_EQ(six.levels(), 6);
  EXPECT_EQ(six.ports_per_processor(), 11);  // the paper's figure
}

TEST(FatTree, CapacityFormula) {
  // P = 2*(N/2)^L exactly.
  for (int radix : {4, 8, 16}) {
    const auto half = static_cast<std::uint64_t>(radix / 2);
    std::uint64_t cap = 2 * half;
    for (int levels = 1; levels <= 5; ++levels) {
      const FatTree t(static_cast<int>(cap), radix);
      EXPECT_EQ(t.levels(), levels) << "radix " << radix;
      EXPECT_EQ(t.capacity(), cap);
      // One more processor forces another level.
      const FatTree t2(static_cast<int>(cap) + 1, radix);
      EXPECT_EQ(t2.levels(), levels + 1);
      cap *= half;
    }
  }
}

TEST(FatTree, PortsPerProcessorGrowth) {
  // 1 + 2(L-1).
  EXPECT_EQ(FatTree(8, 8).ports_per_processor(), 1);        // L=1
  EXPECT_EQ(FatTree(32, 8).ports_per_processor(), 3);       // L=2
  EXPECT_EQ(FatTree(8192, 8).ports_per_processor(), 11);    // L=6 (paper)
  EXPECT_EQ(FatTree(8192, 8).levels(), 6);
}

TEST(FatTree, TotalPortsAndSwitchCount) {
  const FatTree t(256, 16);
  // L: 2*(8)^L >= 256 -> L=3 (2*512=1024).
  EXPECT_EQ(t.levels(), 3);
  EXPECT_EQ(t.ports_per_processor(), 5);
  EXPECT_EQ(t.total_switch_ports(), 256u * 5u);
  EXPECT_EQ(t.num_switches(), (256u * 5u + 15u) / 16u);
}

TEST(FatTree, SwitchTraversals) {
  const FatTree t(256, 16);  // subtree sizes: 8, 64, capacity
  EXPECT_EQ(t.switch_traversals(0, 0), 0);
  EXPECT_EQ(t.switch_traversals(0, 7), 1);    // same leaf switch
  EXPECT_EQ(t.switch_traversals(0, 8), 3);    // same level-2 subtree
  EXPECT_EQ(t.switch_traversals(0, 63), 3);
  EXPECT_EQ(t.switch_traversals(0, 64), 5);   // top level
  EXPECT_EQ(t.worst_case_traversals(), 5);
  EXPECT_EQ(t.switch_traversals(255, 0), 5);
}

TEST(FatTree, TraversalsSymmetricAndBounded) {
  const FatTree t(128, 8);
  for (int u = 0; u < 128; u += 13) {
    for (int v = 0; v < 128; v += 11) {
      EXPECT_EQ(t.switch_traversals(u, v), t.switch_traversals(v, u));
      if (u != v) {
        EXPECT_GE(t.switch_traversals(u, v), 1);
        EXPECT_LE(t.switch_traversals(u, v), t.worst_case_traversals());
        EXPECT_EQ(t.switch_traversals(u, v) % 2, 1);  // always odd
      }
    }
  }
}

TEST(FatTree, InputValidation) {
  EXPECT_THROW(FatTree(16, 3), ContractViolation);   // odd radix
  EXPECT_THROW(FatTree(16, 2), ContractViolation);   // degenerate
  EXPECT_THROW(FatTree(0, 8), ContractViolation);
  EXPECT_THROW(FatTree(16, 8).switch_traversals(0, 16), ContractViolation);
}

TEST(FatTree, SubtreeSizes) {
  const FatTree t(256, 16);
  EXPECT_EQ(t.subtree_size(1), 8u);
  EXPECT_EQ(t.subtree_size(2), 64u);
  EXPECT_EQ(t.subtree_size(3), t.capacity());
  EXPECT_THROW(t.subtree_size(0), ContractViolation);
  EXPECT_THROW(t.subtree_size(4), ContractViolation);
}

}  // namespace
}  // namespace hfast::topo
