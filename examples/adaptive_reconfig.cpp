/// \file adaptive_reconfig.cpp
/// The paper's §6 future-work experiment: compute a time-windowed TDC from
/// a trace and drive the circuit switch incrementally, so an application
/// whose communication changes by phase only keeps the circuits the current
/// phase needs. Usage: adaptive_reconfig [app] [nranks] [windows]

#include <cstdlib>
#include <iostream>

#include "hfast/analysis/experiment.hpp"
#include "hfast/core/reconfigure.hpp"
#include "hfast/trace/window.hpp"
#include "hfast/util/format.hpp"
#include "hfast/util/table.hpp"

using namespace hfast;

int main(int argc, char** argv) {
  const std::string app = argc > 1 ? argv[1] : "superlu";
  const int nranks = argc > 2 ? std::atoi(argv[2]) : 64;
  const std::size_t windows = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 8;

  const auto result = analysis::run_experiment(app, nranks);
  const auto steady = result.trace.filter_region(apps::kSteadyRegion);

  util::print_banner(std::cout, "Windowed TDC (" + app + ", P=" +
                                    std::to_string(nranks) + ")");
  util::Table wt({"Window", "Bytes", "max TDC@2KB", "avg TDC@2KB"});
  for (const auto& w :
       trace::windowed_tdc(steady, windows, graph::kBdpCutoffBytes)) {
    wt.row().add(w.window).add(w.bytes).add(w.max_tdc).add(w.avg_tdc, 2);
  }
  wt.print(std::cout);

  const auto graphs = trace::windowed_graphs(steady, windows);
  const auto report = core::plan_reconfigurations(graphs);

  util::print_banner(std::cout, "Incremental circuit reconfiguration plan");
  util::Table rt({"Window", "Added", "Removed", "Active", "Reconfig?"});
  for (const auto& d : report.deltas) {
    rt.row()
        .add(d.window)
        .add(d.circuits_added)
        .add(d.circuits_removed)
        .add(d.circuits_active)
        .add(d.reconfigured ? "yes" : "-");
  }
  rt.print(std::cout);
  std::cout << "reconfigurations: " << report.total_reconfigurations
            << " (total switch time "
            << util::time_label(report.reconfig_time_seconds) << ")\n"
            << "peak simultaneous circuits: " << report.peak_circuits
            << " vs static union provisioning: " << report.static_circuits
            << "\n";
  return 0;
}
