/// \file custom_app.cpp
/// Writing your own kernel against the runtime API and taking it through
/// the whole pipeline: profile -> graph -> classification -> provisioning
/// -> trace replay on three candidate networks. The kernel here is a
/// butterfly (hypercube) exchange, a pattern none of the six paper codes
/// covers.

#include <iostream>

#include "hfast/analysis/experiment.hpp"
#include "hfast/core/classify.hpp"
#include "hfast/core/provision.hpp"
#include "hfast/graph/tdc.hpp"
#include "hfast/ipm/report.hpp"
#include "hfast/mpisim/runtime.hpp"
#include "hfast/netsim/replay.hpp"
#include "hfast/topo/mesh.hpp"
#include "hfast/util/format.hpp"

using namespace hfast;

namespace {

/// Butterfly: log2(P) rounds, partner = rank XOR 2^round, 16 KB payloads.
void butterfly(mpisim::RankContext& ctx) {
  const int p = ctx.nranks();
  mpisim::RankContext::Region steady(ctx, apps::kSteadyRegion);
  for (int iter = 0; iter < 6; ++iter) {
    for (int bit = 1; bit < p; bit <<= 1) {
      const int partner = ctx.rank() ^ bit;
      (void)ctx.sendrecv(partner, 16 * 1024, partner, 16 * 1024,
                         /*tag=*/iter * 32 + bit);
    }
    ctx.allreduce(8);
  }
}

}  // namespace

int main() {
  constexpr int kRanks = 64;

  mpisim::Runtime runtime(mpisim::RuntimeConfig{.nranks = kRanks});
  std::vector<std::unique_ptr<ipm::RankProfile>> profiles;
  std::vector<std::unique_ptr<trace::TraceRecorder>> recorders;
  std::vector<std::unique_ptr<mpisim::MultiObserver>> observers;
  for (int r = 0; r < kRanks; ++r) {
    profiles.push_back(std::make_unique<ipm::RankProfile>(r));
    recorders.push_back(std::make_unique<trace::TraceRecorder>(r));
    observers.push_back(std::make_unique<mpisim::MultiObserver>());
    observers.back()->attach(profiles.back().get());
    observers.back()->attach(recorders.back().get());
  }
  runtime.run(butterfly, [&observers](mpisim::Rank r) {
    return observers[static_cast<std::size_t>(r)].get();
  });

  std::vector<const ipm::RankProfile*> pptrs;
  for (const auto& p : profiles) pptrs.push_back(p.get());
  const auto workload = ipm::WorkloadProfile::merge(pptrs, apps::kSteadyRegion);
  const auto g = graph::CommGraph::from_profile(workload);

  const auto tdc = graph::tdc(g, graph::kBdpCutoffBytes);
  std::cout << "butterfly TDC@2KB: max=" << tdc.max << " avg=" << tdc.avg
            << " (log2(64) = 6 partners expected)\n";
  const auto cls = core::classify(g);
  std::cout << "classification: " << core::to_string(cls.comm_case) << "\n";

  // Provision HFAST; replay the trace on HFAST vs torus vs fat-tree.
  std::vector<const trace::TraceRecorder*> rptrs;
  for (const auto& r : recorders) rptrs.push_back(r.get());
  const auto trace = trace::Trace::merge(rptrs).filter_region(apps::kSteadyRegion);

  const auto prov = core::provision_greedy(g);
  const netsim::LinkParams link;
  netsim::FabricNetwork hfast_net(prov.fabric, link, 50e-9);
  const topo::MeshTorus torus(topo::MeshTorus::balanced_dims(kRanks, 3), true);
  netsim::DirectNetwork torus_net(torus, link);
  const topo::FatTree ft(kRanks, 16);
  netsim::FatTreeNetwork ft_net(ft, link);

  for (netsim::Network* net :
       {static_cast<netsim::Network*>(&hfast_net),
        static_cast<netsim::Network*>(&torus_net),
        static_cast<netsim::Network*>(&ft_net)}) {
    const auto rr = netsim::replay(trace, *net);
    std::cout << net->name() << ": makespan "
              << util::time_label(rr.makespan_s) << ", avg msg latency "
              << util::time_label(rr.avg_message_latency_s)
              << ", avg switch hops " << rr.avg_switch_hops << "\n";
  }
  return 0;
}
