/// \file provision_hfast.cpp
/// Provision an HFAST fabric for one application's measured topology and
/// inspect the result: switch-block pool size, port usage, route lengths,
/// and the cost comparison against fat-tree / mesh / ICN alternatives.
/// Usage: provision_hfast [app] [nranks]   (default gtc 64)

#include <cstdlib>
#include <iostream>

#include "hfast/analysis/experiment.hpp"
#include "hfast/core/cost_model.hpp"
#include "hfast/core/provision.hpp"
#include "hfast/util/table.hpp"

using namespace hfast;

int main(int argc, char** argv) {
  const std::string app = argc > 1 ? argv[1] : "gtc";
  const int nranks = argc > 2 ? std::atoi(argv[2]) : 64;

  const auto result = analysis::run_experiment(app, nranks);
  const auto tdc = graph::tdc(result.comm_graph, graph::kBdpCutoffBytes);
  std::cout << app << " @ P=" << nranks << ": TDC@2KB max=" << tdc.max
            << " avg=" << tdc.avg << "\n";

  util::Table t({"Strategy", "Blocks", "Trunks", "Internal edges",
                 "Free ports", "Avg circuit traversals", "Max"});
  const core::ProvisionParams params;
  for (auto strategy : {core::ProvisionStrategy::kGreedyPerNode,
                        core::ProvisionStrategy::kCliqueShared}) {
    const auto prov = core::provision(result.comm_graph, params, strategy);
    prov.fabric.validate();
    if (!prov.fabric.serves(result.comm_graph, params.cutoff)) {
      std::cerr << "provisioned fabric does not serve the graph!\n";
      return 1;
    }
    t.row()
        .add(strategy == core::ProvisionStrategy::kGreedyPerNode
                 ? "greedy per-node (paper 5.3)"
                 : "clique-shared (paper 6)")
        .add(prov.stats.num_blocks)
        .add(prov.stats.num_trunks)
        .add(prov.stats.internal_edges)
        .add(prov.fabric.total_free_ports())
        .add(prov.stats.avg_circuit_traversals, 2)
        .add(prov.stats.max_circuit_traversals);
  }
  t.print(std::cout);

  const auto greedy = core::provision_greedy(result.comm_graph, params);
  const core::CostParams costs;
  util::Table ct({"Network", "Packet ports", "Circuit ports", "Total cost"});
  for (const auto& c : {core::hfast_cost(nranks, greedy.stats.num_blocks, costs),
                        core::fat_tree_cost(nranks, costs),
                        core::mesh_cost(nranks, 3, costs),
                        core::icn_cost(nranks, costs.block_size, costs)}) {
    ct.row().add(c.network).add(c.packet_ports).add(c.circuit_ports)
        .add(c.total(), 1);
  }
  util::print_banner(std::cout, "Cost comparison (normalized packet-port = 1.0)");
  ct.print(std::cout);
  return 0;
}
