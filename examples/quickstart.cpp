/// \file quickstart.cpp
/// Tour of the public API in ~5 minutes:
///   1. run a message-passing program on the simulated runtime with IPM
///      profiling attached,
///   2. reduce the profile to a communication-topology graph and TDC,
///   3. provision an HFAST fabric for it and compare its cost against a
///      fat-tree.

#include <iostream>

#include "hfast/core/cost_model.hpp"
#include "hfast/core/provision.hpp"
#include "hfast/graph/tdc.hpp"
#include "hfast/ipm/report.hpp"
#include "hfast/mpisim/runtime.hpp"
#include "hfast/util/format.hpp"

using namespace hfast;

int main() {
  constexpr int kRanks = 32;

  // 1. A toy stencil: every rank exchanges 64 KB with its ring neighbors
  //    and reduces a residual. This is the code a user would write against
  //    the RankContext API.
  mpisim::Runtime runtime(mpisim::RuntimeConfig{.nranks = kRanks});
  std::vector<std::unique_ptr<ipm::RankProfile>> profiles;
  for (int r = 0; r < kRanks; ++r) {
    profiles.push_back(std::make_unique<ipm::RankProfile>(r));
  }

  runtime.run(
      [](mpisim::RankContext& ctx) {
        const int p = ctx.nranks();
        const int left = (ctx.rank() + p - 1) % p;
        const int right = (ctx.rank() + 1) % p;
        for (int iter = 0; iter < 10; ++iter) {
          auto r0 = ctx.irecv(left, 64 * 1024, iter);
          auto r1 = ctx.irecv(right, 64 * 1024, iter);
          ctx.send(right, 64 * 1024, iter);
          ctx.send(left, 64 * 1024, iter);
          ctx.wait(r0);
          ctx.wait(r1);
          const double norm = ctx.allreduce_sum(ctx.world(), 1.0);
          if (ctx.rank() == 0 && iter == 0) {
            std::cout << "allreduce across " << norm << " ranks\n";
          }
        }
      },
      [&profiles](mpisim::Rank r) { return profiles[static_cast<std::size_t>(r)].get(); });

  // 2. Profile -> communication graph -> TDC.
  std::vector<const ipm::RankProfile*> ptrs;
  for (const auto& p : profiles) ptrs.push_back(p.get());
  const auto workload = ipm::WorkloadProfile::merge(ptrs);
  const auto graph = graph::CommGraph::from_profile(workload);
  const auto tdc = graph::tdc(graph, graph::kBdpCutoffBytes);
  std::cout << "point-to-point calls: " << workload.ptp_call_percent()
            << "% of " << workload.total_calls() << " total\n";
  std::cout << "TDC at 2KB cutoff: max=" << tdc.max << " avg=" << tdc.avg
            << "\n";

  // 3. Provision HFAST and compare cost with a fat-tree.
  const auto provisioned = core::provision_greedy(graph);
  const core::CostParams costs;
  const auto hfast = core::hfast_cost(kRanks, provisioned.stats.num_blocks, costs);
  const auto ft = core::fat_tree_cost(kRanks, costs);
  std::cout << "HFAST: " << provisioned.stats.num_blocks
            << " switch blocks, cost " << hfast.total() << " (packet ports "
            << hfast.packet_ports << ", circuit ports " << hfast.circuit_ports
            << ")\n";
  std::cout << ft.network << ": cost " << ft.total() << " (packet ports "
            << ft.packet_ports << ")\n";
  std::cout << "max circuit traversals on provisioned fabric: "
            << provisioned.stats.max_circuit_traversals << "\n";
  return 0;
}
