/// \file replay_traces.cpp
/// Trace a paper application, then replay its communication stream on a
/// chosen network model with the partitioned-clock parallel replay — the
/// driver that opens the P=1024/4096 traces the fiber engine produces.
///
/// Usage: replay_traces [nranks] [--app NAME] [--engine threads|fibers]
///                      [--network fcn|torus|fattree|hfast]
///                      [--cores-per-node C] [--packing rank-order|affinity]
///                      [--replay-threads K] [--verify] [--seed S]
///                      [--save FILE] [--load FILE]
///   nranks             trace concurrency (default 64)
///   --app NAME         application kernel to trace (default cactus)
///   --engine E         trace generation engine (default fibers — the only
///                      practical route to P=1024/4096)
///   --network M        replay substrate (default torus)
///   --cores-per-node C SMP mode for the hfast substrate: pack C tasks per
///                      node, provision the node-level quotient fabric, and
///                      price co-resident traffic on the node backplane
///                      (default 1 = the classic per-task fabric)
///   --packing P        task-to-node packing policy (default rank-order)
///   --replay-threads K replay shards: 1 = serial algorithm, >1 = parallel
///                      partitioned-clock replay, 0 = hardware concurrency
///   --verify           also run the serial replay and require an exactly
///                      equal ReplayResult (bitwise double equality)
///   --seed S           experiment seed (default 1)
///   --save FILE        write the generated trace as text and continue
///   --load FILE        replay a text trace instead of generating one
///                      (nranks/--app/--engine are then ignored)

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "hfast/analysis/experiment.hpp"
#include "hfast/analysis/smp.hpp"
#include "hfast/core/provision.hpp"
#include "hfast/graph/comm_graph.hpp"
#include "hfast/netsim/replay.hpp"
#include "hfast/netsim/replay_parallel.hpp"
#include "hfast/topo/fat_tree.hpp"
#include "hfast/topo/fcn.hpp"
#include "hfast/topo/mesh.hpp"

using namespace hfast;

namespace {

/// Owns the topology/fabric a network model borrows, so the model can
/// outlive this scope safely.
struct NetworkBundle {
  std::unique_ptr<topo::FullyConnected> fcn;
  std::unique_ptr<topo::MeshTorus> torus;
  std::unique_ptr<topo::FatTree> tree;
  std::optional<core::Provisioned> prov;
  std::optional<analysis::SmpNetworkBundle> smp;
  std::unique_ptr<netsim::Network> net;
};

NetworkBundle build_network(const std::string& kind, const trace::Trace& t,
                            const core::SmpConfig& smp) {
  const int n = t.nranks();
  const netsim::LinkParams link;
  NetworkBundle b;
  if (kind == "fcn") {
    b.fcn = std::make_unique<topo::FullyConnected>(n);
    b.net = std::make_unique<netsim::DirectNetwork>(*b.fcn, link);
  } else if (kind == "torus") {
    b.torus = std::make_unique<topo::MeshTorus>(
        topo::MeshTorus::balanced_dims(n, 3), true);
    b.net = std::make_unique<netsim::DirectNetwork>(*b.torus, link);
  } else if (kind == "fattree") {
    b.tree = std::make_unique<topo::FatTree>(n, 16);
    b.net = std::make_unique<netsim::FatTreeNetwork>(*b.tree, link);
  } else if (kind == "hfast") {
    // Provision the fabric from the trace's own communication topology —
    // exactly what the paper's HFAST evaluation does with IPM data.
    graph::CommGraph g(n);
    for (const trace::CommEvent& e : t.events()) {
      if (e.kind == trace::EventKind::kSend && e.peer != e.rank &&
          e.peer >= 0) {
        g.add_message(e.rank, e.peer, e.bytes);
      }
    }
    if (smp.aggregates()) {
      // SMP mode: pack tasks onto nodes, provision the quotient fabric,
      // and replay with co-resident traffic priced on the node backplane.
      b.smp = analysis::make_smp_network(g, smp, link);
      std::cout << "smp: " << smp.cores_per_node << " cores/node ("
                << core::packing_name(smp.packing) << " packing), "
                << b.smp->net->num_nodes() << " nodes, backplane absorbs "
                << b.smp->backplane_bytes << " bytes\n";
      b.net = std::move(b.smp->net);
    } else {
      b.prov = core::provision_greedy(g, {.cutoff = 0});
      b.net = std::make_unique<netsim::FabricNetwork>(b.prov->fabric, link,
                                                      50e-9);
    }
  } else {
    throw Error("unknown network model: " + kind +
                " (expected fcn|torus|fattree|hfast)");
  }
  return b;
}

void print_result(const char* label, const netsim::ReplayResult& r,
                  double seconds) {
  std::cout << label << ": makespan=" << r.makespan_s
            << " s, recv_wait=" << r.total_recv_wait_s
            << " s, messages=" << r.messages << ", bytes=" << r.bytes
            << ",\n  avg_latency=" << r.avg_message_latency_s
            << " s, max_latency=" << r.max_message_latency_s
            << " s, avg_hops=" << r.avg_switch_hops
            << ", max_hops=" << r.max_switch_hops << "  [" << seconds
            << " s wall]\n";
}

}  // namespace

int main(int argc, char** argv) {
  int nranks = 64;
  std::string app = "cactus";
  std::string network = "torus";
  std::string save_file, load_file;
  mpisim::EngineKind engine = mpisim::EngineKind::kFibers;
  core::SmpConfig smp;
  int replay_threads = 0;
  bool verify = false;
  std::uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--app") == 0 && i + 1 < argc) {
      app = argv[++i];
    } else if (std::strcmp(argv[i], "--engine") == 0 && i + 1 < argc) {
      engine = mpisim::parse_engine(argv[++i]);
    } else if (std::strcmp(argv[i], "--network") == 0 && i + 1 < argc) {
      network = argv[++i];
    } else if (std::strcmp(argv[i], "--cores-per-node") == 0 && i + 1 < argc) {
      smp.cores_per_node = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--packing") == 0 && i + 1 < argc) {
      smp.packing = core::parse_packing(argv[++i]);
    } else if (std::strcmp(argv[i], "--replay-threads") == 0 && i + 1 < argc) {
      replay_threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--verify") == 0) {
      verify = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--save") == 0 && i + 1 < argc) {
      save_file = argv[++i];
    } else if (std::strcmp(argv[i], "--load") == 0 && i + 1 < argc) {
      load_file = argv[++i];
    } else {
      nranks = std::atoi(argv[i]);
    }
  }

  try {
    if (smp.aggregates() && network != "hfast") {
      throw Error("--cores-per-node > 1 requires --network hfast");
    }
    trace::Trace t(0, {}, {});
    if (!load_file.empty()) {
      std::ifstream in(load_file);
      if (!in) throw Error("cannot open trace file: " + load_file);
      t = trace::Trace::load_text(in);
      std::cout << "loaded " << load_file << ": P=" << t.nranks() << ", "
                << t.events().size() << " events\n";
    } else {
      if (engine == mpisim::EngineKind::kFibers &&
          !mpisim::fibers_supported()) {
        std::cerr << "fibers unsupported in this build; using threads\n";
        engine = mpisim::EngineKind::kThreads;
      }
      analysis::ExperimentConfig cfg;
      cfg.app = app;
      cfg.nranks = nranks;
      cfg.engine = engine;
      cfg.seed = seed;
      const auto started = std::chrono::steady_clock::now();
      auto result = analysis::run_experiment(cfg);
      const double trace_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        started)
              .count();
      t = std::move(result.trace);
      std::cout << app << " @ P=" << nranks << " ("
                << mpisim::engine_name(engine) << "): " << t.events().size()
                << " events traced in " << trace_s << " s\n";
    }
    if (!save_file.empty()) {
      std::ofstream out(save_file);
      if (!out) throw Error("cannot open for writing: " + save_file);
      t.save_text(out);
      std::cout << "saved trace to " << save_file << "\n";
    }

    auto bundle = build_network(network, t, smp);
    netsim::Network& net = *bundle.net;
    std::cout << "replaying on " << net.name() << " with "
              << (replay_threads == 1 ? std::string("the serial replay")
                                      : std::to_string(replay_threads) +
                                            " shards (0 = auto)")
              << "\n";

    const auto run = [&](auto&& fn) {
      const auto start = std::chrono::steady_clock::now();
      netsim::ReplayResult r = fn();
      const double s = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
      return std::pair<netsim::ReplayResult, double>(r, s);
    };

    const auto [parallel, parallel_s] = run([&] {
      if (replay_threads == 1) return netsim::replay(t, net);
      return netsim::parallel_replay(t, net, {},
                                     {.shards = replay_threads});
    });
    print_result(replay_threads == 1 ? "serial" : "parallel", parallel,
                 parallel_s);

    if (verify) {
      const auto [serial, serial_s] = run([&] { return netsim::replay(t, net); });
      print_result("serial (verify)", serial, serial_s);
      if (!(serial == parallel)) {
        std::cerr << "PARITY FAILURE: parallel result differs from serial\n";
        return EXIT_FAILURE;
      }
      std::cout << "verify: exact match (serial " << serial_s
                << " s vs parallel " << parallel_s << " s)\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "replay_traces: " << e.what() << "\n";
    return EXIT_FAILURE;
  }
  return 0;
}
