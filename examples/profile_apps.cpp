/// \file profile_apps.cpp
/// Profile the six paper applications at a chosen concurrency and print
/// the per-app communication characteristics (the paper's §4 study in one
/// command). Usage: profile_apps [nranks]   (default 64)

#include <cstdlib>
#include <iostream>

#include "hfast/analysis/experiment.hpp"
#include "hfast/analysis/paper_tables.hpp"
#include "hfast/core/classify.hpp"
#include "hfast/ipm/text_report.hpp"
#include "hfast/mpisim/runtime.hpp"
#include "hfast/util/table.hpp"

using namespace hfast;

int main(int argc, char** argv) {
  const int nranks = argc > 1 ? std::atoi(argv[1]) : 64;

  std::vector<analysis::Table3Row> rows;
  for (const apps::App& app : apps::registry()) {
    if (!apps::valid_concurrency(app, nranks)) {
      std::cout << app.info.name << ": skipped (P=" << nranks
                << " unsupported)\n";
      continue;
    }
    const auto result = analysis::run_experiment(app.info.name, nranks);
    rows.push_back(analysis::table3_row(result));

    const auto cls = core::classify(result.comm_graph);
    util::print_banner(std::cout, app.info.name + " @ P=" + std::to_string(nranks));
    analysis::render_call_breakdown(result).print(std::cout);
    std::cout << "classification: " << core::to_string(cls.comm_case) << "\n"
              << "  (" << cls.rationale << ")\n";
  }

  util::print_banner(std::cout, "Summary (paper Table 3 columns)");
  analysis::render_table3(rows).print(std::cout);

  // Full IPM-style banner for one representative code (gtc), run with
  // direct access to the per-rank profiles.
  {
    mpisim::Runtime rt(mpisim::RuntimeConfig{.nranks = nranks});
    std::vector<std::unique_ptr<ipm::RankProfile>> profiles;
    for (int r = 0; r < nranks; ++r) {
      profiles.push_back(std::make_unique<ipm::RankProfile>(r));
    }
    apps::AppParams params;
    params.nranks = nranks;
    rt.run(apps::find("gtc").program(params), [&profiles](mpisim::Rank r) {
      return profiles[static_cast<std::size_t>(r)].get();
    });
    std::vector<const ipm::RankProfile*> ptrs;
    for (const auto& p : profiles) ptrs.push_back(p.get());
    ipm::write_text_report(std::cout, ptrs, {.job_name = "gtc"});
  }
  return 0;
}
