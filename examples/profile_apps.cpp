/// \file profile_apps.cpp
/// Profile the six paper applications at a chosen concurrency and print
/// the per-app communication characteristics (the paper's §4 study in one
/// command). The experiments run as one parallel batch.
///
/// Usage: profile_apps [nranks] [--threads N] [--engine threads|fibers]
///                     [--cores-per-node C] [--packing rank-order|affinity]
///                     [--cache-dir DIR] [--no-cache] [--cache-verify]
///   nranks       concurrency per application (default 64)
///   --threads N  live-thread budget for the batch engine
///                (default: 4x hardware concurrency)
///   --engine E   execution engine per experiment (default threads);
///                fibers runs each job single-threaded and deterministic —
///                the practical choice for P=1024/4096
///   --cores-per-node C  SMP provisioning mode: pack C tasks per node and
///                size the fabric from the node-level quotient graph
///                (default 1 = the classic per-task pipeline)
///   --packing P  task-to-node packing policy (default rank-order)
///   --cache-*    durable result store (see store::CacheCli::help()):
///                completed experiments persist as they finish, and re-runs
///                load hits instead of recomputing

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "hfast/analysis/batch.hpp"
#include "hfast/analysis/paper_tables.hpp"
#include "hfast/core/classify.hpp"
#include "hfast/ipm/text_report.hpp"
#include "hfast/mpisim/runtime.hpp"
#include "hfast/store/cli.hpp"
#include "hfast/util/table.hpp"

using namespace hfast;

int main(int argc, char** argv) {
  int nranks = 64;
  analysis::BatchOptions opts;
  mpisim::EngineKind engine = mpisim::EngineKind::kThreads;
  core::SmpConfig smp;
  store::CacheCli cache;
  for (int i = 1; i < argc; ++i) {
    if (cache.consume(argc, argv, i)) continue;
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      opts.thread_budget = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--engine") == 0 && i + 1 < argc) {
      engine = mpisim::parse_engine(argv[++i]);
    } else if (std::strcmp(argv[i], "--cores-per-node") == 0 && i + 1 < argc) {
      smp.cores_per_node = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--packing") == 0 && i + 1 < argc) {
      smp.packing = core::parse_packing(argv[++i]);
    } else {
      nranks = std::atoi(argv[i]);
    }
  }
  const auto cache_store = cache.open(std::cerr);
  opts.result_store = cache_store.get();

  std::vector<std::string> names;
  for (const apps::App& app : apps::registry()) {
    if (!apps::valid_concurrency(app, nranks)) {
      std::cout << app.info.name << ": skipped (P=" << nranks
                << " unsupported)\n";
      continue;
    }
    names.push_back(app.info.name);
  }

  auto configs = analysis::sweep_configs(names, {nranks}, {1}, engine);
  // The tables below reduce profiles and graphs only; skipping trace
  // capture keeps the wide-P sweeps (1024+) within memory.
  for (auto& c : configs) {
    c.capture_trace = false;
    c.smp = smp;
  }

  const analysis::BatchRunner runner(opts);
  const auto batch = runner.run(configs);
  for (const auto& e : batch.errors) {
    std::cerr << "experiment failed: " << e.job << ": " << e.message << "\n";
  }

  std::vector<analysis::Table3Row> rows;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (!batch.results[i].has_value()) continue;
    const auto& result = *batch.results[i];
    rows.push_back(analysis::table3_row(result));

    const auto cls = core::classify(result.comm_graph);
    util::print_banner(std::cout,
                       names[i] + " @ P=" + std::to_string(nranks));
    analysis::render_call_breakdown(result).print(std::cout);
    std::cout << "classification: " << core::to_string(cls.comm_case) << "\n"
              << "  (" << cls.rationale << ")\n";
  }

  util::print_banner(std::cout, "Summary (paper Table 3 columns)");
  analysis::render_table3(rows).print(std::cout);

  if (smp.aggregates()) {
    std::vector<analysis::SmpSweepRow> smp_rows;
    for (const auto& r : batch.results) {
      if (r.has_value()) smp_rows.push_back(analysis::smp_sweep_row(*r));
    }
    util::print_banner(std::cout,
                       "SMP provisioning (" +
                           std::to_string(smp.cores_per_node) +
                           " cores/node, " +
                           std::string(core::packing_name(smp.packing)) +
                           " packing)");
    analysis::render_smp_sweep(smp_rows).print(std::cout);
  }
  std::cout << "batch: " << names.size() << " experiments ("
            << mpisim::engine_name(engine) << " engine) in "
            << batch.wall_seconds << " s under a "
            << runner.thread_budget() << "-thread budget\n";
  if (cache_store != nullptr) {
    std::cout << "batch cache: " << batch.cache.hits << " hits, "
              << batch.cache.misses << " misses, " << batch.cache.stores
              << " stored\n";
    store::CacheCli::report(std::cerr, cache_store.get());
  }
  if (!batch.ok()) return EXIT_FAILURE;

  // Full IPM-style banner for one representative code (gtc), run with
  // direct access to the per-rank profiles.
  if (apps::valid_concurrency(apps::find("gtc"), nranks)) {
    mpisim::Runtime rt(
        mpisim::RuntimeConfig{.nranks = nranks, .engine = engine});
    std::vector<std::unique_ptr<ipm::RankProfile>> profiles;
    for (int r = 0; r < nranks; ++r) {
      profiles.push_back(std::make_unique<ipm::RankProfile>(r));
    }
    apps::AppParams params;
    params.nranks = nranks;
    rt.run(apps::find("gtc").program(params), [&profiles](mpisim::Rank r) {
      return profiles[static_cast<std::size_t>(r)].get();
    });
    std::vector<const ipm::RankProfile*> ptrs;
    for (const auto& p : profiles) ptrs.push_back(p.get());
    ipm::write_text_report(std::cout, ptrs, {.job_name = "gtc"});
  }
  return 0;
}
