/// \file store_inspect.cpp
/// Inspect, validate, and garbage-collect an hfast::store directory.
///
/// Usage: store_inspect DIR [options]
///   (no option)        list every entry: key, app, P, seed, engine, size,
///                      validity — then the aggregate stats line
///   --verify           re-validate every entry (frame + CRC + full decode)
///                      and report the corrupt ones; exit 1 if any
///   --evict-corrupt    with --verify: delete entries that fail validation
///   --evict-all        empty the store
///   --dump KEY         print the entry with the given hex key as JSON
///                      (same writer/field names as the analysis exports)
///   --stats-json FILE  write the aggregate stats as JSON (CI artifact)

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "hfast/analysis/export.hpp"
#include "hfast/mpisim/engine.hpp"
#include "hfast/store/store.hpp"
#include "hfast/util/json.hpp"

using namespace hfast;

namespace {

void print_entry(const store::EntryInfo& e) {
  std::cout << store::ResultStore::entry_filename(e.key) << "  "
            << e.file_bytes << " bytes  ";
  if (e.valid && e.config.has_value()) {
    const auto& c = *e.config;
    std::cout << c.app << " P=" << c.nranks << " seed=" << c.seed << " "
              << mpisim::engine_name(c.engine)
              << (c.capture_trace ? "" : " (no trace)") << "\n";
  } else {
    std::cout << "CORRUPT: " << e.error << "\n";
  }
}

void write_stats_json(const std::string& path, const store::ResultStore& st) {
  const store::StoreStats s = st.stats();
  std::ofstream os(path);
  if (!os) {
    std::cerr << "store_inspect: cannot open " << path << "\n";
    return;
  }
  util::JsonWriter json(os);
  json.begin_object();
  json.field("dir", st.dir().string());
  json.field("entries", static_cast<std::uint64_t>(s.entries));
  json.field("valid", static_cast<std::uint64_t>(s.valid));
  json.field("corrupt", static_cast<std::uint64_t>(s.corrupt));
  json.field("total_bytes", static_cast<std::uint64_t>(s.total_bytes));
  json.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: store_inspect DIR [--verify] [--evict-corrupt] "
                 "[--evict-all] [--dump KEY] [--stats-json FILE]\n";
    return EXIT_FAILURE;
  }

  bool verify = false;
  bool evict_corrupt = false;
  bool evict_all = false;
  std::string dump_key;
  std::string stats_json;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verify") == 0) {
      verify = true;
    } else if (std::strcmp(argv[i], "--evict-corrupt") == 0) {
      verify = true;
      evict_corrupt = true;
    } else if (std::strcmp(argv[i], "--evict-all") == 0) {
      evict_all = true;
    } else if (std::strcmp(argv[i], "--dump") == 0 && i + 1 < argc) {
      dump_key = argv[++i];
    } else if (std::strcmp(argv[i], "--stats-json") == 0 && i + 1 < argc) {
      stats_json = argv[++i];
    } else {
      std::cerr << "store_inspect: unknown option " << argv[i] << "\n";
      return EXIT_FAILURE;
    }
  }

  try {
    store::ResultStore st(argv[1]);

    if (evict_all) {
      std::cout << "evicted " << st.evict_all() << " entries\n";
      return EXIT_SUCCESS;
    }

    if (!dump_key.empty()) {
      const std::uint64_t key = std::strtoull(dump_key.c_str(), nullptr, 16);
      for (const store::EntryInfo& e : st.list()) {
        if (e.key != key || !e.valid) continue;
        // Reload through the public path so the dump exercises exactly
        // what a sweep would read.
        if (auto r = st.load(*e.config)) {
          analysis::write_experiment_json(std::cout, *r);
          return EXIT_SUCCESS;
        }
      }
      std::cerr << "store_inspect: no valid entry with key " << dump_key
                << "\n";
      return EXIT_FAILURE;
    }

    if (verify) {
      const store::VerifyReport report = st.verify(evict_corrupt);
      std::cout << "verified " << report.checked << " entries: " << report.ok
                << " ok, " << report.corrupt.size() << " corrupt";
      if (evict_corrupt) std::cout << " (" << report.evicted << " evicted)";
      std::cout << "\n";
      for (const auto& e : report.corrupt) {
        std::cout << "  " << e.path.filename().string() << ": " << e.error
                  << "\n";
      }
      if (!stats_json.empty()) write_stats_json(stats_json, st);
      return report.corrupt.empty() || evict_corrupt ? EXIT_SUCCESS
                                                     : EXIT_FAILURE;
    }

    std::size_t valid = 0;
    std::uintmax_t bytes = 0;
    std::size_t n = 0;
    for (const store::EntryInfo& e : st.list()) {
      print_entry(e);
      ++n;
      bytes += e.file_bytes;
      if (e.valid) ++valid;
    }
    std::cout << n << " entries (" << valid << " valid), " << bytes
              << " bytes in " << st.dir().string() << "\n";
    if (!stats_json.empty()) write_stats_json(stats_json, st);
  } catch (const std::exception& e) {
    std::cerr << "store_inspect: " << e.what() << "\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
