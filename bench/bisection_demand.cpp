/// \file bisection_demand.cpp
/// Quantifies the paper's case-iv criterion directly: how much of each
/// code's traffic is forced across the best balanced bipartition of its
/// tasks. Full-bisection demand ~0.5 means the code genuinely exploits an
/// FCN (PARATEC); localized codes concentrate traffic inside a good
/// half-split, which is exactly why a provisioned HFAST fabric (or even a
/// mesh) can carry them.

#include <iostream>

#include "hfast/analysis/experiment.hpp"
#include "hfast/graph/bisection.hpp"
#include "hfast/util/format.hpp"
#include "hfast/util/table.hpp"

using namespace hfast;

int main() {
  constexpr int kRanks = 64;
  util::print_banner(std::cout,
                     "Bisection-bandwidth demand per application (P=64, "
                     "Kernighan-Lin balanced min-cut)");
  util::Table t({"App", "Total traffic", "Best-cut traffic",
                 "Bisection demand", "Case (paper 5.2)"});
  struct Row {
    const char* app;
    const char* paper_case;
  };
  for (const Row row : {Row{"cactus", "i"}, Row{"gtc", "iii"},
                        Row{"lbmhd", "ii"}, Row{"superlu", "iii"},
                        Row{"pmemd", "iii"}, Row{"paratec", "iv"}}) {
    const auto r = analysis::run_experiment(row.app, kRanks);
    graph::BisectionParams params;
    params.restarts = 2;
    const auto b = graph::min_bisection(r.comm_graph, params);
    t.row()
        .add(row.app)
        .add(util::bytes_label(static_cast<double>(b.total_bytes)))
        .add(util::bytes_label(static_cast<double>(b.cut_bytes)))
        .add(util::percent_label(100.0 * b.demand_fraction()))
        .add(row.paper_case);
  }
  t.print(std::cout);
  std::cout << "\nA uniform all-to-all pattern pins the demand near 50%; "
               "stencil codes sit far\nbelow. High demand + high TDC is what "
               "keeps case-iv codes on an FCN.\n";
  return 0;
}
