/// \file ablation_smp.cpp
/// The paper's §5 deferred question: what do SMP (multi-core) nodes do to
/// the interconnect requirements? Since SMP packing became a first-class
/// provisioning mode (core::SmpConfig on ExperimentConfig), this ablation
/// is a thin driver: one experiment per (app, cores, packing) cell, with
/// every node-level artifact — quotient TDC, backplane-absorbed traffic,
/// and the greedy HFAST block pool — read off ExperimentResult::smp.
/// The full six-app table with CI invariants lives in smp_sweep.
///
/// Usage: ablation_smp [--engine threads|fibers] [--threads N]
///                     [--cache-dir DIR] [--no-cache] [--cache-verify]

#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "hfast/analysis/batch.hpp"
#include "hfast/store/cli.hpp"
#include "hfast/util/format.hpp"
#include "hfast/util/table.hpp"

using namespace hfast;

int main(int argc, char** argv) {
  constexpr int kRanks = 64;
  analysis::BatchOptions opts;
  mpisim::EngineKind engine = mpisim::EngineKind::kThreads;
  store::CacheCli cache;
  for (int i = 1; i < argc; ++i) {
    if (cache.consume(argc, argv, i)) continue;
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      opts.thread_budget = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--engine") == 0 && i + 1 < argc) {
      engine = mpisim::parse_engine(argv[++i]);
    }
  }
  const auto cache_store = cache.open(std::cerr);
  opts.result_store = cache_store.get();

  std::vector<analysis::ExperimentConfig> configs;
  for (const char* app : {"cactus", "lbmhd", "superlu", "pmemd"}) {
    for (int cores : {1, 2, 4, 8}) {
      for (core::SmpPacking packing :
           {core::SmpPacking::kRankOrder, core::SmpPacking::kAffinity}) {
        if (cores == 1 && packing != core::SmpPacking::kRankOrder) continue;
        analysis::ExperimentConfig cfg;
        cfg.app = app;
        cfg.nranks = kRanks;
        cfg.engine = engine;
        cfg.capture_trace = false;
        cfg.smp = {cores, packing};
        configs.push_back(cfg);
      }
    }
  }

  const auto batch = analysis::BatchRunner(opts).run(configs);
  for (const auto& e : batch.errors) {
    std::cerr << "experiment failed: " << e.job << ": " << e.message << "\n";
  }
  if (!batch.ok()) return EXIT_FAILURE;

  util::print_banner(std::cout,
                     "SMP aggregation (P=64 tasks): interconnect-visible TDC "
                     "and HFAST blocks vs cores per node");
  util::Table t({"App", "Cores/node", "Packing", "Nodes", "TDC@2KB (max,avg)",
                 "Backplane traffic", "HFAST blocks"});
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const auto& r = *batch.results[i];
    const auto& smp = r.smp;
    std::ostringstream td;
    td << smp.node_tdc_max << ", " << std::fixed << std::setprecision(1)
       << smp.node_tdc_avg;
    const double frac =
        r.comm_graph.total_bytes() == 0
            ? 0.0
            : 100.0 * static_cast<double>(smp.backplane_bytes) /
                  static_cast<double>(r.comm_graph.total_bytes());
    t.row()
        .add(configs[i].app)
        .add(configs[i].smp.cores_per_node)
        .add(std::string(core::packing_name(configs[i].smp.packing)))
        .add(smp.num_nodes)
        .add(td.str())
        .add(util::percent_label(frac))
        .add(smp.provision.num_blocks);
  }
  t.print(std::cout);
  std::cout << "\nAffinity packing absorbs stencil traffic on the backplane "
               "(cactus/lbmhd) and\nshrinks the block pool; all-to-all codes "
               "(pmemd) keep node-level TDC = nodes-1\nregardless — SMP "
               "aggregation does not rescue case-iv codes.\n";
  store::CacheCli::report(std::cerr, cache_store.get());
  return 0;
}
