/// \file ablation_smp.cpp
/// The paper's §5 deferred question: what do SMP (multi-core) nodes do to
/// the interconnect requirements? Tasks are packed onto nodes either
/// naively (rank order, what a topology-blind scheduler does) or by
/// traffic affinity (bandwidth localization); the interconnect then sees
/// the quotient graph. Reports thresholded TDC, backplane-absorbed
/// traffic, and the greedy HFAST block pool versus cores per node.

#include <iomanip>
#include <iostream>
#include <sstream>

#include "hfast/analysis/experiment.hpp"
#include "hfast/core/provision.hpp"
#include "hfast/graph/quotient.hpp"
#include "hfast/util/format.hpp"
#include "hfast/util/table.hpp"

using namespace hfast;

int main() {
  constexpr int kRanks = 64;
  util::print_banner(std::cout,
                     "SMP aggregation (P=64 tasks): interconnect-visible TDC "
                     "and HFAST blocks vs cores per node");
  util::Table t({"App", "Cores/node", "Packing", "Nodes", "TDC@2KB (max,avg)",
                 "Backplane traffic", "HFAST blocks"});
  for (const char* app : {"cactus", "lbmhd", "superlu", "pmemd"}) {
    const auto r = analysis::run_experiment(app, kRanks);
    for (int cores : {1, 2, 4, 8}) {
      struct Packing {
        const char* name;
        graph::QuotientResult q;
      };
      std::vector<Packing> packings;
      packings.push_back({"rank-order", graph::quotient_by_blocks(r.comm_graph, cores)});
      if (cores > 1) {
        packings.push_back(
            {"affinity", graph::quotient_by_affinity(r.comm_graph, cores)});
      }
      for (const auto& p : packings) {
        const auto tdc = graph::tdc(p.q.graph, graph::kBdpCutoffBytes);
        const auto prov = core::provision_greedy(p.q.graph);
        std::ostringstream td;
        td << tdc.max << ", " << std::fixed << std::setprecision(1) << tdc.avg;
        const double frac =
            r.comm_graph.total_bytes() == 0
                ? 0.0
                : 100.0 * static_cast<double>(p.q.internal_bytes) /
                      static_cast<double>(r.comm_graph.total_bytes());
        t.row()
            .add(app)
            .add(cores)
            .add(p.name)
            .add(p.q.graph.num_nodes())
            .add(td.str())
            .add(util::percent_label(frac))
            .add(prov.stats.num_blocks);
      }
    }
  }
  t.print(std::cout);
  std::cout << "\nAffinity packing absorbs stencil traffic on the backplane "
               "(cactus/lbmhd) and\nshrinks the block pool; all-to-all codes "
               "(pmemd) keep node-level TDC = nodes-1\nregardless — SMP "
               "aggregation does not rescue case-iv codes.\n";
  return 0;
}
