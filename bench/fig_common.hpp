#pragma once
/// Shared driver for the paper's per-application connectivity figures
/// (Figures 5-10): panel (a) is the P=256 communication-volume matrix,
/// panel (b) the max/avg TDC versus message-size cutoff for P=64 and
/// P=256. Each fig*_ binary calls run_connectivity_figure with its app and
/// the paper's reference numbers.

#include <iostream>
#include <string>

#include "hfast/analysis/experiment.hpp"
#include "hfast/analysis/paper_tables.hpp"
#include "hfast/core/classify.hpp"
#include "hfast/util/table.hpp"

namespace hfast::benchfig {

struct PaperReference {
  int tdc_max_2kb_256;
  double tdc_avg_2kb_256;
  const char* commentary;
};

inline int run_connectivity_figure(const std::string& figure,
                                   const std::string& app,
                                   const PaperReference& ref) {
  const auto small = analysis::run_experiment(app, 64);
  const auto large = analysis::run_experiment(app, 256);

  util::print_banner(std::cout, figure + " (a) — " + app +
                                    " volume of communication at P=256");
  std::cout << analysis::render_volume_heatmap(large);

  util::print_banner(
      std::cout, figure + " (b) — effect of thresholding on TDC, P=64,256");
  std::cout << analysis::render_tdc_chart(app, small, large);

  util::print_banner(std::cout, "TDC sweep, exact values (P=256)");
  analysis::render_tdc_sweep(large).print(std::cout);

  const auto t = graph::tdc(large.comm_graph, graph::kBdpCutoffBytes);
  const auto cls = core::classify(small.comm_graph, large.comm_graph);
  std::cout << "\nmeasured TDC@2KB P=256: max=" << t.max << " avg=" << t.avg
            << "  |  paper: max=" << ref.tdc_max_2kb_256
            << " avg=" << ref.tdc_avg_2kb_256 << "\n"
            << "classification: " << core::to_string(cls.comm_case) << "\n"
            << ref.commentary << "\n";
  return 0;
}

}  // namespace hfast::benchfig
