/// \file fig8_superlu.cpp — paper Figure 8 (SuperLU connectivity).
#include "fig_common.hpp"

int main() {
  return hfast::benchfig::run_connectivity_figure(
      "Figure 8", "superlu",
      {30, 30.0,
       "SuperLU: raw connectivity = P (tiny pivot messages everywhere); the "
       "2 KB threshold reduces it to 2(sqrt(P)-1) = 30 at P=256, scaling "
       "with sqrt(P) (paper case iii)."});
}
