/// \file fig10_paratec.cpp — paper Figure 10 (PARATEC connectivity).
#include "fig_common.hpp"

int main() {
  return hfast::benchfig::run_connectivity_figure(
      "Figure 10", "paratec",
      {255, 255.0,
       "PARATEC: 3D-FFT global transposes give TDC = P-1, insensitive to "
       "thresholding until 32 KB — needs full FCN bisection (case iv)."});
}
