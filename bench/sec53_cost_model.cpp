/// \file sec53_cost_model.cpp
/// Regenerates the paper's §5.3 cost analysis:
///  (1) fat-tree port growth — P*(1+2(L-1)) switch ports (the paper's
///      "6-layer fat-tree of 8-port switches needs 11 ports/processor for
///      2048 processors" example),
///  (2) HFAST vs fat-tree vs mesh vs ICN total cost across system sizes,
///      with HFAST block counts coming from actual greedy provisioning of
///      each application's measured topology,
///  (3) per-application cost at P=256 (the Cactus worked example:
///      avg/max TDC 6 -> one block per node, Nactive = P).

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "hfast/analysis/batch.hpp"
#include "hfast/core/cost_model.hpp"
#include "hfast/core/provision.hpp"
#include "hfast/store/cli.hpp"
#include "hfast/topo/fat_tree.hpp"
#include "hfast/util/table.hpp"

using namespace hfast;

int main(int argc, char** argv) {
  // Usage: sec53_cost_model [--engine threads|fibers]
  //                         [--cores-per-node C]
  //                         [--packing rank-order|affinity]
  //                         [--cache-dir DIR] [--no-cache] [--cache-verify]
  // With --cores-per-node > 1 the per-application section prices the
  // node-level quotient graph the SMP packing leaves on the interconnect
  // (the block pool the paper's §5 simplification hides).
  mpisim::EngineKind engine = mpisim::EngineKind::kThreads;
  core::SmpConfig smp;
  store::CacheCli cache;
  for (int i = 1; i < argc; ++i) {
    if (cache.consume(argc, argv, i)) continue;
    if (std::strcmp(argv[i], "--engine") == 0 && i + 1 < argc) {
      engine = mpisim::parse_engine(argv[++i]);
    } else if (std::strcmp(argv[i], "--cores-per-node") == 0 && i + 1 < argc) {
      smp.cores_per_node = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--packing") == 0 && i + 1 < argc) {
      smp.packing = core::parse_packing(argv[++i]);
    }
  }
  const auto cache_store = cache.open(std::cerr);

  // (1) Fat-tree growth, radix 8 (the paper's worked example).
  util::print_banner(std::cout,
                     "Fat-tree port scaling, 8-port switches (paper 5.3)");
  util::Table ft({"P", "Levels L", "Capacity", "Ports/processor",
                  "Total switch ports", "Worst-case switch layers"});
  for (int p : {8, 32, 128, 512, 2048, 8192}) {
    const topo::FatTree t(p, 8);
    ft.row()
        .add(p)
        .add(t.levels())
        .add(t.capacity())
        .add(t.ports_per_processor())
        .add(t.total_switch_ports())
        .add(t.worst_case_traversals());
  }
  ft.print(std::cout);
  std::cout << "paper: quotes 11 ports/processor for a 6-level tree of "
               "8-port switches (its\n2048-processor figure needs only L=5 "
               "under P=2*(N/2)^L — see EXPERIMENTS.md).\n";

  // (2) Per-application packet-switch demand: the HFAST pool is sized by
  // the measured (thresholded) topology, so the relevant quantity is packet
  // ports per processor — constant in P for bounded-TDC codes, versus the
  // fat-tree's 1+2(L-1) growth. Blocks here are sized to the workload
  // (8-port blocks suffice below TDC 8).
  util::print_banner(std::cout,
                     "Packet ports per processor: HFAST (greedy blocks, sized "
                     "to TDC) vs fat-tree");
  util::Table ct({"P", "App", "TDC@2KB max", "Block size", "HFAST blocks",
                  "HFAST pkt ports/proc", "Fat-tree(8) ports/proc",
                  "Fat-tree(16) ports/proc"});
  // All twelve (P, app) experiments run as one parallel batch; results come
  // back in input order, so the table below reads them off sequentially.
  const std::vector<std::string> kApps{"cactus", "gtc",    "lbmhd",
                                       "superlu", "pmemd", "paratec"};
  std::vector<analysis::ExperimentConfig> configs;
  for (int p : {64, 256}) {
    for (const std::string& app : kApps) {
      analysis::ExperimentConfig cfg;
      cfg.app = app;
      cfg.nranks = p;
      cfg.engine = engine;
      cfg.smp = smp;
      configs.push_back(cfg);
    }
  }
  const auto batch =
      analysis::BatchRunner({.result_store = cache_store.get()}).run(configs);
  if (!batch.ok()) {
    for (const auto& e : batch.errors) {
      std::cerr << "experiment failed: " << e.job << ": " << e.message << "\n";
    }
    return EXIT_FAILURE;
  }
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const int p = configs[i].nranks;
    const std::string& app = configs[i].app;
    const auto& r = *batch.results[i];
    // run_experiment already sized and provisioned the interconnect-visible
    // graph (the task graph itself at cores_per_node = 1): blocks sized to
    // the workload, counts from the greedy provisioning of r.smp.node_graph.
    const std::uint64_t packet_ports =
        static_cast<std::uint64_t>(r.smp.provision.num_blocks) *
        static_cast<std::uint64_t>(r.smp.block_size);
    const topo::FatTree ft8(p, 8);
    const topo::FatTree ft16(p, 16);
    ct.row()
        .add(p)
        .add(app)
        .add(r.smp.node_tdc_max)
        .add(r.smp.block_size)
        .add(r.smp.provision.num_blocks)
        .add(static_cast<double>(packet_ports) / p, 2)
        .add(ft8.ports_per_processor())
        .add(ft16.ports_per_processor());
  }
  ct.print(std::cout);

  // (3) Extrapolated total cost for a bounded-TDC workload (Cactus-like,
  // one 8-port block per node) against a radix-8 fat-tree, with MEMS
  // circuit ports at a quarter of packet-port price. HFAST's per-processor
  // cost is flat; the fat-tree adds 2 ports/processor per level, so the
  // curves cross in the multi-thousand-processor range — exactly the
  // "peta-scale era" argument of the paper.
  core::CostParams costs;
  costs.block_size = 8;
  costs.fat_tree_radix = 8;
  util::print_banner(std::cout,
                     "Extrapolation: bounded TDC=6 workload, one 8-port block "
                     "per node vs radix-8 fat-tree");
  util::Table ex({"P", "HFAST cost/proc", "Fat-tree cost/proc",
                  "HFAST/fat-tree"});
  for (int p : {512, 2048, 8192, 32768, 131072, 1048576}) {
    const auto h = core::hfast_cost(p, p, costs);
    const auto f = core::fat_tree_cost(p, costs, /*include_collective=*/true);
    ex.row()
        .add(p)
        .add(h.total() / p, 2)
        .add(f.total() / p, 2)
        .add(h.total() / f.total(), 2);
  }
  ex.print(std::cout);
  std::cout << "The expensive component (packet switches) scales linearly "
               "with P for HFAST;\nfat-tree ports grow by 2 per processor "
               "per added level, so beyond ~10k\nprocessors the hybrid "
               "fabric is cheaper (paper conclusion).\n";
  store::CacheCli::report(std::cerr, cache_store.get());
  return 0;
}
