/// \file smp_sweep.cpp
/// The SMP provisioning-mode headline artifact: a Table-3-style sweep of
/// all six paper applications over cores per node, showing how much
/// traffic the node backplanes absorb and how far the switch-block pool
/// shrinks as tasks aggregate — with the paper's case-iv caveat (pmemd's
/// all-to-all keeps node-level TDC = nodes-1 at every aggregation, so SMP
/// packing cannot rescue fully-connected codes).
///
/// Usage: smp_sweep [nranks] [--engine threads|fibers] [--threads N]
///                  [--check] [--cache-dir DIR] [--no-cache] [--cache-verify]
///   nranks     tasks per application (default 64)
///   --threads  live-thread budget for the batch engine
///   --check    validate the paper-reproduction invariants and exit
///              nonzero on violation (the CI smoke contract):
///                * cactus localizes a nonzero byte fraction at 2+ cores
///                  and strictly more under affinity packing;
///                * the block pool never grows as cores per node grow
///                  (same packing, same app);
///                * pmemd's node graph stays fully connected: node TDC =
///                  nodes - 1 at every aggregation level.
///
/// Every (app, cores, packing) cell is an independent ExperimentConfig, so
/// the sweep fans out under BatchRunner and persists per-cell in the
/// durable store — a killed sweep resumes instead of recomputing.

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <tuple>

#include "hfast/analysis/batch.hpp"
#include "hfast/analysis/paper_tables.hpp"
#include "hfast/store/cli.hpp"
#include "hfast/util/table.hpp"

using namespace hfast;

int main(int argc, char** argv) {
  int nranks = 64;
  bool check = false;
  analysis::BatchOptions opts;
  mpisim::EngineKind engine = mpisim::EngineKind::kThreads;
  store::CacheCli cache;
  for (int i = 1; i < argc; ++i) {
    if (cache.consume(argc, argv, i)) continue;
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      opts.thread_budget = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--engine") == 0 && i + 1 < argc) {
      engine = mpisim::parse_engine(argv[++i]);
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      nranks = std::atoi(argv[i]);
    }
  }
  const auto cache_store = cache.open(std::cerr);
  opts.result_store = cache_store.get();

  const std::vector<std::string> kApps{"cactus", "gtc",   "lbmhd",
                                       "superlu", "pmemd", "paratec"};
  const std::vector<int> kCores{1, 2, 4, 8};

  std::vector<analysis::ExperimentConfig> configs;
  for (const std::string& app : kApps) {
    if (!apps::valid_concurrency(apps::find(app), nranks)) {
      std::cout << app << ": skipped (P=" << nranks << " unsupported)\n";
      continue;
    }
    for (int cores : kCores) {
      for (core::SmpPacking packing :
           {core::SmpPacking::kRankOrder, core::SmpPacking::kAffinity}) {
        // At one core per node every packing is the identity; keep only
        // the rank-order row as the per-task baseline.
        if (cores == 1 && packing != core::SmpPacking::kRankOrder) continue;
        analysis::ExperimentConfig cfg;
        cfg.app = app;
        cfg.nranks = nranks;
        cfg.engine = engine;
        cfg.capture_trace = false;
        cfg.smp = {cores, packing};
        configs.push_back(cfg);
      }
    }
  }

  const analysis::BatchRunner runner(opts);
  const auto batch = runner.run(configs);
  for (const auto& e : batch.errors) {
    std::cerr << "experiment failed: " << e.job << ": " << e.message << "\n";
  }
  if (!batch.ok()) return EXIT_FAILURE;

  std::vector<analysis::SmpSweepRow> rows;
  rows.reserve(configs.size());
  for (const auto& r : batch.results) {
    rows.push_back(analysis::smp_sweep_row(*r));
  }

  util::print_banner(
      std::cout, "SMP provisioning sweep @ P=" + std::to_string(nranks) +
                     ": backplane absorption and block-pool shrinkage");
  analysis::render_smp_sweep(rows).print(std::cout);
  std::cout << "\nStencil codes (cactus, lbmhd) localize neighbor traffic on "
               "the backplane and\nshed switch blocks as cores per node grow; "
               "pmemd's all-to-all keeps node TDC\n= nodes-1 at every "
               "aggregation (the paper's case-iv finding) — SMP packing\n"
               "cannot rescue fully-connected codes.\n";
  std::cout << "batch: " << configs.size() << " experiments in "
            << batch.wall_seconds << " s under a " << runner.thread_budget()
            << "-thread budget\n";
  if (cache_store != nullptr) {
    std::cout << "batch cache: " << batch.cache.hits << " hits, "
              << batch.cache.misses << " misses, " << batch.cache.stores
              << " stored\n";
    store::CacheCli::report(std::cerr, cache_store.get());
  }

  if (!check) return 0;

  // --- paper-reproduction invariants (the CI smoke contract) ---------------
  int failures = 0;
  const auto fail = [&failures](const std::string& what) {
    std::cerr << "CHECK FAILED: " << what << "\n";
    ++failures;
  };

  // Index rows by (app, cores, packing) for the cross-row assertions.
  std::map<std::tuple<std::string, int, core::SmpPacking>,
           const analysis::SmpSweepRow*>
      by_cell;
  for (const auto& row : rows) {
    by_cell[{row.code, row.cores_per_node, row.packing}] = &row;
  }
  const auto cell = [&](const std::string& app, int cores,
                        core::SmpPacking packing) {
    // cores = 1 has only the rank-order baseline row.
    const auto it = by_cell.find(
        {app, cores, cores == 1 ? core::SmpPacking::kRankOrder : packing});
    return it == by_cell.end() ? nullptr : it->second;
  };

  for (const auto& row : rows) {
    // Nonzero backplane absorption for the stencil headline code.
    if (row.code == "cactus" && row.cores_per_node > 1 &&
        row.backplane_bytes == 0) {
      fail("cactus absorbs no backplane traffic at " +
           std::to_string(row.cores_per_node) + " cores/node");
    }
    // Affinity never localizes fewer bytes than rank order.
    if (row.packing == core::SmpPacking::kAffinity) {
      const auto* naive =
          cell(row.code, row.cores_per_node, core::SmpPacking::kRankOrder);
      if (naive != nullptr && row.backplane_bytes < naive->backplane_bytes) {
        fail(row.code + " affinity localizes fewer bytes than rank order at " +
             std::to_string(row.cores_per_node) + " cores/node");
      }
    }
    // pmemd stays fully connected at node level (paper case iv).
    if (row.code == "pmemd" && row.node_tdc_max != row.num_nodes - 1) {
      fail("pmemd node TDC " + std::to_string(row.node_tdc_max) +
           " != nodes-1 = " + std::to_string(row.num_nodes - 1) + " at " +
           std::to_string(row.cores_per_node) + " cores/node");
    }
    // Block-pool monotonicity: aggregating more tasks per node never needs
    // more switch blocks.
    const auto* prev = cell(row.code, row.cores_per_node / 2, row.packing);
    if (prev != nullptr && row.num_blocks > prev->num_blocks) {
      fail(row.code + " (" +
           std::string(core::packing_name(row.packing)) + "): block pool grew " +
           std::to_string(prev->num_blocks) + " -> " +
           std::to_string(row.num_blocks) + " going to " +
           std::to_string(row.cores_per_node) + " cores/node");
    }
  }

  if (failures != 0) {
    std::cerr << failures << " invariant(s) violated\n";
    return EXIT_FAILURE;
  }
  std::cout << "check: all SMP invariants hold\n";
  return 0;
}
