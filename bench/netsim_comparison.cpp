/// \file netsim_comparison.cpp
/// Executes each application's steady-state trace on three modeled
/// interconnects — the greedily provisioned HFAST fabric, a 3D torus, and
/// a full-bisection fat-tree — and compares makespan, message latency, and
/// packet-switch hops. This mechanizes the paper's §2.3 latency argument:
/// HFAST routes cross 1-2 packet blocks where a large fat-tree crosses
/// 2L-1 layers, while a torus pays dilation for patterns that do not embed.

#include <iostream>

#include "hfast/analysis/experiment.hpp"
#include "hfast/core/provision.hpp"
#include "hfast/netsim/replay.hpp"
#include "hfast/topo/mesh.hpp"
#include "hfast/util/format.hpp"
#include "hfast/util/table.hpp"

using namespace hfast;

int main() {
  constexpr int kRanks = 64;
  const netsim::LinkParams link;  // 50ns/2GB/s defaults, both fabrics

  util::print_banner(
      std::cout,
      "Trace replay: HFAST vs 3D torus vs fat-tree (P=64, steady state)");
  util::Table t({"App", "Network", "Makespan", "Avg msg latency",
                 "Max msg latency", "Avg switch hops", "Max hops",
                 "Recv wait (sum)"});

  for (const char* app :
       {"cactus", "gtc", "lbmhd", "superlu", "pmemd", "paratec"}) {
    const auto r = analysis::run_experiment(app, kRanks);
    const auto steady = r.trace.filter_region(apps::kSteadyRegion);

    const auto prov = core::provision_greedy(r.comm_graph);
    netsim::FabricNetwork hfast_net(prov.fabric, link, 50e-9);
    const topo::MeshTorus torus(topo::MeshTorus::balanced_dims(kRanks, 3),
                                true);
    netsim::DirectNetwork torus_net(torus, link);
    const topo::FatTree ft(kRanks, 16);
    netsim::FatTreeNetwork ft_net(ft, link);

    struct Entry {
      netsim::Network* net;
    };
    for (netsim::Network* net :
         {static_cast<netsim::Network*>(&hfast_net),
          static_cast<netsim::Network*>(&torus_net),
          static_cast<netsim::Network*>(&ft_net)}) {
      const auto rr = netsim::replay(steady, *net);
      t.row()
          .add(app)
          .add(net->name())
          .add(util::time_label(rr.makespan_s))
          .add(util::time_label(rr.avg_message_latency_s))
          .add(util::time_label(rr.max_message_latency_s))
          .add(rr.avg_switch_hops, 2)
          .add(rr.max_switch_hops)
          .add(util::time_label(rr.total_recv_wait_s));
    }
  }
  t.print(std::cout);
  std::cout << "\nExpected shape: HFAST tracks the fat-tree for bounded-TDC "
               "codes with fewer\nswitch hops; the torus wins only when the "
               "pattern embeds (cactus) and loses\nbadly on scattered/global "
               "patterns (lbmhd, paratec). PARATEC saturates any\nnon-FCN "
               "fabric (paper case iv).\n";
  return 0;
}
