/// \file fig3_collectives.cpp
/// Regenerates paper Figure 3: cumulative buffer-size distribution of
/// *collective* communication across all six codes. The paper's claim:
/// ~90% of collective payloads are <= the 2 KB bandwidth-delay product and
/// ~half are under 100 bytes, so a cheap dedicated tree network suffices.

#include <iostream>

#include "hfast/analysis/experiment.hpp"
#include "hfast/analysis/paper_tables.hpp"
#include "hfast/util/histogram.hpp"
#include "hfast/util/table.hpp"

using namespace hfast;

int main() {
  constexpr int kRanks = 256;
  util::LogHistogram all;
  for (const apps::App& a : apps::registry()) {
    const auto r = analysis::run_experiment(a.info.name, kRanks);
    all.merge(r.steady.collective_buffers());
  }

  util::print_banner(std::cout,
                     "Figure 3 — collective buffer sizes, all codes (P=256)");
  analysis::render_buffer_cdf(all, "collective").print(std::cout);
  std::cout << "\n<=100 bytes: " << all.percent_at_or_below(100)
            << "% (paper: ~50%)\n"
            << "<=2 KB (BDP): " << all.percent_at_or_below(2048)
            << "% (paper: ~90%)\n"
            << "median collective buffer: " << all.median() << " bytes\n";
  return 0;
}
