/// \file perf_micro.cpp
/// google-benchmark microbenchmarks of the core kernels: communication
/// graph construction, TDC cutoff sweeps, both provisioners, fabric
/// routing, the runtime's messaging path, and trace replay.

#include <benchmark/benchmark.h>

#include "hfast/analysis/experiment.hpp"
#include "hfast/core/provision.hpp"
#include "hfast/graph/clique.hpp"
#include "hfast/graph/tdc.hpp"
#include "hfast/mpisim/runtime.hpp"
#include "hfast/netsim/replay.hpp"
#include "hfast/topo/mesh.hpp"

using namespace hfast;

namespace {

graph::CommGraph make_graph(int p, int partners_per_node) {
  graph::CommGraph g(p);
  for (int u = 0; u < p; ++u) {
    for (int k = 1; k <= partners_per_node; ++k) {
      const int v = (u + k) % p;
      g.add_message(u, v, 1024ULL << (k % 8), 4);
    }
  }
  return g;
}

void BM_graph_build(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_graph(p, 12));
  }
  state.SetItemsProcessed(state.iterations() * p * 12);
}
BENCHMARK(BM_graph_build)->Arg(64)->Arg(256)->Arg(1024);

void BM_tdc_sweep(benchmark::State& state) {
  const auto g = make_graph(static_cast<int>(state.range(0)), 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::tdc_sweep(g));
  }
}
BENCHMARK(BM_tdc_sweep)->Arg(64)->Arg(256)->Arg(1024);

void BM_provision_greedy(benchmark::State& state) {
  const auto g = make_graph(static_cast<int>(state.range(0)), 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::provision_greedy(g));
  }
}
BENCHMARK(BM_provision_greedy)->Arg(64)->Arg(256)->Arg(1024);

void BM_provision_clique(benchmark::State& state) {
  const auto g = make_graph(static_cast<int>(state.range(0)), 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::provision_clique(g));
  }
}
BENCHMARK(BM_provision_clique)->Arg(64)->Arg(256);

void BM_clique_cover(benchmark::State& state) {
  const auto g = make_graph(static_cast<int>(state.range(0)), 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::greedy_edge_clique_cover(g, 15));
  }
}
BENCHMARK(BM_clique_cover)->Arg(64)->Arg(256);

void BM_fabric_route(benchmark::State& state) {
  const auto g = make_graph(256, 12);
  const auto prov = core::provision_greedy(g);
  int u = 0;
  for (auto _ : state) {
    const int v = (u + 7) % 256;
    benchmark::DoNotOptimize(prov.fabric.route(u, v == u ? (u + 1) % 256 : v));
    u = (u + 1) % 256;
  }
}
BENCHMARK(BM_fabric_route);

void BM_runtime_ring(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  mpisim::Runtime rt(mpisim::RuntimeConfig{.nranks = p});
  for (auto _ : state) {
    rt.run([](mpisim::RankContext& ctx) {
      const int n = ctx.nranks();
      for (int i = 0; i < 20; ++i) {
        (void)ctx.sendrecv((ctx.rank() + 1) % n, 4096,
                           (ctx.rank() + n - 1) % n, 4096, i);
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * p * 20);
}
BENCHMARK(BM_runtime_ring)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_replay_torus(benchmark::State& state) {
  const auto r = analysis::run_experiment("cactus", 64);
  const auto steady = r.trace.filter_region(apps::kSteadyRegion);
  const topo::MeshTorus torus(topo::MeshTorus::balanced_dims(64, 3), true);
  netsim::LinkParams link;
  for (auto _ : state) {
    netsim::DirectNetwork net(torus, link);
    benchmark::DoNotOptimize(netsim::replay(steady, net));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(steady.events().size()));
}
BENCHMARK(BM_replay_torus)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
