/// \file perf_micro.cpp
/// google-benchmark microbenchmarks of the core kernels: communication
/// graph construction, TDC cutoff sweeps, both provisioners, fabric
/// routing, the runtime's messaging path, and trace replay.

#include <benchmark/benchmark.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <thread>

#include "hfast/analysis/batch.hpp"
#include "hfast/core/provision.hpp"
#include "hfast/graph/clique.hpp"
#include "hfast/graph/tdc.hpp"
#include "hfast/mpisim/runtime.hpp"
#include "hfast/netsim/replay.hpp"
#include "hfast/netsim/replay_parallel.hpp"
#include "hfast/store/store.hpp"
#include "hfast/topo/mesh.hpp"
#include "hfast/util/json.hpp"

using namespace hfast;

namespace {

graph::CommGraph make_graph(int p, int partners_per_node) {
  graph::CommGraph g(p);
  for (int u = 0; u < p; ++u) {
    for (int k = 1; k <= partners_per_node; ++k) {
      const int v = (u + k) % p;
      g.add_message(u, v, 1024ULL << (k % 8), 4);
    }
  }
  return g;
}

void BM_graph_build(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_graph(p, 12));
  }
  state.SetItemsProcessed(state.iterations() * p * 12);
}
BENCHMARK(BM_graph_build)->Arg(64)->Arg(256)->Arg(1024);

void BM_tdc_sweep(benchmark::State& state) {
  const auto g = make_graph(static_cast<int>(state.range(0)), 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::tdc_sweep(g));
  }
}
BENCHMARK(BM_tdc_sweep)->Arg(64)->Arg(256)->Arg(1024);

void BM_provision_greedy(benchmark::State& state) {
  const auto g = make_graph(static_cast<int>(state.range(0)), 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::provision_greedy(g));
  }
}
BENCHMARK(BM_provision_greedy)->Arg(64)->Arg(256)->Arg(1024);

void BM_provision_clique(benchmark::State& state) {
  const auto g = make_graph(static_cast<int>(state.range(0)), 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::provision_clique(g));
  }
}
BENCHMARK(BM_provision_clique)->Arg(64)->Arg(256);

void BM_clique_cover(benchmark::State& state) {
  const auto g = make_graph(static_cast<int>(state.range(0)), 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::greedy_edge_clique_cover(g, 15));
  }
}
BENCHMARK(BM_clique_cover)->Arg(64)->Arg(256);

void BM_fabric_route(benchmark::State& state) {
  const auto g = make_graph(256, 12);
  const auto prov = core::provision_greedy(g);
  int u = 0;
  for (auto _ : state) {
    const int v = (u + 7) % 256;
    benchmark::DoNotOptimize(prov.fabric.route(u, v == u ? (u + 1) % 256 : v));
    u = (u + 1) % 256;
  }
}
BENCHMARK(BM_fabric_route);

void BM_runtime_ring(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  mpisim::Runtime rt(mpisim::RuntimeConfig{.nranks = p});
  for (auto _ : state) {
    rt.run([](mpisim::RankContext& ctx) {
      const int n = ctx.nranks();
      for (int i = 0; i < 20; ++i) {
        (void)ctx.sendrecv((ctx.rank() + 1) % n, 4096,
                           (ctx.rank() + n - 1) % n, 4096, i);
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * p * 20);
}
BENCHMARK(BM_runtime_ring)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

/// The experiment sweep every paper artifact hammers, at two thread
/// budgets: Arg(1) degenerates to a strictly sequential sweep (the
/// pre-BatchRunner baseline), Arg(0) uses the default budget (4x cores).
/// lbmhd is absent because it needs a >= 5x5 square grid — too wide for a
/// bench meant to keep several jobs in flight under small budgets.
std::vector<analysis::ExperimentConfig> sweep_jobs() {
  return analysis::sweep_configs({"cactus", "gtc", "superlu"}, {8, 16},
                                 {1, 2});
}

void BM_batch_sweep(benchmark::State& state) {
  const auto configs = sweep_jobs();
  const analysis::BatchRunner runner(
      {.thread_budget = static_cast<int>(state.range(0))});
  for (auto _ : state) {
    auto r = runner.run(configs);
    if (!r.ok()) {
      state.SkipWithError("batch job failed");
      break;
    }
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(configs.size()));
}
BENCHMARK(BM_batch_sweep)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()->UseRealTime();

/// The engine face-off in the regime the fiber engine was built for: wide
/// jobs (P=256), where the threaded engine pays 256 thread spawns plus
/// kernel-arbitrated context switches per experiment and the fiber engine
/// runs the whole job on one OS thread with user-space switches. Trace
/// capture is off — these jobs exist for their reductions.
std::vector<analysis::ExperimentConfig> engine_jobs(mpisim::EngineKind engine) {
  auto configs =
      analysis::sweep_configs({"cactus", "gtc"}, {256}, {1}, engine);
  for (auto& c : configs) c.capture_trace = false;
  return configs;
}

void BM_batch_sweep_engine(benchmark::State& state) {
  const auto engine = state.range(0) == 0 ? mpisim::EngineKind::kThreads
                                          : mpisim::EngineKind::kFibers;
  if (engine == mpisim::EngineKind::kFibers && !mpisim::fibers_supported()) {
    state.SkipWithError("fiber engine unavailable in this build");
    return;
  }
  const auto configs = engine_jobs(engine);
  const analysis::BatchRunner runner;
  for (auto _ : state) {
    auto r = runner.run(configs);
    if (!r.ok()) {
      state.SkipWithError("batch job failed");
      break;
    }
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(std::string(mpisim::engine_name(engine)));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(configs.size()));
}
BENCHMARK(BM_batch_sweep_engine)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

void BM_replay_torus(benchmark::State& state) {
  const auto r = analysis::run_experiment("cactus", 64);
  const auto steady = r.trace.filter_region(apps::kSteadyRegion);
  const topo::MeshTorus torus(topo::MeshTorus::balanced_dims(64, 3), true);
  netsim::LinkParams link;
  for (auto _ : state) {
    netsim::DirectNetwork net(torus, link);
    benchmark::DoNotOptimize(netsim::replay(steady, net));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(steady.events().size()));
}
BENCHMARK(BM_replay_torus)->Unit(benchmark::kMillisecond);

void BM_parallel_replay_torus(benchmark::State& state) {
  const auto r = analysis::run_experiment("cactus", 64);
  const auto steady = r.trace.filter_region(apps::kSteadyRegion);
  const topo::MeshTorus torus(topo::MeshTorus::balanced_dims(64, 3), true);
  netsim::LinkParams link;
  const int shards = static_cast<int>(state.range(0));
  for (auto _ : state) {
    netsim::DirectNetwork net(torus, link);
    benchmark::DoNotOptimize(
        netsim::parallel_replay(steady, net, {}, {.shards = shards}));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(steady.events().size()));
}
BENCHMARK(BM_parallel_replay_torus)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

/// Emit the sweep-engine datapoint the roadmap tracks: sequential vs
/// batched wall time for the standard job set, as BENCH_batch_sweep.json
/// in the working directory.
void write_batch_sweep_datapoint() {
  const auto configs = sweep_jobs();
  const auto time_sweep = [&configs](int budget) {
    const analysis::BatchRunner runner({.thread_budget = budget});
    const auto start = std::chrono::steady_clock::now();
    const auto r = runner.run(configs);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return r.ok() ? wall : -1.0;
  };
  const double seq = time_sweep(1);
  const double par = time_sweep(0);
  if (seq < 0.0 || par < 0.0) {
    std::cerr << "BENCH_batch_sweep: sweep failed, no datapoint written\n";
    return;
  }
  // Engine comparison at P=256: same jobs, same default budget, only the
  // execution engine differs. Fibers may be unavailable (TSan builds) —
  // report -1 there rather than dropping the datapoint.
  const auto time_engine = [](mpisim::EngineKind engine) {
    if (engine == mpisim::EngineKind::kFibers && !mpisim::fibers_supported()) {
      return -1.0;
    }
    const auto jobs = engine_jobs(engine);
    const analysis::BatchRunner runner;
    const auto start = std::chrono::steady_clock::now();
    const auto r = runner.run(jobs);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return r.ok() ? wall : -1.0;
  };
  const double threads256 = time_engine(mpisim::EngineKind::kThreads);
  const double fibers256 = time_engine(mpisim::EngineKind::kFibers);

  // Cold-vs-warm store datapoint: the same P=256 sweep against an empty
  // result store (every job computes and persists) and again against the
  // populated one (every job is a cache hit — the resumable-sweep payoff).
  // -1 seconds means the pass could not run.
  const auto store_dir =
      std::filesystem::temp_directory_path() / "hfast_bench_store_p256";
  double cold = -1.0, warm = -1.0;
  std::uint64_t warm_hits = 0;
  {
    const auto jobs = engine_jobs(mpisim::fibers_supported()
                                      ? mpisim::EngineKind::kFibers
                                      : mpisim::EngineKind::kThreads);
    try {
      store::ResultStore cache(store_dir);
      cache.evict_all();
      const analysis::BatchRunner runner({.result_store = &cache});
      const auto time_pass = [&]() {
        const auto start = std::chrono::steady_clock::now();
        const auto r = runner.run(jobs);
        const double wall = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - start)
                                .count();
        warm_hits = r.cache.hits;
        return r.ok() ? wall : -1.0;
      };
      cold = time_pass();
      warm_hits = 0;
      warm = time_pass();
    } catch (const std::exception& e) {
      std::cerr << "BENCH store datapoint skipped: " << e.what() << "\n";
    }
    std::error_code ec;
    std::filesystem::remove_all(store_dir, ec);
  }

  // Parallel-replay datapoint: serial vs partitioned-clock replay of a
  // cactus P=1024 fiber trace on a 3-D torus — the trace scale the serial
  // replay was the bottleneck for. exact_match records the bitwise parity
  // guarantee; -1 seconds means fibers are unavailable (TSan builds).
  double replay_serial = -1.0, replay_parallel = -1.0;
  std::uint64_t replay_events = 0;
  bool replay_exact = false;
  const int replay_shards = 4;
  if (mpisim::fibers_supported()) {
    try {
      analysis::ExperimentConfig cfg;
      cfg.app = "cactus";
      cfg.nranks = 1024;
      cfg.engine = mpisim::EngineKind::kFibers;
      const auto exp = analysis::run_experiment(cfg);
      const auto steady = exp.trace.filter_region(apps::kSteadyRegion);
      replay_events = steady.events().size();
      const topo::MeshTorus torus(topo::MeshTorus::balanced_dims(1024, 3),
                                  true);
      const netsim::LinkParams link;
      netsim::DirectNetwork serial_net(torus, link);
      auto start = std::chrono::steady_clock::now();
      const auto serial_result = netsim::replay(steady, serial_net);
      replay_serial = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
      netsim::DirectNetwork parallel_net(torus, link);
      start = std::chrono::steady_clock::now();
      const auto parallel_result = netsim::parallel_replay(
          steady, parallel_net, {}, {.shards = replay_shards});
      replay_parallel = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
      replay_exact = serial_result == parallel_result;
    } catch (const std::exception& e) {
      std::cerr << "BENCH replay datapoint skipped: " << e.what() << "\n";
    }
  }

  std::ofstream ofs("BENCH_batch_sweep.json");
  util::JsonWriter json(ofs);
  json.begin_object();
  json.field("bench", "batch_sweep");
  json.field("jobs", static_cast<std::uint64_t>(configs.size()));
  json.field("hardware_concurrency", std::thread::hardware_concurrency());
  json.field("thread_budget",
             analysis::BatchRunner({.thread_budget = 0}).thread_budget());
  json.field("sequential_seconds", seq);
  json.field("batched_seconds", par);
  json.field("speedup", par > 0.0 ? seq / par : 0.0);
  json.key("engine_p256");
  json.begin_object();
  json.field("threads_seconds", threads256);
  json.field("fibers_seconds", fibers256);
  json.field("fibers_speedup",
             threads256 > 0.0 && fibers256 > 0.0 ? threads256 / fibers256 : 0.0);
  json.end_object();
  json.key("store_p256");
  json.begin_object();
  json.field("cold_seconds", cold);
  json.field("warm_seconds", warm);
  json.field("warm_hits", warm_hits);
  json.field("warm_speedup", cold > 0.0 && warm > 0.0 ? cold / warm : 0.0);
  json.end_object();
  json.key("replay_p1024");
  json.begin_object();
  json.field("events", replay_events);
  json.field("shards", replay_shards);
  json.field("serial_seconds", replay_serial);
  json.field("parallel_seconds", replay_parallel);
  json.field("speedup", replay_serial > 0.0 && replay_parallel > 0.0
                            ? replay_serial / replay_parallel
                            : 0.0);
  json.field("exact_match", replay_exact);
  json.end_object();
  json.end_object();
  json.finish();
  std::cout << "BENCH_batch_sweep.json: " << configs.size() << " jobs, "
            << seq << " s sequential, " << par << " s batched ("
            << (par > 0.0 ? seq / par : 0.0) << "x); P=256 engines: "
            << threads256 << " s threads vs " << fibers256
            << " s fibers; store: " << cold << " s cold vs " << warm
            << " s warm (" << warm_hits << " hits); replay P=1024: "
            << replay_serial << " s serial vs " << replay_parallel << " s x"
            << replay_shards << " shards (exact="
            << (replay_exact ? "yes" : "no") << ")\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_batch_sweep_datapoint();
  return 0;
}
