/// \file ablation_provisioning.cpp
/// Ablation for the paper's §6 clique-mapping direction: the linear-time
/// greedy provisioner (the paper's costed upper bound, which "may use twice
/// as many ports as an optimal embedding") versus the clique-cover
/// provisioner that maps tightly connected task groups onto shared blocks.
/// Also sweeps the active switch block size.

#include <iostream>

#include "hfast/analysis/experiment.hpp"
#include "hfast/core/provision.hpp"
#include "hfast/util/table.hpp"

using namespace hfast;

int main() {
  util::print_banner(std::cout,
                     "Greedy vs clique provisioning (P=64, 16-port blocks)");
  util::Table t({"App", "Greedy blocks", "Clique blocks", "Savings",
                 "Greedy trunks", "Clique trunks", "Internal edges",
                 "Greedy max traversals", "Clique max traversals"});
  for (const char* app :
       {"cactus", "gtc", "lbmhd", "superlu", "pmemd", "paratec"}) {
    const auto r = analysis::run_experiment(app, 64);
    const core::ProvisionParams params;
    const auto g = core::provision_greedy(r.comm_graph, params);
    const auto c = core::provision_clique(r.comm_graph, params);
    g.fabric.validate();
    c.fabric.validate();
    const double savings =
        100.0 * (1.0 - static_cast<double>(c.stats.num_blocks) /
                           static_cast<double>(g.stats.num_blocks));
    t.row()
        .add(app)
        .add(g.stats.num_blocks)
        .add(c.stats.num_blocks)
        .add(std::to_string(static_cast<int>(savings)) + "%")
        .add(g.stats.num_trunks)
        .add(c.stats.num_trunks)
        .add(c.stats.internal_edges)
        .add(g.stats.max_circuit_traversals)
        .add(c.stats.max_circuit_traversals);
  }
  t.print(std::cout);

  util::print_banner(std::cout,
                     "Block-size sweep (lbmhd @ P=64, greedy provisioning)");
  util::Table bs({"Block size", "Blocks", "Packet ports", "Free ports",
                  "Max traversals"});
  const auto r = analysis::run_experiment("lbmhd", 64);
  for (int size : {4, 8, 16, 32, 64}) {
    core::ProvisionParams params;
    params.block_size = size;
    const auto prov = core::provision_greedy(r.comm_graph, params);
    bs.row()
        .add(size)
        .add(prov.stats.num_blocks)
        .add(prov.fabric.packet_ports())
        .add(prov.fabric.total_free_ports())
        .add(prov.stats.max_circuit_traversals);
  }
  bs.print(std::cout);
  std::cout << "Small blocks need chains (more traversals); big blocks waste "
               "free ports.\nThe paper's 16-port block fits bounded-TDC codes "
               "in one block per node.\n";
  return 0;
}
