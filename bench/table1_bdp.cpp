/// \file table1_bdp.cpp
/// Regenerates paper Table 1: bandwidth-delay products for five leading
/// interconnects, plus a simulator cross-check — measuring on a simulated
/// link that a BDP-sized message reaches ~50% of peak bandwidth and that
/// the 2 KB threshold tracks the best (smallest) BDP in the table.

#include <iostream>

#include "hfast/netsim/bdp.hpp"
#include "hfast/netsim/network.hpp"
#include "hfast/topo/fcn.hpp"
#include "hfast/util/format.hpp"
#include "hfast/util/table.hpp"

using namespace hfast;

int main() {
  util::print_banner(std::cout,
                     "Table 1: bandwidth-delay products (paper values)");
  util::Table t({"System", "Technology", "MPI Latency", "Peak Bandwidth",
                 "Bandwidth-Delay Product", "N1/2 (model)"});
  double best_bdp = 1e18;
  for (const auto& spec : netsim::table1_specs()) {
    const double bdp = netsim::bandwidth_delay_product(spec);
    best_bdp = std::min(best_bdp, bdp);
    t.row()
        .add(spec.system)
        .add(spec.technology)
        .add(util::time_label(spec.mpi_latency_s))
        .add(util::rate_label(spec.peak_bandwidth_bps))
        .add(util::bytes_label(bdp))
        .add(util::bytes_label(bdp));  // N1/2 == BDP under t = L + s/B
  }
  t.print(std::cout);
  std::cout << "\nBest BDP across systems: " << util::bytes_label(best_bdp)
            << " -> the paper's 2 KB threshold (we use "
            << netsim::paper_threshold_bytes() << " bytes).\n";

  util::print_banner(std::cout,
                     "Simulator cross-check: effective bandwidth vs size");
  util::Table v({"Message size", "SGI Altix eff. bw", "% of peak",
                 "simulated eff. bw"});
  const auto altix = netsim::table1_specs()[0];
  topo::FullyConnected pair(2);
  netsim::LinkParams link;
  link.latency_s = altix.mpi_latency_s;
  link.bandwidth_bps = altix.peak_bandwidth_bps;
  link.switch_overhead_s = 0.0;
  netsim::DirectNetwork net(pair, link);
  for (std::uint64_t s : {64ULL, 512ULL, 2048ULL, 2090ULL, 8192ULL, 65536ULL,
                          1048576ULL}) {
    const double eff = netsim::effective_bandwidth(altix, s);
    net.reset();
    const double sim_t = net.transfer(0, 1, s, 0.0);
    const double sim_eff = static_cast<double>(s) / sim_t;
    v.row()
        .add(util::size_label(s))
        .add(util::rate_label(eff))
        .add(util::percent_label(100.0 * eff / altix.peak_bandwidth_bps))
        .add(util::rate_label(sim_eff));
  }
  v.print(std::cout);
  std::cout << "A message of the BDP (~2 KB on Altix) achieves ~50% of peak;\n"
               "smaller messages are latency-bound and gain nothing from a\n"
               "dedicated HFAST circuit (paper 2.4).\n";
  return 0;
}
