/// \file ablation_fat_tree.cpp
/// Fat-tree model-fidelity ablation: the idealized non-blocking interior
/// (used in netsim_comparison, charitable to the fat-tree baseline) versus
/// the structural k-ary n-tree with explicit switches, D-mod-k routing,
/// and interior contention. Also checks that both models agree on the
/// 2l-1 switch-traversal law the analytic topo::FatTree predicts.

#include <iostream>

#include "hfast/analysis/experiment.hpp"
#include "hfast/netsim/fat_tree_net.hpp"
#include "hfast/netsim/replay.hpp"
#include "hfast/topo/fat_tree.hpp"
#include "hfast/util/format.hpp"
#include "hfast/util/table.hpp"

using namespace hfast;

int main() {
  constexpr int kRanks = 64;
  const netsim::LinkParams link;

  util::print_banner(std::cout,
                     "Hop-count agreement: analytic vs structural (P=64, "
                     "radix 8)");
  {
    const topo::FatTree analytic(kRanks, 8);
    netsim::StructuralFatTree structural(kRanks, 8, link);
    util::Table t({"pair", "analytic 2l-1", "structural"});
    for (auto [a, b] : {std::pair{0, 1}, {0, 7}, {0, 15}, {0, 63}, {17, 43}}) {
      t.row()
          .add(std::to_string(a) + "->" + std::to_string(b))
          .add(analytic.switch_traversals(a, b))
          .add(structural.switch_hops(a, b));
    }
    t.print(std::cout);
  }

  util::print_banner(
      std::cout, "Trace replay: idealized vs structural fat-tree (P=64)");
  util::Table t({"App", "Idealized makespan", "Structural makespan",
                 "Structural/idealized", "Structural avg latency"});
  for (const char* app :
       {"cactus", "gtc", "lbmhd", "superlu", "pmemd", "paratec"}) {
    const auto r = analysis::run_experiment(app, kRanks);
    const auto steady = r.trace.filter_region(apps::kSteadyRegion);

    const topo::FatTree ft(kRanks, 16);
    netsim::FatTreeNetwork ideal(ft, link);
    netsim::StructuralFatTree structural(kRanks, 16, link);

    const auto ri = netsim::replay(steady, ideal);
    const auto rs = netsim::replay(steady, structural);
    t.row()
        .add(app)
        .add(util::time_label(ri.makespan_s))
        .add(util::time_label(rs.makespan_s))
        .add(rs.makespan_s / ri.makespan_s, 2)
        .add(util::time_label(rs.avg_message_latency_s));
  }
  t.print(std::cout);
  std::cout << "\nThe idealized model under-reports fat-tree congestion for "
               "global patterns\n(paratec, pmemd); HFAST comparisons in "
               "netsim_comparison therefore understate\nHFAST's advantage "
               "against a real tree.\n";
  return 0;
}
