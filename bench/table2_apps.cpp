/// \file table2_apps.cpp
/// Regenerates paper Table 2: the application suite overview, annotated
/// with what each synthetic kernel reproduces and a quick structural
/// sanity run at P=16.

#include <iostream>

#include "hfast/analysis/experiment.hpp"
#include "hfast/graph/tdc.hpp"
#include "hfast/util/table.hpp"

using namespace hfast;

int main() {
  util::print_banner(std::cout, "Table 2: scientific applications examined");
  util::Table t({"Name", "Lines", "Discipline", "Problem and Method",
                 "Structure"});
  for (const apps::App& a : apps::registry()) {
    t.row()
        .add(a.info.name)
        .add(a.info.lines_of_code)
        .add(a.info.discipline)
        .add(a.info.problem_method)
        .add(a.info.structure);
  }
  t.print(std::cout);

  util::print_banner(std::cout, "Kernel sanity sweep (P=16)");
  util::Table s({"Kernel", "Supported", "Total calls", "TDC@2KB (max,avg)"});
  for (const apps::App& a : apps::registry()) {
    if (!apps::valid_concurrency(a, 16)) {
      s.row().add(a.info.name).add("P=16 n/a").add("-").add("-");
      continue;
    }
    const auto r = analysis::run_experiment(a.info.name, 16);
    const auto tdc = graph::tdc(r.comm_graph, graph::kBdpCutoffBytes);
    s.row()
        .add(a.info.name)
        .add("yes")
        .add(r.steady.total_calls())
        .add(std::to_string(tdc.max) + ", " +
             std::to_string(static_cast<int>(tdc.avg * 10) / 10.0).substr(0, 4));
  }
  s.print(std::cout);
  return 0;
}
