/// \file fig2_callcounts.cpp
/// Regenerates paper Figure 2: the relative number of MPI communication
/// calls per code (steady state, P=256). Paper reference mixes are printed
/// alongside for comparison.

#include <iostream>

#include "hfast/analysis/experiment.hpp"
#include "hfast/analysis/paper_tables.hpp"
#include "hfast/util/table.hpp"

using namespace hfast;

namespace {

const char* paper_reference(const std::string& app) {
  if (app == "cactus")
    return "paper: Wait 39.3%, Irecv 26.8%, Isend 26.8%, Waitall 6.5%";
  if (app == "gtc")
    return "paper: Gather 47.4%, Sendrecv 40.8%, Allreduce 10.9%";
  if (app == "lbmhd")
    return "paper: Irecv 40.0%, Isend 40.0%, Waitall 20.0%";
  if (app == "paratec")
    return "paper: Wait 49.6%, Isend 25.1%, Irecv 24.8%";
  if (app == "pmemd")
    return "paper: Waitany 36.6%, Isend 32.7%, Irecv 29.3%";
  if (app == "superlu")
    return "paper: Wait 30.6%, Isend 16.4%, Irecv 15.7%, Recv 15.4%, "
           "Send 14.7%, Bcast 5.3%";
  return "";
}

}  // namespace

int main() {
  constexpr int kRanks = 256;
  for (const apps::App& a : apps::registry()) {
    const auto r = analysis::run_experiment(a.info.name, kRanks);
    util::print_banner(std::cout,
                       "Figure 2 — " + a.info.name + " call mix (P=256)");
    analysis::render_call_breakdown(r, 2.0).print(std::cout);
    std::cout << paper_reference(a.info.name) << "\n";
  }
  return 0;
}
