/// \file fig7_lbmhd.cpp — paper Figure 7 (LBMHD connectivity).
#include "fig_common.hpp"

int main() {
  return hfast::benchfig::run_connectivity_figure(
      "Figure 7", "lbmhd",
      {12, 11.8,
       "LBMHD: 12 scattered interpolation partners, concurrency- and "
       "threshold-insensitive, but not mesh-isomorphic (paper case ii)."});
}
