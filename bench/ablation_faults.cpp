/// \file ablation_faults.cpp
/// The paper's §1 fault-tolerance and job-packing arguments, measured.
///
/// (1) Node failures: on a torus, every failed node is a hole the
///     remaining traffic must route around — dilation and hot-link load
///     climb with the failure count. On HFAST, a failed node's blocks
///     return to the pool and the surviving pairs keep their dedicated
///     trunks: route lengths are unchanged.
/// (2) Job fragmentation: a batch system that cannot repack jobs ends up
///     scattering a job across free nodes; on a fixed torus that inflates
///     dilation, while HFAST simply provisions the topology to wherever
///     the job landed.

#include <iostream>

#include "hfast/util/random.hpp"

#include "hfast/analysis/experiment.hpp"
#include "hfast/core/provision.hpp"
#include "hfast/topo/degraded.hpp"
#include "hfast/topo/embedding.hpp"
#include "hfast/topo/mesh.hpp"
#include "hfast/util/format.hpp"
#include "hfast/util/table.hpp"

using namespace hfast;

int main() {
  const auto r = analysis::run_experiment("cactus", 64);
  const auto& g = r.comm_graph;

  // (1) Failures: a 128-node torus hosting the 64-task job; fail nodes
  // outside the job and watch the routes degrade.
  util::print_banner(std::cout,
                     "Node failures on a 128-node torus (cactus, 64 tasks "
                     "placed greedily)");
  util::Table t({"Failed nodes", "Avg dilation", "Max dilation",
                 "Hottest link", "HFAST max traversals"});
  const topo::MeshTorus torus(topo::MeshTorus::balanced_dims(128, 3), true);
  const auto prov = core::provision_greedy(g);
  util::Rng rng(4242);
  for (int failures : {0, 2, 8, 16, 32}) {
    topo::DegradedTopology degraded(torus);
    // Fail nodes spread across the machine, rerolled deterministically.
    const auto victims = rng.sample_without_replacement(128, static_cast<std::size_t>(failures));
    for (auto v : victims) degraded.fail_node(static_cast<int>(v));
    // The job takes the first 64 healthy nodes (greedy placement on the
    // degraded machine).
    const auto healthy = degraded.healthy_nodes();
    if (healthy.size() < 64) break;
    const auto emb = topo::greedy_embedding(g, degraded, healthy);
    const auto q = topo::evaluate_embedding(g, degraded, emb);
    t.row()
        .add(failures)
        .add(q.avg_dilation, 2)
        .add(q.max_dilation)
        .add(util::bytes_label(static_cast<double>(q.max_link_load)))
        .add(prov.stats.max_circuit_traversals);  // failure-independent
  }
  t.print(std::cout);

  // (2) Fragmentation: the same job placed on a contiguous torus block vs
  // scattered across it (simulating a machine fragmented by job churn).
  util::print_banner(std::cout,
                     "Job fragmentation on a 512-node torus (cactus, 64 "
                     "tasks)");
  util::Table jt({"Placement", "Avg dilation", "Max dilation",
                  "Hottest link"});
  const topo::MeshTorus big(topo::MeshTorus::balanced_dims(512, 3), true);
  {
    // Contiguous: tasks occupy a compact 4x4x4 corner.
    const auto emb = topo::greedy_embedding(g, big);
    const auto q = topo::evaluate_embedding(g, big, emb);
    jt.row()
        .add("contiguous (greedy)")
        .add(q.avg_dilation, 2)
        .add(q.max_dilation)
        .add(util::bytes_label(static_cast<double>(q.max_link_load)));
  }
  for (std::uint64_t seed : {1ULL, 2ULL}) {
    util::Rng frag(seed);
    const auto emb = topo::random_embedding(64, 512, frag);
    const auto q = topo::evaluate_embedding(g, big, emb);
    jt.row()
        .add("fragmented (seed " + std::to_string(seed) + ")")
        .add(q.avg_dilation, 2)
        .add(q.max_dilation)
        .add(util::bytes_label(static_cast<double>(q.max_link_load)));
  }
  jt.print(std::cout);
  std::cout << "\nHFAST sidesteps both effects: blocks are a pool (failures "
               "shrink it, routes\nkeep <= " << prov.stats.max_circuit_traversals
            << " traversals) and the circuit switch wires the job's topology "
               "to whatever\nnodes the scheduler had free — no packing, no "
               "migration (paper 1, 2.3).\n";
  return 0;
}
