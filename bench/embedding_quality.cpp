/// \file embedding_quality.cpp
/// Quantifies the paper's §1 job-placement argument: on a fixed topology
/// the mapping of application tasks to nodes decides performance, and a
/// scheduler that does not know the communication topology (random
/// placement) pays heavily. HFAST needs no placement at all — the circuit
/// switch wires the topology to the job. Metrics: byte-weighted dilation
/// and hottest-link load on a 3D torus under identity / random / greedy
/// traffic-aware placement.

#include <iostream>

#include "hfast/analysis/experiment.hpp"
#include "hfast/topo/anneal.hpp"
#include "hfast/topo/embedding.hpp"
#include "hfast/topo/mesh.hpp"
#include "hfast/util/format.hpp"
#include "hfast/util/table.hpp"

using namespace hfast;

int main() {
  constexpr int kRanks = 64;
  const topo::MeshTorus torus(topo::MeshTorus::balanced_dims(kRanks, 3), true);
  util::Rng rng(42);

  util::print_banner(std::cout,
                     "Embedding quality on a 3D torus (P=64): dilation and "
                     "congestion by placement strategy");
  util::Table t({"App", "Placement", "Avg dilation (hops/byte)",
                 "Max dilation", "Hottest link", "Avg link load"});
  for (const char* app :
       {"cactus", "gtc", "lbmhd", "superlu", "pmemd", "paratec"}) {
    const auto r = analysis::run_experiment(app, kRanks);
    const auto& g = r.comm_graph;

    struct Strat {
      const char* name;
      topo::Embedding emb;
    };
    std::vector<Strat> strategies;
    strategies.push_back({"identity", topo::identity_embedding(kRanks)});
    strategies.push_back(
        {"random", topo::random_embedding(kRanks, kRanks, rng)});
    strategies.push_back({"greedy", topo::greedy_embedding(g, torus)});
    // Search-based refinement (paper 6 direction): anneal from greedy.
    strategies.push_back(
        {"greedy+anneal",
         topo::anneal_embedding(g, torus, topo::greedy_embedding(g, torus))
             .embedding});

    for (const auto& s : strategies) {
      const auto q = topo::evaluate_embedding(g, torus, s.emb);
      t.row()
          .add(app)
          .add(s.name)
          .add(q.avg_dilation, 2)
          .add(q.max_dilation)
          .add(util::bytes_label(static_cast<double>(q.max_link_load)))
          .add(util::bytes_label(q.avg_link_load));
    }
  }
  t.print(std::cout);
  std::cout << "\nCactus embeds at dilation ~1 when placed well but degrades "
               "~3x under random\nplacement; scattered patterns (lbmhd) and "
               "global patterns (paratec) cannot\nreach dilation 1 under any "
               "placement — the fixed-topology pitfall HFAST avoids.\n";
  return 0;
}
