/// \file fig4_ptp_buffers.cpp
/// Regenerates paper Figure 4: cumulative buffer-size distribution of
/// point-to-point communication, one panel per code (P=256). The 2 KB
/// bandwidth-delay product is the reference line in the paper; here we
/// print the CDF value at that threshold for each code.

#include <iostream>

#include "hfast/analysis/experiment.hpp"
#include "hfast/analysis/paper_tables.hpp"
#include "hfast/util/table.hpp"

using namespace hfast;

int main() {
  constexpr int kRanks = 256;
  for (const apps::App& a : apps::registry()) {
    const auto r = analysis::run_experiment(a.info.name, kRanks);
    const auto& h = r.steady.ptp_buffers();
    util::print_banner(std::cout, "Figure 4 — " + a.info.name +
                                      " PTP buffer sizes (P=256)");
    analysis::render_buffer_cdf(h, a.info.name).print(std::cout);
    std::cout << "at the 2 KB BDP: " << h.percent_at_or_below(2048)
              << "% of PTP calls are at or below the threshold; median "
              << h.median() << " bytes; largest " << h.max_size()
              << " bytes\n";
  }
  std::cout << "\nPaper shape check: Cactus/LBMHD use few, large sizes;\n"
               "GTC small counts but >=128KB dominant volume; SuperLU,\n"
               "PMEMD, PARATEC span bytes..megabytes.\n";
  return 0;
}
