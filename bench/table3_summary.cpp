/// \file table3_summary.cpp
/// Regenerates paper Table 3: the full summary of code characteristics —
/// point-to-point vs collective call percentages, median buffer sizes,
/// TDC at the 2 KB cutoff, and FCN utilization — at P=64 and P=256, plus
/// the §5.2 case classification of every code.

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "hfast/analysis/batch.hpp"
#include "hfast/analysis/paper_tables.hpp"
#include "hfast/core/classify.hpp"
#include "hfast/store/cli.hpp"
#include "hfast/util/table.hpp"

using namespace hfast;

namespace {

struct PaperRow {
  const char* code;
  int procs;
  double ptp, col;
  const char* tdc;
  const char* util;
};

constexpr PaperRow kPaper[] = {
    {"gtc", 64, 42.0, 58.0, "2, 2", "3%"},
    {"gtc", 256, 40.2, 59.8, "10, 4", "2%"},
    {"cactus", 64, 99.4, 0.6, "6, 5", "9%"},
    {"cactus", 256, 99.5, 0.5, "6, 5", "2%"},
    {"lbmhd", 64, 99.8, 0.2, "12, 11.5", "19%"},
    {"lbmhd", 256, 99.9, 0.1, "12, 11.8", "5%"},
    {"superlu", 64, 89.8, 10.2, "14, 14", "22%"},
    {"superlu", 256, 92.8, 7.2, "30, 30", "25%"},
    {"pmemd", 64, 99.1, 0.9, "63, 63", "100%"},
    {"pmemd", 256, 98.6, 1.4, "255, 55", "22%"},
    {"paratec", 64, 99.5, 0.5, "63, 63", "100%"},
    {"paratec", 256, 99.9, 0.1, "255, 255", "100%"},
};

}  // namespace

int main(int argc, char** argv) {
  // Usage: table3_summary [--engine threads|fibers]
  //                       [--cache-dir DIR] [--no-cache] [--cache-verify]
  mpisim::EngineKind engine = mpisim::EngineKind::kThreads;
  store::CacheCli cache;
  for (int i = 1; i < argc; ++i) {
    if (cache.consume(argc, argv, i)) continue;
    if (std::strcmp(argv[i], "--engine") == 0 && i + 1 < argc) {
      engine = mpisim::parse_engine(argv[++i]);
    }
  }
  const auto cache_store = cache.open(std::cerr);

  // One parallel sweep produces every (app, P) experiment; configs come
  // back in input order, so app i owns results [2i] (P=64) and [2i+1]
  // (P=256).
  std::vector<std::string> names;
  for (const apps::App& a : apps::registry()) names.push_back(a.info.name);
  const auto configs = analysis::sweep_configs(names, {64, 256}, {1}, engine);
  const auto batch =
      analysis::BatchRunner({.result_store = cache_store.get()}).run(configs);
  if (!batch.ok()) {
    for (const auto& e : batch.errors) {
      std::cerr << "experiment failed: " << e.job << ": " << e.message << "\n";
    }
    return EXIT_FAILURE;
  }

  std::vector<analysis::Table3Row> rows;
  std::vector<std::string> classifications;
  for (std::size_t i = 0; i < names.size(); ++i) {
    const auto& small = *batch.results[2 * i];
    const auto& large = *batch.results[2 * i + 1];
    rows.push_back(analysis::table3_row(small));
    rows.push_back(analysis::table3_row(large));
    const auto cls = core::classify(small.comm_graph, large.comm_graph);
    classifications.push_back(names[i] + ": " +
                              core::to_string(cls.comm_case) + " — " +
                              cls.rationale);
  }

  util::print_banner(std::cout, "Table 3 — measured (this reproduction)");
  analysis::render_table3(rows).print(std::cout);

  util::print_banner(std::cout, "Table 3 — paper reference values");
  util::Table p({"Code", "Procs", "% PTP", "% Col.", "TDC@2KB (max,avg)",
                 "FCN util"});
  for (const auto& r : kPaper) {
    p.row().add(r.code).add(r.procs).add(r.ptp, 1).add(r.col, 1).add(r.tdc)
        .add(r.util);
  }
  p.print(std::cout);
  std::cout << "(paper prints 25% utilization for SuperLU@256; avg-TDC/(P-1)"
               " gives ~12% — see EXPERIMENTS.md.)\n";

  util::print_banner(std::cout, "5.2 case classification");
  for (const auto& c : classifications) std::cout << "  " << c << "\n";

  // Cache traffic goes to stderr so resumed runs stay byte-identical on
  // stdout (the CI resume smoke job diffs stdout across runs).
  store::CacheCli::report(std::cerr, cache_store.get());
  return 0;
}
