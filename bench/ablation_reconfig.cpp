/// \file ablation_reconfig.cpp
/// Ablation for the runtime-reconfiguration engine (paper §2.3/§6):
/// windowed TDC per application, circuits kept by the adaptive plan versus
/// a static union provisioning, and the hysteresis sweep (how teardown
/// patience trades reconfiguration count against held circuits).

#include <iostream>

#include "hfast/analysis/experiment.hpp"
#include "hfast/core/reconfigure.hpp"
#include "hfast/trace/window.hpp"
#include "hfast/util/format.hpp"
#include "hfast/util/table.hpp"

using namespace hfast;

int main() {
  constexpr int kRanks = 64;
  constexpr std::size_t kWindows = 8;

  util::print_banner(std::cout, "Adaptive vs static circuits (P=64, 8 windows)");
  util::Table t({"App", "Peak circuits", "Static circuits", "Saving",
                 "Reconfigs", "Switch time"});
  for (const char* app :
       {"cactus", "gtc", "lbmhd", "superlu", "pmemd", "paratec"}) {
    const auto r = analysis::run_experiment(app, kRanks);
    const auto steady = r.trace.filter_region(apps::kSteadyRegion);
    const auto graphs = trace::windowed_graphs(steady, kWindows);
    const auto report = core::plan_reconfigurations(graphs);
    const double saving =
        report.static_circuits == 0
            ? 0.0
            : 100.0 * (1.0 - static_cast<double>(report.peak_circuits) /
                                 static_cast<double>(report.static_circuits));
    t.row()
        .add(app)
        .add(report.peak_circuits)
        .add(report.static_circuits)
        .add(std::to_string(static_cast<int>(saving)) + "%")
        .add(report.total_reconfigurations)
        .add(util::time_label(report.reconfig_time_seconds));
  }
  t.print(std::cout);

  util::print_banner(std::cout, "Hysteresis sweep (superlu @ P=64)");
  util::Table hs({"Hysteresis (windows)", "Reconfigs", "Peak circuits",
                  "Total adds", "Total removes"});
  const auto r = analysis::run_experiment("superlu", kRanks);
  const auto graphs = trace::windowed_graphs(
      r.trace.filter_region(apps::kSteadyRegion), kWindows);
  for (int h : {0, 1, 2, 4, 8}) {
    core::ReconfigParams params;
    params.hysteresis_windows = h;
    const auto report = core::plan_reconfigurations(graphs, params);
    hs.row()
        .add(h)
        .add(report.total_reconfigurations)
        .add(report.peak_circuits)
        .add(report.total_added)
        .add(report.total_removed);
  }
  hs.print(std::cout);
  std::cout << "More hysteresis -> fewer millisecond-scale MEMS events at the "
               "price of holding more circuits.\n";
  return 0;
}
