/// \file fig5_gtc.cpp — paper Figure 5 (GTC connectivity).
#include "fig_common.hpp"

int main() {
  return hfast::benchfig::run_connectivity_figure(
      "Figure 5", "gtc",
      {10, 4.0,
       "GTC: 1D toroidal decomposition (avg TDC ~4), but plane leaders need "
       "up to 10 partners above the threshold (17 raw) — paper case iii."});
}
