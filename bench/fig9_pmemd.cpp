/// \file fig9_pmemd.cpp — paper Figure 9 (PMEMD connectivity).
#include "fig_common.hpp"

int main() {
  return hfast::benchfig::run_connectivity_figure(
      "Figure 9", "pmemd",
      {255, 55.0,
       "PMEMD: spatial decomposition with distance-decaying volume — "
       "thresholding drops the average to ~55 while the master keeps all "
       "255 partners: the max/avg disparity HFAST exploits (case iii)."});
}
