/// \file fig6_cactus.cpp — paper Figure 6 (Cactus connectivity).
#include "fig_common.hpp"

int main() {
  return hfast::benchfig::run_connectivity_figure(
      "Figure 6", "cactus",
      {6, 5.0,
       "Cactus: 3D stencil — max 6 partners independent of P, insensitive "
       "to thresholding, maps isomorphically to a mesh (paper case i)."});
}
