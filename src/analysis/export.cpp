#include "hfast/analysis/export.hpp"

#include <fstream>

#include "hfast/graph/tdc.hpp"
#include "hfast/util/assert.hpp"

namespace hfast::analysis {

namespace {

std::ofstream open_csv(const std::filesystem::path& dir,
                       const std::string& name) {
  std::filesystem::create_directories(dir);
  std::ofstream out(dir / name);
  if (!out) {
    throw Error("export: cannot open " + (dir / name).string());
  }
  return out;
}

std::string tag(const ExperimentResult& r) {
  return r.config.app + "_p" + std::to_string(r.config.nranks);
}

}  // namespace

void export_table3_csv(const std::filesystem::path& dir,
                       const std::vector<Table3Row>& rows) {
  auto out = open_csv(dir, "table3.csv");
  out << "code,procs,ptp_call_percent,median_ptp_buffer,"
         "collective_call_percent,median_collective_buffer,"
         "tdc_max_2kb,tdc_avg_2kb,fcn_utilization\n";
  for (const Table3Row& r : rows) {
    out << r.code << ',' << r.procs << ',' << r.ptp_call_percent << ','
        << r.median_ptp_buffer << ',' << r.collective_call_percent << ','
        << r.median_collective_buffer << ',' << r.tdc_max_at_cutoff << ','
        << r.tdc_avg_at_cutoff << ',' << r.fcn_utilization << '\n';
  }
}

void export_tdc_sweep_csv(const std::filesystem::path& dir,
                          const ExperimentResult& result) {
  auto out = open_csv(dir, "tdc_" + tag(result) + ".csv");
  out << "cutoff_bytes,tdc_max,tdc_avg,tdc_median\n";
  for (const auto& pt : graph::tdc_sweep(result.comm_graph)) {
    out << pt.cutoff << ',' << pt.stats.max << ',' << pt.stats.avg << ','
        << pt.stats.median << '\n';
  }
}

void export_buffer_cdfs_csv(const std::filesystem::path& dir,
                            const ExperimentResult& result) {
  const auto write = [&](const util::LogHistogram& h, const std::string& kind) {
    auto out = open_csv(dir, "buffers_" + tag(result) + "_" + kind + ".csv");
    out << "size_bytes,count,cumulative_percent\n";
    std::uint64_t seen = 0;
    for (const auto& [size, count] : h.raw()) {
      seen += count;
      out << size << ',' << count << ','
          << (h.total() ? 100.0 * static_cast<double>(seen) /
                              static_cast<double>(h.total())
                        : 0.0)
          << '\n';
    }
  };
  write(result.steady.ptp_buffers(), "ptp");
  write(result.steady.collective_buffers(), "collective");
}

void export_volume_matrix_csv(const std::filesystem::path& dir,
                              const ExperimentResult& result) {
  auto out = open_csv(dir, "volume_" + tag(result) + ".csv");
  const auto m = result.comm_graph.volume_matrix();
  for (const auto& row : m) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << row[c];
    }
    out << '\n';
  }
}

}  // namespace hfast::analysis
