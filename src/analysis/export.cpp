#include "hfast/analysis/export.hpp"

#include <fstream>

#include "hfast/graph/tdc.hpp"
#include "hfast/store/fields.hpp"
#include "hfast/util/assert.hpp"
#include "hfast/util/json.hpp"

namespace hfast::analysis {

namespace {

std::ofstream open_csv(const std::filesystem::path& dir,
                       const std::string& name) {
  std::filesystem::create_directories(dir);
  std::ofstream out(dir / name);
  if (!out) {
    throw Error("export: cannot open " + (dir / name).string());
  }
  return out;
}

std::string tag(const ExperimentResult& r) {
  return r.config.app + "_p" + std::to_string(r.config.nranks);
}

}  // namespace

void export_table3_csv(const std::filesystem::path& dir,
                       const std::vector<Table3Row>& rows) {
  auto out = open_csv(dir, "table3.csv");
  out << "code,procs,ptp_call_percent,median_ptp_buffer,"
         "collective_call_percent,median_collective_buffer,"
         "tdc_max_2kb,tdc_avg_2kb,fcn_utilization\n";
  for (const Table3Row& r : rows) {
    out << r.code << ',' << r.procs << ',' << r.ptp_call_percent << ','
        << r.median_ptp_buffer << ',' << r.collective_call_percent << ','
        << r.median_collective_buffer << ',' << r.tdc_max_at_cutoff << ','
        << r.tdc_avg_at_cutoff << ',' << r.fcn_utilization << '\n';
  }
}

void export_tdc_sweep_csv(const std::filesystem::path& dir,
                          const ExperimentResult& result) {
  auto out = open_csv(dir, "tdc_" + tag(result) + ".csv");
  out << "cutoff_bytes,tdc_max,tdc_avg,tdc_median\n";
  for (const auto& pt : graph::tdc_sweep(result.comm_graph)) {
    out << pt.cutoff << ',' << pt.stats.max << ',' << pt.stats.avg << ','
        << pt.stats.median << '\n';
  }
}

void export_buffer_cdfs_csv(const std::filesystem::path& dir,
                            const ExperimentResult& result) {
  const auto write = [&](const util::LogHistogram& h, const std::string& kind) {
    auto out = open_csv(dir, "buffers_" + tag(result) + "_" + kind + ".csv");
    out << "size_bytes,count,cumulative_percent\n";
    std::uint64_t seen = 0;
    for (const auto& [size, count] : h.raw()) {
      seen += count;
      out << size << ',' << count << ','
          << (h.total() ? 100.0 * static_cast<double>(seen) /
                              static_cast<double>(h.total())
                        : 0.0)
          << '\n';
    }
  };
  write(result.steady.ptp_buffers(), "ptp");
  write(result.steady.collective_buffers(), "collective");
}

namespace {

/// JSON-emitting side of the shared config field list: one overload per
/// field type the visitor can hand out.
struct JsonConfigField {
  util::JsonWriter& json;
  void operator()(const char* name, const std::string& v) {
    json.field(name, v);
  }
  void operator()(const char* name, const int& v) { json.field(name, v); }
  void operator()(const char* name, const bool& v) { json.field(name, v); }
  void operator()(const char* name, const std::uint64_t& v) {
    json.field(name, v);
  }
  void operator()(const char* name, const mpisim::EngineKind& v) {
    json.field(name, mpisim::engine_name(v));
  }
  void operator()(const char* name, const core::SmpPacking& v) {
    json.field(name, std::string(core::packing_name(v)));
  }
};

}  // namespace

void write_experiment_json(std::ostream& os, const ExperimentResult& result) {
  util::JsonWriter json(os);
  json.begin_object();

  json.key("config");
  json.begin_object();
  JsonConfigField visit{json};
  store::visit_config_fields(result.config, visit);
  json.end_object();

  json.field("wall_seconds", result.wall_seconds);

  json.key("steady");
  json.begin_object();
  json.field("total_calls", result.steady.total_calls());
  json.field("ptp_call_percent", result.steady.ptp_call_percent());
  json.field("collective_call_percent",
             result.steady.collective_call_percent());
  json.field("median_ptp_buffer", result.steady.median_ptp_buffer());
  json.field("median_collective_buffer",
             result.steady.median_collective_buffer());
  json.field("dropped", result.steady.dropped());
  json.end_object();

  json.key("comm_graph");
  json.begin_object();
  json.field("nodes", result.comm_graph.num_nodes());
  json.field("edges", static_cast<std::uint64_t>(result.comm_graph.num_edges()));
  json.field("total_bytes", result.comm_graph.total_bytes());
  const auto t = graph::tdc(result.comm_graph, graph::kBdpCutoffBytes);
  json.field("tdc_max_at_bdp_cutoff", t.max);
  json.field("tdc_avg_at_bdp_cutoff", t.avg);
  json.end_object();

  json.key("smp");
  json.begin_object();
  json.field("num_nodes", result.smp.num_nodes);
  json.field("backplane_bytes", result.smp.backplane_bytes);
  json.field("node_tdc_max", result.smp.node_tdc_max);
  json.field("node_tdc_avg", result.smp.node_tdc_avg);
  json.field("block_size", result.smp.block_size);
  json.field("provisioned_blocks", result.smp.provision.num_blocks);
  json.field("provisioned_trunks", result.smp.provision.num_trunks);
  json.end_object();

  json.field("trace_events",
             static_cast<std::uint64_t>(result.trace.events().size()));
  json.end_object();
  json.finish();
}

void export_experiment_json(const std::filesystem::path& dir,
                            const ExperimentResult& result) {
  auto out = open_csv(dir, "experiment_" + tag(result) + ".json");
  write_experiment_json(out, result);
}

void export_volume_matrix_csv(const std::filesystem::path& dir,
                              const ExperimentResult& result) {
  auto out = open_csv(dir, "volume_" + tag(result) + ".csv");
  const auto m = result.comm_graph.volume_matrix();
  for (const auto& row : m) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << row[c];
    }
    out << '\n';
  }
}

}  // namespace hfast::analysis
