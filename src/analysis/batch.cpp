#include "hfast/analysis/batch.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "hfast/apps/app.hpp"
#include "hfast/netsim/replay_parallel.hpp"
#include "hfast/store/store.hpp"
#include "hfast/util/assert.hpp"

namespace hfast::analysis {

namespace {

int resolve_budget(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  const int cores = hw == 0 ? 1 : static_cast<int>(hw);
  // Rank threads are synchronization-bound — most of their wall time is
  // spent parked in mailbox matching waits — so budgeting exactly one
  // thread per core would leave cores idle whenever a job's ranks block on
  // each other. 4x oversubscription keeps the cores saturated across jobs
  // while still bounding total live threads (the actual resource risk:
  // a 6-app x {64,256} sweep would otherwise spawn ~2k threads at once).
  return 4 * cores;
}

/// Weighted-admission scheduler shared by both job kinds. Jobs are admitted
/// in input order whenever the live-thread count allows; each runs on its
/// own dispatcher thread and writes results[i] / an error record under the
/// scheduler lock, so output order is the input order by construction.
template <typename T, typename Job>
BatchResult<T> run_weighted(
    const std::vector<Job>& jobs, int budget,
    const std::function<int(const Job&)>& weight_of,
    const std::function<std::string(const Job&)>& label_of,
    const std::function<T(const Job&)>& execute) {
  BatchResult<T> out;
  out.results.resize(jobs.size());

  std::mutex m;
  std::condition_variable admit;
  int live = 0;

  const auto start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> workers;
    workers.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      // A job wider than the budget is clamped so it can run — alone.
      const int w = std::min(std::max(weight_of(jobs[i]), 1), budget);
      {
        std::unique_lock lock(m);
        admit.wait(lock, [&] { return live + w <= budget; });
        live += w;
      }
      workers.emplace_back([&, i, w] {
        try {
          T result = execute(jobs[i]);
          std::lock_guard lock(m);
          out.results[i] = std::move(result);
        } catch (const std::exception& e) {
          std::lock_guard lock(m);
          out.errors.push_back({i, label_of(jobs[i]), e.what()});
        } catch (...) {
          std::lock_guard lock(m);
          out.errors.push_back({i, label_of(jobs[i]), "unknown error"});
        }
        {
          std::lock_guard lock(m);
          live -= w;
        }
        admit.notify_all();
      });
    }
    for (auto& t : workers) t.join();
  }
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::sort(out.errors.begin(), out.errors.end(),
            [](const JobError& a, const JobError& b) {
              return a.index < b.index;
            });
  return out;
}

std::string experiment_label(const ExperimentConfig& cfg) {
  return cfg.app + " P=" + std::to_string(cfg.nranks) +
         " seed=" + std::to_string(cfg.seed);
}

}  // namespace

int experiment_thread_weight(const ExperimentConfig& config) noexcept {
  return config.engine == mpisim::EngineKind::kFibers ? 1 : config.nranks;
}

BatchRunner::BatchRunner(BatchOptions opts)
    : budget_(resolve_budget(opts.thread_budget)), store_(opts.result_store) {}

BatchResult<ExperimentResult> BatchRunner::run(
    const std::vector<ExperimentConfig>& configs) const {
  if (store_ == nullptr) {
    return run_weighted<ExperimentResult, ExperimentConfig>(
        configs, budget_, &experiment_thread_weight, &experiment_label,
        [](const ExperimentConfig& c) { return run_experiment(c); });
  }

  // Cache-aware sweep. Probe the store up front (cheap disk reads) so hits
  // never occupy an admission slot, then fan only the misses through the
  // weighted scheduler. Each miss is persisted inside its worker, *before*
  // the job is reported done — that ordering is what makes an interrupted
  // sweep resumable: whatever finished is already on disk.
  const auto start = std::chrono::steady_clock::now();
  BatchResult<ExperimentResult> out;
  out.results.resize(configs.size());

  std::vector<std::size_t> pending;  // indices that must actually run
  std::vector<ExperimentConfig> to_run;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    if (auto cached = store_->load(configs[i])) {
      out.results[i] = std::move(*cached);
      ++out.cache.hits;
    } else {
      ++out.cache.misses;
      pending.push_back(i);
      to_run.push_back(configs[i]);
    }
  }

  std::atomic<std::uint64_t> stores{0};
  std::atomic<std::uint64_t> store_failures{0};
  store::ResultStore* cache_store = store_;
  auto sub = run_weighted<ExperimentResult, ExperimentConfig>(
      to_run, budget_, &experiment_thread_weight, &experiment_label,
      [cache_store, &stores, &store_failures](const ExperimentConfig& c) {
        ExperimentResult r = run_experiment(c);
        // A persistence failure (disk full, permissions) must not discard a
        // computed result — the sweep just loses resumability for this job.
        if (cache_store->save(r)) {
          stores.fetch_add(1, std::memory_order_relaxed);
        } else {
          store_failures.fetch_add(1, std::memory_order_relaxed);
        }
        return r;
      });

  for (std::size_t s = 0; s < pending.size(); ++s) {
    out.results[pending[s]] = std::move(sub.results[s]);
  }
  for (JobError& e : sub.errors) {
    e.index = pending[e.index];
    out.errors.push_back(std::move(e));
  }
  std::sort(out.errors.begin(), out.errors.end(),
            [](const JobError& a, const JobError& b) {
              return a.index < b.index;
            });
  out.cache.stores = stores.load();
  out.cache.store_failures = store_failures.load();
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return out;
}

BatchResult<netsim::ReplayResult> BatchRunner::run_replays(
    const std::vector<ReplayJob>& jobs) const {
  return run_weighted<netsim::ReplayResult, ReplayJob>(
      jobs, budget_,
      [](const ReplayJob& j) { return std::max(1, j.shards); },
      [](const ReplayJob& j) { return j.label; },
      [](const ReplayJob& j) {
        HFAST_EXPECTS_MSG(j.trace != nullptr, "replay job without a trace");
        HFAST_EXPECTS_MSG(static_cast<bool>(j.make_network),
                          "replay job without a network factory");
        auto net = j.make_network();
        HFAST_EXPECTS_MSG(net != nullptr, "network factory returned null");
        if (j.shards > 1) {
          return netsim::parallel_replay(*j.trace, *net, j.params,
                                         {.shards = j.shards});
        }
        return netsim::replay(*j.trace, *net, j.params);
      });
}

std::vector<ExperimentConfig> sweep_configs(
    const std::vector<std::string>& apps, const std::vector<int>& nranks,
    const std::vector<std::uint64_t>& seeds, mpisim::EngineKind engine) {
  std::vector<ExperimentConfig> configs;
  configs.reserve(apps.size() * nranks.size() * seeds.size());
  for (const std::string& app : apps) {
    const apps::App& a = apps::find(app);  // throws for unknown names
    for (int p : nranks) {
      if (!apps::valid_concurrency(a, p)) continue;
      for (std::uint64_t seed : seeds) {
        ExperimentConfig cfg;
        cfg.app = app;
        cfg.nranks = p;
        cfg.seed = seed;
        cfg.engine = engine;
        configs.push_back(std::move(cfg));
      }
    }
  }
  return configs;
}

}  // namespace hfast::analysis
