#include "hfast/analysis/experiment.hpp"

#include <utility>
#include <vector>

#include "hfast/graph/quotient.hpp"
#include "hfast/graph/tdc.hpp"
#include "hfast/mpisim/runtime.hpp"
#include "hfast/util/assert.hpp"

namespace hfast::analysis {

SmpArtifacts build_smp_artifacts(const graph::CommGraph& tasks,
                                 const core::SmpConfig& smp) {
  HFAST_EXPECTS_MSG(smp.cores_per_node >= 1,
                    "smp: cores_per_node must be at least 1");
  auto q = smp.packing == core::SmpPacking::kAffinity
               ? graph::quotient_by_affinity(tasks, smp.cores_per_node)
               : graph::quotient_by_blocks(tasks, smp.cores_per_node);

  SmpArtifacts out;
  out.num_nodes = q.graph.num_nodes();
  out.backplane_bytes = q.internal_bytes;
  out.node_of_task = std::move(q.node_of_task);

  const auto t = graph::tdc(q.graph, graph::kBdpCutoffBytes);
  out.node_tdc_max = t.max;
  out.node_tdc_avg = t.avg;

  // The §5.3 sizing rule (as sec53_cost_model applies it to task graphs):
  // 8-port blocks suffice below TDC 8, else the paper's 16-port blocks.
  core::ProvisionParams pp;
  pp.block_size = t.max < 8 ? 8 : 16;
  out.block_size = pp.block_size;
  out.provision = core::provision_greedy(q.graph, pp).stats;
  out.node_graph = std::move(q.graph);
  return out;
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  const apps::App& app = apps::find(config.app);
  if (!apps::valid_concurrency(app, config.nranks)) {
    throw Error("experiment: " + config.app + " does not support P=" +
                std::to_string(config.nranks));
  }
  if (config.smp.cores_per_node < 1) {
    throw Error("experiment: cores_per_node must be at least 1 (got " +
                std::to_string(config.smp.cores_per_node) + ")");
  }

  mpisim::RuntimeConfig rt_cfg;
  rt_cfg.nranks = config.nranks;
  rt_cfg.seed = config.seed;
  rt_cfg.engine = config.engine;
  rt_cfg.sched_seed = config.sched_seed;
  mpisim::Runtime runtime(rt_cfg);

  std::vector<std::unique_ptr<ipm::RankProfile>> profiles;
  std::vector<std::unique_ptr<trace::TraceRecorder>> recorders;
  std::vector<std::unique_ptr<mpisim::MultiObserver>> observers;
  profiles.reserve(static_cast<std::size_t>(config.nranks));
  recorders.reserve(static_cast<std::size_t>(config.nranks));
  observers.reserve(static_cast<std::size_t>(config.nranks));
  for (int r = 0; r < config.nranks; ++r) {
    profiles.push_back(std::make_unique<ipm::RankProfile>(r));
    auto multi = std::make_unique<mpisim::MultiObserver>();
    multi->attach(profiles.back().get());
    if (config.capture_trace) {
      recorders.push_back(std::make_unique<trace::TraceRecorder>(r));
      multi->attach(recorders.back().get());
    }
    observers.push_back(std::move(multi));
  }

  apps::AppParams params;
  params.nranks = config.nranks;
  params.iterations = config.iterations;
  params.seed = config.seed;

  const auto run_result = runtime.run(
      app.program(params),
      [&observers](mpisim::Rank r) -> mpisim::CommObserver* {
        return observers[static_cast<std::size_t>(r)].get();
      });

  ExperimentResult result;
  result.config = config;
  result.wall_seconds = run_result.wall_seconds;

  std::vector<const ipm::RankProfile*> profile_ptrs;
  profile_ptrs.reserve(profiles.size());
  for (const auto& p : profiles) profile_ptrs.push_back(p.get());
  result.steady =
      ipm::WorkloadProfile::merge(profile_ptrs, apps::kSteadyRegion);
  result.all_regions = ipm::WorkloadProfile::merge(profile_ptrs, "");
  result.comm_graph = graph::CommGraph::from_profile(result.steady);
  result.comm_graph_all = graph::CommGraph::from_profile(result.all_regions);
  result.smp = build_smp_artifacts(result.comm_graph, config.smp);

  if (config.capture_trace) {
    std::vector<const trace::TraceRecorder*> recorder_ptrs;
    recorder_ptrs.reserve(recorders.size());
    for (const auto& r : recorders) recorder_ptrs.push_back(r.get());
    result.trace = trace::Trace::merge(recorder_ptrs);
  }
  return result;
}

ExperimentResult run_experiment(std::string_view app, int nranks) {
  ExperimentConfig cfg;
  cfg.app = std::string(app);
  cfg.nranks = nranks;
  return run_experiment(cfg);
}

}  // namespace hfast::analysis
