#include "hfast/analysis/experiment.hpp"

#include <vector>

#include "hfast/mpisim/runtime.hpp"
#include "hfast/util/assert.hpp"

namespace hfast::analysis {

ExperimentResult run_experiment(const ExperimentConfig& config) {
  const apps::App& app = apps::find(config.app);
  if (!apps::valid_concurrency(app, config.nranks)) {
    throw Error("experiment: " + config.app + " does not support P=" +
                std::to_string(config.nranks));
  }

  mpisim::RuntimeConfig rt_cfg;
  rt_cfg.nranks = config.nranks;
  rt_cfg.seed = config.seed;
  rt_cfg.engine = config.engine;
  rt_cfg.sched_seed = config.sched_seed;
  mpisim::Runtime runtime(rt_cfg);

  std::vector<std::unique_ptr<ipm::RankProfile>> profiles;
  std::vector<std::unique_ptr<trace::TraceRecorder>> recorders;
  std::vector<std::unique_ptr<mpisim::MultiObserver>> observers;
  profiles.reserve(static_cast<std::size_t>(config.nranks));
  recorders.reserve(static_cast<std::size_t>(config.nranks));
  observers.reserve(static_cast<std::size_t>(config.nranks));
  for (int r = 0; r < config.nranks; ++r) {
    profiles.push_back(std::make_unique<ipm::RankProfile>(r));
    auto multi = std::make_unique<mpisim::MultiObserver>();
    multi->attach(profiles.back().get());
    if (config.capture_trace) {
      recorders.push_back(std::make_unique<trace::TraceRecorder>(r));
      multi->attach(recorders.back().get());
    }
    observers.push_back(std::move(multi));
  }

  apps::AppParams params;
  params.nranks = config.nranks;
  params.iterations = config.iterations;
  params.seed = config.seed;

  const auto run_result = runtime.run(
      app.program(params),
      [&observers](mpisim::Rank r) -> mpisim::CommObserver* {
        return observers[static_cast<std::size_t>(r)].get();
      });

  ExperimentResult result;
  result.config = config;
  result.wall_seconds = run_result.wall_seconds;

  std::vector<const ipm::RankProfile*> profile_ptrs;
  profile_ptrs.reserve(profiles.size());
  for (const auto& p : profiles) profile_ptrs.push_back(p.get());
  result.steady =
      ipm::WorkloadProfile::merge(profile_ptrs, apps::kSteadyRegion);
  result.all_regions = ipm::WorkloadProfile::merge(profile_ptrs, "");
  result.comm_graph = graph::CommGraph::from_profile(result.steady);
  result.comm_graph_all = graph::CommGraph::from_profile(result.all_regions);

  if (config.capture_trace) {
    std::vector<const trace::TraceRecorder*> recorder_ptrs;
    recorder_ptrs.reserve(recorders.size());
    for (const auto& r : recorders) recorder_ptrs.push_back(r.get());
    result.trace = trace::Trace::merge(recorder_ptrs);
  }
  return result;
}

ExperimentResult run_experiment(std::string_view app, int nranks) {
  ExperimentConfig cfg;
  cfg.app = std::string(app);
  cfg.nranks = nranks;
  return run_experiment(cfg);
}

}  // namespace hfast::analysis
