#include "hfast/analysis/smp.hpp"

#include <utility>

#include "hfast/graph/quotient.hpp"
#include "hfast/util/assert.hpp"

namespace hfast::analysis {

SmpNetworkBundle make_smp_network(const graph::CommGraph& tasks,
                                  const core::SmpConfig& smp,
                                  const netsim::LinkParams& circuit,
                                  const netsim::LinkParams& backplane,
                                  double block_overhead_s) {
  HFAST_EXPECTS_MSG(smp.cores_per_node >= 1,
                    "smp: cores_per_node must be at least 1");
  auto q = smp.packing == core::SmpPacking::kAffinity
               ? graph::quotient_by_affinity(tasks, smp.cores_per_node)
               : graph::quotient_by_blocks(tasks, smp.cores_per_node);

  SmpNetworkBundle b;
  // Cutoff 0 keeps every quotient edge circuit-provisioned — replay needs
  // routes for all cross-node traffic, not just the over-BDP partners the
  // provisioning *stats* are scored on.
  b.provisioned = std::make_unique<core::Provisioned>(
      core::provision_greedy(q.graph, {.cutoff = 0}));
  b.backplane_bytes = q.internal_bytes;
  b.node_of_task = std::move(q.node_of_task);
  b.net = std::make_unique<netsim::SmpFabricNetwork>(
      b.provisioned->fabric, b.node_of_task, circuit, backplane,
      block_overhead_s);
  return b;
}

}  // namespace hfast::analysis
