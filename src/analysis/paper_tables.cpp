#include "hfast/analysis/paper_tables.hpp"

#include <sstream>

#include "hfast/util/ascii_plot.hpp"
#include "hfast/util/format.hpp"

namespace hfast::analysis {

Table3Row table3_row(const ExperimentResult& result, std::uint64_t cutoff) {
  Table3Row row;
  row.code = result.config.app;
  row.procs = result.config.nranks;
  row.ptp_call_percent = result.steady.ptp_call_percent();
  row.collective_call_percent = result.steady.collective_call_percent();
  row.median_ptp_buffer = result.steady.ptp_buffers().empty()
                              ? 0
                              : result.steady.median_ptp_buffer();
  row.median_collective_buffer = result.steady.collective_buffers().empty()
                                     ? 0
                                     : result.steady.median_collective_buffer();
  const auto t = graph::tdc(result.comm_graph, cutoff);
  row.tdc_max_at_cutoff = t.max;
  row.tdc_avg_at_cutoff = t.avg;
  row.fcn_utilization = graph::fcn_utilization(result.comm_graph, cutoff);
  return row;
}

util::Table render_table3(const std::vector<Table3Row>& rows) {
  util::Table t({"Code", "Procs", "% PTP calls", "median PTP buffer",
                 "% Col. calls", "median Col. buffer", "TDC@2KB (max,avg)",
                 "FCN Utilization (avg)"});
  for (const Table3Row& r : rows) {
    std::ostringstream tdc;
    tdc.setf(std::ios::fixed);
    tdc.precision(1);
    tdc << r.tdc_max_at_cutoff << ", " << r.tdc_avg_at_cutoff;
    t.row()
        .add(r.code)
        .add(r.procs)
        .add(r.ptp_call_percent, 1)
        .add(util::size_label(r.median_ptp_buffer))
        .add(r.collective_call_percent, 1)
        .add(util::size_label(r.median_collective_buffer))
        .add(tdc.str())
        .add(util::percent_label(100.0 * r.fcn_utilization, 0));
  }
  return t;
}

util::Table render_call_breakdown(const ExperimentResult& result,
                                  double min_percent) {
  util::Table t({"Call", "Count", "Percent"});
  for (const auto& entry : result.steady.call_breakdown(min_percent)) {
    const std::string name = entry.call == mpisim::CallType::kCount
                                 ? "Other"
                                 : std::string(mpisim::call_name(entry.call));
    t.row().add(name).add(entry.count).add(util::percent_label(entry.percent));
  }
  return t;
}

util::Table render_buffer_cdf(const util::LogHistogram& sizes,
                              const std::string& label) {
  util::Table t({"buffer size <=", label + " % calls"});
  for (std::uint64_t tick : {1ULL, 10ULL, 100ULL, 1024ULL, 2048ULL, 10240ULL,
                             102400ULL, 1048576ULL, 4194304ULL}) {
    t.row()
        .add(util::size_label(tick))
        .add(util::percent_label(sizes.percent_at_or_below(tick)));
  }
  return t;
}

std::string render_volume_heatmap(const ExperimentResult& result, int cells) {
  std::ostringstream title;
  title << result.config.app << " volume of communication, P="
        << result.config.nranks << " (bytes between rank pairs)";
  return util::heatmap(title.str(), result.comm_graph.volume_matrix(), cells);
}

std::string render_tdc_chart(const std::string& app,
                             const ExperimentResult& small,
                             const ExperimentResult& large) {
  const auto cutoffs = graph::standard_cutoffs();
  std::vector<std::string> labels;
  labels.reserve(cutoffs.size());
  for (auto c : cutoffs) labels.push_back(util::size_label(c));

  auto series_of = [&](const ExperimentResult& r, const std::string& which) {
    const auto sweep = graph::tdc_sweep(r.comm_graph);
    util::Series max_series{"max " + which, {}};
    util::Series avg_series{"avg " + which, {}};
    for (const auto& pt : sweep) {
      max_series.y.push_back(pt.stats.max);
      avg_series.y.push_back(pt.stats.avg);
    }
    return std::pair{max_series, avg_series};
  };

  auto [max_s, avg_s] = series_of(small, std::to_string(small.config.nranks));
  auto [max_l, avg_l] = series_of(large, std::to_string(large.config.nranks));
  return util::line_chart(app + " concurrency with cutoff (# of partners)",
                          labels, {max_s, avg_s, max_l, avg_l});
}

util::Table render_tdc_sweep(const ExperimentResult& result) {
  util::Table t({"Cutoff", "max TDC", "avg TDC"});
  for (const auto& pt : graph::tdc_sweep(result.comm_graph)) {
    t.row()
        .add(util::size_label(pt.cutoff))
        .add(pt.stats.max)
        .add(pt.stats.avg, 1);
  }
  return t;
}

SmpSweepRow smp_sweep_row(const ExperimentResult& result,
                          std::uint64_t cutoff) {
  SmpSweepRow row;
  row.code = result.config.app;
  row.procs = result.config.nranks;
  row.cores_per_node = result.config.smp.cores_per_node;
  row.packing = result.config.smp.packing;
  row.num_nodes = result.smp.num_nodes;
  row.backplane_bytes = result.smp.backplane_bytes;
  const std::uint64_t total = result.comm_graph.total_bytes();
  row.backplane_percent =
      total ? 100.0 * static_cast<double>(row.backplane_bytes) /
                  static_cast<double>(total)
            : 0.0;
  row.task_tdc_max = graph::tdc(result.comm_graph, cutoff).max;
  row.node_tdc_max = result.smp.node_tdc_max;
  row.node_tdc_avg = result.smp.node_tdc_avg;
  row.block_size = result.smp.block_size;
  row.num_blocks = result.smp.provision.num_blocks;
  row.num_trunks = result.smp.provision.num_trunks;
  return row;
}

util::Table render_smp_sweep(const std::vector<SmpSweepRow>& rows) {
  util::Table t({"Code", "Procs", "Cores/node", "Packing", "Nodes",
                 "Backplane bytes", "% absorbed", "TDC task/node (max)",
                 "node TDC avg", "Block size", "Blocks", "Trunks"});
  for (const SmpSweepRow& r : rows) {
    std::ostringstream tdc;
    tdc << r.task_tdc_max << " / " << r.node_tdc_max;
    t.row()
        .add(r.code)
        .add(r.procs)
        .add(r.cores_per_node)
        .add(std::string(core::packing_name(r.packing)))
        .add(r.num_nodes)
        .add(util::size_label(r.backplane_bytes))
        .add(util::percent_label(r.backplane_percent, 1))
        .add(tdc.str())
        .add(r.node_tdc_avg, 1)
        .add(r.block_size)
        .add(r.num_blocks)
        .add(r.num_trunks);
  }
  return t;
}

}  // namespace hfast::analysis
