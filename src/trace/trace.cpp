#include "hfast/trace/trace.hpp"

#include <algorithm>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "hfast/util/assert.hpp"

namespace hfast::trace {

void TraceRecorder::on_call(CallType call, Rank peer, std::uint64_t bytes,
                            double seconds) {
  (void)peer;
  (void)seconds;
  if (!mpisim::is_collective(call)) return;  // PTP captured via on_message
  events_.push_back({rank_, next_op_++, EventKind::kCollective, call,
                     mpisim::kNoPeer, bytes, current_region()});
}

void TraceRecorder::on_message(Rank peer_world, std::uint64_t bytes,
                               bool is_send) {
  events_.push_back({rank_, next_op_++,
                     is_send ? EventKind::kSend : EventKind::kRecv,
                     is_send ? CallType::kSend : CallType::kRecv, peer_world,
                     bytes, current_region()});
}

void TraceRecorder::on_region(std::string_view name, bool enter) {
  if (enter) {
    for (std::size_t i = 0; i < region_names_.size(); ++i) {
      if (region_names_[i] == name) {
        stack_.push_back(static_cast<std::uint16_t>(i));
        return;
      }
    }
    region_names_.emplace_back(name);
    stack_.push_back(static_cast<std::uint16_t>(region_names_.size() - 1));
  } else {
    HFAST_EXPECTS_MSG(!stack_.empty(), "region_end without begin");
    stack_.pop_back();
  }
}

Trace::Trace(int nranks, std::vector<CommEvent> events,
             std::vector<std::string> region_names)
    : nranks_(nranks),
      events_(std::move(events)),
      region_names_(std::move(region_names)) {
  std::sort(events_.begin(), events_.end(),
            [](const CommEvent& a, const CommEvent& b) {
              return std::tie(a.rank, a.op_index) < std::tie(b.rank, b.op_index);
            });
}

Trace Trace::merge(std::span<const TraceRecorder* const> recorders) {
  std::vector<std::string> names{""};
  auto intern = [&names](const std::string& n) -> std::uint16_t {
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] == n) return static_cast<std::uint16_t>(i);
    }
    names.push_back(n);
    return static_cast<std::uint16_t>(names.size() - 1);
  };

  std::vector<CommEvent> all;
  std::size_t total = 0;
  for (const auto* r : recorders) total += r->events().size();
  all.reserve(total);
  for (const auto* r : recorders) {
    HFAST_EXPECTS(r != nullptr);
    // Remap this recorder's region ids into the merged table.
    std::vector<std::uint16_t> remap(r->region_names().size());
    for (std::size_t i = 0; i < r->region_names().size(); ++i) {
      remap[i] = intern(r->region_names()[i]);
    }
    for (CommEvent e : r->events()) {
      e.region = remap[e.region];
      all.push_back(e);
    }
  }
  return Trace(static_cast<int>(recorders.size()), std::move(all),
               std::move(names));
}

std::vector<CommEvent> Trace::rank_events(Rank r) const {
  std::vector<CommEvent> out;
  for (const CommEvent& e : events_) {
    if (e.rank == r) out.push_back(e);
  }
  return out;
}

Trace Trace::filter_region(std::string_view region) const {
  if (region.empty()) return *this;
  std::uint16_t want = 0;
  bool found = false;
  for (std::size_t i = 0; i < region_names_.size(); ++i) {
    if (region_names_[i] == region) {
      want = static_cast<std::uint16_t>(i);
      found = true;
      break;
    }
  }
  std::vector<CommEvent> kept;
  if (found) {
    for (const CommEvent& e : events_) {
      if (e.region == want) kept.push_back(e);
    }
  }
  return Trace(nranks_, std::move(kept), region_names_);
}

Trace Trace::point_to_point_only() const {
  std::vector<CommEvent> kept;
  for (const CommEvent& e : events_) {
    if (e.kind != EventKind::kCollective) kept.push_back(e);
  }
  return Trace(nranks_, std::move(kept), region_names_);
}

std::uint64_t Trace::total_ptp_bytes() const {
  std::uint64_t sum = 0;
  for (const CommEvent& e : events_) {
    if (e.kind == EventKind::kSend) sum += e.bytes;
  }
  return sum;
}

void Trace::save_text(std::ostream& os) const {
  os << "hfast-trace v1 nranks=" << nranks_
     << " events=" << events_.size() << " regions=" << region_names_.size()
     << '\n';
  for (std::size_t i = 0; i < region_names_.size(); ++i) {
    os << "region " << i << ' '
       << (region_names_[i].empty() ? "<global>" : region_names_[i]) << '\n';
  }
  for (const CommEvent& e : events_) {
    os << e.rank << ' ' << e.op_index << ' ' << static_cast<int>(e.kind) << ' '
       << static_cast<int>(e.call) << ' ' << e.peer << ' ' << e.bytes << ' '
       << e.region << '\n';
  }
}

Trace Trace::load_text(std::istream& is) {
  // Trace files are data, frequently hand-edited; every parse or range
  // failure is reported with the 1-based line it came from so the edit is
  // findable, and nothing from the file is trusted as an array index or an
  // allocation size before it is range-checked.
  std::size_t line_no = 1;
  const auto fail = [&line_no](const std::string& what) {
    throw Error("trace: line " + std::to_string(line_no) + ": " + what);
  };

  std::string line;
  std::getline(is, line);
  int nranks = 0;
  std::size_t nevents = 0, nregions = 0;
  {
    std::istringstream hs(line);
    std::string magic, version, kv;
    hs >> magic >> version;
    if (magic != "hfast-trace" || version != "v1") {
      fail("bad header: " + line);
    }
    try {
      while (hs >> kv) {
        const auto eq = kv.find('=');
        if (eq == std::string::npos) continue;
        const std::string key = kv.substr(0, eq);
        const std::string val = kv.substr(eq + 1);
        if (key == "nranks") nranks = std::stoi(val);
        if (key == "events") nevents = std::stoull(val);
        if (key == "regions") nregions = std::stoull(val);
      }
    } catch (const std::exception&) {
      fail("unparseable header field: " + kv);
    }
    if (nranks < 0) fail("negative nranks");
  }

  std::vector<std::string> names(nregions);
  for (std::size_t i = 0; i < nregions; ++i) {
    ++line_no;
    if (!std::getline(is, line)) fail("truncated region table");
    std::istringstream ls(line);
    std::string word, name;
    std::size_t idx = 0;
    if (!(ls >> word >> idx >> name) || word != "region" || idx >= nregions) {
      fail("bad region line: " + line);
    }
    names[idx] = (name == "<global>") ? "" : name;
  }

  std::vector<CommEvent> events;
  // The header's event count steers the loop, not the allocation: cap the
  // speculative reserve so an absurd count cannot OOM before the stream
  // runs dry and reports the real (truncated) length.
  events.reserve(std::min(nevents, std::size_t{1} << 20));
  for (std::size_t i = 0; i < nevents; ++i) {
    ++line_no;
    if (!std::getline(is, line)) fail("truncated event stream");
    std::istringstream ls(line);
    long long rank = 0, peer = 0, op_index = 0, bytes = 0, region = 0;
    int kind = 0, call = 0;
    if (!(ls >> rank >> op_index >> kind >> call >> peer >> bytes >> region)) {
      fail("unparseable event: " + line);
    }
    if (rank < 0 || rank >= nranks) {
      fail("event rank " + std::to_string(rank) + " outside [0, " +
           std::to_string(nranks) + ")");
    }
    if (op_index < 0) fail("negative op index");
    if (kind < 0 || kind > static_cast<int>(EventKind::kCollective)) {
      fail("bad event kind " + std::to_string(kind));
    }
    if (call < 0 || call >= mpisim::kNumCallTypes) {
      fail("bad call type " + std::to_string(call));
    }
    if (static_cast<EventKind>(kind) != EventKind::kCollective &&
        (peer < 0 || peer >= nranks)) {
      fail("point-to-point peer " + std::to_string(peer) + " outside [0, " +
           std::to_string(nranks) + ")");
    }
    if (bytes < 0) fail("negative byte count");
    if (region < 0 ||
        region >= static_cast<long long>(std::max<std::size_t>(nregions, 1))) {
      fail("region index " + std::to_string(region) + " outside the " +
           std::to_string(nregions) + "-entry region table");
    }
    CommEvent e;
    e.rank = static_cast<Rank>(rank);
    e.op_index = static_cast<std::uint64_t>(op_index);
    e.kind = static_cast<EventKind>(kind);
    e.call = static_cast<CallType>(call);
    e.peer = static_cast<Rank>(peer);
    e.bytes = static_cast<std::uint64_t>(bytes);
    e.region = static_cast<std::uint16_t>(region);
    events.push_back(e);
  }
  return Trace(nranks, std::move(events), std::move(names));
}

}  // namespace hfast::trace
