#include "hfast/trace/window.hpp"

#include <algorithm>

#include "hfast/graph/tdc.hpp"
#include "hfast/util/assert.hpp"

namespace hfast::trace {

std::vector<graph::CommGraph> windowed_graphs(const Trace& trace,
                                              std::size_t num_windows) {
  HFAST_EXPECTS(num_windows >= 1);
  std::vector<graph::CommGraph> out;
  out.reserve(num_windows);
  for (std::size_t w = 0; w < num_windows; ++w) {
    out.emplace_back(trace.nranks());
  }

  // Per-rank stream lengths determine each rank's window stride so phases
  // line up even when ranks issue different numbers of operations.
  std::vector<std::uint64_t> stream_len(
      static_cast<std::size_t>(trace.nranks()), 0);
  for (const CommEvent& e : trace.events()) {
    auto& len = stream_len[static_cast<std::size_t>(e.rank)];
    len = std::max(len, e.op_index + 1);
  }

  for (const CommEvent& e : trace.events()) {
    if (e.kind != EventKind::kSend) continue;  // count each transfer once
    if (e.peer < 0 || e.peer == e.rank) continue;
    const std::uint64_t len = stream_len[static_cast<std::size_t>(e.rank)];
    std::size_t w = static_cast<std::size_t>(
        (static_cast<__uint128_t>(e.op_index) * num_windows) / len);
    w = std::min(w, num_windows - 1);
    out[w].add_message(e.rank, e.peer, e.bytes);
  }
  return out;
}

std::vector<WindowStats> windowed_tdc(const Trace& trace,
                                      std::size_t num_windows,
                                      std::uint64_t cutoff_bytes) {
  std::vector<WindowStats> out;
  const auto graphs = windowed_graphs(trace, num_windows);
  out.reserve(graphs.size());
  for (std::size_t w = 0; w < graphs.size(); ++w) {
    const auto stats = graph::tdc(graphs[w], cutoff_bytes);
    out.push_back({w, graphs[w].total_bytes(), stats.max, stats.avg});
  }
  return out;
}

}  // namespace hfast::trace
