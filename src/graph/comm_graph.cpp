#include "hfast/graph/comm_graph.hpp"

#include <algorithm>

namespace hfast::graph {

CommGraph::CommGraph(int num_nodes) : n_(num_nodes) {
  HFAST_EXPECTS(num_nodes >= 0);
  adjacency_.resize(static_cast<std::size_t>(num_nodes));
}

void CommGraph::add_message(Node u, Node v, std::uint64_t bytes,
                            std::uint64_t count) {
  HFAST_EXPECTS(u >= 0 && u < n_ && v >= 0 && v < n_);
  HFAST_EXPECTS_MSG(u != v, "self-messages do not use the interconnect");
  auto [it, inserted] = edges_.try_emplace(key(u, v));
  it->second.add(bytes, count);
  if (inserted) {
    adjacency_[static_cast<std::size_t>(u)].push_back(v);
    adjacency_[static_cast<std::size_t>(v)].push_back(u);
  }
}

void CommGraph::add_edge_stats(Node u, Node v, const EdgeStats& stats) {
  HFAST_EXPECTS(u >= 0 && u < n_ && v >= 0 && v < n_);
  HFAST_EXPECTS_MSG(u != v, "self-messages do not use the interconnect");
  auto [it, inserted] = edges_.try_emplace(key(u, v));
  EdgeStats& e = it->second;
  e.messages += stats.messages;
  e.bytes += stats.bytes;
  if (stats.max_message > e.max_message) e.max_message = stats.max_message;
  if (inserted) {
    adjacency_[static_cast<std::size_t>(u)].push_back(v);
    adjacency_[static_cast<std::size_t>(v)].push_back(u);
  }
}

CommGraph CommGraph::from_profile(const ipm::WorkloadProfile& profile) {
  CommGraph g(profile.nranks());
  const auto& sent = profile.sent();
  for (int r = 0; r < profile.nranks(); ++r) {
    for (const auto& [peer_bytes, count] : sent[static_cast<std::size_t>(r)]) {
      const auto [peer, bytes] = peer_bytes;
      if (peer == r) continue;  // self traffic stays on-node
      g.add_message(r, peer, bytes, count);
    }
  }
  return g;
}

const EdgeStats* CommGraph::edge(Node u, Node v) const {
  const auto it = edges_.find(key(u, v));
  return it == edges_.end() ? nullptr : &it->second;
}

std::vector<Node> CommGraph::partners(Node u, std::uint64_t cutoff) const {
  HFAST_EXPECTS(u >= 0 && u < n_);
  std::vector<Node> out;
  for (Node v : adjacency_[static_cast<std::size_t>(u)]) {
    const EdgeStats* e = edge(u, v);
    HFAST_ASSERT(e != nullptr);
    if (e->max_message >= cutoff) out.push_back(v);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<int> CommGraph::degrees(std::uint64_t cutoff) const {
  std::vector<int> deg(static_cast<std::size_t>(n_), 0);
  for (const auto& [uv, stats] : edges_) {
    if (stats.max_message < cutoff) continue;
    ++deg[static_cast<std::size_t>(uv.first)];
    ++deg[static_cast<std::size_t>(uv.second)];
  }
  return deg;
}

std::vector<std::vector<double>> CommGraph::volume_matrix() const {
  std::vector<std::vector<double>> m(
      static_cast<std::size_t>(n_),
      std::vector<double>(static_cast<std::size_t>(n_), 0.0));
  for (const auto& [uv, stats] : edges_) {
    const auto i = static_cast<std::size_t>(uv.first);
    const auto j = static_cast<std::size_t>(uv.second);
    m[i][j] = m[j][i] = static_cast<double>(stats.bytes);
  }
  return m;
}

CommGraph CommGraph::thresholded(std::uint64_t cutoff) const {
  CommGraph g(n_);
  for (const auto& [uv, stats] : edges_) {
    if (stats.max_message < cutoff) continue;
    auto [it, inserted] = g.edges_.try_emplace(uv, stats);
    (void)it;
    HFAST_ASSERT(inserted);
    g.adjacency_[static_cast<std::size_t>(uv.first)].push_back(uv.second);
    g.adjacency_[static_cast<std::size_t>(uv.second)].push_back(uv.first);
  }
  return g;
}

std::uint64_t CommGraph::total_bytes() const {
  std::uint64_t sum = 0;
  for (const auto& [uv, stats] : edges_) sum += stats.bytes;
  return sum;
}

}  // namespace hfast::graph
