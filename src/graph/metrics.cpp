#include "hfast/graph/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

namespace hfast::graph {

namespace {

/// Fraction of nodes sharing the most common partner-offset signature under
/// a given grid labeling (offsets taken componentwise modulo the grid).
double signature_agreement(const CommGraph& g, std::uint64_t cutoff,
                           const std::vector<int>& dims) {
  const int n = g.num_nodes();
  auto coords = [&](Node r) {
    std::vector<int> c(dims.size());
    for (std::size_t d = dims.size(); d-- > 0;) {
      c[d] = r % dims[d];
      r /= dims[d];
    }
    return c;
  };
  std::map<std::multiset<std::vector<int>>, int> signature_counts;
  for (Node u = 0; u < n; ++u) {
    const auto cu = coords(u);
    std::multiset<std::vector<int>> sig;
    for (Node v : g.partners(u, cutoff)) {
      const auto cv = coords(v);
      std::vector<int> offset(dims.size());
      for (std::size_t d = 0; d < dims.size(); ++d) {
        offset[d] = ((cv[d] - cu[d]) % dims[d] + dims[d]) % dims[d];
      }
      sig.insert(std::move(offset));
    }
    ++signature_counts[sig];
  }
  int most_common = 0;
  for (const auto& [sig, count] : signature_counts) {
    most_common = std::max(most_common, count);
  }
  return static_cast<double>(most_common) / static_cast<double>(n);
}

}  // namespace

bool is_isotropic(const CommGraph& g, std::uint64_t cutoff, double tolerance) {
  const int n = g.num_nodes();
  if (n <= 2) return true;
  // A pattern is isotropic if under *some* grid labeling (1-3 dims) the
  // partner-offset multiset is (near-)translation-invariant. Trying every
  // factorization covers ring, torus, and process-grid decompositions.
  for (const auto& dims : grid_factorizations(n)) {
    if (signature_agreement(g, cutoff, dims) >= 1.0 - tolerance) return true;
  }
  return false;
}

std::vector<std::vector<int>> grid_factorizations(int p, int max_dims) {
  HFAST_EXPECTS(p >= 1 && max_dims >= 1 && max_dims <= 3);
  std::vector<std::vector<int>> out;
  out.push_back({p});
  if (max_dims >= 2) {
    for (int a = 2; a * a <= p; ++a) {
      if (p % a != 0) continue;
      out.push_back({a, p / a});
      if (a != p / a) out.push_back({p / a, a});
    }
  }
  if (max_dims >= 3) {
    for (int a = 2; a <= p; ++a) {
      if (p % a != 0) continue;
      const int rest = p / a;
      for (int b = 2; b <= rest; ++b) {
        if (rest % b != 0) continue;
        const int c = rest / b;
        if (c < 2) continue;
        out.push_back({a, b, c});
      }
    }
  }
  return out;
}

namespace {

/// Check every (cutoff-surviving) edge is a unit step in one dimension of
/// the given grid under lexicographic rank labeling.
bool edges_fit_grid(const CommGraph& g, std::uint64_t cutoff,
                    const std::vector<int>& dims, bool torus) {
  const int n = g.num_nodes();
  auto coords = [&](Node r) {
    std::vector<int> c(dims.size());
    for (std::size_t d = dims.size(); d-- > 0;) {
      c[d] = r % dims[d];
      r /= dims[d];
    }
    return c;
  };
  for (const auto& [uv, stats] : g.edges()) {
    if (stats.max_message < cutoff) continue;
    const auto cu = coords(uv.first);
    const auto cv = coords(uv.second);
    int diff_dims = 0;
    bool unit = true;
    for (std::size_t d = 0; d < dims.size(); ++d) {
      if (cu[d] == cv[d]) continue;
      ++diff_dims;
      int delta = std::abs(cu[d] - cv[d]);
      if (torus) delta = std::min(delta, dims[d] - delta);
      if (delta != 1) unit = false;
    }
    if (diff_dims != 1 || !unit) return false;
  }
  (void)n;
  return true;
}

}  // namespace

bool embeds_in_mesh(const CommGraph& g, std::uint64_t cutoff,
                    bool torus_wraparound) {
  if (g.num_nodes() <= 1) return true;
  for (const auto& dims : grid_factorizations(g.num_nodes())) {
    if (edges_fit_grid(g, cutoff, dims, torus_wraparound)) return true;
  }
  return false;
}

int connected_components(const CommGraph& g, std::uint64_t cutoff) {
  const int n = g.num_nodes();
  std::vector<int> component(static_cast<std::size_t>(n), -1);
  int count = 0;
  for (Node seed = 0; seed < n; ++seed) {
    if (component[static_cast<std::size_t>(seed)] != -1) continue;
    ++count;
    std::vector<Node> stack{seed};
    component[static_cast<std::size_t>(seed)] = count;
    while (!stack.empty()) {
      const Node u = stack.back();
      stack.pop_back();
      for (Node v : g.partners(u, cutoff)) {
        if (component[static_cast<std::size_t>(v)] == -1) {
          component[static_cast<std::size_t>(v)] = count;
          stack.push_back(v);
        }
      }
    }
  }
  return count;
}

double degree_cv(const CommGraph& g, std::uint64_t cutoff) {
  const auto deg = g.degrees(cutoff);
  if (deg.empty()) return 0.0;
  double sum = 0.0;
  for (int d : deg) sum += d;
  const double mean = sum / static_cast<double>(deg.size());
  if (mean == 0.0) return 0.0;
  double var = 0.0;
  for (int d : deg) var += (d - mean) * (d - mean);
  var /= static_cast<double>(deg.size());
  return std::sqrt(var) / mean;
}

}  // namespace hfast::graph
