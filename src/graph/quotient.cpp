#include "hfast/graph/quotient.hpp"

#include <algorithm>
#include <numeric>

#include "hfast/util/assert.hpp"

namespace hfast::graph {

QuotientResult quotient_graph(const CommGraph& g,
                              const std::vector<int>& node_of_task,
                              int num_nodes) {
  HFAST_EXPECTS(node_of_task.size() == static_cast<std::size_t>(g.num_nodes()));
  HFAST_EXPECTS(num_nodes >= 1);
  for (int n : node_of_task) {
    HFAST_EXPECTS_MSG(n >= 0 && n < num_nodes, "task mapped outside nodes");
  }

  QuotientResult out{CommGraph(num_nodes), node_of_task, 0};
  for (const auto& [uv, stats] : g.edges()) {
    const int a = node_of_task[static_cast<std::size_t>(uv.first)];
    const int b = node_of_task[static_cast<std::size_t>(uv.second)];
    if (a == b) {
      out.internal_bytes += stats.bytes;
      continue;
    }
    // Merge the task edge's stats verbatim: counts and bytes accumulate,
    // the quotient edge's max message is the max over contributing task
    // pairs (preserving the thresholding semantics), and — crucially for
    // the cores_per_node = 1 parity contract — an identity mapping yields
    // a graph field-identical to the input.
    out.graph.add_edge_stats(a, b, stats);
  }
  return out;
}

QuotientResult quotient_by_blocks(const CommGraph& g, int tasks_per_node) {
  HFAST_EXPECTS(tasks_per_node >= 1);
  const int nodes =
      (g.num_nodes() + tasks_per_node - 1) / tasks_per_node;
  std::vector<int> map(static_cast<std::size_t>(g.num_nodes()));
  for (int t = 0; t < g.num_nodes(); ++t) {
    map[static_cast<std::size_t>(t)] = t / tasks_per_node;
  }
  return quotient_graph(g, map, nodes);
}

QuotientResult quotient_by_affinity(const CommGraph& g, int tasks_per_node) {
  HFAST_EXPECTS(tasks_per_node >= 1);
  const int n = g.num_nodes();
  const int nodes = (n + tasks_per_node - 1) / tasks_per_node;

  // Union-find over tasks, capacity-limited heavy-edge merging.
  std::vector<int> parent(static_cast<std::size_t>(n));
  std::iota(parent.begin(), parent.end(), 0);
  std::vector<int> size(static_cast<std::size_t>(n), 1);
  auto find = [&](int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };

  // Edges heaviest-first; deterministic tie-break on ids.
  std::vector<std::pair<std::pair<Node, Node>, std::uint64_t>> edges;
  edges.reserve(g.num_edges());
  for (const auto& [uv, stats] : g.edges()) edges.push_back({uv, stats.bytes});
  std::sort(edges.begin(), edges.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });

  int groups = n;
  for (const auto& [uv, bytes] : edges) {
    (void)bytes;
    if (groups <= nodes) break;
    const int ra = find(uv.first);
    const int rb = find(uv.second);
    if (ra == rb) continue;
    if (size[static_cast<std::size_t>(ra)] + size[static_cast<std::size_t>(rb)] >
        tasks_per_node) {
      continue;
    }
    parent[static_cast<std::size_t>(rb)] = ra;
    size[static_cast<std::size_t>(ra)] += size[static_cast<std::size_t>(rb)];
    --groups;
  }

  // Pack groups into nodes: large groups first, first-fit by capacity. A
  // group no node can hold whole (first-fit-decreasing is not a perfect
  // packer when merged group sizes fragment the capacity) is split: its
  // members spill into whichever nodes still have free slots. Total
  // capacity is nodes * tasks_per_node >= n, so the spill always lands.
  std::vector<int> roots;
  for (int t = 0; t < n; ++t) {
    if (find(t) == t) roots.push_back(t);
  }
  std::sort(roots.begin(), roots.end(), [&](int a, int b) {
    if (size[static_cast<std::size_t>(a)] != size[static_cast<std::size_t>(b)]) {
      return size[static_cast<std::size_t>(a)] > size[static_cast<std::size_t>(b)];
    }
    return a < b;
  });
  std::vector<int> node_of_root(static_cast<std::size_t>(n), -1);
  std::vector<int> capacity(static_cast<std::size_t>(nodes), tasks_per_node);
  std::vector<int> split_roots;
  for (int r : roots) {
    for (int nd = 0; nd < nodes; ++nd) {
      if (capacity[static_cast<std::size_t>(nd)] >=
          size[static_cast<std::size_t>(r)]) {
        node_of_root[static_cast<std::size_t>(r)] = nd;
        capacity[static_cast<std::size_t>(nd)] -=
            size[static_cast<std::size_t>(r)];
        break;
      }
    }
    if (node_of_root[static_cast<std::size_t>(r)] == -1) split_roots.push_back(r);
  }

  std::vector<int> map(static_cast<std::size_t>(n), -1);
  for (int t = 0; t < n; ++t) {
    const int root = find(t);
    if (node_of_root[static_cast<std::size_t>(root)] != -1) {
      map[static_cast<std::size_t>(t)] =
          node_of_root[static_cast<std::size_t>(root)];
    }
  }
  if (!split_roots.empty()) {
    int nd = 0;
    for (int t = 0; t < n; ++t) {
      if (map[static_cast<std::size_t>(t)] != -1) continue;
      while (capacity[static_cast<std::size_t>(nd)] == 0) ++nd;
      map[static_cast<std::size_t>(t)] = nd;
      --capacity[static_cast<std::size_t>(nd)];
    }
  }

  auto affine = quotient_graph(g, map, nodes);
  // The mode's contract (and the SmpProperties suite's invariant): affinity
  // packing never localizes fewer bytes than the rank-order baseline. The
  // heavy-edge heuristic almost always wins, but on index-local stencils it
  // can fragment what rank order gets for free — fall back when it does.
  auto naive = quotient_by_blocks(g, tasks_per_node);
  if (naive.internal_bytes > affine.internal_bytes) return naive;
  return affine;
}

}  // namespace hfast::graph
