#include "hfast/graph/quotient.hpp"

#include <algorithm>
#include <numeric>

#include "hfast/util/assert.hpp"

namespace hfast::graph {

QuotientResult quotient_graph(const CommGraph& g,
                              const std::vector<int>& node_of_task,
                              int num_nodes) {
  HFAST_EXPECTS(node_of_task.size() == static_cast<std::size_t>(g.num_nodes()));
  HFAST_EXPECTS(num_nodes >= 1);
  for (int n : node_of_task) {
    HFAST_EXPECTS_MSG(n >= 0 && n < num_nodes, "task mapped outside nodes");
  }

  QuotientResult out{CommGraph(num_nodes), node_of_task, 0};
  for (const auto& [uv, stats] : g.edges()) {
    const int a = node_of_task[static_cast<std::size_t>(uv.first)];
    const int b = node_of_task[static_cast<std::size_t>(uv.second)];
    if (a == b) {
      out.internal_bytes += stats.bytes;
      continue;
    }
    // Preserve the thresholding semantics: the quotient edge's max message
    // is the max over contributing task pairs; counts and bytes accumulate.
    out.graph.add_message(a, b, stats.max_message, 1);
    if (stats.messages > 1) {
      const std::uint64_t rest_msgs = stats.messages - 1;
      const std::uint64_t rest_bytes = stats.bytes - stats.max_message;
      if (rest_msgs > 0 && rest_bytes > 0) {
        // Spread the remaining volume at the average size.
        out.graph.add_message(a, b, rest_bytes / rest_msgs, rest_msgs);
      }
    }
  }
  return out;
}

QuotientResult quotient_by_blocks(const CommGraph& g, int tasks_per_node) {
  HFAST_EXPECTS(tasks_per_node >= 1);
  const int nodes =
      (g.num_nodes() + tasks_per_node - 1) / tasks_per_node;
  std::vector<int> map(static_cast<std::size_t>(g.num_nodes()));
  for (int t = 0; t < g.num_nodes(); ++t) {
    map[static_cast<std::size_t>(t)] = t / tasks_per_node;
  }
  return quotient_graph(g, map, nodes);
}

QuotientResult quotient_by_affinity(const CommGraph& g, int tasks_per_node) {
  HFAST_EXPECTS(tasks_per_node >= 1);
  const int n = g.num_nodes();
  const int nodes = (n + tasks_per_node - 1) / tasks_per_node;

  // Union-find over tasks, capacity-limited heavy-edge merging.
  std::vector<int> parent(static_cast<std::size_t>(n));
  std::iota(parent.begin(), parent.end(), 0);
  std::vector<int> size(static_cast<std::size_t>(n), 1);
  auto find = [&](int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };

  // Edges heaviest-first; deterministic tie-break on ids.
  std::vector<std::pair<std::pair<Node, Node>, std::uint64_t>> edges;
  edges.reserve(g.num_edges());
  for (const auto& [uv, stats] : g.edges()) edges.push_back({uv, stats.bytes});
  std::sort(edges.begin(), edges.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });

  int groups = n;
  for (const auto& [uv, bytes] : edges) {
    (void)bytes;
    if (groups <= nodes) break;
    const int ra = find(uv.first);
    const int rb = find(uv.second);
    if (ra == rb) continue;
    if (size[static_cast<std::size_t>(ra)] + size[static_cast<std::size_t>(rb)] >
        tasks_per_node) {
      continue;
    }
    parent[static_cast<std::size_t>(rb)] = ra;
    size[static_cast<std::size_t>(ra)] += size[static_cast<std::size_t>(rb)];
    --groups;
  }

  // Pack groups into nodes: large groups first, first-fit by capacity.
  std::vector<int> roots;
  for (int t = 0; t < n; ++t) {
    if (find(t) == t) roots.push_back(t);
  }
  std::sort(roots.begin(), roots.end(), [&](int a, int b) {
    if (size[static_cast<std::size_t>(a)] != size[static_cast<std::size_t>(b)]) {
      return size[static_cast<std::size_t>(a)] > size[static_cast<std::size_t>(b)];
    }
    return a < b;
  });
  std::vector<int> node_of_root(static_cast<std::size_t>(n), -1);
  std::vector<int> capacity(static_cast<std::size_t>(nodes), tasks_per_node);
  for (int r : roots) {
    for (int nd = 0; nd < nodes; ++nd) {
      if (capacity[static_cast<std::size_t>(nd)] >=
          size[static_cast<std::size_t>(r)]) {
        node_of_root[static_cast<std::size_t>(r)] = nd;
        capacity[static_cast<std::size_t>(nd)] -=
            size[static_cast<std::size_t>(r)];
        break;
      }
    }
    HFAST_ASSERT_MSG(node_of_root[static_cast<std::size_t>(r)] != -1,
                     "first-fit packing failed");
  }

  std::vector<int> map(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) {
    map[static_cast<std::size_t>(t)] =
        node_of_root[static_cast<std::size_t>(find(t))];
  }
  return quotient_graph(g, map, nodes);
}

}  // namespace hfast::graph
