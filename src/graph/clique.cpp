#include "hfast/graph/clique.hpp"

#include <algorithm>
#include <set>

namespace hfast::graph {

namespace {

bool adjacent(const CommGraph& g, Node u, Node v) {
  return g.edge(u, v) != nullptr;
}

}  // namespace

std::vector<Clique> greedy_edge_clique_cover(const CommGraph& g,
                                             std::size_t max_size) {
  HFAST_EXPECTS(max_size >= 2);
  std::set<std::pair<Node, Node>> uncovered;
  for (const auto& [uv, stats] : g.edges()) {
    (void)stats;
    uncovered.insert(uv);
  }

  std::vector<Clique> cover;
  while (!uncovered.empty()) {
    const auto [u, v] = *uncovered.begin();
    std::vector<Node> members{u, v};

    // Candidate extension set: vertices adjacent to every current member.
    std::vector<Node> candidates;
    for (Node w : g.partners(u)) {
      if (w != v && adjacent(g, w, v)) candidates.push_back(w);
    }

    while (members.size() < max_size && !candidates.empty()) {
      // Pick the candidate covering the most still-uncovered edges into the
      // clique; ties broken by smallest id for determinism.
      Node best = -1;
      std::size_t best_gain = 0;
      for (Node w : candidates) {
        std::size_t gain = 0;
        for (Node m : members) {
          auto key = m < w ? std::pair{m, w} : std::pair{w, m};
          if (uncovered.count(key) != 0) ++gain;
        }
        if (best == -1 || gain > best_gain || (gain == best_gain && w < best)) {
          best = w;
          best_gain = gain;
        }
      }
      if (best == -1 || best_gain == 0) break;  // no productive extension
      members.push_back(best);
      std::vector<Node> next;
      for (Node w : candidates) {
        if (w != best && adjacent(g, w, best)) next.push_back(w);
      }
      candidates = std::move(next);
    }

    std::sort(members.begin(), members.end());
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        uncovered.erase({members[i], members[j]});
      }
    }
    cover.push_back(Clique{std::move(members)});
  }
  return cover;
}

bool is_valid_clique_cover(const CommGraph& g,
                           const std::vector<Clique>& cover) {
  std::set<std::pair<Node, Node>> covered;
  for (const Clique& c : cover) {
    for (std::size_t i = 0; i < c.members.size(); ++i) {
      for (std::size_t j = i + 1; j < c.members.size(); ++j) {
        const Node u = c.members[i];
        const Node v = c.members[j];
        if (!adjacent(g, u, v)) return false;  // not actually a clique
        covered.insert(u < v ? std::pair{u, v} : std::pair{v, u});
      }
    }
  }
  for (const auto& [uv, stats] : g.edges()) {
    (void)stats;
    if (covered.count(uv) == 0) return false;
  }
  return true;
}

}  // namespace hfast::graph
