#include "hfast/graph/bisection.hpp"

#include <algorithm>
#include <numeric>

#include "hfast/util/random.hpp"

namespace hfast::graph {

namespace {

std::uint64_t cut_bytes(const CommGraph& g, const std::vector<bool>& side) {
  std::uint64_t cut = 0;
  for (const auto& [uv, stats] : g.edges()) {
    if (side[static_cast<std::size_t>(uv.first)] !=
        side[static_cast<std::size_t>(uv.second)]) {
      cut += stats.bytes;
    }
  }
  return cut;
}

/// Signed traffic between node u and partition side `to` minus its own side
/// — the classic KL "D" value expressed in bytes. Positive means moving u
/// would reduce the cut.
std::int64_t gain_of(const CommGraph& g, const std::vector<bool>& side,
                     Node u) {
  std::int64_t external = 0, internal = 0;
  for (Node v : g.partners(u)) {
    const auto* e = g.edge(u, v);
    if (side[static_cast<std::size_t>(u)] != side[static_cast<std::size_t>(v)]) {
      external += static_cast<std::int64_t>(e->bytes);
    } else {
      internal += static_cast<std::int64_t>(e->bytes);
    }
  }
  return external - internal;
}

/// One Kernighan-Lin pass: greedily swap the best (a in A, b in B) pair,
/// lock them, repeat; keep the best prefix of swaps. Returns true if the
/// cut improved.
bool kl_pass(const CommGraph& g, std::vector<bool>& side) {
  const int n = g.num_nodes();
  std::vector<bool> locked(static_cast<std::size_t>(n), false);
  std::vector<std::pair<Node, Node>> swaps;
  std::vector<std::int64_t> cumulative;
  std::vector<bool> work = side;

  const int pairs = n / 2;
  std::int64_t running = 0;
  for (int step = 0; step < pairs; ++step) {
    Node best_a = -1, best_b = -1;
    std::int64_t best_gain = 0;
    bool found = false;
    for (Node a = 0; a < n; ++a) {
      if (locked[static_cast<std::size_t>(a)] || work[static_cast<std::size_t>(a)]) continue;
      for (Node b = 0; b < n; ++b) {
        if (locked[static_cast<std::size_t>(b)] || !work[static_cast<std::size_t>(b)]) continue;
        std::int64_t gain = gain_of(g, work, a) + gain_of(g, work, b);
        if (const auto* e = g.edge(a, b)) {
          gain -= 2 * static_cast<std::int64_t>(e->bytes);
        }
        if (!found || gain > best_gain) {
          best_a = a;
          best_b = b;
          best_gain = gain;
          found = true;
        }
      }
    }
    if (!found) break;
    work[static_cast<std::size_t>(best_a)] = true;
    work[static_cast<std::size_t>(best_b)] = false;
    locked[static_cast<std::size_t>(best_a)] = true;
    locked[static_cast<std::size_t>(best_b)] = true;
    running += best_gain;
    swaps.push_back({best_a, best_b});
    cumulative.push_back(running);
  }

  // Best prefix of swaps.
  std::int64_t best = 0;
  std::size_t best_k = 0;
  for (std::size_t k = 0; k < cumulative.size(); ++k) {
    if (cumulative[k] > best) {
      best = cumulative[k];
      best_k = k + 1;
    }
  }
  if (best <= 0) return false;
  for (std::size_t k = 0; k < best_k; ++k) {
    side[static_cast<std::size_t>(swaps[k].first)] = true;
    side[static_cast<std::size_t>(swaps[k].second)] = false;
  }
  return true;
}

}  // namespace

BisectionResult min_bisection(const CommGraph& g,
                              const BisectionParams& params) {
  HFAST_EXPECTS(params.restarts >= 1);
  const int n = g.num_nodes();
  BisectionResult best;
  best.total_bytes = g.total_bytes();
  if (n < 2) {
    best.side.assign(static_cast<std::size_t>(n), false);
    return best;
  }

  util::Rng rng(params.seed);
  bool have_best = false;
  for (int r = 0; r < params.restarts; ++r) {
    // Balanced start: first half/second half for r=0, random otherwise.
    std::vector<Node> order(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    if (r > 0) rng.shuffle(order);
    std::vector<bool> side(static_cast<std::size_t>(n), false);
    for (int i = n / 2; i < n; ++i) {
      side[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = true;
    }

    for (int pass = 0; pass < 8; ++pass) {
      if (!kl_pass(g, side)) break;
    }

    const std::uint64_t cut = cut_bytes(g, side);
    if (!have_best || cut < best.cut_bytes) {
      best.cut_bytes = cut;
      best.side = side;
      have_best = true;
    }
  }
  return best;
}

}  // namespace hfast::graph
