#include "hfast/graph/tdc.hpp"

#include <algorithm>

namespace hfast::graph {

TdcStats tdc(const CommGraph& g, std::uint64_t cutoff) {
  std::vector<int> deg = g.degrees(cutoff);
  TdcStats out;
  if (deg.empty()) return out;
  double sum = 0.0;
  out.min = deg[0];
  for (int d : deg) {
    out.max = std::max(out.max, d);
    out.min = std::min(out.min, d);
    sum += d;
  }
  out.avg = sum / static_cast<double>(deg.size());
  std::nth_element(deg.begin(), deg.begin() + deg.size() / 2, deg.end());
  out.median = deg[deg.size() / 2];
  return out;
}

std::vector<std::uint64_t> standard_cutoffs() {
  std::vector<std::uint64_t> cutoffs{0};
  for (std::uint64_t c = 128; c <= 1024ULL * 1024ULL; c *= 2) {
    cutoffs.push_back(c);
  }
  return cutoffs;
}

std::vector<TdcSweepPoint> tdc_sweep(const CommGraph& g,
                                     std::vector<std::uint64_t> cutoffs) {
  if (cutoffs.empty()) cutoffs = standard_cutoffs();
  std::vector<TdcSweepPoint> out;
  out.reserve(cutoffs.size());
  for (std::uint64_t c : cutoffs) {
    out.push_back({c, tdc(g, c)});
  }
  return out;
}

double fcn_utilization(const CommGraph& g, std::uint64_t cutoff) {
  if (g.num_nodes() < 2) return 0.0;
  const TdcStats t = tdc(g, cutoff);
  return std::min(1.0, t.avg / static_cast<double>(g.num_nodes() - 1));
}

}  // namespace hfast::graph
