#include "hfast/graph/contraction.hpp"

#include <algorithm>
#include <set>

namespace hfast::graph {

namespace {

/// External degree of a block: distinct nodes outside `block` adjacent
/// (under the cutoff) to any member.
int external_degree(const CommGraph& g, const std::vector<Node>& block,
                    const std::vector<int>& block_of, int block_id,
                    std::uint64_t cutoff) {
  std::set<Node> outside;
  for (Node u : block) {
    for (Node v : g.partners(u, cutoff)) {
      if (block_of[static_cast<std::size_t>(v)] != block_id) outside.insert(v);
    }
  }
  return static_cast<int>(outside.size());
}

}  // namespace

ContractionResult bounded_contraction(const CommGraph& g, int k,
                                      std::uint64_t cutoff) {
  HFAST_EXPECTS(k >= 1);
  const int n = g.num_nodes();
  ContractionResult res;
  res.block_of.assign(static_cast<std::size_t>(n), -1);

  int next_block = 0;
  for (Node seed = 0; seed < n; ++seed) {
    if (res.block_of[static_cast<std::size_t>(seed)] != -1) continue;
    const int id = next_block++;
    std::vector<Node> block{seed};
    res.block_of[static_cast<std::size_t>(seed)] = id;

    while (static_cast<int>(block.size()) < k) {
      // Frontier: unassigned neighbors of the block.
      std::set<Node> frontier;
      for (Node u : block) {
        for (Node v : g.partners(u, cutoff)) {
          if (res.block_of[static_cast<std::size_t>(v)] == -1) {
            frontier.insert(v);
          }
        }
      }
      if (frontier.empty()) break;
      // Greedy: absorb the frontier node that minimizes external degree.
      Node best = -1;
      int best_ext = 0;
      for (Node v : frontier) {
        block.push_back(v);
        res.block_of[static_cast<std::size_t>(v)] = id;
        const int ext = external_degree(g, block, res.block_of, id, cutoff);
        block.pop_back();
        res.block_of[static_cast<std::size_t>(v)] = -1;
        if (best == -1 || ext < best_ext || (ext == best_ext && v < best)) {
          best = v;
          best_ext = ext;
        }
      }
      block.push_back(best);
      res.block_of[static_cast<std::size_t>(best)] = id;
    }
  }

  res.num_blocks = next_block;
  for (int b = 0; b < next_block; ++b) {
    std::vector<Node> block;
    for (Node u = 0; u < n; ++u) {
      if (res.block_of[static_cast<std::size_t>(u)] == b) block.push_back(u);
    }
    res.worst_external_degree =
        std::max(res.worst_external_degree,
                 external_degree(g, block, res.block_of, b, cutoff));
  }
  res.feasible = res.worst_external_degree <= k;
  return res;
}

}  // namespace hfast::graph
