#pragma once
/// \file export.hpp
/// Machine-readable result export: CSV files for the Table 3 rows, TDC
/// sweeps, and buffer-size CDFs, so downstream plotting does not scrape
/// the text tables.

#include <filesystem>
#include <string>
#include <vector>

#include "hfast/analysis/paper_tables.hpp"

namespace hfast::analysis {

/// Writes <dir>/table3.csv with one row per (code, procs).
void export_table3_csv(const std::filesystem::path& dir,
                       const std::vector<Table3Row>& rows);

/// Writes <dir>/tdc_<app>_p<procs>.csv: cutoff, max, avg.
void export_tdc_sweep_csv(const std::filesystem::path& dir,
                          const ExperimentResult& result);

/// Writes <dir>/buffers_<app>_p<procs>_{ptp,collective}.csv: size, count,
/// cumulative percent.
void export_buffer_cdfs_csv(const std::filesystem::path& dir,
                            const ExperimentResult& result);

/// Writes <dir>/volume_<app>_p<procs>.csv: dense bytes matrix.
void export_volume_matrix_csv(const std::filesystem::path& dir,
                              const ExperimentResult& result);

}  // namespace hfast::analysis
