#pragma once
/// \file export.hpp
/// Machine-readable result export: CSV files for the Table 3 rows, TDC
/// sweeps, and buffer-size CDFs, so downstream plotting does not scrape
/// the text tables.

#include <filesystem>
#include <iosfwd>
#include <string>
#include <vector>

#include "hfast/analysis/paper_tables.hpp"

namespace hfast::analysis {

/// Writes <dir>/table3.csv with one row per (code, procs).
void export_table3_csv(const std::filesystem::path& dir,
                       const std::vector<Table3Row>& rows);

/// Writes <dir>/tdc_<app>_p<procs>.csv: cutoff, max, avg.
void export_tdc_sweep_csv(const std::filesystem::path& dir,
                          const ExperimentResult& result);

/// Writes <dir>/buffers_<app>_p<procs>_{ptp,collective}.csv: size, count,
/// cumulative percent.
void export_buffer_cdfs_csv(const std::filesystem::path& dir,
                            const ExperimentResult& result);

/// Writes <dir>/volume_<app>_p<procs>.csv: dense bytes matrix.
void export_volume_matrix_csv(const std::filesystem::path& dir,
                              const ExperimentResult& result);

/// Writes <dir>/experiment_<app>_p<procs>.json: the full config plus the
/// headline summary metrics. Config fields go through the same field
/// visitor the binary store codec encodes (store/fields.hpp), so JSON key
/// names cannot drift from the on-disk binary form.
void export_experiment_json(const std::filesystem::path& dir,
                            const ExperimentResult& result);

/// The JSON body of export_experiment_json on an arbitrary stream (used by
/// store_inspect to dump store entries without touching the filesystem
/// layout above).
void write_experiment_json(std::ostream& os, const ExperimentResult& result);

}  // namespace hfast::analysis
