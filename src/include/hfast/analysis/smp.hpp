#pragma once
/// \file smp.hpp
/// Analysis-layer factory for the SMP provisioning mode's replay substrate:
/// pack a task graph onto nodes, provision a node-level fabric every
/// communicating pair can route on, and wrap both in a
/// netsim::SmpFabricNetwork whose intra-node traffic rides the backplane
/// tier. At cores_per_node = 1 the bundle's network is structurally
/// identical to the pre-SMP `provision_greedy(g, {.cutoff = 0})` +
/// FabricNetwork pairing, so serial and parallel replay results are
/// bit-identical (the SmpParity contract).

#include <memory>

#include "hfast/core/provision.hpp"
#include "hfast/core/smp.hpp"
#include "hfast/graph/comm_graph.hpp"
#include "hfast/netsim/smp_network.hpp"

namespace hfast::analysis {

/// Owns the fabric the network borrows, so the network can outlive the
/// construction scope safely (heap-held: the bundle stays movable without
/// invalidating the network's fabric reference).
struct SmpNetworkBundle {
  /// Node-level fabric provisioned at cutoff 0 (every quotient edge gets a
  /// circuit, so every cross-node pair the trace exercises is routable).
  std::unique_ptr<core::Provisioned> provisioned;
  std::vector<int> node_of_task;          ///< task -> SMP node
  std::uint64_t backplane_bytes = 0;      ///< bytes the packing localized
  std::unique_ptr<netsim::SmpFabricNetwork> net;
};

/// Build the replay substrate for `tasks` under packing `smp`. The task
/// graph should cover every communicating pair of the trace to be replayed
/// (e.g. built from the trace's own send events, as replay_traces does).
SmpNetworkBundle make_smp_network(
    const graph::CommGraph& tasks, const core::SmpConfig& smp,
    const netsim::LinkParams& circuit = {},
    const netsim::LinkParams& backplane = netsim::kBackplaneDefaults,
    double block_overhead_s = 50e-9);

}  // namespace hfast::analysis
