#pragma once
/// \file paper_tables.hpp
/// Reductions and renderers matching the paper's tables and figures:
/// Table 3 rows, Figure 2 call breakdowns, Figure 3/4 buffer-size CDFs,
/// and the Figure 5-10 panels (volume heatmap + TDC-vs-cutoff chart).

#include <string>
#include <vector>

#include "hfast/analysis/experiment.hpp"
#include "hfast/graph/tdc.hpp"
#include "hfast/util/table.hpp"

namespace hfast::analysis {

struct Table3Row {
  std::string code;
  int procs = 0;
  double ptp_call_percent = 0.0;
  std::uint64_t median_ptp_buffer = 0;
  double collective_call_percent = 0.0;
  std::uint64_t median_collective_buffer = 0;
  int tdc_max_at_cutoff = 0;
  double tdc_avg_at_cutoff = 0.0;
  double fcn_utilization = 0.0;  ///< avg TDC / (P-1)
};

Table3Row table3_row(const ExperimentResult& result,
                     std::uint64_t cutoff = graph::kBdpCutoffBytes);

util::Table render_table3(const std::vector<Table3Row>& rows);

/// Figure 2: relative number of MPI calls (entries under min_percent fold
/// into "Other").
util::Table render_call_breakdown(const ExperimentResult& result,
                                  double min_percent = 2.0);

/// Figure 3/4: cumulative buffer-size distribution at canonical tick sizes
/// (1, 10, 100, 1k, 2k, 10k, 100k, 1MB).
util::Table render_buffer_cdf(const util::LogHistogram& sizes,
                              const std::string& label);

/// Figures 5-10(a): communication volume heatmap (text rendering).
std::string render_volume_heatmap(const ExperimentResult& result,
                                  int cells = 64);

/// Figures 5-10(b): max/avg TDC vs message-size cutoff for a pair of
/// concurrencies (P=64, P=256 in the paper).
std::string render_tdc_chart(const std::string& app,
                             const ExperimentResult& small,
                             const ExperimentResult& large);

/// The TDC sweep as a table (exact numbers behind the chart).
util::Table render_tdc_sweep(const ExperimentResult& result);

/// One row of the SMP provisioning sweep (the Table-3-style headline view
/// of core::SmpConfig): how much traffic the node backplanes absorb and
/// how far the switch-block pool shrinks as cores per node grow.
struct SmpSweepRow {
  std::string code;
  int procs = 0;
  int cores_per_node = 0;
  core::SmpPacking packing = core::SmpPacking::kRankOrder;
  int num_nodes = 0;
  std::uint64_t backplane_bytes = 0;
  double backplane_percent = 0.0;  ///< of the task graph's total bytes
  int task_tdc_max = 0;            ///< thresholded TDC before packing
  int node_tdc_max = 0;            ///< thresholded TDC after packing
  double node_tdc_avg = 0.0;
  int block_size = 0;
  int num_blocks = 0;              ///< greedy block pool for the node graph
  int num_trunks = 0;
};

SmpSweepRow smp_sweep_row(const ExperimentResult& result,
                          std::uint64_t cutoff = graph::kBdpCutoffBytes);

util::Table render_smp_sweep(const std::vector<SmpSweepRow>& rows);

}  // namespace hfast::analysis
