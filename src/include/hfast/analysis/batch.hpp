#pragma once
/// \file batch.hpp
/// Parallel sweep engine for the paper's experiment matrix. Every artifact
/// (Table 3, the §5.2 classification, the §5.3 cost model) is produced by
/// sweeping run_experiment over app × P × seed; BatchRunner fans those jobs
/// across cores under a *thread* budget — a threaded-engine experiment holds
/// `nranks` live threads while it runs (the runtime spawns one per rank),
/// while a fiber-engine experiment holds exactly one, so the scheduler
/// admits jobs by weight, not by count. That weight difference is what makes
/// an apps × {64,256,1024,4096} sweep fan out across cores instead of being
/// clamped by the widest job. Replay jobs (one thread each) ride the same
/// scheduler.
///
/// Guarantees:
///  * results come back in input order, independent of completion order;
///  * a failing job is captured as a structured JobError and leaves its
///    siblings untouched — a sweep never aborts wholesale;
///  * jobs wider than the budget still run (alone), so a 256-rank
///    experiment works under an 8-thread budget.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "hfast/analysis/experiment.hpp"
#include "hfast/netsim/replay.hpp"

namespace hfast::store {
class ResultStore;
}  // namespace hfast::store

namespace hfast::analysis {

struct BatchOptions {
  /// Global live-thread budget across all in-flight jobs. 0 = 4x hardware
  /// concurrency (rank threads are synchronization-bound, so moderate
  /// oversubscription keeps cores busy; see batch.cpp). One job is always
  /// admitted regardless of its weight, so `thread_budget = 1` degenerates
  /// to a strictly sequential sweep.
  int thread_budget = 0;

  /// Optional durable result cache (non-owning; must outlive the runner).
  /// When set, run() probes the store before admitting each experiment —
  /// hits are returned without running anything — and persists every
  /// freshly computed result *as it finishes*, so a sweep killed after k of
  /// n jobs re-runs as n-k jobs instead of n. Replays are not cached.
  store::ResultStore* result_store = nullptr;
};

/// Cache traffic attributable to one sweep (all zero when no store is
/// attached). hits + misses == number of experiment jobs; stores counts
/// results newly persisted by this sweep.
struct BatchCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t store_failures = 0;
};

/// One failed job of a sweep, reported instead of thrown.
struct JobError {
  std::size_t index = 0;  ///< position in the input vector
  std::string job;        ///< human-readable label ("cactus P=64 seed=1")
  std::string message;    ///< the exception's what()
};

/// Sweep outcome: `results[i]` corresponds to input job i and is empty
/// exactly when `errors` holds an entry with index i.
template <typename T>
struct BatchResult {
  std::vector<std::optional<T>> results;
  std::vector<JobError> errors;  ///< sorted by index
  double wall_seconds = 0.0;
  BatchCacheStats cache;  ///< durable-store traffic for this sweep

  bool ok() const noexcept { return errors.empty(); }
};

/// A trace replay on a freshly built network. The factory runs inside the
/// worker (network state is mutable, so each job needs its own instance);
/// the trace is borrowed and must outlive the sweep.
struct ReplayJob {
  std::string label;
  const trace::Trace* trace = nullptr;
  std::function<std::unique_ptr<netsim::Network>()> make_network;
  netsim::ReplayParams params;
  /// Replay shards: 1 (default) runs the serial replay; >1 runs the
  /// partitioned-clock parallel replay (bit-identical results) and is
  /// charged to the batch thread budget as `shards` live threads.
  int shards = 1;
};

/// Live OS threads one experiment occupies while running: `nranks` under
/// the threaded engine, 1 under the fiber engine (all ranks share the
/// dispatcher thread). This is the admission weight BatchRunner charges.
int experiment_thread_weight(const ExperimentConfig& config) noexcept;

class BatchRunner {
 public:
  explicit BatchRunner(BatchOptions opts = {});

  /// Run every experiment config; weight = experiment_thread_weight(config).
  /// With a result_store attached, cached configs are served from disk
  /// (results[i] filled, zero compute) and fresh results are persisted the
  /// moment each job finishes — see BatchOptions::result_store.
  BatchResult<ExperimentResult> run(
      const std::vector<ExperimentConfig>& configs) const;

  /// Replay every job; weight = 1 thread each.
  BatchResult<netsim::ReplayResult> run_replays(
      const std::vector<ReplayJob>& jobs) const;

  int thread_budget() const noexcept { return budget_; }
  store::ResultStore* result_store() const noexcept { return store_; }

 private:
  int budget_;
  store::ResultStore* store_;
};

/// Cross product app × P × seed in input order, skipping (app, P)
/// combinations the kernel's structure does not support. Every config runs
/// on `engine` (fibers makes the wide end of a P sweep affordable).
std::vector<ExperimentConfig> sweep_configs(
    const std::vector<std::string>& apps, const std::vector<int>& nranks,
    const std::vector<std::uint64_t>& seeds = {1},
    mpisim::EngineKind engine = mpisim::EngineKind::kThreads);

}  // namespace hfast::analysis
