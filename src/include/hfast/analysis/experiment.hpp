#pragma once
/// \file experiment.hpp
/// End-to-end experiment driver: run one application kernel at one
/// concurrency under the runtime with IPM profiling and trace capture
/// attached, then reduce to the artifacts every bench consumes — the
/// steady-state workload profile and communication-topology graph.

#include <memory>
#include <string>
#include <string_view>

#include "hfast/apps/app.hpp"
#include "hfast/graph/comm_graph.hpp"
#include "hfast/ipm/report.hpp"
#include "hfast/mpisim/engine.hpp"
#include "hfast/trace/trace.hpp"

namespace hfast::analysis {

struct ExperimentConfig {
  std::string app;          ///< registry name
  int nranks = 64;
  int iterations = 0;       ///< 0 = app default
  std::uint64_t seed = 1;
  bool capture_trace = true;
  /// Execution engine: one OS thread per rank (threads, default) or all
  /// ranks as cooperative fibers on one thread (fibers — deterministic, and
  /// the only practical route to P=1024/4096).
  mpisim::EngineKind engine = mpisim::EngineKind::kThreads;
  /// Fiber scheduler seed; 0 derives it from `seed` (see RuntimeConfig).
  std::uint64_t sched_seed = 0;
};

struct ExperimentResult {
  ExperimentConfig config;
  double wall_seconds = 0.0;
  /// Profile restricted to the steady-state region (the paper's default
  /// view — initialization excluded, as for SuperLU).
  ipm::WorkloadProfile steady;
  /// Profile over all regions (init included), for the regioning contrast.
  ipm::WorkloadProfile all_regions;
  /// Communication topology of the steady state.
  graph::CommGraph comm_graph;
  /// Communication topology including initialization.
  graph::CommGraph comm_graph_all;
  /// Full event trace (empty when capture_trace is false).
  trace::Trace trace;
};

/// Run the experiment; throws on invalid app/concurrency combinations.
ExperimentResult run_experiment(const ExperimentConfig& config);

/// Convenience: run by name at a concurrency with defaults.
ExperimentResult run_experiment(std::string_view app, int nranks);

}  // namespace hfast::analysis
