#pragma once
/// \file experiment.hpp
/// End-to-end experiment driver: run one application kernel at one
/// concurrency under the runtime with IPM profiling and trace capture
/// attached, then reduce to the artifacts every bench consumes — the
/// steady-state workload profile and communication-topology graph.

#include <memory>
#include <string>
#include <string_view>

#include <vector>

#include "hfast/apps/app.hpp"
#include "hfast/core/provision.hpp"
#include "hfast/core/smp.hpp"
#include "hfast/graph/comm_graph.hpp"
#include "hfast/ipm/report.hpp"
#include "hfast/mpisim/engine.hpp"
#include "hfast/trace/trace.hpp"

namespace hfast::analysis {

struct ExperimentConfig {
  std::string app;          ///< registry name
  int nranks = 64;
  int iterations = 0;       ///< 0 = app default
  std::uint64_t seed = 1;
  bool capture_trace = true;
  /// Execution engine: one OS thread per rank (threads, default) or all
  /// ranks as cooperative fibers on one thread (fibers — deterministic, and
  /// the only practical route to P=1024/4096).
  mpisim::EngineKind engine = mpisim::EngineKind::kThreads;
  /// Fiber scheduler seed; 0 derives it from `seed` (see RuntimeConfig).
  std::uint64_t sched_seed = 0;
  /// SMP provisioning mode: tasks per node and packing policy. The packing
  /// is post-simulation (it never perturbs the trace); it decides the
  /// quotient graph the fabric is provisioned from. The default (1 core
  /// per node) is exactly the pre-SMP pipeline.
  core::SmpConfig smp;
};

/// Node-level artifacts of the SMP packing mode, derived from the
/// steady-state task graph. At cores_per_node = 1 the packing is the
/// identity: node_graph equals comm_graph field-for-field, no bytes are
/// absorbed, and `provision` matches what greedy provisioning of the task
/// graph reports (the SmpParity contract).
struct SmpArtifacts {
  int num_nodes = 0;                 ///< ceil(nranks / cores_per_node)
  std::uint64_t backplane_bytes = 0; ///< traffic absorbed by node backplanes
  int node_tdc_max = 0;              ///< thresholded TDC of the node graph
  double node_tdc_avg = 0.0;
  int block_size = 0;                ///< block size sized to node-level TDC
  std::vector<int> node_of_task;     ///< task -> SMP node
  /// Interconnect-visible quotient graph (what the fabric is sized for).
  graph::CommGraph node_graph;
  /// Greedy provisioning of the node graph at the BDP cutoff, blocks sized
  /// to the node-level TDC (the §5.3 sizing rule).
  core::ProvisionStats provision;
};

/// Derive the SMP artifacts for a task-level communication graph under a
/// packing mode (the post-simulation half of run_experiment, reusable on
/// decoded or trace-derived graphs).
SmpArtifacts build_smp_artifacts(const graph::CommGraph& tasks,
                                 const core::SmpConfig& smp);

struct ExperimentResult {
  ExperimentConfig config;
  double wall_seconds = 0.0;
  /// Profile restricted to the steady-state region (the paper's default
  /// view — initialization excluded, as for SuperLU).
  ipm::WorkloadProfile steady;
  /// Profile over all regions (init included), for the regioning contrast.
  ipm::WorkloadProfile all_regions;
  /// Communication topology of the steady state.
  graph::CommGraph comm_graph;
  /// Communication topology including initialization.
  graph::CommGraph comm_graph_all;
  /// Full event trace (empty when capture_trace is false).
  trace::Trace trace;
  /// Node-level packing/provisioning view under config.smp (identity at
  /// cores_per_node = 1).
  SmpArtifacts smp;
};

/// Run the experiment; throws on invalid app/concurrency combinations.
ExperimentResult run_experiment(const ExperimentConfig& config);

/// Convenience: run by name at a concurrency with defaults.
ExperimentResult run_experiment(std::string_view app, int nranks);

}  // namespace hfast::analysis
