#pragma once
/// \file text_report.hpp
/// IPM-style human-readable profile reports: the banner summary real IPM
/// prints at MPI_Finalize (call table with counts, byte totals and wall
/// times, per-region sections, hash-table health), rendered from a merged
/// WorkloadProfile or from raw rank profiles.

#include <iosfwd>
#include <span>
#include <string>

#include "hfast/ipm/report.hpp"

namespace hfast::ipm {

struct TextReportOptions {
  std::string job_name = "hfast";
  /// Print one section per region in addition to the whole-job view.
  bool per_region = true;
  /// Rows below this share of total calls fold into "(other)".
  double min_call_percent = 0.5;
};

/// Whole-job banner: call table sorted by time, buffer statistics, hash
/// occupancy. Regions resolved across ranks by name.
void write_text_report(std::ostream& os,
                       std::span<const RankProfile* const> ranks,
                       const TextReportOptions& options = {});

/// One section for an already-merged (possibly region-filtered) workload.
void write_workload_section(std::ostream& os, const WorkloadProfile& workload,
                            const std::string& title,
                            const TextReportOptions& options = {});

}  // namespace hfast::ipm
