#pragma once
/// \file report.hpp
/// Workload-level reductions over per-rank IPM profiles: call-type
/// breakdowns (Figure 2), point-to-point and collective buffer-size
/// distributions (Figures 3-4), and the call/byte summary columns of
/// Table 3. Supports region filtering so initialization traffic can be
/// excluded, as the paper does for SuperLU.

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "hfast/ipm/profile.hpp"
#include "hfast/util/histogram.hpp"

namespace hfast::ipm {

struct CallBreakdownEntry {
  CallType call;
  std::uint64_t count;
  double percent;
};

/// Merged, region-filtered view of a whole run.
class WorkloadProfile {
 public:
  /// Merge rank profiles, keeping only activity recorded inside the region
  /// with the given name. An empty name keeps everything (all regions).
  static WorkloadProfile merge(
      std::span<const RankProfile* const> ranks,
      std::string_view region = "");

  /// Send-side per-rank message counts, (peer, bytes) -> count; index is the
  /// sending world rank. This is the input to graph::CommGraph.
  using SentMap = std::map<std::pair<Rank, std::uint64_t>, std::uint64_t>;

  /// Full value-semantic image of a profile: every derived statistic a
  /// WorkloadProfile can answer is a pure function of these fields. This is
  /// the contract the store codec (and any future transport) serializes —
  /// keep it in lockstep with the private state below.
  struct Snapshot {
    int nranks = 0;
    std::uint64_t total_calls = 0;
    std::uint64_t dropped = 0;
    std::vector<std::uint64_t> counts;  ///< indexed by CallType
    std::vector<double> times;          ///< indexed by CallType
    util::LogHistogram ptp_buffers;
    util::LogHistogram collective_buffers;
    std::vector<SentMap> sent;  ///< declared below; index = sending rank
  };

  Snapshot snapshot() const;
  /// Inverse of snapshot(); throws hfast::Error when the per-call vectors
  /// do not cover the call taxonomy or sent.size() mismatches nranks.
  static WorkloadProfile from_snapshot(Snapshot snap);

  int nranks() const noexcept { return nranks_; }

  std::uint64_t total_calls() const noexcept { return total_calls_; }
  std::uint64_t calls_of(CallType call) const;

  /// Entries sorted by descending count; calls below `min_percent` are
  /// folded into a trailing "Other" entry (mirrors Figure 2's pie labels).
  std::vector<CallBreakdownEntry> call_breakdown(double min_percent = 0.0) const;

  /// Buffer sizes of data-carrying point-to-point calls (both sides).
  const util::LogHistogram& ptp_buffers() const noexcept { return ptp_buffers_; }
  /// Buffer sizes of data-carrying collective calls.
  const util::LogHistogram& collective_buffers() const noexcept {
    return coll_buffers_;
  }

  /// Percentage of communication calls that are point-to-point
  /// (includes the wait family, matching the paper's accounting).
  double ptp_call_percent() const;
  double collective_call_percent() const;

  std::uint64_t median_ptp_buffer() const { return ptp_buffers_.median(); }
  std::uint64_t median_collective_buffer() const { return coll_buffers_.median(); }

  /// Total dropped signatures across ranks (fixed-footprint overflow).
  std::uint64_t dropped() const noexcept { return dropped_; }

  const std::vector<SentMap>& sent() const noexcept { return sent_; }

  /// Sum of call time over all ranks, per call type (seconds).
  double time_of(CallType call) const;

 private:
  int nranks_ = 0;
  std::uint64_t total_calls_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<std::uint64_t> counts_ =
      std::vector<std::uint64_t>(mpisim::kNumCallTypes, 0);
  std::vector<double> times_ = std::vector<double>(mpisim::kNumCallTypes, 0.0);
  util::LogHistogram ptp_buffers_;
  util::LogHistogram coll_buffers_;
  std::vector<SentMap> sent_;
};

}  // namespace hfast::ipm
