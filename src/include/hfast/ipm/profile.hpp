#pragma once
/// \file profile.hpp
/// IPM-model profiling layer.
///
/// Mirrors the design the paper describes for IPM (§3.1): a *fixed memory
/// footprint* hash table keyed by the unique argument signature of each MPI
/// call — (call type, peer, buffer size, code region) — storing call counts
/// and min/max/total completion times. Code regions separate application
/// initialization from steady state, which the paper uses to exclude
/// SuperLU's setup traffic.
///
/// RankProfile additionally accumulates the per-(peer, size) *send* message
/// counts that the communication-topology graph (src/graph) is built from;
/// receives are not double counted.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "hfast/mpisim/observer.hpp"

namespace hfast::ipm {

using mpisim::CallType;
using mpisim::Rank;

using RegionId = std::uint16_t;
inline constexpr RegionId kGlobalRegion = 0;

/// One aggregated hash-table entry, exported for analysis.
struct CallRecord {
  CallType call = CallType::kSend;
  Rank peer = mpisim::kNoPeer;
  std::uint64_t bytes = 0;
  RegionId region = kGlobalRegion;
  std::uint64_t count = 0;
  double time_total = 0.0;
  double time_min = 0.0;
  double time_max = 0.0;
};

/// Fixed-capacity open-addressing hash table over call signatures.
/// No rehash, no allocation after construction: when the table fills,
/// further distinct signatures are tallied in dropped() — the same
/// fixed-footprint contract real IPM makes.
class CallTable {
 public:
  explicit CallTable(std::size_t capacity_pow2 = 4096);

  void record(CallType call, Rank peer, std::uint64_t bytes, RegionId region,
              double seconds);

  std::size_t capacity() const noexcept { return slots_.size(); }
  std::size_t size() const noexcept { return used_; }
  std::uint64_t dropped() const noexcept { return dropped_; }

  /// Export all live entries (unspecified order).
  std::vector<CallRecord> records() const;

 private:
  struct Slot {
    bool used = false;
    CallType call = CallType::kSend;
    Rank peer = 0;
    std::uint64_t bytes = 0;
    RegionId region = kGlobalRegion;
    std::uint64_t count = 0;
    double time_total = 0.0;
    double time_min = 0.0;
    double time_max = 0.0;
  };

  std::vector<Slot> slots_;
  std::size_t used_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Key for per-message accumulation: (region, peer world rank, bytes).
struct MsgKey {
  RegionId region = kGlobalRegion;
  Rank peer = 0;
  std::uint64_t bytes = 0;

  friend auto operator<=>(const MsgKey&, const MsgKey&) = default;
};

/// Per-rank profile; implements the observer interface RankContext drives.
class RankProfile final : public mpisim::CommObserver {
 public:
  explicit RankProfile(Rank rank, std::size_t table_capacity = 4096);

  Rank rank() const noexcept { return rank_; }

  // CommObserver
  void on_call(CallType call, Rank peer, std::uint64_t bytes,
               double seconds) override;
  void on_message(Rank peer_world, std::uint64_t bytes, bool is_send) override;
  void on_region(std::string_view name, bool enter) override;

  const CallTable& calls() const noexcept { return table_; }
  std::vector<CallRecord> call_records() const { return table_.records(); }

  /// Send-side message counts: (region, peer, size) -> count.
  const std::map<MsgKey, std::uint64_t>& sent_messages() const noexcept {
    return sent_;
  }

  /// Region id -> name ("" at id 0 is the implicit global region).
  const std::vector<std::string>& region_names() const noexcept {
    return region_names_;
  }

  /// Look up a region id by name; returns false if never entered.
  bool find_region(std::string_view name, RegionId& out) const;

 private:
  RegionId current_region() const noexcept {
    return region_stack_.empty() ? kGlobalRegion : region_stack_.back();
  }
  RegionId intern_region(std::string_view name);

  Rank rank_;
  CallTable table_;
  std::map<MsgKey, std::uint64_t> sent_;
  std::vector<std::string> region_names_{""};
  std::vector<RegionId> region_stack_;
};

}  // namespace hfast::ipm
