#pragma once
/// \file message.hpp
/// The in-flight message record. The runtime uses eager buffered delivery:
/// a send deposits the message in the destination mailbox and completes
/// immediately, so payload (when captured) is owned by shared_ptr and moves
/// between threads without copying.

#include <cstdint>
#include <memory>
#include <vector>

#include "hfast/mpisim/types.hpp"

namespace hfast::mpisim {

struct Message {
  int comm_id = 0;
  Rank src_world = 0;  ///< sender's world rank (graph attribution)
  Rank dst_world = 0;
  Rank src_comm = 0;   ///< sender's rank within comm_id (matching key)
  Tag tag = 0;
  bool internal = false;  ///< collective-plumbing traffic; hidden from observers
  std::uint64_t bytes = 0;
  std::uint64_t seq = 0;  ///< per-sender issue order, for trace replay
  std::shared_ptr<const std::vector<std::byte>> payload;  ///< null unless captured
};

/// Matching predicate: does `m` satisfy a receive posted for
/// (comm, src, tag, internal)? Wildcards follow MPI semantics.
inline bool matches(const Message& m, int comm_id, Rank src, Tag tag,
                    bool internal) noexcept {
  if (m.comm_id != comm_id || m.internal != internal) return false;
  if (src != kAnySource && m.src_comm != src) return false;
  if (tag != kAnyTag && m.tag != tag) return false;
  return true;
}

}  // namespace hfast::mpisim
