#pragma once
/// \file request.hpp
/// Nonblocking operation handles. Sends complete eagerly at post time;
/// receives are matched lazily inside wait/waitall/waitany, preserving the
/// posted order semantics applications rely on.

#include <memory>

#include "hfast/mpisim/message.hpp"

namespace hfast::mpisim {

struct RequestState {
  bool is_send = false;
  bool done = false;
  /// Set once a wait-family call has returned this request; mirrors MPI's
  /// request deallocation (an inactive request is skipped by waitany and a
  /// further wait on it is a no-op).
  bool consumed = false;
  int comm_id = 0;
  Rank peer_comm = kAnySource;  ///< posted destination (send) / source (recv)
  Tag tag = kAnyTag;
  std::uint64_t posted_bytes = 0;
  Message matched;  ///< valid for completed receives
};

class Request {
 public:
  Request() = default;
  explicit Request(std::shared_ptr<RequestState> state)
      : state_(std::move(state)) {}

  bool valid() const noexcept { return state_ != nullptr; }
  bool done() const noexcept { return state_ && state_->done; }

  RequestState& state() {
    HFAST_EXPECTS(state_ != nullptr);
    return *state_;
  }
  const RequestState& state() const {
    HFAST_EXPECTS(state_ != nullptr);
    return *state_;
  }

 private:
  std::shared_ptr<RequestState> state_;
};

}  // namespace hfast::mpisim
