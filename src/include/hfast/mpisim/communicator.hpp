#pragma once
/// \file communicator.hpp
/// A per-rank view of a process group: ordered member list (world ranks)
/// plus this rank's index. Communicators are created by the runtime (world)
/// or by RankContext::split (MPI_Comm_split semantics), which GTC's
/// per-toroidal-partition gathers rely on.

#include <vector>

#include "hfast/mpisim/types.hpp"
#include "hfast/util/assert.hpp"

namespace hfast::mpisim {

class Communicator {
 public:
  Communicator() = default;
  Communicator(int id, std::vector<Rank> members, int my_rank)
      : id_(id), members_(std::move(members)), my_rank_(my_rank) {
    HFAST_EXPECTS(my_rank_ >= 0 &&
                  static_cast<std::size_t>(my_rank_) < members_.size());
  }

  int id() const noexcept { return id_; }
  int size() const noexcept { return static_cast<int>(members_.size()); }
  int rank() const noexcept { return my_rank_; }

  /// World rank of communicator member r.
  Rank world_rank(int r) const {
    HFAST_EXPECTS(r >= 0 && r < size());
    return members_[static_cast<std::size_t>(r)];
  }

  const std::vector<Rank>& members() const noexcept { return members_; }

 private:
  int id_ = 0;
  std::vector<Rank> members_;
  int my_rank_ = 0;
};

}  // namespace hfast::mpisim
