#pragma once
/// \file observer.hpp
/// The profiling boundary. RankContext invokes a CommObserver at the same
/// points a PMPI name-shifted wrapper would intercept a real MPI library,
/// which is exactly where IPM hooks in the paper. Implementations include
/// ipm::RankProfile (hashed statistics) and trace::TraceRecorder (event log).

#include <cstdint>
#include <string_view>
#include <vector>

#include "hfast/mpisim/types.hpp"

namespace hfast::mpisim {

class CommObserver {
 public:
  virtual ~CommObserver() = default;

  /// A communication call returned on this rank.
  /// \param peer    comm-local peer for PTP calls (posted source for
  ///                receives, kAnySource if wildcarded), kNoPeer otherwise.
  /// \param bytes   the buffer-size argument of the call (0 for wait/barrier).
  /// \param seconds wall time spent inside the call.
  virtual void on_call(CallType call, Rank peer, std::uint64_t bytes,
                       double seconds) = 0;

  /// A completed point-to-point transfer endpoint, attributed to resolved
  /// *world* ranks. Fired at send injection and at receive match; never for
  /// collective-internal plumbing. This is what the communication-topology
  /// graph is built from.
  virtual void on_message(Rank peer_world, std::uint64_t bytes, bool is_send) = 0;

  /// Code-region bracket (IPM regioning; used to separate initialization
  /// from steady state, as the paper does for SuperLU).
  virtual void on_region(std::string_view name, bool enter) {
    (void)name;
    (void)enter;
  }
};

/// Fan-out observer so a run can feed the profiler and the tracer at once.
class MultiObserver final : public CommObserver {
 public:
  void attach(CommObserver* obs) {
    if (obs != nullptr) children_.push_back(obs);
  }

  void on_call(CallType call, Rank peer, std::uint64_t bytes,
               double seconds) override {
    for (auto* c : children_) c->on_call(call, peer, bytes, seconds);
  }
  void on_message(Rank peer_world, std::uint64_t bytes, bool is_send) override {
    for (auto* c : children_) c->on_message(peer_world, bytes, is_send);
  }
  void on_region(std::string_view name, bool enter) override {
    for (auto* c : children_) c->on_region(name, enter);
  }

 private:
  std::vector<CommObserver*> children_;
};

}  // namespace hfast::mpisim
