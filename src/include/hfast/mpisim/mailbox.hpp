#pragma once
/// \file mailbox.hpp
/// Per-rank incoming message queue with MPI-style matching (source/tag,
/// wildcards, FIFO order per channel). Messages are bucketed by
/// (comm, source, internal) so the common exact-source match is O(1) even
/// with hundreds of outstanding messages (PMEMD/PARATEC post whole
/// partner sweeps); wildcard-source receives fall back to choosing the
/// earliest-arrived matching message across buckets, preserving fairness
/// and determinism.
///
/// Blocking operations carry a watchdog timeout so a mis-written
/// application surfaces as a diagnosed deadlock instead of a hung test
/// suite, and honor a global abort flag so one rank's failure unwinds the
/// whole job.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "hfast/mpisim/message.hpp"

namespace hfast::mpisim {

class Mailbox {
 public:
  /// `nranks_hint` pre-sizes the per-source bucket arrays (and pre-creates
  /// the world-communicator buckets) so steady-state delivery never grows a
  /// container; 0 grows lazily (unit tests).
  Mailbox(const std::atomic<bool>* abort_flag, std::chrono::milliseconds timeout,
          int nranks_hint = 0)
      : abort_flag_(abort_flag),
        timeout_(timeout),
        nranks_hint_(nranks_hint > 0 ? static_cast<std::size_t>(nranks_hint)
                                     : 0) {
    if (nranks_hint_ > 0) {
      buckets_[{0, false}].resize(nranks_hint_);
      buckets_[{0, true}].resize(nranks_hint_);
    }
  }

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Enqueue an arriving message (called from the sender's thread).
  void deliver(Message m);

  /// Non-blocking match: removes and returns the earliest message
  /// satisfying the pattern.
  bool try_match(int comm_id, Rank src, Tag tag, bool internal, Message& out);

  /// Non-destructive probe (MPI_Iprobe): reports the earliest matching
  /// message's source and size without removing it.
  bool peek(int comm_id, Rank src, Tag tag, bool internal, Rank& src_out,
            std::uint64_t& bytes_out) const;

  /// Blocking match. Throws hfast::Error on abort or watchdog expiry.
  Message match_blocking(int comm_id, Rank src, Tag tag, bool internal);

  /// Monotone counter bumped on every delivery; waitany polls against it.
  std::uint64_t version() const;

  /// Block until version() != seen (i.e. something new arrived).
  /// Throws hfast::Error on abort or watchdog expiry.
  void wait_version_change(std::uint64_t seen);

  /// Wake all waiters (used when the abort flag is raised).
  void interrupt();

  /// Drop all queued messages and rewind counters, keeping the bucket
  /// arrays (and their deque capacity) for the next run.
  void reset();

  /// Number of queued (unmatched) messages; used by tests and by the
  /// runtime's leak check at teardown.
  std::size_t pending() const;

 private:
  struct Arrived {
    Message msg;
    std::uint64_t arrival = 0;
  };
  /// Per-(comm_id, internal) message store: one FIFO per source rank,
  /// flat-indexed by src_comm. The arrays are sized once (to the runtime's
  /// rank count when hinted) and reused for the lifetime of the mailbox —
  /// the exact-source hot path is a map lookup plus an O(1) index, and no
  /// steady-state delivery allocates bucket structure.
  using CommKey = std::pair<int, bool>;
  using SourceBuckets = std::vector<std::deque<Arrived>>;

  void check_abort_locked() const;
  /// Locked helper: find-and-remove. Returns false when nothing matches.
  bool match_locked(int comm_id, Rank src, Tag tag, bool internal,
                    Message& out);
  /// Bucket array for (comm_id, internal), grown to cover `src`.
  SourceBuckets& bucket_for_locked(int comm_id, bool internal, Rank src);

  const std::atomic<bool>* abort_flag_;
  std::chrono::milliseconds timeout_;
  std::size_t nranks_hint_ = 0;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<CommKey, SourceBuckets> buckets_;
  std::uint64_t next_arrival_ = 0;
  std::size_t pending_ = 0;
  std::uint64_t version_ = 0;
};

}  // namespace hfast::mpisim
