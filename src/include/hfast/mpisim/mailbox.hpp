#pragma once
/// \file mailbox.hpp
/// Per-rank incoming message queue with MPI-style matching (source/tag,
/// wildcards, FIFO order per channel). Messages are bucketed by
/// (comm, source, internal) so the common exact-source match is O(1) even
/// with hundreds of outstanding messages (PMEMD/PARATEC post whole
/// partner sweeps); wildcard-source receives fall back to choosing the
/// earliest-arrived matching message across buckets, preserving fairness
/// and determinism.
///
/// Blocking is routed through the execution engine's Scheduler (see
/// engine.hpp): the threaded engine parks on this mailbox's condition
/// variable with a watchdog so a mis-written application surfaces as a
/// diagnosed deadlock instead of a hung test suite; the fiber engine
/// switches fibers instead. When the engine guarantees single-threaded
/// access (all ranks on one OS thread), every operation takes a lock-free
/// single-owner fast path. A standalone mailbox (no scheduler bound — unit
/// tests) blocks on its own condition variable exactly as before. All
/// blocking honors a global abort flag so one rank's failure unwinds the
/// whole job.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "hfast/mpisim/engine.hpp"
#include "hfast/mpisim/message.hpp"

namespace hfast::mpisim {

class Mailbox {
 public:
  /// `nranks_hint` pre-sizes the per-source bucket arrays (and pre-creates
  /// the world-communicator buckets) so steady-state delivery never grows a
  /// container; 0 grows lazily (unit tests).
  Mailbox(const std::atomic<bool>* abort_flag, std::chrono::milliseconds timeout,
          int nranks_hint = 0)
      : abort_flag_(abort_flag),
        timeout_(timeout),
        nranks_hint_(nranks_hint > 0 ? static_cast<std::size_t>(nranks_hint)
                                     : 0) {
    if (nranks_hint_ > 0) {
      buckets_[{0, false}].resize(nranks_hint_);
      buckets_[{0, true}].resize(nranks_hint_);
    }
  }

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Bind the engine's scheduler for the duration of a run (nullptr
  /// unbinds). `owner` is the world rank whose receives drain this mailbox;
  /// a cooperative engine uses it to wake the one fiber that can be parked
  /// here. Caches the scheduler's single-threaded guarantee, which enables
  /// the lock-free fast path.
  void bind_scheduler(Scheduler* sched, Rank owner) {
    sched_ = sched;
    owner_ = owner;
    single_owner_ = sched != nullptr && sched->single_threaded();
  }

  Rank owner() const noexcept { return owner_; }

  /// Pre-create the bucket arrays for a derived communicator, sized to its
  /// member count (source indices are *comm* ranks, so a 16-rank subcomm
  /// needs 16 buckets regardless of world size). Called by
  /// Runtime::allocate_comm_id the moment an id is handed out, so
  /// derived-communicator delivery never grows bucket structure on the hot
  /// path.
  void reserve_comm(int comm_id, std::size_t sources);

  /// True when both bucket arrays for `comm_id` exist (tests).
  bool has_comm_buckets(int comm_id) const;

  /// Enqueue an arriving message (called from the sender's thread, or the
  /// sender's fiber in single-owner mode).
  void deliver(Message m);

  /// Non-blocking match: removes and returns the earliest message
  /// satisfying the pattern.
  bool try_match(int comm_id, Rank src, Tag tag, bool internal, Message& out);

  /// Non-destructive probe (MPI_Iprobe): reports the earliest matching
  /// message's source and size without removing it.
  bool peek(int comm_id, Rank src, Tag tag, bool internal, Rank& src_out,
            std::uint64_t& bytes_out) const;

  /// Blocking match. Throws hfast::Error on abort or diagnosed deadlock.
  Message match_blocking(int comm_id, Rank src, Tag tag, bool internal);

  /// Monotone counter bumped on every delivery; waitany polls against it.
  std::uint64_t version() const;

  /// Block until version() != seen (i.e. something new arrived).
  /// Throws hfast::Error on abort or diagnosed deadlock.
  void wait_version_change(std::uint64_t seen);

  /// Engine primitive for preemptive waiting: park the calling OS thread on
  /// this mailbox's condition variable until version() != seen, the abort
  /// flag rises (throws), or the watchdog expires (throws a deadlock
  /// diagnosis built from `why`). The threaded scheduler and standalone
  /// mailboxes block through this; cooperative engines never call it.
  void preemptive_wait(std::uint64_t seen, const WaitDesc& why);

  /// Wake all waiters (used when the abort flag is raised).
  void interrupt();

  /// Drop all queued messages and rewind counters, keeping the bucket
  /// arrays (and their deque capacity) for the next run.
  void reset();

  /// Number of queued (unmatched) messages; used by tests and by the
  /// runtime's leak check at teardown.
  std::size_t pending() const;

 private:
  struct Arrived {
    Message msg;
    std::uint64_t arrival = 0;
  };
  /// Per-(comm_id, internal) message store: one FIFO per source rank,
  /// flat-indexed by src_comm. The pointer arrays are sized once (to the
  /// runtime's rank count when hinted) and reused for the lifetime of the
  /// mailbox — the exact-source hot path is a map lookup plus an O(1)
  /// index, and no steady-state delivery allocates bucket structure. Queues
  /// themselves are allocated on first use: a libstdc++ deque eagerly
  /// allocates ~0.5 KB, and each rank only ever hears from a handful of
  /// sources, so materializing P queues per communicator on P mailboxes
  /// would cost O(P^2) memory (tens of GB at P=4096) for arrays of empty
  /// deques. An unused slot costs one null pointer instead.
  using CommKey = std::pair<int, bool>;
  using SourceBuckets = std::vector<std::unique_ptr<std::deque<Arrived>>>;

  /// Scoped lock that is elided on the single-owner fast path.
  class [[nodiscard]] OptLock {
   public:
    explicit OptLock(std::mutex* m) : m_(m) {
      if (m_ != nullptr) m_->lock();
    }
    ~OptLock() {
      if (m_ != nullptr) m_->unlock();
    }
    OptLock(const OptLock&) = delete;
    OptLock& operator=(const OptLock&) = delete;

   private:
    std::mutex* m_;
  };

  std::mutex* lock_target() const noexcept {
    return single_owner_ ? nullptr : &mutex_;
  }

  void check_abort_locked() const;
  /// Locked (or single-owner) helper: find-and-remove. Returns false when
  /// nothing matches.
  bool match_locked(int comm_id, Rank src, Tag tag, bool internal,
                    Message& out);
  /// Queue for (comm_id, internal, src), created (and the bucket array
  /// grown to cover `src`) on demand.
  std::deque<Arrived>& bucket_for_locked(int comm_id, bool internal, Rank src);
  /// Route a blocking wait to the bound scheduler (engine policy) or to the
  /// built-in preemptive primitive (standalone mailbox).
  void wait_for_delivery(std::uint64_t seen, const WaitDesc& why);
  std::string watchdog_message_locked(const WaitDesc& why) const;

  const std::atomic<bool>* abort_flag_;
  std::chrono::milliseconds timeout_;
  std::size_t nranks_hint_ = 0;
  Scheduler* sched_ = nullptr;
  Rank owner_ = -1;
  bool single_owner_ = false;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<CommKey, SourceBuckets> buckets_;
  std::uint64_t next_arrival_ = 0;
  std::size_t pending_ = 0;
  std::uint64_t version_ = 0;
};

}  // namespace hfast::mpisim
