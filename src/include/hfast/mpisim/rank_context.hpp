#pragma once
/// \file rank_context.hpp
/// The API an application rank programs against — the simulator's analogue
/// of the MPI interface. Every operation is reported to the attached
/// CommObserver at the call boundary, which is where IPM's PMPI wrappers
/// sit in the paper's methodology.
///
/// Collectives are implemented over internal point-to-point plumbing
/// (flat fan-in/fan-out trees); plumbing messages are flagged `internal`
/// and never reach observers, so the communication-topology graph contains
/// exactly the application-visible traffic, as in the paper.

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "hfast/mpisim/communicator.hpp"
#include "hfast/mpisim/observer.hpp"
#include "hfast/mpisim/request.hpp"
#include "hfast/util/random.hpp"

namespace hfast::mpisim {

class Runtime;

class RankContext {
 public:
  RankContext(Runtime& rt, Rank rank, CommObserver* observer);

  RankContext(const RankContext&) = delete;
  RankContext& operator=(const RankContext&) = delete;

  Rank rank() const noexcept { return rank_; }
  int nranks() const noexcept;
  const Communicator& world() const noexcept { return world_; }

  /// Deterministic per-rank random stream (seeded from the runtime seed).
  util::Rng& rng() noexcept { return rng_; }

  // --- point-to-point (comm-relative ranks) -------------------------------
  void send(const Communicator& comm, Rank dst, std::uint64_t bytes, Tag tag = 0);
  Request isend(const Communicator& comm, Rank dst, std::uint64_t bytes, Tag tag = 0);
  /// Blocking receive; returns the matched message (bytes, payload, source).
  Message recv(const Communicator& comm, Rank src, std::uint64_t bytes, Tag tag = kAnyTag);
  Request irecv(const Communicator& comm, Rank src, std::uint64_t bytes, Tag tag = kAnyTag);
  void wait(Request& req);
  void waitall(std::span<Request> reqs);
  /// Returns the index of the completed request (MPI_Waitany).
  std::size_t waitany(std::span<Request> reqs);
  /// Combined exchange (MPI_Sendrecv): sends to dst, receives from src.
  Message sendrecv(const Communicator& comm, Rank dst, std::uint64_t send_bytes,
                   Rank src, std::uint64_t recv_bytes, Tag tag = 0);
  /// MPI_Test: nonblocking completion check; on success the request is
  /// consumed exactly as a wait would.
  bool test(Request& req);
  /// MPI_Iprobe: is a matching message waiting? Reports source and size
  /// without receiving it.
  bool iprobe(const Communicator& comm, Rank src, Tag tag, Rank* src_out = nullptr,
              std::uint64_t* bytes_out = nullptr);

  /// Payload-carrying send for data-integrity tests.
  void send_bytes(const Communicator& comm, Rank dst,
                  std::vector<std::byte> data, Tag tag = 0);

  // --- world-communicator conveniences -------------------------------------
  void send(Rank dst, std::uint64_t bytes, Tag tag = 0) { send(world_, dst, bytes, tag); }
  Request isend(Rank dst, std::uint64_t bytes, Tag tag = 0) { return isend(world_, dst, bytes, tag); }
  Message recv(Rank src, std::uint64_t bytes, Tag tag = kAnyTag) { return recv(world_, src, bytes, tag); }
  Request irecv(Rank src, std::uint64_t bytes, Tag tag = kAnyTag) { return irecv(world_, src, bytes, tag); }
  Message sendrecv(Rank dst, std::uint64_t send_bytes, Rank src,
                   std::uint64_t recv_bytes, Tag tag = 0) {
    return sendrecv(world_, dst, send_bytes, src, recv_bytes, tag);
  }

  // --- collectives ----------------------------------------------------------
  void barrier(const Communicator& comm);
  void bcast(const Communicator& comm, int root, std::uint64_t bytes);
  void reduce(const Communicator& comm, int root, std::uint64_t bytes);
  void allreduce(const Communicator& comm, std::uint64_t bytes);
  void gather(const Communicator& comm, int root, std::uint64_t bytes);
  void allgather(const Communicator& comm, std::uint64_t bytes);
  void scatter(const Communicator& comm, int root, std::uint64_t bytes);
  void alltoall(const Communicator& comm, std::uint64_t bytes);
  /// counts[i] = bytes this rank sends to comm rank i.
  void alltoallv(const Communicator& comm, const std::vector<std::uint64_t>& counts);
  /// MPI_Reduce_scatter: combine and return each rank's share.
  void reduce_scatter(const Communicator& comm, std::uint64_t bytes_per_rank);
  /// MPI_Scan: inclusive prefix combine along comm rank order.
  void scan(const Communicator& comm, std::uint64_t bytes);

  void barrier() { barrier(world_); }
  void bcast(int root, std::uint64_t bytes) { bcast(world_, root, bytes); }
  void reduce(int root, std::uint64_t bytes) { reduce(world_, root, bytes); }
  void allreduce(std::uint64_t bytes) { allreduce(world_, bytes); }
  void gather(int root, std::uint64_t bytes) { gather(world_, root, bytes); }
  void allgather(std::uint64_t bytes) { allgather(world_, bytes); }
  void scatter(int root, std::uint64_t bytes) { scatter(world_, root, bytes); }
  void alltoall(std::uint64_t bytes) { alltoall(world_, bytes); }

  /// Value-carrying collectives (data plane exercised in tests/examples).
  double allreduce_sum(const Communicator& comm, double value);
  std::vector<double> gather_values(const Communicator& comm, int root, double value);
  double bcast_value(const Communicator& comm, int root, double value);

  /// MPI_Comm_split: ranks with equal color form a new communicator,
  /// ordered by (key, world rank).
  Communicator split(const Communicator& comm, int color, int key);

  // --- IPM-style regions ----------------------------------------------------
  void region_begin(const std::string& name);
  void region_end(const std::string& name);

  /// RAII region bracket.
  class Region {
   public:
    Region(RankContext& ctx, std::string name) : ctx_(ctx), name_(std::move(name)) {
      ctx_.region_begin(name_);
    }
    ~Region() { ctx_.region_end(name_); }
    Region(const Region&) = delete;
    Region& operator=(const Region&) = delete;

   private:
    RankContext& ctx_;
    std::string name_;
  };

 private:
  friend class Runtime;

  void deliver_to(Rank dst_world, Message m);
  Message make_message(const Communicator& comm, Rank dst, Tag tag,
                       std::uint64_t bytes, bool internal,
                       std::shared_ptr<const std::vector<std::byte>> payload);
  void record_call(CallType call, Rank peer, std::uint64_t bytes, double seconds);
  void record_message(Rank peer_world, std::uint64_t bytes, bool is_send);
  /// Complete a pending receive request by blocking-matching its pattern.
  void complete_recv(RequestState& st);

  // Internal (observer-invisible) plumbing used by the collectives.
  void internal_send(const Communicator& comm, Rank dst, Tag tag,
                     std::uint64_t bytes,
                     std::shared_ptr<const std::vector<std::byte>> payload);
  Message internal_recv(const Communicator& comm, Rank src, Tag tag);
  /// Per-communicator collective sequence number (consistent across members
  /// because collectives are called in the same order by every member).
  Tag next_collective_tag(const Communicator& comm);

  Runtime& rt_;
  Rank rank_;
  Communicator world_;
  CommObserver* observer_;  // may be null
  util::Rng rng_;
  std::uint64_t send_seq_ = 0;
  std::map<int, Tag> collective_seq_;
};

using RankProgram = std::function<void(RankContext&)>;

}  // namespace hfast::mpisim
