#pragma once
/// \file engine.hpp
/// Pluggable execution engines: the policy layer that decides how the ranks
/// of one job are mapped onto OS threads.
///
/// Two engines implement the same contract against unmodified RankPrograms:
///  * the **threaded** engine (default) runs one preemptive OS thread per
///    rank — maximum fidelity to a real MPI job, races and all;
///  * the **fiber** engine multiplexes every rank of the job onto a single
///    OS thread using ucontext stackful fibers with a seeded deterministic
///    ready-queue policy, so a 4096-rank job costs one thread and an
///    identical seed reproduces the event trace byte for byte (wildcard
///    receives included).
///
/// Every blocking point in the simulator (mailbox matching, waitany's
/// version wait, collective plumbing receives) routes through the engine's
/// Scheduler instead of touching condition variables directly; that is the
/// seam that lets a cooperative engine park a rank without parking the
/// thread.

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <string_view>

#include "hfast/mpisim/types.hpp"

namespace hfast::mpisim {

class Mailbox;
class Runtime;

enum class EngineKind : std::uint8_t {
  kThreads,  ///< one preemptive OS thread per rank (default)
  kFibers,   ///< all ranks cooperatively scheduled on one OS thread
};

/// "threads" / "fibers".
std::string_view engine_name(EngineKind kind) noexcept;

/// Inverse of engine_name; throws hfast::Error for unknown names.
EngineKind parse_engine(std::string_view name);

/// False when the fiber engine cannot run in this build: non-POSIX hosts
/// (no ucontext) and ThreadSanitizer builds (swapcontext is opaque to TSan
/// and produces false reports). make_engine throws in that case.
bool fibers_supported() noexcept;

/// Lifetime statistics of the process-wide fiber stack pool. Fiber stacks
/// (mmap + guard page) are recycled across jobs instead of unmapped when a
/// job ends, so a sweep of F fiber jobs costs max-width mmaps, not
/// sum-of-widths — at P=4096 that removes ~8k mmap/munmap/mprotect
/// syscalls per job. All zeros on builds without fiber support.
struct FiberStackPoolStats {
  std::uint64_t mapped = 0;        ///< stacks created via mmap
  std::uint64_t reused = 0;        ///< acquisitions served from the pool
  std::uint64_t unmapped = 0;      ///< stacks released back to the kernel
  std::uint64_t pooled = 0;        ///< stacks currently idle in the pool
  std::uint64_t pooled_bytes = 0;  ///< bytes held by idle stacks
};

FiberStackPoolStats fiber_stack_pool_stats() noexcept;

/// munmap every idle pooled stack (memory-pressure relief / test hygiene).
/// Returns the number of stacks released.
std::size_t trim_fiber_stack_pool() noexcept;

/// What a rank is blocked on. Captured at every blocking wait so a
/// cooperative engine can diagnose a deadlock with the stuck rank's actual
/// receive pattern instead of a timer expiry.
struct WaitDesc {
  enum class Kind : std::uint8_t {
    kRecv,     ///< blocking match (recv / wait / sendrecv / collective plumbing)
    kWaitany,  ///< waitany parked on the mailbox version counter
  };
  Kind kind = Kind::kRecv;
  int comm_id = 0;
  Rank src = kAnySource;
  Tag tag = kAnyTag;
  bool internal = false;
};

/// The blocking interface of an engine. RankContext and Mailbox call this
/// instead of owning their own condition-variable logic; the engine decides
/// whether "wait" means parking an OS thread or switching fibers.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// True when every rank of the job runs on the calling OS thread — the
  /// mailbox uses this to take its lock-free single-owner fast path.
  virtual bool single_threaded() const noexcept = 0;

  /// Park the calling rank until `mb`'s version differs from `seen` (a new
  /// delivery arrived), the job aborts, or the engine diagnoses a deadlock.
  /// May also return spuriously; callers loop around their match attempt.
  virtual void wait_for_delivery(Mailbox& mb, std::uint64_t seen,
                                 const WaitDesc& why) = 0;

  /// Delivery-side hook (single-owner mode only): a message was just
  /// enqueued into `mb`; wake its parked owner if any.
  virtual void notify_delivery(Mailbox& mb) = 0;

  /// Cooperative scheduling point for non-blocking polls (test/iprobe): a
  /// fiber spinning on these must hand control back so peers can make the
  /// poll succeed. No-op under preemptive scheduling.
  virtual void yield() = 0;

  /// The calling rank completed an observable MPI call; retained per rank
  /// for deadlock diagnostics ("last completed call").
  virtual void note_call(CallType call) = 0;
};

/// One engine instance drives one Runtime::run invocation.
class ExecutionEngine {
 public:
  virtual ~ExecutionEngine() = default;

  virtual EngineKind kind() const noexcept = 0;

  /// The scheduler mailboxes are bound to for the duration of execute().
  virtual Scheduler& scheduler() noexcept = 0;

  /// Run `rank_body(r)` to completion for every rank 0..nranks-1 and return
  /// the first rank failure (input order for fibers, completion order for
  /// threads), or nullptr when every rank returned cleanly.
  virtual std::exception_ptr execute(
      const std::function<void(Rank)>& rank_body) = 0;
};

/// Factory dispatching on rt.config().engine; throws hfast::Error when the
/// requested engine is unavailable in this build.
std::unique_ptr<ExecutionEngine> make_engine(Runtime& rt);

// Individual factories (tests construct engines directly).
std::unique_ptr<ExecutionEngine> make_thread_engine(Runtime& rt);
std::unique_ptr<ExecutionEngine> make_fiber_engine(Runtime& rt);

}  // namespace hfast::mpisim
