#pragma once
/// \file types.hpp
/// Core vocabulary of the message-passing simulator: rank/tag types,
/// wildcards, and the MPI call taxonomy the IPM-style profiler records.

#include <cstdint>
#include <string_view>

namespace hfast::mpisim {

using Rank = int;
using Tag = int;

inline constexpr Rank kAnySource = -1;
inline constexpr Tag kAnyTag = -1;
/// Peer value used in profile records for calls with no single peer
/// (collectives, waits, barriers).
inline constexpr Rank kNoPeer = -2;

/// The subset of the MPI interface the runtime implements; mirrors the calls
/// observed across the paper's six applications (Figure 2).
enum class CallType : std::uint8_t {
  kSend,
  kIsend,
  kRecv,
  kIrecv,
  kSendrecv,
  kWait,
  kWaitall,
  kWaitany,
  kBarrier,
  kBcast,
  kReduce,
  kAllreduce,
  kGather,
  kAllgather,
  kScatter,
  kAlltoall,
  kAlltoallv,
  kReduceScatter,
  kScan,
  kCommSplit,
  kTest,
  kIprobe,
  kCount  // sentinel
};

inline constexpr int kNumCallTypes = static_cast<int>(CallType::kCount);

/// "MPI_Isend"-style display name.
std::string_view call_name(CallType call) noexcept;

/// True for calls that initiate or complete point-to-point traffic
/// (including the wait family, which the paper counts as PTP activity).
bool is_point_to_point(CallType call) noexcept;

/// True for collective operations (incl. barrier and comm management).
bool is_collective(CallType call) noexcept;

/// True for calls that carry a user buffer whose size should contribute to
/// buffer-size distributions (excludes wait/barrier/split).
bool carries_buffer(CallType call) noexcept;

}  // namespace hfast::mpisim
