#pragma once
/// \file runtime.hpp
/// The job launcher: spawns one thread per rank, wires mailboxes and
/// observers, propagates the first rank failure to all others, and verifies
/// at teardown that no unmatched messages were leaked.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "hfast/mpisim/mailbox.hpp"
#include "hfast/mpisim/rank_context.hpp"

namespace hfast::mpisim {

struct RuntimeConfig {
  int nranks = 4;
  /// Allocate and transfer real payload bytes for user point-to-point
  /// traffic (integrity tests); size-only otherwise for speed.
  bool capture_payload = false;
  /// Watchdog for blocking operations; expiry is reported as deadlock.
  std::chrono::milliseconds watchdog{60000};
  /// Fail the run if unmatched messages remain after all ranks return.
  bool check_leaks = true;
  std::uint64_t seed = 0x48464153ULL;  // "HFAS"
};

struct RunResult {
  double wall_seconds = 0.0;
};

class Runtime {
 public:
  explicit Runtime(RuntimeConfig cfg);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Observer lookup per rank; may return nullptr. The caller owns the
  /// observers and must keep them alive for the duration of run().
  using ObserverFactory = std::function<CommObserver*(Rank)>;

  /// Execute `program` on every rank to completion. Rethrows the first
  /// rank's exception, if any. May be called repeatedly.
  RunResult run(const RankProgram& program,
                const ObserverFactory& observers = {});

  const RuntimeConfig& config() const noexcept { return cfg_; }
  int nranks() const noexcept { return cfg_.nranks; }

  // --- used by RankContext --------------------------------------------------
  Mailbox& mailbox(Rank r);
  int allocate_comm_id() { return next_comm_id_.fetch_add(1); }
  std::atomic<bool>& abort_flag() noexcept { return abort_; }

 private:
  RuntimeConfig cfg_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::atomic<bool> abort_{false};
  std::atomic<int> next_comm_id_{1};  // 0 is the world communicator
};

}  // namespace hfast::mpisim
