#pragma once
/// \file runtime.hpp
/// The job launcher: wires mailboxes and observers, hands the ranks to the
/// configured execution engine (one OS thread per rank, or all ranks as
/// cooperative fibers on one thread), propagates the first rank failure to
/// all others, and verifies at teardown that no unmatched messages were
/// leaked.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "hfast/mpisim/engine.hpp"
#include "hfast/mpisim/mailbox.hpp"
#include "hfast/mpisim/rank_context.hpp"

namespace hfast::mpisim {

struct RuntimeConfig {
  int nranks = 4;
  /// Allocate and transfer real payload bytes for user point-to-point
  /// traffic (integrity tests); size-only otherwise for speed.
  bool capture_payload = false;
  /// Watchdog for blocking operations; expiry is reported as deadlock.
  /// The fiber engine additionally diagnoses a deadlock the instant its
  /// ready queue drains (no timer needed) and uses the watchdog only as a
  /// progress bound on poll loops.
  std::chrono::milliseconds watchdog{60000};
  /// Fail the run if unmatched messages remain after all ranks return.
  bool check_leaks = true;
  std::uint64_t seed = 0x48464153ULL;  // "HFAS"
  /// How ranks are mapped onto OS threads (see engine.hpp).
  EngineKind engine = EngineKind::kThreads;
  /// Seed of the fiber engine's deterministic ready-queue policy; 0 derives
  /// it from `seed`. Distinct values perturb the cooperative interleaving
  /// (and therefore wildcard-receive match order) without touching
  /// application behaviour — reduced paper metrics are invariant across it.
  std::uint64_t sched_seed = 0;
  /// Per-fiber stack size (fiber engine only), rounded up to whole pages.
  /// Each stack is mmap'd with a PROT_NONE guard page below it, so only
  /// touched pages consume RSS and overflow faults instead of corrupting a
  /// neighbour (see DESIGN.md "Execution engines").
  std::size_t fiber_stack_bytes = 256 * 1024;
};

struct RunResult {
  double wall_seconds = 0.0;
};

class Runtime {
 public:
  explicit Runtime(RuntimeConfig cfg);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Observer lookup per rank; may return nullptr. The caller owns the
  /// observers and must keep them alive for the duration of run().
  using ObserverFactory = std::function<CommObserver*(Rank)>;

  /// Execute `program` on every rank to completion. Rethrows the first
  /// rank's exception, if any. May be called repeatedly.
  RunResult run(const RankProgram& program,
                const ObserverFactory& observers = {});

  const RuntimeConfig& config() const noexcept { return cfg_; }
  int nranks() const noexcept { return cfg_.nranks; }

  // --- used by RankContext and the engines ---------------------------------
  Mailbox& mailbox(Rank r);
  /// Hand out a derived-communicator id and pre-size its bucket arrays on
  /// each *member's* mailbox (sized to the member count — sizing to world on
  /// every mailbox would cost O(P^2) per split), so derived-comm delivery
  /// never grows structure on the hot path. The empty-span overload only
  /// hands out an id.
  int allocate_comm_id(std::span<const Rank> member_world_ranks = {});
  std::atomic<bool>& abort_flag() noexcept { return abort_; }
  /// The active engine's scheduler; nullptr outside run().
  Scheduler* scheduler() noexcept {
    return engine_ != nullptr ? &engine_->scheduler() : nullptr;
  }

 private:
  RuntimeConfig cfg_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::unique_ptr<ExecutionEngine> engine_;
  std::atomic<bool> abort_{false};
  std::atomic<int> next_comm_id_{1};  // 0 is the world communicator
};

}  // namespace hfast::mpisim
