#pragma once
/// \file app.hpp
/// The six synthetic application kernels (paper Table 2). Each kernel is a
/// rank program that reproduces, at the MPI call boundary, the published
/// communication behaviour of its production counterpart: call mix
/// (Figure 2), buffer-size distributions (Figures 3-4), and topological
/// connectivity with and without the 2 KB threshold (Figures 5-10,
/// Table 3). The numerics are not reproduced — the paper's analysis
/// consumes only messaging observables (see DESIGN.md substitutions).
///
/// Every kernel brackets its setup in an "init" region and its production
/// phase in a "steady" region, mirroring how the paper uses IPM regioning
/// to exclude SuperLU's initialization.

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "hfast/mpisim/rank_context.hpp"

namespace hfast::apps {

/// Region names every kernel uses.
inline constexpr const char* kInitRegion = "init";
inline constexpr const char* kSteadyRegion = "steady";

struct AppParams {
  int nranks = 64;
  /// Steady-state iterations; 0 = the kernel's default (chosen so
  /// concurrency-dependent coverage patterns complete a full rotation).
  int iterations = 0;
  std::uint64_t seed = 1;
};

/// Paper Table 2 metadata.
struct AppInfo {
  std::string name;
  int lines_of_code = 0;        ///< of the production code being modeled
  std::string discipline;
  std::string problem_method;
  std::string structure;
};

struct App {
  AppInfo info;
  /// The per-rank program body.
  std::function<void(mpisim::RankContext&, const AppParams&)> run;
  /// Default steady iterations at a given concurrency.
  std::function<int(int nranks)> default_iterations;

  /// Bind parameters, producing a program Runtime::run can execute.
  mpisim::RankProgram program(AppParams params) const;
};

/// All six kernels in the paper's Table 2 order:
/// cactus, lbmhd, gtc, superlu, pmemd, paratec.
const std::vector<App>& registry();

/// Lookup by name; throws hfast::Error for unknown names.
const App& find(std::string_view name);

/// Valid concurrencies: kernels require specific structure (squares for
/// SuperLU/LBMHD grids, multiples of the GTC toroidal extent...). The paper
/// evaluates P=64 and P=256; both are valid for every kernel.
bool valid_concurrency(const App& app, int nranks);

// Individual kernels (exposed for direct use and unit tests).
void run_cactus(mpisim::RankContext& ctx, const AppParams& params);
void run_lbmhd(mpisim::RankContext& ctx, const AppParams& params);
void run_gtc(mpisim::RankContext& ctx, const AppParams& params);
void run_superlu(mpisim::RankContext& ctx, const AppParams& params);
void run_pmemd(mpisim::RankContext& ctx, const AppParams& params);
void run_paratec(mpisim::RankContext& ctx, const AppParams& params);

}  // namespace hfast::apps
