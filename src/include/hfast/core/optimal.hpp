#pragma once
/// \file optimal.hpp
/// Exact (brute-force) switch-block minimization for small graphs. The
/// paper bounds its greedy construction at "potentially twice as many
/// switch ports as an optimal embedding" and notes the general problem is
/// NP-complete (clique mapping, Kou et al. [12]); this module provides the
/// ground truth on graphs small enough to enumerate, used by property
/// tests to verify the 2x claim and to score the clique heuristic.
///
/// Model: every node is hosted on exactly one block; an edge between
/// co-hosted nodes rides the block's internal crossbar for free; any other
/// edge consumes one trunk port on each endpoint's block. A block of size S
/// is feasible iff hosts + trunk endpoints <= S. The optimum is the least
/// number of blocks over all set partitions of the nodes (single-block
/// groups only — expansion chains never reduce the block count below this
/// bound, since splitting a group into a chain costs extra link ports).

#include <optional>
#include <vector>

#include "hfast/graph/comm_graph.hpp"

namespace hfast::core {

struct OptimalProvision {
  int num_blocks = 0;
  std::vector<int> block_of_node;  ///< node -> block index
  int internal_edges = 0;
};

/// Exhaustive set-partition search. Feasible for num_nodes <= ~10
/// (Bell(10) = 115975 partitions). Throws hfast::Error beyond `max_nodes`.
/// Returns nullopt if even the all-singletons partition is infeasible
/// (some node's degree exceeds S-1, which would require chains).
std::optional<OptimalProvision> optimal_blocks(const graph::CommGraph& g,
                                               int block_size,
                                               std::uint64_t cutoff = 0,
                                               int max_nodes = 10);

}  // namespace hfast::core
