#pragma once
/// \file smp.hpp
/// SMP provisioning mode (the paper's §5 deferred question, promoted to a
/// first-class pipeline axis): how many tasks share a multi-core node, and
/// how tasks are packed onto those nodes. The packing decides which task
/// pairs become node-internal (their traffic rides the node backplane and
/// never touches the interconnect) and which survive into the quotient
/// graph the fabric is provisioned from.
///
/// cores_per_node = 1 is the paper's baseline single-processor-node
/// assumption and must be behaviorally invisible: the quotient is the
/// identity, the provisioned fabric is the task-level fabric, and replay
/// results are bit-identical to the pre-SMP pipeline (asserted by the
/// SmpParity suite).

#include <cstdint>
#include <string_view>

namespace hfast::core {

/// How tasks are assigned to SMP nodes.
enum class SmpPacking : std::uint8_t {
  /// Tasks [k*c, (k+1)*c) share node k — what a topology-blind scheduler
  /// does, and the identity grouping at cores_per_node = 1.
  kRankOrder,
  /// Traffic-aware bandwidth localization (heavy-edge merging), guaranteed
  /// to localize at least as many bytes as rank order (see
  /// graph::quotient_by_affinity).
  kAffinity,
};

struct SmpConfig {
  /// Tasks per node; 1 = single-processor nodes (today's baseline).
  int cores_per_node = 1;
  SmpPacking packing = SmpPacking::kRankOrder;

  /// True when the mode actually aggregates tasks.
  bool aggregates() const noexcept { return cores_per_node > 1; }

  friend bool operator==(const SmpConfig&, const SmpConfig&) = default;
};

/// "rank-order" | "affinity".
std::string_view packing_name(SmpPacking packing) noexcept;

/// Inverse of packing_name; throws hfast::Error for unknown names.
SmpPacking parse_packing(std::string_view name);

}  // namespace hfast::core
