#pragma once
/// \file reconfigure.hpp
/// Runtime incremental topology adaptation (paper §2.3 and §6): as traffic
/// statistics accumulate, the circuit switch is re-patched at discrete
/// synchronization points to track the application's current communication
/// phase. MEMS reconfiguration costs milliseconds, so the engine applies
/// hysteresis (a circuit is torn down only after going unused for a number
/// of windows) and reports how much switching a phase-varying workload
/// would actually incur versus provisioning the union topology statically.

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "hfast/graph/comm_graph.hpp"
#include "hfast/graph/tdc.hpp"

namespace hfast::core {

struct ReconfigParams {
  std::uint64_t cutoff = graph::kBdpCutoffBytes;
  /// One circuit-switch reconfiguration event (any batch of re-patches at a
  /// synchronization point) costs this long (MEMS: milliseconds).
  double reconfig_seconds = 2e-3;
  /// A circuit survives this many windows without traffic before teardown.
  int hysteresis_windows = 1;
};

struct WindowDelta {
  std::size_t window = 0;
  int circuits_added = 0;
  int circuits_removed = 0;
  int circuits_active = 0;  ///< after applying this window's changes
  bool reconfigured = false;
};

struct ReconfigReport {
  std::vector<WindowDelta> deltas;
  int total_reconfigurations = 0;
  int total_added = 0;
  int total_removed = 0;
  double reconfig_time_seconds = 0.0;
  int peak_circuits = 0;
  /// Circuits a one-shot static provisioning of the union graph would need;
  /// peak_circuits <= static_circuits quantifies the adaptive saving.
  int static_circuits = 0;
};

/// Plan circuit changes across a sequence of per-window communication
/// graphs (from trace::windowed_graphs).
ReconfigReport plan_reconfigurations(const std::vector<graph::CommGraph>& windows,
                                     const ReconfigParams& params = {});

}  // namespace hfast::core
