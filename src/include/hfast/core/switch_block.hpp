#pragma once
/// \file switch_block.hpp
/// An active (packet) switch block — the commodity building unit HFAST
/// provisions from a shared pool (paper §2.3). Every port physically
/// terminates at the circuit switch; logically a port is free, a host link
/// to a node's NIC, or a trunk to another block's port.

#include <cstdint>
#include <vector>

#include "hfast/util/assert.hpp"

namespace hfast::core {

enum class PortUse : std::uint8_t { kFree, kHost, kTrunk };

/// (block, port) address of the far end of a trunk.
struct PortRef {
  int block = -1;
  int port = -1;

  bool valid() const noexcept { return block >= 0 && port >= 0; }
  friend bool operator==(const PortRef&, const PortRef&) = default;
};

struct Port {
  PortUse use = PortUse::kFree;
  int host_node = -1;  ///< valid when use == kHost
  PortRef peer;        ///< valid when use == kTrunk
};

class SwitchBlock {
 public:
  SwitchBlock(int id, int num_ports) : id_(id) {
    HFAST_EXPECTS(num_ports >= 2);
    ports_.resize(static_cast<std::size_t>(num_ports));
  }

  int id() const noexcept { return id_; }
  int num_ports() const noexcept { return static_cast<int>(ports_.size()); }

  const Port& port(int i) const {
    HFAST_EXPECTS(i >= 0 && i < num_ports());
    return ports_[static_cast<std::size_t>(i)];
  }

  /// Lowest-index free port, or -1.
  int first_free() const noexcept {
    for (int i = 0; i < num_ports(); ++i) {
      if (ports_[static_cast<std::size_t>(i)].use == PortUse::kFree) return i;
    }
    return -1;
  }

  int num_free() const noexcept { return count(PortUse::kFree); }
  int num_host() const noexcept { return count(PortUse::kHost); }
  int num_trunk() const noexcept { return count(PortUse::kTrunk); }

  /// Claim a free port as a host link for `node`; returns the port index.
  int attach_host(int node) {
    const int p = first_free();
    HFAST_EXPECTS_MSG(p >= 0, "switch block out of ports (host attach)");
    ports_[static_cast<std::size_t>(p)] = {PortUse::kHost, node, {}};
    return p;
  }

  /// Claim a free port as a trunk endpoint; peer is patched by the fabric.
  int attach_trunk(PortRef peer) {
    const int p = first_free();
    HFAST_EXPECTS_MSG(p >= 0, "switch block out of ports (trunk attach)");
    ports_[static_cast<std::size_t>(p)] = {PortUse::kTrunk, -1, peer};
    return p;
  }

  void set_trunk_peer(int port_index, PortRef peer) {
    HFAST_EXPECTS(port_index >= 0 && port_index < num_ports());
    Port& p = ports_[static_cast<std::size_t>(port_index)];
    HFAST_EXPECTS(p.use == PortUse::kTrunk);
    p.peer = peer;
  }

  void release(int port_index) {
    HFAST_EXPECTS(port_index >= 0 && port_index < num_ports());
    ports_[static_cast<std::size_t>(port_index)] = Port{};
  }

  std::vector<int> hosted_nodes() const {
    std::vector<int> out;
    for (const Port& p : ports_) {
      if (p.use == PortUse::kHost) out.push_back(p.host_node);
    }
    return out;
  }

 private:
  int count(PortUse use) const noexcept {
    int n = 0;
    for (const Port& p : ports_) {
      if (p.use == use) ++n;
    }
    return n;
  }

  int id_;
  std::vector<Port> ports_;
};

}  // namespace hfast::core
