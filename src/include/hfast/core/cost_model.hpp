#pragma once
/// \file cost_model.hpp
/// The paper's §5.3 cost comparison:
///   Cost_HFAST = Nactive*Cost_active + Cost_passive + Cost_collective
/// versus fat-tree, fixed mesh/torus, and ICN alternatives, all reduced to
/// per-port prices. Prices are normalized to one leading-edge packet-switch
/// port = 1.0; MEMS circuit ports and low-bandwidth collective-tree ports
/// are fractions of that (paper §2.1: circuit switches avoid line-rate
/// switching logic and OEO transceivers, so per-port cost is far lower).

#include <cstdint>
#include <string>

#include "hfast/core/provision.hpp"
#include "hfast/topo/fat_tree.hpp"

namespace hfast::core {

struct CostParams {
  double packet_port_cost = 1.0;
  double circuit_port_cost = 0.25;
  double collective_port_cost = 0.10;
  int block_size = 16;
  int fat_tree_radix = 16;
};

struct CostBreakdown {
  std::string network;
  std::uint64_t packet_ports = 0;
  std::uint64_t circuit_ports = 0;
  std::uint64_t collective_ports = 0;
  double active_cost = 0.0;
  double passive_cost = 0.0;
  double collective_cost = 0.0;

  double total() const noexcept {
    return active_cost + passive_cost + collective_cost;
  }
};

/// Ports of the dedicated low-bandwidth collective tree (BG/L-style): a
/// binary tree over P leaves uses P-1 3-port combine nodes plus P NIC links.
std::uint64_t collective_tree_ports(int nodes);

/// HFAST: packet ports = blocks*S, circuit ports = P + blocks*S, plus the
/// collective tree. `num_blocks` comes from a provisioning run.
CostBreakdown hfast_cost(int nodes, int num_blocks, const CostParams& params);

/// Fat-tree: P*(1+2(L-1)) packet ports (paper formula); no circuit switch.
/// The collective tree is included so the comparison is apples-to-apples
/// only when `include_collective_tree` is set (a fat-tree can carry its own
/// collectives).
CostBreakdown fat_tree_cost(int nodes, const CostParams& params,
                            bool include_collective_tree = false);

/// Fixed mesh/torus: one router per node with 2*ndims network ports plus
/// the NIC port, all at packet-port prices; plus the collective tree (as on
/// BlueGene/L).
CostBreakdown mesh_cost(int nodes, int ndims, const CostParams& params);

/// ICN (Gupta & Schenfeld): blocks of k processors behind a 2k-port
/// crossbar (k host + k external), external ports into a circuit switch of
/// P_ext = nodes ports.
CostBreakdown icn_cost(int nodes, int k, const CostParams& params);

}  // namespace hfast::core
