#pragma once
/// \file classify.hpp
/// The paper's §2.5 application taxonomy:
///   case i   — isotropic pattern, low bounded TDC, embeds in a regular
///              mesh/torus (fixed networks suffice; Cactus).
///   case ii  — anisotropic but low bounded TDC (adaptive networks like ICN
///              or HFAST; LBMHD).
///   case iii — average TDC bounded/small while the maximum TDC is large or
///              the degree grows with concurrency (HFAST's flexible pool;
///              GTC, SuperLU, PMEMD).
///   case iv  — TDC ~ P: needs full bisection, keep the FCN (PARATEC).

#include <cstdint>
#include <optional>
#include <string>

#include "hfast/graph/comm_graph.hpp"
#include "hfast/graph/tdc.hpp"

namespace hfast::core {

enum class CommCase {
  kCaseI,    // regular + bounded: fixed mesh/torus sufficient
  kCaseII,   // irregular + bounded: bounded-degree adaptive (ICN) sufficient
  kCaseIII,  // bounded average, unbounded/scaling max: HFAST warranted
  kCaseIV,   // TDC ~ P: FCN required
};

std::string to_string(CommCase c);

struct Classification {
  CommCase comm_case = CommCase::kCaseI;
  graph::TdcStats tdc;        ///< at the cutoff, for the (larger) graph
  double fcn_utilization = 0.0;
  bool mesh_embeddable = false;
  bool isotropic = false;
  bool degree_scales_with_p = false;  ///< only meaningful with two graphs
  std::string rationale;              ///< human-readable reason
};

struct ClassifyParams {
  std::uint64_t cutoff = graph::kBdpCutoffBytes;
  /// avg TDC / (P-1) at or above this means "uses the full FCN" (case iv).
  double full_utilization_threshold = 0.5;
  /// max TDC > this multiple of avg TDC flags a non-uniform pattern (iii).
  double max_over_avg_threshold = 2.0;
  /// avg TDC growth ratio across graphs flagging concurrency scaling (iii).
  double scaling_ratio_threshold = 1.5;
};

/// Classify from a single run.
Classification classify(const graph::CommGraph& g,
                        const ClassifyParams& params = {});

/// Classify using two concurrencies (paper methodology: P=64 and P=256),
/// which is required to detect case-iii degree scaling like SuperLU's
/// sqrt(P) growth.
Classification classify(const graph::CommGraph& small,
                        const graph::CommGraph& large,
                        const ClassifyParams& params = {});

}  // namespace hfast::core
