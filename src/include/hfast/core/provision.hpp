#pragma once
/// \file provision.hpp
/// HFAST provisioning: turning a (thresholded) communication graph into a
/// concrete fabric of switch blocks and circuit-switch patches.
///
/// Two strategies:
///  * kGreedyPerNode — the paper's §5.3 linear-time upper bound. Every node
///    gets its own block; a node whose thresholded TDC exceeds the block's
///    usable degree gets a chain ("tree") of blocks. Every partner edge
///    receives a dedicated trunk. Uses at most 2x the ports of an optimal
///    embedding and never exploits block-internal bisection.
///  * kCliqueShared — the clique-mapping improvement the paper sketches in
///    §5.3/§6 (Kou et al. reduction): cliques of tasks share one block so
///    their mutual edges ride the block's internal crossbar for free;
///    remaining edges are trunked, with expansion blocks chained on demand.

#include <cstdint>

#include "hfast/core/fabric.hpp"
#include "hfast/graph/comm_graph.hpp"
#include "hfast/graph/tdc.hpp"

namespace hfast::core {

struct ProvisionParams {
  int block_size = 16;
  /// Message-size threshold selecting which partners deserve a dedicated
  /// circuit (paper: the 2 KB bandwidth-delay product).
  std::uint64_t cutoff = graph::kBdpCutoffBytes;
  /// Clique strategy: largest clique mapped onto one block
  /// (0 = block_size - 1, leaving one port of slack for expansion).
  std::size_t max_clique = 0;
};

enum class ProvisionStrategy { kGreedyPerNode, kCliqueShared };

struct ProvisionStats {
  int num_blocks = 0;
  int num_trunks = 0;       ///< inter-block circuit patches (incl. chains)
  int edges_provisioned = 0;
  int internal_edges = 0;   ///< edges riding a shared block's crossbar
  double avg_circuit_traversals = 0.0;
  int max_circuit_traversals = 0;
  double avg_switch_hops = 0.0;
  int max_switch_hops = 0;

  /// Bitwise field equality (doubles included) — the SMP parity contract
  /// compares node-level stats exactly, not approximately.
  friend bool operator==(const ProvisionStats&, const ProvisionStats&) =
      default;
};

struct Provisioned {
  Fabric fabric;
  ProvisionStats stats;
};

/// Blocks the greedy strategy assigns a node of thresholded degree d:
/// max(1, ceil((d-1)/(S-2))) for block size S — a chain of B blocks exposes
/// (S-2)B + 1 partner ports after the host link and chain links.
int greedy_blocks_for_degree(int degree, int block_size);

Provisioned provision(const graph::CommGraph& g, const ProvisionParams& params,
                      ProvisionStrategy strategy);

inline Provisioned provision_greedy(const graph::CommGraph& g,
                                    const ProvisionParams& params = {}) {
  return provision(g, params, ProvisionStrategy::kGreedyPerNode);
}

inline Provisioned provision_clique(const graph::CommGraph& g,
                                    const ProvisionParams& params = {}) {
  return provision(g, params, ProvisionStrategy::kCliqueShared);
}

}  // namespace hfast::core
