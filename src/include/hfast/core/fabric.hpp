#pragma once
/// \file fabric.hpp
/// The assembled HFAST interconnect: P single-processor nodes, a pool of
/// active switch blocks, and the passive circuit switch that patches node
/// NICs to block host ports and block ports to each other (trunks).
///
/// Routing happens over the *block graph* (vertices = blocks, edges =
/// trunks). A message u -> v enters u's home block through the circuit
/// switch, crosses zero or more trunks, and exits to v — so circuit-switch
/// traversals = blocks on the path + 1 and packet-switch hops = blocks on
/// the path, reproducing the paper's Figure 1 examples (2 traversals / 1
/// block when u and v share a block; 3 traversals / 2 blocks otherwise).

#include <cstdint>
#include <map>
#include <vector>

#include "hfast/core/switch_block.hpp"
#include "hfast/graph/comm_graph.hpp"

namespace hfast::core {

struct FabricRoute {
  std::vector<int> blocks;  ///< packet switch blocks traversed, in order
  int switch_hops() const noexcept { return static_cast<int>(blocks.size()); }
  int circuit_traversals() const noexcept {
    return blocks.empty() ? 0 : static_cast<int>(blocks.size()) + 1;
  }
};

class Fabric {
 public:
  Fabric(int num_nodes, int block_size);

  int num_nodes() const noexcept { return num_nodes_; }
  int block_size() const noexcept { return block_size_; }
  int num_blocks() const noexcept { return static_cast<int>(blocks_.size()); }

  /// Allocate a fresh (all-free) block from the pool; returns its id.
  int add_block();

  SwitchBlock& block(int id);
  const SwitchBlock& block(int id) const;

  /// Patch node's NIC to a free port of `block_id` through the circuit
  /// switch. A node has one NIC: attaching twice is a contract violation.
  void attach_host(int node, int block_id);

  /// Patch a trunk between free ports of two blocks (they may be equal for
  /// loopback test rigs, though provisioners never do that).
  void connect_trunk(int block_a, int block_b);

  /// Home block of a node (-1 if unattached).
  int home_block(int node) const;

  /// BFS route (fewest blocks) from u's home block to v's home block.
  /// Throws hfast::Error if no route exists.
  FabricRoute route(int u, int v) const;

  bool reachable(int u, int v) const;

  /// Every cutoff-surviving edge of `g` is routable through the fabric.
  bool serves(const graph::CommGraph& g, std::uint64_t cutoff) const;

  /// Number of trunks directly joining the two blocks.
  int trunks_between(int block_a, int block_b) const;

  // --- accounting (cost model inputs) --------------------------------------
  std::uint64_t packet_ports() const noexcept {
    return static_cast<std::uint64_t>(num_blocks()) *
           static_cast<std::uint64_t>(block_size_);
  }
  /// Circuit-switch ports: one per node NIC plus one per block port.
  std::uint64_t circuit_ports() const noexcept {
    return static_cast<std::uint64_t>(num_nodes_) + packet_ports();
  }
  int total_host_ports() const;
  int total_trunk_ports() const;
  int total_free_ports() const;

  /// Structural invariants: trunk peers are symmetric, host links agree
  /// with home_block, port budgets respected. Throws on violation.
  void validate() const;

 private:
  int num_nodes_;
  int block_size_;
  std::vector<SwitchBlock> blocks_;
  std::vector<int> home_;                       // node -> block id
  std::vector<std::vector<int>> block_adj_;     // block -> neighbor blocks
  std::map<std::pair<int, int>, int> trunk_count_;
};

}  // namespace hfast::core
