#pragma once
/// \file contraction.hpp
/// Bounded-contraction analysis for the ICN baseline (Gupta & Schenfeld
/// [10]). An ICN groups processors into blocks of size k behind small
/// crossbars; a job fits iff the communication graph has a partition into
/// blocks of <= k vertices whose *external* degree (distinct partners
/// outside the block) is <= k. Finding such a contraction is NP-complete
/// for k > 2 (paper §2.2), so we provide a BFS-packing heuristic plus an
/// exact check for tiny graphs in tests.

#include <vector>

#include "hfast/graph/comm_graph.hpp"

namespace hfast::graph {

struct ContractionResult {
  bool feasible = false;          ///< heuristic found a bounded contraction
  std::vector<int> block_of;      ///< node -> block index (when feasible)
  int num_blocks = 0;
  int worst_external_degree = 0;  ///< max over blocks of external partners
};

/// Greedy BFS packing: grow blocks of size <= k from unassigned seed nodes,
/// preferring neighbors that minimize the block's external degree. Returns
/// feasible=false if some block's external degree exceeds k (the job would
/// need multi-path routing over the ICN circuit switch, paying bandwidth).
ContractionResult bounded_contraction(const CommGraph& g, int k,
                                      std::uint64_t cutoff = 0);

}  // namespace hfast::graph
