#pragma once
/// \file quotient.hpp
/// SMP-node aggregation (the paper's §5 deliberate simplification, now a
/// first-class provisioning mode — see core::SmpConfig): group tasks onto
/// multi-core nodes; traffic between co-resident tasks stays on the node's
/// backplane and the interconnect sees only the quotient graph. Pairs with
/// core::provision* to size the node-level fabric and with
/// netsim::SmpFabricNetwork to replay traces with backplane pricing.
/// Quotient edges merge task-edge stats verbatim (counts, bytes, max
/// message), so an identity mapping reproduces the input graph exactly.

#include <vector>

#include "hfast/graph/comm_graph.hpp"

namespace hfast::graph {

struct QuotientResult {
  CommGraph graph;                 ///< node-level communication graph
  std::vector<int> node_of_task;   ///< task -> SMP node
  std::uint64_t internal_bytes = 0;  ///< traffic absorbed by backplanes
};

/// Contract tasks by an explicit assignment (values in [0, num_nodes)).
QuotientResult quotient_graph(const CommGraph& g,
                              const std::vector<int>& node_of_task,
                              int num_nodes);

/// The naive packing a topology-blind scheduler produces: tasks
/// [k*c, (k+1)*c) share node k, c = tasks_per_node.
QuotientResult quotient_by_blocks(const CommGraph& g, int tasks_per_node);

/// Traffic-aware packing: greedily merge the heaviest remaining edge whose
/// endpoints' groups still fit (classic heavy-edge matching, iterated),
/// then bin groups first-fit-decreasing (splitting any group the
/// fragmented capacity cannot hold whole). Guaranteed to localize at least
/// as many bytes as quotient_by_blocks at the same tasks_per_node: when
/// the heuristic loses to rank order it returns the rank-order packing.
QuotientResult quotient_by_affinity(const CommGraph& g, int tasks_per_node);

}  // namespace hfast::graph
