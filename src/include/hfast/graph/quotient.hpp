#pragma once
/// \file quotient.hpp
/// SMP-node aggregation (the paper's §5 deliberate simplification, left as
/// future work): group tasks onto multi-core nodes; traffic between
/// co-resident tasks stays on the node's backplane and the interconnect
/// sees only the quotient graph. Pairs with core::provision* to study how
/// cores-per-node shrinks the thresholded TDC and the switch-block pool.

#include <vector>

#include "hfast/graph/comm_graph.hpp"

namespace hfast::graph {

struct QuotientResult {
  CommGraph graph;                 ///< node-level communication graph
  std::vector<int> node_of_task;   ///< task -> SMP node
  std::uint64_t internal_bytes = 0;  ///< traffic absorbed by backplanes
};

/// Contract tasks by an explicit assignment (values in [0, num_nodes)).
QuotientResult quotient_graph(const CommGraph& g,
                              const std::vector<int>& node_of_task,
                              int num_nodes);

/// The naive packing a topology-blind scheduler produces: tasks
/// [k*c, (k+1)*c) share node k, c = tasks_per_node.
QuotientResult quotient_by_blocks(const CommGraph& g, int tasks_per_node);

/// Traffic-aware packing: greedily merge the heaviest remaining edge whose
/// endpoints' groups still fit (classic heavy-edge matching, iterated).
QuotientResult quotient_by_affinity(const CommGraph& g, int tasks_per_node);

}  // namespace hfast::graph
