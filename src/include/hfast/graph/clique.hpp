#pragma once
/// \file clique.hpp
/// Greedy edge-clique-cover heuristic. The paper (§5.3/§6) reduces optimal
/// HFAST switch-block assignment to the clique-mapping problem of Kou,
/// Stockmeyer & Wong [12], which is NP-complete in general; this module
/// provides the polynomial-time heuristic the clique-based provisioner
/// builds on: cover all edges with cliques, preferring large cliques so a
/// whole clique can share one switch block's internal crossbar.

#include <vector>

#include "hfast/graph/comm_graph.hpp"

namespace hfast::graph {

struct Clique {
  std::vector<Node> members;  // sorted
};

/// Cover every edge of `g` with cliques of size <= max_size.
/// Greedy: repeatedly seed with an uncovered edge, grow by the vertex
/// adjacent to all current members that covers the most still-uncovered
/// edges, stop at max_size. Every edge appears in >= 1 returned clique.
std::vector<Clique> greedy_edge_clique_cover(const CommGraph& g,
                                             std::size_t max_size);

/// Validation helper: true iff every edge of `g` is inside some clique and
/// every clique is in fact complete in `g`.
bool is_valid_clique_cover(const CommGraph& g,
                           const std::vector<Clique>& cover);

}  // namespace hfast::graph
