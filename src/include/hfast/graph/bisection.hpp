#pragma once
/// \file bisection.hpp
/// Bisection-bandwidth demand of a communication graph: the traffic that
/// must cross the best balanced bipartition of the tasks. This quantifies
/// the paper's case-iv criterion — PARATEC "makes use of the bisection
/// bandwidth that a fully-connected network configuration provides" —
/// while stencil codes concentrate traffic inside any good half-split.
///
/// Finding the minimum balanced cut is NP-hard; we use the classic
/// Kernighan-Lin refinement from multiple deterministic starts, which is
/// exact on the structured graphs used in tests and a tight upper bound in
/// general.

#include <cstdint>
#include <vector>

#include "hfast/graph/comm_graph.hpp"

namespace hfast::graph {

struct BisectionResult {
  std::uint64_t cut_bytes = 0;    ///< best balanced-cut traffic found
  std::uint64_t total_bytes = 0;  ///< all edge traffic
  std::vector<bool> side;         ///< node -> partition side
  /// Fraction of traffic forced across the bisection (1.0 would mean every
  /// byte crosses; uniform all-to-all traffic gives ~0.5).
  double demand_fraction() const noexcept {
    return total_bytes == 0
               ? 0.0
               : static_cast<double>(cut_bytes) / static_cast<double>(total_bytes);
  }
};

struct BisectionParams {
  int restarts = 4;           ///< KL runs from different deterministic seeds
  std::uint64_t seed = 0xB15EC7ULL;
};

/// Minimum balanced-cut estimate via Kernighan-Lin (|sides| differ by at
/// most one node).
BisectionResult min_bisection(const CommGraph& g,
                              const BisectionParams& params = {});

}  // namespace hfast::graph
