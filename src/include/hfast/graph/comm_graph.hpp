#pragma once
/// \file comm_graph.hpp
/// The undirected, weighted communication-topology graph (paper §4.4):
/// vertices are tasks, an edge {i,j} aggregates every point-to-point message
/// exchanged between i and j in either direction (switch links are assumed
/// bidirectional, so the paper's matrices are symmetric). Each edge keeps
/// call counts, byte totals, and the largest single message — the quantity
/// the bandwidth-delay-product thresholding heuristic keys on.

#include <cstdint>
#include <map>
#include <span>
#include <utility>
#include <vector>

#include "hfast/ipm/report.hpp"
#include "hfast/util/assert.hpp"

namespace hfast::graph {

using Node = int;

struct EdgeStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t max_message = 0;

  void add(std::uint64_t msg_bytes, std::uint64_t count = 1) {
    messages += count;
    bytes += msg_bytes * count;
    if (msg_bytes > max_message) max_message = msg_bytes;
  }

  friend bool operator==(const EdgeStats&, const EdgeStats&) = default;
};

class CommGraph {
 public:
  explicit CommGraph(int num_nodes = 0);

  int num_nodes() const noexcept { return n_; }
  std::size_t num_edges() const noexcept { return edges_.size(); }

  /// Accumulate a transfer of `bytes` between u and v (order irrelevant).
  void add_message(Node u, Node v, std::uint64_t bytes, std::uint64_t count = 1);

  /// Merge precomputed edge statistics onto {u,v} verbatim. This is the
  /// deserialization path (store codec): unlike add_message it preserves a
  /// (messages, bytes, max_message) triple that no single message size could
  /// reproduce, so a decoded graph is field-identical to the encoded one.
  void add_edge_stats(Node u, Node v, const EdgeStats& stats);

  /// Build from a merged IPM workload profile's send-side message counts.
  static CommGraph from_profile(const ipm::WorkloadProfile& profile);

  const EdgeStats* edge(Node u, Node v) const;
  const std::map<std::pair<Node, Node>, EdgeStats>& edges() const noexcept {
    return edges_;
  }

  /// Distinct partners of `u` whose edge carries at least one message of
  /// size >= cutoff (cutoff 0 = raw connectivity).
  std::vector<Node> partners(Node u, std::uint64_t cutoff = 0) const;

  /// Degree of every node under the cutoff.
  std::vector<int> degrees(std::uint64_t cutoff = 0) const;

  /// Total bytes exchanged as a dense symmetric matrix (the (a) panels of
  /// Figures 5-10).
  std::vector<std::vector<double>> volume_matrix() const;

  /// Subgraph keeping only edges that survive the cutoff.
  CommGraph thresholded(std::uint64_t cutoff) const;

  std::uint64_t total_bytes() const;

 private:
  static std::pair<Node, Node> key(Node u, Node v) {
    return u < v ? std::pair{u, v} : std::pair{v, u};
  }

  int n_ = 0;
  std::map<std::pair<Node, Node>, EdgeStats> edges_;
  std::vector<std::vector<Node>> adjacency_;  // symmetric neighbor lists
};

}  // namespace hfast::graph
