#pragma once
/// \file tdc.hpp
/// Topological degree of communication (TDC) — the paper's central reduced
/// metric — and the cutoff sweeps behind the (b) panels of Figures 5-10.

#include <cstdint>
#include <vector>

#include "hfast/graph/comm_graph.hpp"

namespace hfast::graph {

/// The 2 KB bandwidth-delay-product threshold the paper standardizes on
/// (Table 1 / §2.4).
inline constexpr std::uint64_t kBdpCutoffBytes = 2048;

struct TdcStats {
  int max = 0;
  double avg = 0.0;
  int median = 0;
  int min = 0;
};

/// TDC statistics at a message-size cutoff.
TdcStats tdc(const CommGraph& g, std::uint64_t cutoff = 0);

/// The paper's cutoff axis: 0, 128, 256, 512, 1k, ..., 1024k.
std::vector<std::uint64_t> standard_cutoffs();

struct TdcSweepPoint {
  std::uint64_t cutoff = 0;
  TdcStats stats;
};

/// TDC at every cutoff in `cutoffs` (default: standard_cutoffs()).
std::vector<TdcSweepPoint> tdc_sweep(const CommGraph& g,
                                     std::vector<std::uint64_t> cutoffs = {});

/// Fraction of FCN links a code actually exercises: avg TDC / (P-1),
/// the paper's "FCN Circuit Utilization" column.
double fcn_utilization(const CommGraph& g, std::uint64_t cutoff);

}  // namespace hfast::graph
