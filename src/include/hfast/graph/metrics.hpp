#pragma once
/// \file metrics.hpp
/// Structural metrics behind the paper's case i-iv taxonomy (§2.5):
/// isotropy (is the communication pattern translation-invariant?) and
/// mesh-isomorphism (does it embed exactly into some regular mesh/torus?).

#include <cstdint>
#include <vector>

#include "hfast/graph/comm_graph.hpp"

namespace hfast::graph {

/// A pattern is isotropic when every node sees the same multiset of partner
/// *offsets* (v - u mod P). Regular torus decompositions (GTC's primary
/// pattern, LBMHD's interleaved lattice) are isotropic; master-worker and
/// scale-free patterns are not. Nodes on non-periodic boundaries are
/// tolerated via `tolerance`: the fraction of nodes allowed to deviate
/// (Cactus's 3D stencil is isotropic in the interior only).
bool is_isotropic(const CommGraph& g, std::uint64_t cutoff = 0,
                  double tolerance = 0.5);

/// Candidate grid shapes for P nodes in 1-3 dimensions (all ordered
/// factorizations; used by mesh-isomorphism testing).
std::vector<std::vector<int>> grid_factorizations(int p, int max_dims = 3);

/// True if the thresholded graph's edge set is a subgraph of some
/// <=3-dimensional mesh or torus neighbor structure under the natural
/// lexicographic rank->coordinate labeling. This is the paper's criterion
/// for "maps isomorphically onto a fixed mesh network" (case i): every edge
/// is a +-1 step in exactly one dimension.
bool embeds_in_mesh(const CommGraph& g, std::uint64_t cutoff = 0,
                    bool torus_wraparound = true);

/// Coefficient of variation of node degrees (0 = perfectly regular).
double degree_cv(const CommGraph& g, std::uint64_t cutoff = 0);

/// Number of connected components of the (thresholded) graph; isolated
/// nodes count as their own component.
int connected_components(const CommGraph& g, std::uint64_t cutoff = 0);

/// True when every node can reach every other through surviving edges.
/// A production code's point-to-point graph is connected in steady state;
/// a disconnected one usually signals a modeling bug (this check caught a
/// parity-preserving offset set in the LBMHD kernel).
inline bool is_connected(const CommGraph& g, std::uint64_t cutoff = 0) {
  return g.num_nodes() <= 1 || connected_components(g, cutoff) == 1;
}

}  // namespace hfast::graph
