#pragma once
/// \file cli.hpp
/// Shared command-line plumbing for the result cache, so every driver
/// (profile_apps, table3_summary, sec53_cost_model, ...) exposes the same
/// three flags with the same semantics:
///
///   --cache-dir DIR   persist completed experiments to DIR and reuse
///                     matching entries on re-runs (resumable sweeps)
///   --no-cache        ignore --cache-dir entirely
///   --cache-verify    validate every entry (CRC + decode) before the run,
///                     evicting corrupt ones
///
/// Usage in a driver's arg loop:
///
///   store::CacheCli cache;
///   for (int i = 1; i < argc; ++i) {
///     if (cache.consume(argc, argv, i)) continue;
///     ...driver-specific flags...
///   }
///   auto cache_store = cache.open(std::cerr);   // nullptr when disabled
///   ...BatchOptions opts; opts.result_store = cache_store.get();...
///   cache.report(std::cout, cache_store.get());

#include <iosfwd>
#include <memory>
#include <string>

#include "hfast/store/store.hpp"

namespace hfast::store {

struct CacheCli {
  std::string cache_dir;  ///< empty = caching off
  bool no_cache = false;
  bool verify = false;

  /// Returns true when argv[i] is one of the cache flags (advancing i over
  /// the flag's value if it takes one). Throws hfast::Error when
  /// --cache-dir is missing its argument.
  bool consume(int argc, char** argv, int& i);

  /// The usage lines for the three flags (for drivers' help text).
  static const char* help();

  /// Open the configured store, or nullptr when caching is off. When
  /// `verify` was requested, runs a verify pass (evicting corrupt entries)
  /// and describes it on `diag`.
  std::unique_ptr<ResultStore> open(std::ostream& diag) const;

  /// One-line cache traffic summary ("cache: 6 hits, 6 misses, ...");
  /// no-op when `cache_store` is null.
  static void report(std::ostream& os, const ResultStore* cache_store);
};

}  // namespace hfast::store
