#pragma once
/// \file fields.hpp
/// Single source of truth for the named fields of ExperimentConfig.
///
/// The binary codec (store/codec.cpp) and the JSON exporter
/// (analysis/export.cpp) both iterate this visitor, in this order, so a
/// field added here is automatically serialized in both forms and a field
/// name can never drift between them. Visitors receive (name, reference)
/// pairs and dispatch on the reference type:
///   std::string, int, bool, std::uint64_t, mpisim::EngineKind,
///   core::SmpPacking.
///
/// ORDER AND NAMES ARE PART OF THE ON-DISK FORMAT: reordering, renaming, or
/// retyping a field changes every cache key and store payload — bump
/// store::kFormatVersion when you touch this list.

#include <utility>

#include "hfast/analysis/experiment.hpp"

namespace hfast::store {

/// Visit every field of an ExperimentConfig (const or mutable) in canonical
/// order. Encoding visits a `const ExperimentConfig&`; decoding visits a
/// mutable one and assigns through the references, so the two directions
/// cannot disagree about the field list.
template <typename Config, typename Visitor>
void visit_config_fields(Config& config, Visitor&& visit) {
  visit("app", config.app);
  visit("nranks", config.nranks);
  visit("iterations", config.iterations);
  visit("seed", config.seed);
  visit("capture_trace", config.capture_trace);
  visit("engine", config.engine);
  visit("sched_seed", config.sched_seed);
  visit("smp_cores_per_node", config.smp.cores_per_node);
  visit("smp_packing", config.smp.packing);
}

}  // namespace hfast::store
