#pragma once
/// \file store.hpp
/// hfast::store — durable, content-addressed experiment store.
///
/// Every paper artifact is produced by sweeping run_experiment over
/// app × P × cutoff × seed; at P=1024/4096 a single failed job in a
/// 100-job sweep used to throw away minutes of work. The store turns that
/// sweep into incremental evaluation: each completed ExperimentResult is
/// persisted under a key derived from its config the moment it finishes,
/// and a re-run of the same sweep loads hits instead of recomputing —
/// a killed sweep resumes from where it died.
///
/// On-disk layout (one file per entry, `<dir>/<016x-key>.hfe`):
///
///     magic   "HFST"                      4 bytes
///     u32     format version (codec.hpp)
///     u64     cache key (redundant with the filename; cross-checked)
///     u64     payload length
///     bytes   canonical result payload (store/codec)
///     u32     CRC32 of the payload
///
/// Crash-safety protocol: the payload is written to a unique temp file in
/// the same directory, fsync'd, then atomically renamed over the final
/// name (POSIX rename within a directory is atomic), and the directory is
/// fsync'd so the entry survives power loss. Readers therefore never see a
/// half-written entry under a final name; anything torn (truncated file,
/// flipped bit, stale version) fails the frame/CRC/decode checks and is
/// treated as a cache miss, never an error.

#include <cstdint>
#include <filesystem>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "hfast/analysis/experiment.hpp"
#include "hfast/store/codec.hpp"

namespace hfast::store {

/// Cumulative cache traffic counters for one store instance.
struct CacheCounters {
  std::uint64_t hits = 0;            ///< load() returned a result
  std::uint64_t misses = 0;          ///< load() found nothing usable
  std::uint64_t stores = 0;          ///< save() persisted an entry
  std::uint64_t corrupt_misses = 0;  ///< subset of misses: entry existed but
                                     ///< failed validation
  std::uint64_t store_failures = 0;  ///< save() could not persist
};

/// One entry as seen by the index API.
struct EntryInfo {
  std::uint64_t key = 0;
  std::filesystem::path path;
  std::uintmax_t file_bytes = 0;
  bool valid = false;
  std::string error;  ///< why validation failed (empty when valid)
  /// Decoded config for valid entries (label, app, P, seed, engine).
  std::optional<analysis::ExperimentConfig> config;
};

struct StoreStats {
  std::size_t entries = 0;  ///< total entry files
  std::size_t valid = 0;
  std::size_t corrupt = 0;
  std::uintmax_t total_bytes = 0;
};

struct VerifyReport {
  std::size_t checked = 0;
  std::size_t ok = 0;
  std::vector<EntryInfo> corrupt;
  std::size_t evicted = 0;  ///< corrupt entries removed (when requested)
};

/// Content-addressed result store over one directory. Thread-safe: sweep
/// workers save concurrently while the admission thread probes loads.
class ResultStore {
 public:
  /// Opens (creating if needed) the store directory; throws hfast::Error
  /// when the path exists but is not a directory or cannot be created.
  explicit ResultStore(std::filesystem::path dir);

  const std::filesystem::path& dir() const noexcept { return dir_; }

  /// The content address of a config (see codec.hpp::config_key).
  static std::uint64_t key(const analysis::ExperimentConfig& config) {
    return config_key(config);
  }
  /// "<016x-key>.hfe".
  static std::string entry_filename(std::uint64_t key);
  std::filesystem::path entry_path(
      const analysis::ExperimentConfig& config) const;

  /// Cache probe: returns the stored result for this exact config, or
  /// nullopt on absence *or* any validation failure (bad magic/version/key,
  /// CRC mismatch, truncation, decode error, or a key collision where the
  /// stored config differs from the requested one). Never throws for a bad
  /// entry — corrupt data is a miss by contract.
  std::optional<analysis::ExperimentResult> load(
      const analysis::ExperimentConfig& config);

  /// Persist a completed result (write-temp + fsync + atomic rename).
  /// Returns false (and counts a store_failure) on I/O errors instead of
  /// throwing: a sweep must never lose a computed result to a full disk.
  bool save(const analysis::ExperimentResult& result);

  CacheCounters counters() const;

  // --- index / GC ----------------------------------------------------------

  /// Every entry file, sorted by filename; validates each (frame + CRC +
  /// decode) and carries the decoded config for valid ones.
  std::vector<EntryInfo> list() const;

  StoreStats stats() const;

  /// Remove the entry for `key` if present; returns true when removed.
  bool evict(std::uint64_t key);

  /// Remove every entry; returns how many were removed.
  std::size_t evict_all();

  /// Re-validate every entry, optionally deleting the corrupt ones.
  VerifyReport verify(bool evict_corrupt = false);

 private:
  EntryInfo inspect_entry(const std::filesystem::path& path) const;

  std::filesystem::path dir_;
  mutable std::mutex mutex_;  ///< guards counters_ and temp-name sequencing
  CacheCounters counters_;
  std::uint64_t temp_seq_ = 0;
};

}  // namespace hfast::store
