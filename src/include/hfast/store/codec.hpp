#pragma once
/// \file codec.hpp
/// Canonical binary serialization for experiment configs and results.
///
/// Properties the store depends on:
///  * **Canonical** — one config has exactly one encoding (fixed field
///    order from store/fields.hpp, fixed-width little-endian integers,
///    length-prefixed strings), so the byte stream itself can be hashed
///    into the cache key.
///  * **Platform-independent** — bytes are assembled explicitly, never
///    memcpy'd from structs, so the same experiment produces the same
///    entry on any host.
///  * **Hostile-input safe** — every Decoder read bounds-checks against
///    the remaining payload and throws hfast::Error on truncation, and
///    container counts are validated against the bytes that must back
///    them before anything is allocated. A corrupt payload can only ever
///    produce a clean error, never UB or an absurd allocation.
///
/// The codec covers the *payload* only; framing (magic, version, key,
/// CRC32 footer) lives in store.cpp. kFormatVersion is baked into both the
/// frame and the cache key, so a format change invalidates old entries
/// instead of misreading them.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "hfast/analysis/experiment.hpp"

namespace hfast::store {

/// Bump on ANY change to the encoding (field list, order, widths) — this
/// salts every cache key and is checked in every entry header.
inline constexpr std::uint32_t kFormatVersion = 2;

/// Append-only canonical byte assembler.
class Encoder {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }
  /// u32 byte length + raw bytes.
  void str(std::string_view v);

  const std::vector<std::byte>& bytes() const noexcept { return buf_; }
  std::vector<std::byte> take() noexcept { return std::move(buf_); }

 private:
  std::vector<std::byte> buf_;
};

/// Bounds-checked reader over an encoded payload.
class Decoder {
 public:
  explicit Decoder(std::span<const std::byte> bytes) : data_(bytes) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  bool boolean();
  std::string str();

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool done() const noexcept { return remaining() == 0; }

  /// Throws unless at least `min_bytes_each * count` bytes remain — called
  /// before allocating `count` container elements from a length field.
  void expect_backing(std::uint64_t count, std::size_t min_bytes_each) const;

 private:
  std::span<const std::byte> take(std::size_t n);

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

// --- experiment payloads ---------------------------------------------------

/// Canonical config encoding — also the preimage of the cache key.
void encode_config(Encoder& enc, const analysis::ExperimentConfig& config);
analysis::ExperimentConfig decode_config(Decoder& dec);

/// Full result encoding: config, wall time, both workload profiles, both
/// communication graphs, the event trace, and the SMP packing artifacts.
void encode_result(Encoder& enc, const analysis::ExperimentResult& result);
analysis::ExperimentResult decode_result(Decoder& dec);

/// Stable cache key: FNV-1a/64 over (kFormatVersion || canonical config
/// bytes). Identical configs map to identical keys on every platform and
/// in every future session; any config field change changes the key.
std::uint64_t config_key(const analysis::ExperimentConfig& config);

}  // namespace hfast::store
