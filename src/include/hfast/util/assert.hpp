#pragma once
/// \file assert.hpp
/// Error handling primitives for the hfast library.
///
/// Following the C++ Core Guidelines (I.6/E.12), preconditions are checked
/// with HFAST_EXPECTS and internal invariants with HFAST_ENSURES /
/// HFAST_ASSERT. Violations throw hfast::ContractViolation (rather than
/// aborting) so tests can assert on misuse and long simulation runs can
/// report a usable diagnostic.

#include <stdexcept>
#include <string>

namespace hfast {

/// Thrown when a precondition, postcondition, or invariant is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

/// Thrown for runtime failures that are not programming errors
/// (e.g. malformed trace files, infeasible provisioning requests).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void contract_fail(const char* kind, const char* expr,
                                const char* file, int line,
                                const std::string& msg);
}  // namespace detail

}  // namespace hfast

#define HFAST_CONTRACT_CHECK(kind, cond, msg)                               \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::hfast::detail::contract_fail(kind, #cond, __FILE__, __LINE__, msg); \
    }                                                                       \
  } while (false)

/// Precondition check: caller passed bad arguments.
#define HFAST_EXPECTS(cond) HFAST_CONTRACT_CHECK("precondition", cond, "")
#define HFAST_EXPECTS_MSG(cond, msg) HFAST_CONTRACT_CHECK("precondition", cond, msg)

/// Postcondition / invariant check: internal logic error.
#define HFAST_ENSURES(cond) HFAST_CONTRACT_CHECK("postcondition", cond, "")
#define HFAST_ASSERT(cond) HFAST_CONTRACT_CHECK("invariant", cond, "")
#define HFAST_ASSERT_MSG(cond, msg) HFAST_CONTRACT_CHECK("invariant", cond, msg)
