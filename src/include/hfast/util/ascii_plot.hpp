#pragma once
/// \file ascii_plot.hpp
/// Text rendering of the paper's figures: multi-series line charts
/// (TDC-vs-cutoff, buffer-size CDFs) and communication-volume heatmaps
/// (the (a) panels of Figures 5-10). Pure text so bench output is
/// self-contained in a terminal or log file.

#include <cstdint>
#include <string>
#include <vector>

namespace hfast::util {

struct Series {
  std::string name;
  std::vector<double> y;  ///< one value per shared x tick
};

/// Render a multi-series chart: `x_labels.size()` columns, `height` rows.
/// Each series is drawn with its own glyph; a legend follows the chart.
std::string line_chart(const std::string& title,
                       const std::vector<std::string>& x_labels,
                       const std::vector<Series>& series, int height = 16);

/// Render an NxN matrix as a density heatmap using a character ramp.
/// Values are normalized to the matrix max; `cells` limits the rendered
/// resolution (the matrix is downsampled by max-pooling when larger).
std::string heatmap(const std::string& title,
                    const std::vector<std::vector<double>>& matrix,
                    int cells = 64);

}  // namespace hfast::util
