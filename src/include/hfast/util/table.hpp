#pragma once
/// \file table.hpp
/// Aligned plain-text tables and CSV emission for benchmark/report output.
/// Every paper table/figure harness prints through this so the rows are
/// uniform and machine-greppable.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace hfast::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Begin a new row; subsequent add() calls fill it left to right.
  Table& row();

  Table& add(const std::string& cell);
  Table& add(const char* cell);
  Table& add(std::int64_t v);
  Table& add(std::uint64_t v);
  Table& add(int v) { return add(static_cast<std::int64_t>(v)); }
  /// Doubles are formatted with `decimals` fraction digits.
  Table& add(double v, int decimals = 2);

  std::size_t num_rows() const noexcept { return rows_.size(); }

  /// Render as an aligned text table with a header separator.
  void print(std::ostream& os) const;

  /// Render as CSV (RFC-4180 quoting for cells containing , or ").
  void print_csv(std::ostream& os) const;

  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print a section banner, e.g. "== Table 3: summary ==".
void print_banner(std::ostream& os, const std::string& title);

}  // namespace hfast::util
