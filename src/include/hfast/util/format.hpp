#pragma once
/// \file format.hpp
/// Small formatting helpers: human-readable byte counts, fixed-precision
/// percentages, and axis labels for size sweeps (mirrors the paper's
/// "128 256 512 1k 2k ... 1024k" cutoff axis).

#include <cstdint>
#include <string>

namespace hfast::util {

/// "0", "64", "2k", "1MB"-style size label used on cutoff axes.
std::string size_label(std::uint64_t bytes);

/// "1.9 GB/s" style rate label for bandwidth values in bytes/second.
std::string rate_label(double bytes_per_second);

/// "46 KB" style label with one decimal when < 10 units.
std::string bytes_label(double bytes);

/// "12.3%" with the given number of decimals.
std::string percent_label(double percent, int decimals = 1);

/// "1.1us" / "3.2ms" style label for a duration in seconds.
std::string time_label(double seconds);

}  // namespace hfast::util
