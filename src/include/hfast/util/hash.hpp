#pragma once
/// \file hash.hpp
/// Stable, platform-independent hashing primitives for durable artifacts.
///
/// The experiment store keys entries by a hash of the canonically encoded
/// config and guards payloads with a CRC32 footer; both must produce the
/// same bits on every platform and toolchain forever, so neither can be
/// std::hash (implementation-defined) or hardware CRC intrinsics (absent on
/// some hosts). FNV-1a/64 over canonical little-endian bytes gives the key;
/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) gives the footer.

#include <cstddef>
#include <cstdint>
#include <span>

namespace hfast::util {

inline constexpr std::uint64_t kFnv1a64Offset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnv1a64Prime = 0x100000001b3ULL;

/// FNV-1a over a byte span, resumable via `state` for incremental hashing.
constexpr std::uint64_t fnv1a64(std::span<const std::byte> bytes,
                                std::uint64_t state = kFnv1a64Offset) noexcept {
  for (std::byte b : bytes) {
    state ^= static_cast<std::uint64_t>(b);
    state *= kFnv1a64Prime;
  }
  return state;
}

/// CRC-32 (IEEE) over a byte span, resumable: pass a previous return value
/// as `crc` to extend the checksum. Initial call uses the default.
std::uint32_t crc32(std::span<const std::byte> bytes,
                    std::uint32_t crc = 0) noexcept;

}  // namespace hfast::util
