#pragma once
/// \file random.hpp
/// Deterministic, fast pseudo-random number generation.
///
/// Simulation reproducibility demands explicit seeding and stable streams
/// across platforms, so we implement splitmix64 (seeding) and xoshiro256**
/// (generation) rather than relying on implementation-defined std::
/// distributions. All distribution helpers here are bit-stable.

#include <array>
#include <cstdint>
#include <vector>

#include "hfast/util/assert.hpp"

namespace hfast::util {

/// splitmix64 step; used to expand a single seed into generator state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& s : state_) {
      s = splitmix64(sm);
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound) {
    HFAST_EXPECTS(bound > 0);
    // Lemire's multiply-shift rejection method: unbiased and fast.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (-bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_in(std::int64_t lo, std::int64_t hi) {
    HFAST_EXPECTS(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    uniform(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) noexcept { return uniform01() < p; }

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[uniform(i)]);
    }
  }

  /// Sample k distinct values from [0, n) in deterministic order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace hfast::util
