#pragma once
/// \file json.hpp
/// Minimal streaming JSON writer. Every machine-readable artifact this repo
/// emits (BENCH_*.json, per-experiment exports, store stats dumps) routes
/// through this one writer so quoting, escaping, and number formatting
/// cannot drift between emitters. Output is pretty-printed with two-space
/// indentation and stable key order (the caller's call order).

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace hfast::util {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}
  ~JsonWriter() { finish(); }

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Key inside an object; must be followed by a value or container.
  void key(std::string_view name);

  void value(std::string_view v);
  void value(const char* v) { value(std::string_view(v)); }
  void value(bool v);
  void value(double v);
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }

  /// key + value in one call.
  template <typename T>
  void field(std::string_view name, T&& v) {
    key(name);
    value(std::forward<T>(v));
  }

  /// Close any open containers and emit the trailing newline (also run by
  /// the destructor, so a writer can simply go out of scope).
  void finish();

 private:
  enum class Frame : std::uint8_t { kObject, kArray };

  void separate();  ///< comma/newline/indent before a new element
  void indent();
  void write_escaped(std::string_view s);

  std::ostream& os_;
  std::vector<Frame> stack_;
  std::vector<bool> has_elems_;
  bool pending_key_ = false;
  bool finished_ = false;
};

}  // namespace hfast::util
