#pragma once
/// \file histogram.hpp
/// Log-scale histograms and cumulative distributions over message sizes.
///
/// The paper's Figures 3 and 4 are "cumulatively histogramed buffer sizes":
/// for each buffer size s, the percentage of calls whose buffer is <= s.
/// LogHistogram stores exact (size -> count) pairs (buffer-size alphabets in
/// real codes are small, exactly why IPM's hashing works) and renders both
/// the exact CDF and a log-bucketed view.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hfast::util {

/// One point of a cumulative distribution: percentage of calls with
/// buffer size <= `size`.
struct CdfPoint {
  std::uint64_t size = 0;
  double cumulative_percent = 0.0;
};

class LogHistogram {
 public:
  void add(std::uint64_t size, std::uint64_t count = 1) {
    counts_[size] += count;
    total_ += count;
  }

  void merge(const LogHistogram& other);

  std::uint64_t total() const noexcept { return total_; }
  bool empty() const noexcept { return total_ == 0; }

  /// Exact cumulative distribution over the distinct sizes observed.
  std::vector<CdfPoint> cdf() const;

  /// Percentage of calls with size <= threshold.
  double percent_at_or_below(std::uint64_t threshold) const;

  /// Median size weighted by call count (lower median).
  std::uint64_t median() const;

  std::uint64_t min_size() const;
  std::uint64_t max_size() const;

  /// Sum over all entries of size * count.
  std::uint64_t total_bytes() const;

  const std::map<std::uint64_t, std::uint64_t>& raw() const noexcept {
    return counts_;
  }

  /// Counts re-bucketed to powers of two, as (bucket upper bound, count).
  /// Bucket k holds sizes in (2^(k-1), 2^k]; size 0 lands in bucket 0.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> pow2_buckets() const;

 private:
  std::map<std::uint64_t, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace hfast::util
