#pragma once
/// \file stats.hpp
/// Scalar statistics used throughout the analysis layer: means, medians,
/// percentiles, and weighted medians over (value, count) multisets — the
/// latter is how "median buffer size" in Table 3 is computed without
/// materializing one element per call.

#include <cstdint>
#include <map>
#include <vector>

namespace hfast::util {

double mean(const std::vector<double>& v);
double stddev(const std::vector<double>& v);

/// Percentile via linear interpolation between closest ranks; q in [0,100].
double percentile(std::vector<double> v, double q);

double median(std::vector<double> v);

/// Median of a multiset given as value -> multiplicity.
/// With an even total count, returns the lower median (a value that actually
/// occurs), matching how IPM-style reports quote buffer sizes.
std::uint64_t weighted_median(const std::map<std::uint64_t, std::uint64_t>& counts);

/// Simple online accumulator (count / min / max / sum).
class Accumulator {
 public:
  void add(double x) noexcept {
    if (n_ == 0 || x < min_) min_ = x;
    if (n_ == 0 || x > max_) max_ = x;
    sum_ += x;
    ++n_;
  }

  std::uint64_t count() const noexcept { return n_; }
  double sum() const noexcept { return sum_; }
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double mean() const noexcept { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace hfast::util
