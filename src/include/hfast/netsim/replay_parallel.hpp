#pragma once
/// \file replay_parallel.hpp
/// Partitioned-clock parallel trace replay: ranks are split into K
/// contiguous shards, each advancing its own ranks' local clocks over its
/// event streams on a dedicated thread. Cross-rank transfers are submitted
/// to a central sequencer through bounded queues and applied against the
/// shared network in the exact total order the serial replay would use —
/// `(injection time, rank, op)` lexicographic — inside a conservative
/// lookahead window derived from the network's minimum transfer latency.
/// The result is bit-identical to `replay()`: same doubles, same counters.
///
/// This is the classic conservative PDES recipe (SST/macro, LogGOPSim):
/// parallelism comes from rank-local event processing (clock bumps,
/// collectives, receive matching), while link contention — the only
/// globally-ordered resource — stays serialized. See DESIGN.md for the
/// lookahead derivation and the parity argument.

#include <cstddef>

#include "hfast/netsim/network.hpp"
#include "hfast/netsim/replay.hpp"
#include "hfast/trace/trace.hpp"

namespace hfast::netsim {

struct ParallelReplayOptions {
  /// Rank shards (= worker threads, counting the calling thread which runs
  /// shard 0 plus the sequencer). 0 picks min(hardware concurrency,
  /// nranks); any value is clamped to [1, nranks].
  int shards = 0;

  /// Bounded capacity of each shard's transfer submission queue. Pure
  /// backpressure: any positive value is correct, smaller values just
  /// block producers earlier. Exercised directly by tests.
  std::size_t channel_capacity = std::size_t{1} << 15;
};

/// Replay `trace` on `net` across `options.shards` shards. Bit-identical
/// to serial `replay()` for every trace both accept; throws the same
/// `Error` on malformed events or stalled traces. Falls back to the serial
/// path when the network admits zero lookahead (no link latency and zero
/// send overhead), where conservative partitioning cannot make progress.
ReplayResult parallel_replay(const trace::Trace& trace, Network& net,
                             const ReplayParams& params = {},
                             const ParallelReplayOptions& options = {});

}  // namespace hfast::netsim
