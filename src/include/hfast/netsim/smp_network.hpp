#pragma once
/// \file smp_network.hpp
/// Task-level replay network for the SMP provisioning mode: endpoints are
/// tasks, the provisioned fabric connects SMP *nodes*, and a task reaches
/// its node through a backplane link tier with its own bandwidth/latency
/// and zero switch hops.
///
/// Model:
///  * A node hosting a single task IS that task — no backplane hop, no
///    extra vertex. The core owns the NIC, exactly the paper's baseline
///    single-processor-node picture. At cores_per_node = 1 this makes the
///    network structurally identical to FabricNetwork over the same
///    fabric, so replay results are bit-identical to the pre-SMP path
///    (the SmpParity contract).
///  * A node hosting several tasks gets a backplane hub vertex; each
///    co-resident task attaches to it by a duplex backplane link. Traffic
///    between co-resident tasks crosses two backplane links (src -> hub ->
///    dst) and zero packet switches; cross-node traffic pays the source
///    backplane, the node-level fabric route, and the destination
///    backplane. Contention on the shared hub links is exactly the
///    bandwidth-localization price the mode exists to study.

#include <string>
#include <vector>

#include "hfast/netsim/network.hpp"

namespace hfast::netsim {

/// Node-backplane tier defaults: shared-memory bandwidth well above a NIC
/// link, no switching logic. (The circuit tier default is LinkParams{}.)
inline constexpr LinkParams kBackplaneDefaults{
    /*latency_s=*/100e-9, /*bandwidth_bps=*/16e9, /*switch_overhead_s=*/0.0};

class SmpFabricNetwork final : public LinkNetwork {
 public:
  /// `fabric` is the node-level provisioned fabric (fabric.num_nodes() ==
  /// number of SMP nodes); `node_of_task` maps each task endpoint to its
  /// node. `circuit`/`block_overhead_s` parameterize the fabric tier as in
  /// FabricNetwork; `backplane` parameterizes the intra-node tier.
  SmpFabricNetwork(const core::Fabric& fabric, std::vector<int> node_of_task,
                   const LinkParams& circuit, const LinkParams& backplane,
                   double block_overhead_s);

  std::string name() const override { return "hfast-smp-fabric"; }
  int num_endpoints() const override {
    return static_cast<int>(node_of_task_.size());
  }
  double transfer(int src, int dst, std::uint64_t bytes, double start) override;
  /// Zero for co-resident tasks (backplane only); the node-level fabric's
  /// block count otherwise.
  int switch_hops(int src, int dst) const override;
  void prewarm_route(int src, int dst) override;

  int num_nodes() const { return fabric_.num_nodes(); }
  int node_of_task(int task) const {
    return node_of_task_[static_cast<std::size_t>(task)];
  }
  bool shares_node(int a, int b) const {
    return node_of_task(a) == node_of_task(b);
  }
  /// True when the node hosts >= 2 tasks (has a backplane hub vertex).
  bool node_has_backplane(int node) const {
    return hub_of_node_[static_cast<std::size_t>(node)] != -1;
  }

 private:
  struct RouteEntry {
    std::vector<int> links;
    int hops = 0;
  };

  /// Vertex standing in for node n on the fabric tier: its hub when
  /// multi-occupancy, else its lone task.
  int node_vertex(int node) const;
  int block_vertex(int block_id) const;
  const RouteEntry& route_entry(int src, int dst);

  const core::Fabric& fabric_;
  std::vector<int> node_of_task_;
  std::vector<int> hub_of_node_;   ///< node -> hub vertex (-1 = single task)
  std::vector<int> task_of_node_;  ///< node -> lone task (-1 = multi)
  int first_block_vertex_ = 0;
  std::map<std::pair<int, int>, RouteEntry> route_cache_;
};

}  // namespace hfast::netsim
