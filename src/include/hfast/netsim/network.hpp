#pragma once
/// \file network.hpp
/// Link-level network models used for trace replay. A transfer streams
/// through its path cut-through style: at each link the head waits for the
/// link to go idle, occupies it for the serialization time, and propagates
/// after the link latency (plus any switching overhead at the entry
/// element). Link occupancy persists across transfers — that is where
/// contention comes from.
///
/// Three concrete models:
///  * DirectNetwork  — a DirectTopology (mesh/torus/hypercube/FCN) with one
///    router per node; every inter-router link is a contended resource.
///  * FabricNetwork  — a provisioned HFAST fabric; host links and trunks are
///    contended, circuit hops add propagation only, packet-switch blocks add
///    per-hop switching overhead.
///  * FatTreeNetwork — full-bisection fat-tree modeled charitably: only the
///    endpoint injection/ejection links contend; the interior contributes
///    the analytic (2l-1)-switch latency. This biases *against* HFAST, so
///    latency wins reported for HFAST are conservative.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hfast/core/fabric.hpp"
#include "hfast/topo/fat_tree.hpp"
#include "hfast/topo/topology.hpp"

namespace hfast::netsim {

struct LinkParams {
  double latency_s = 50e-9;        ///< propagation + transit per link
  double bandwidth_bps = 2e9;      ///< serialization rate
  double switch_overhead_s = 50e-9;  ///< per-hop switching decision cost
};

class Network {
 public:
  virtual ~Network() = default;

  virtual std::string name() const = 0;
  virtual int num_endpoints() const = 0;

  /// Simulate an s-byte transfer injected at `start`; returns tail-arrival
  /// time. Mutates link occupancy (call reset() between experiments).
  virtual double transfer(int src, int dst, std::uint64_t bytes,
                          double start) = 0;

  virtual void reset() = 0;

  /// Packet switches traversed on the src->dst path (latency accounting
  /// and the paper's layer-count comparison).
  virtual int switch_hops(int src, int dst) const = 0;
};

/// Shared machinery: a vertex/link store with occupancy tracking.
class LinkNetwork : public Network {
 public:
  void reset() override;

 protected:
  struct Link {
    int from = -1;
    int to = -1;
    LinkParams params;
    double free_at = 0.0;
  };

  int add_vertex() { return num_vertices_++; }
  /// Adds the two directed links of a full-duplex connection; returns the
  /// forward link id (the reverse is id+1).
  int add_duplex_link(int a, int b, const LinkParams& params);

  /// Stream a message along the link-id path.
  double traverse(const std::vector<int>& link_path, std::uint64_t bytes,
                  double start);

  /// Directed link id from a to b (must exist).
  int link_between(int a, int b) const;

  int num_vertices_ = 0;
  std::vector<Link> links_;
  std::map<std::pair<int, int>, int> link_index_;
};

class DirectNetwork final : public LinkNetwork {
 public:
  DirectNetwork(const topo::DirectTopology& topo, const LinkParams& params);

  std::string name() const override { return "direct:" + topo_.name(); }
  int num_endpoints() const override { return topo_.num_nodes(); }
  double transfer(int src, int dst, std::uint64_t bytes, double start) override;
  int switch_hops(int src, int dst) const override;

 private:
  const std::vector<int>& path_links(int src, int dst);

  const topo::DirectTopology& topo_;
  std::map<std::pair<int, int>, std::vector<int>> route_cache_;
};

class FabricNetwork final : public LinkNetwork {
 public:
  /// `circuit` parameterizes node-fabric and trunk links (no switching
  /// logic: zero overhead is typical); `block_overhead_s` is the packet
  /// switch decision time per block traversed.
  FabricNetwork(const core::Fabric& fabric, const LinkParams& circuit,
                double block_overhead_s);

  std::string name() const override { return "hfast-fabric"; }
  int num_endpoints() const override { return fabric_.num_nodes(); }
  double transfer(int src, int dst, std::uint64_t bytes, double start) override;
  int switch_hops(int src, int dst) const override;

 private:
  const std::vector<int>& path_links(int src, int dst);
  int block_vertex(int block_id) const { return fabric_.num_nodes() + block_id; }

  const core::Fabric& fabric_;
  std::map<std::pair<int, int>, std::vector<int>> route_cache_;
  /// Hop-count memo, filled by path_links() and lazily by the const
  /// switch_hops() fallback for pairs queried before their first transfer.
  mutable std::map<std::pair<int, int>, int> route_hops_;
};

class FatTreeNetwork final : public LinkNetwork {
 public:
  FatTreeNetwork(const topo::FatTree& tree, const LinkParams& params);

  std::string name() const override { return tree_.name(); }
  int num_endpoints() const override { return tree_.num_procs(); }
  double transfer(int src, int dst, std::uint64_t bytes, double start) override;
  int switch_hops(int src, int dst) const override {
    return tree_.switch_traversals(src, dst);
  }

 private:
  topo::FatTree tree_;
  LinkParams params_;
  std::vector<int> inject_;  ///< per-endpoint injection link ids
  std::vector<int> eject_;
};

}  // namespace hfast::netsim
