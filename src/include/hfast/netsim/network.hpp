#pragma once
/// \file network.hpp
/// Link-level network models used for trace replay. A transfer streams
/// through its path cut-through style: at each link the head waits for the
/// link to go idle, occupies it for the serialization time, and propagates
/// after the link latency (plus any switching overhead at the entry
/// element). Link occupancy persists across transfers — that is where
/// contention comes from.
///
/// State is split in two:
///  * routing (vertices, links, route caches) is structurally immutable
///    once built and — after a prewarm_route() pass over the pairs a
///    replay will use — served through genuinely read-only query paths, so
///    several replay shards may safely share one network for route/hop
///    lookups;
///  * per-replay occupancy (when each link next goes idle) lives in a
///    separate `free_at` array cleared by reset(), and is only touched by
///    transfer(). Replays serialize transfer() calls (see
///    replay_parallel.cpp for how the parallel replay keeps that total
///    order deterministic).
///
/// Three concrete models:
///  * DirectNetwork  — a DirectTopology (mesh/torus/hypercube/FCN) with one
///    router per node; every inter-router link is a contended resource.
///  * FabricNetwork  — a provisioned HFAST fabric; host links and trunks are
///    contended, circuit hops add propagation only, packet-switch blocks add
///    per-hop switching overhead.
///  * FatTreeNetwork — full-bisection fat-tree modeled charitably: only the
///    endpoint injection/ejection links contend; the interior contributes
///    the analytic (2l-1)-switch latency. This biases *against* HFAST, so
///    latency wins reported for HFAST are conservative.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hfast/core/fabric.hpp"
#include "hfast/topo/fat_tree.hpp"
#include "hfast/topo/topology.hpp"

namespace hfast::netsim {

struct LinkParams {
  double latency_s = 50e-9;        ///< propagation + transit per link
  double bandwidth_bps = 2e9;      ///< serialization rate
  double switch_overhead_s = 50e-9;  ///< per-hop switching decision cost
};

class Network {
 public:
  virtual ~Network() = default;

  virtual std::string name() const = 0;
  virtual int num_endpoints() const = 0;

  /// Simulate an s-byte transfer injected at `start`; returns tail-arrival
  /// time. Mutates link occupancy (call reset() between experiments).
  virtual double transfer(int src, int dst, std::uint64_t bytes,
                          double start) = 0;

  /// Clear per-replay mutable state (link occupancy). Routing caches are
  /// deliberately kept: routes are a pure function of the topology.
  virtual void reset() = 0;

  /// Packet switches traversed on the src->dst path (latency accounting
  /// and the paper's layer-count comparison). Read-only: never mutates
  /// caches, so it is safe to call concurrently once routes are prewarmed
  /// (un-prewarmed pairs are recomputed on the fly instead of memoized).
  virtual int switch_hops(int src, int dst) const = 0;

  /// Populate the route cache for one ordered pair so later transfer() /
  /// switch_hops() queries are pure lookups. Replay calls this for every
  /// (src, dst) a trace contains before simulating a single event; models
  /// with closed-form routing (fat trees) need no warmup and keep the
  /// default no-op.
  virtual void prewarm_route(int src, int dst) {
    (void)src;
    (void)dst;
  }

  /// Conservative lower bound on (arrival - injection) for any transfer
  /// between distinct endpoints. The partitioned-clock parallel replay
  /// derives its lookahead from this: no message can arrive (and therefore
  /// wake a blocked rank) sooner than this after its injection time.
  virtual double min_transfer_latency_s() const { return 0.0; }
};

/// Shared machinery: a vertex/link store with occupancy tracking. Link
/// structure (endpoints, parameters) is immutable after construction; the
/// only mutable replay state is the parallel `free_at_` occupancy array.
class LinkNetwork : public Network {
 public:
  void reset() override;
  double min_transfer_latency_s() const override;

 protected:
  struct Link {
    int from = -1;
    int to = -1;
    LinkParams params;
  };

  int add_vertex() { return num_vertices_++; }
  /// Adds the two directed links of a full-duplex connection; returns the
  /// forward link id (the reverse is id+1).
  int add_duplex_link(int a, int b, const LinkParams& params);

  /// Registers one directed link (derived constructors that need
  /// asymmetric parameters); returns its id.
  int add_directed_link(int from, int to, const LinkParams& params);

  /// Stream a message along the link-id path.
  double traverse(const std::vector<int>& link_path, std::uint64_t bytes,
                  double start);

  /// Directed link id from a to b (must exist).
  int link_between(int a, int b) const;

  int num_vertices_ = 0;
  std::vector<Link> links_;
  std::map<std::pair<int, int>, int> link_index_;

 private:
  /// Per-replay mutable state, kept apart from the immutable link table:
  /// when each directed link next goes idle. Sized on first use so derived
  /// constructors may keep adding links after base construction.
  std::vector<double> free_at_;
};

class DirectNetwork final : public LinkNetwork {
 public:
  DirectNetwork(const topo::DirectTopology& topo, const LinkParams& params);

  std::string name() const override { return "direct:" + topo_.name(); }
  int num_endpoints() const override { return topo_.num_nodes(); }
  double transfer(int src, int dst, std::uint64_t bytes, double start) override;
  int switch_hops(int src, int dst) const override;
  void prewarm_route(int src, int dst) override;

 private:
  const std::vector<int>& path_links(int src, int dst);

  const topo::DirectTopology& topo_;
  std::map<std::pair<int, int>, std::vector<int>> route_cache_;
};

class FabricNetwork final : public LinkNetwork {
 public:
  /// `circuit` parameterizes node-fabric and trunk links (no switching
  /// logic: zero overhead is typical); `block_overhead_s` is the packet
  /// switch decision time per block traversed.
  FabricNetwork(const core::Fabric& fabric, const LinkParams& circuit,
                double block_overhead_s);

  std::string name() const override { return "hfast-fabric"; }
  int num_endpoints() const override { return fabric_.num_nodes(); }
  double transfer(int src, int dst, std::uint64_t bytes, double start) override;
  int switch_hops(int src, int dst) const override;
  void prewarm_route(int src, int dst) override;

 private:
  /// One prewarmed route: the link path and its hop count together, so the
  /// const switch_hops() query never has to mutate a side table.
  struct RouteEntry {
    std::vector<int> links;
    int hops = 0;
  };

  const RouteEntry& route_entry(int src, int dst);
  int block_vertex(int block_id) const { return fabric_.num_nodes() + block_id; }

  const core::Fabric& fabric_;
  std::map<std::pair<int, int>, RouteEntry> route_cache_;
};

class FatTreeNetwork final : public LinkNetwork {
 public:
  FatTreeNetwork(const topo::FatTree& tree, const LinkParams& params);

  std::string name() const override { return tree_.name(); }
  int num_endpoints() const override { return tree_.num_procs(); }
  double transfer(int src, int dst, std::uint64_t bytes, double start) override;
  int switch_hops(int src, int dst) const override {
    return tree_.switch_traversals(src, dst);
  }
  /// Endpoint links are zero-latency by construction; the analytic interior
  /// contributes at least one switch traversal per transfer.
  double min_transfer_latency_s() const override {
    return params_.latency_s + params_.switch_overhead_s;
  }

 private:
  topo::FatTree tree_;
  LinkParams params_;
  std::vector<int> inject_;  ///< per-endpoint injection link ids
  std::vector<int> eject_;
};

}  // namespace hfast::netsim
