#pragma once
/// \file fat_tree_net.hpp
/// Structural fat-tree network: a k-ary n-tree (k = radix/2) with explicit
/// switches and links, destination-based (D-mod-k) up-routing, and full
/// internal contention — the honest counterpart to netsim::FatTreeNetwork's
/// idealized non-blocking interior. Used by the fat-tree fidelity ablation:
/// the idealized model favors the fat-tree baseline, the structural model
/// shows what adversarial traffic does to a real tree.
///
/// Switch addressing: level l in [1, n] and position w in [0, k^(n-1)).
/// Endpoint e attaches to leaf (1, e/k). A switch (l, w) serves endpoint e
/// iff digits l-1..n-2 of w equal digits l..n-1 of e (low position digits
/// are the multipath freedom). Up-routing from s to d climbs to the first
/// level m where s and d share all digits >= m, rewriting each freed digit
/// to d's — so the descent is the unique down-path to d. Packet switches
/// traversed = 2m-1, matching the analytic topo::FatTree accounting.

#include <cstdint>
#include <string>
#include <vector>

#include "hfast/netsim/network.hpp"

namespace hfast::netsim {

class StructuralFatTree final : public LinkNetwork {
 public:
  /// Builds the smallest k-ary n-tree (k = radix/2 >= 2) with capacity
  /// k^n >= num_endpoints. Note: capacity differs from topo::FatTree's
  /// 2*(N/2)^L analytic form by up to one level; hop counts still follow
  /// the 2l-1 law.
  StructuralFatTree(int num_endpoints, int radix, const LinkParams& params);

  std::string name() const override;
  int num_endpoints() const override { return endpoints_; }
  double transfer(int src, int dst, std::uint64_t bytes, double start) override;
  int switch_hops(int src, int dst) const override;

  int levels() const noexcept { return levels_; }
  int arity() const noexcept { return k_; }
  std::uint64_t num_switches() const noexcept {
    return static_cast<std::uint64_t>(levels_) *
           static_cast<std::uint64_t>(positions_);
  }

  /// First level at which src and dst share a subtree (the paper's l in
  /// "2l-1 switch traversals").
  int common_level(int src, int dst) const;

 private:
  int switch_vertex(int level, int pos) const {
    return endpoints_ + (level - 1) * positions_ + pos;
  }
  /// Position digits: digit i of a position is base-k digit i.
  static int replace_digit(int pos, int digit_index, int value, int k);
  static int digit(int value, int digit_index, int k);

  std::vector<int> route_links(int src, int dst) const;

  int endpoints_;
  int k_;
  int levels_;
  int positions_;  // k^(levels-1)
};

}  // namespace hfast::netsim
