#pragma once
/// \file replay.hpp
/// Trace replay on a network model: every rank's recorded operation stream
/// is re-executed against simulated link state, respecting per-rank program
/// order and receive->send dependencies (FIFO channel matching, as MPI
/// guarantees per (source, destination) ordering).
///
/// Collectives ride the dedicated low-bandwidth tree network (paper §2.4):
/// each collective costs a log2(P)-depth tree traversal plus payload
/// serialization at tree bandwidth, applied to the local rank clock.

#include <cstdint>

#include "hfast/netsim/network.hpp"
#include "hfast/trace/trace.hpp"

namespace hfast::netsim {

struct ReplayParams {
  double send_overhead_s = 0.5e-6;  ///< per-op MPI software cost at sender
  double recv_overhead_s = 0.5e-6;
  double tree_hop_latency_s = 100e-9;   ///< collective tree per level
  double tree_bandwidth_bps = 350e6;    ///< low-bandwidth collective network
};

struct ReplayResult {
  double makespan_s = 0.0;        ///< max rank completion time
  double total_recv_wait_s = 0.0; ///< sum of blocking time in receives
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  double avg_message_latency_s = 0.0;
  double max_message_latency_s = 0.0;
  double avg_switch_hops = 0.0;
  int max_switch_hops = 0;

  /// Bitwise field equality — the serial-vs-parallel parity contract is
  /// exact double equality, not approximate.
  bool operator==(const ReplayResult&) const = default;
};

/// Replay the point-to-point + collective event stream of `trace` on `net`.
/// The network's link occupancy is reset first.
ReplayResult replay(const trace::Trace& trace, Network& net,
                    const ReplayParams& params = {});

}  // namespace hfast::netsim
