#pragma once
/// \file bdp.hpp
/// Bandwidth-delay products (paper §2.4, Table 1): the minimum message size
/// that can saturate a link, and the N1/2 half-performance message size.
/// Under the simulator's first-order transfer model
///     t(s) = latency + s/bandwidth
/// the message size with effective bandwidth = peak/2 is exactly
/// latency*bandwidth (the BDP); vendors' N1/2 figures are typically half
/// the BDP because of pipelining effects our model does not include — both
/// quantities are reported.

#include <cstdint>
#include <string>
#include <vector>

namespace hfast::netsim {

struct InterconnectSpec {
  std::string system;
  std::string technology;
  double mpi_latency_s = 0.0;       ///< one-way MPI latency, seconds
  double peak_bandwidth_bps = 0.0;  ///< bytes per second, per CPU
};

/// The five systems of the paper's Table 1.
std::vector<InterconnectSpec> table1_specs();

/// latency * bandwidth, in bytes.
double bandwidth_delay_product(const InterconnectSpec& spec);

/// Effective bandwidth for an s-byte non-pipelined message: s / t(s).
double effective_bandwidth(const InterconnectSpec& spec, std::uint64_t bytes);

/// Smallest message achieving at least `fraction` of peak bandwidth under
/// the first-order model (closed form: f/(1-f) * BDP).
double saturation_size(const InterconnectSpec& spec, double fraction);

/// The 2 KB threshold the paper standardizes on, justified by the best
/// (smallest) BDP across Table 1 hovering near 2 KB.
std::uint64_t paper_threshold_bytes();

}  // namespace hfast::netsim
