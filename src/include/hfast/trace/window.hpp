#pragma once
/// \file window.hpp
/// Time-windowed communication analysis (paper §6 future work): split a
/// trace into windows along each rank's operation stream and compute the
/// per-window topological requirements. This exposes the phase behaviour
/// the HFAST reconfiguration engine (hfast/reconfigure) exploits.

#include <cstdint>
#include <vector>

#include "hfast/graph/comm_graph.hpp"
#include "hfast/trace/trace.hpp"

namespace hfast::trace {

struct WindowStats {
  std::size_t window = 0;
  std::uint64_t bytes = 0;
  int max_tdc = 0;
  double avg_tdc = 0.0;
};

/// Per-window communication graphs. Window w of rank r covers the r-events
/// with op_index in [w*stride_r, (w+1)*stride_r) where stride_r divides that
/// rank's stream into `num_windows` near-equal parts.
std::vector<graph::CommGraph> windowed_graphs(const Trace& trace,
                                              std::size_t num_windows);

/// Reduced TDC series per window, with the given message-size cutoff.
std::vector<WindowStats> windowed_tdc(const Trace& trace,
                                      std::size_t num_windows,
                                      std::uint64_t cutoff_bytes);

}  // namespace hfast::trace
