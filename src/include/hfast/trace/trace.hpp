#pragma once
/// \file trace.hpp
/// Chronological communication event capture. The paper notes (§6) that a
/// full chronological trace of production codes is costly but that reduced,
/// windowed views are not; we record events in the simulator where capture
/// is free, and provide the windowed reductions on top (see window.hpp).

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "hfast/mpisim/observer.hpp"

namespace hfast::trace {

using mpisim::CallType;
using mpisim::Rank;

enum class EventKind : std::uint8_t {
  kSend,        ///< point-to-point injection
  kRecv,        ///< point-to-point completion
  kCollective,  ///< one collective call (peerless)
};

struct CommEvent {
  Rank rank = 0;              ///< world rank this event happened on
  std::uint64_t op_index = 0; ///< per-rank issue order
  EventKind kind = EventKind::kSend;
  CallType call = CallType::kSend;  ///< for collectives: which one
  Rank peer = mpisim::kNoPeer;      ///< world rank of the other endpoint
  std::uint64_t bytes = 0;
  std::uint16_t region = 0;  ///< index into Trace::region_names()

  friend bool operator==(const CommEvent&, const CommEvent&) = default;
};

/// Per-rank event recorder (a CommObserver).
class TraceRecorder final : public mpisim::CommObserver {
 public:
  explicit TraceRecorder(Rank rank) : rank_(rank) {}

  void on_call(CallType call, Rank peer, std::uint64_t bytes,
               double seconds) override;
  void on_message(Rank peer_world, std::uint64_t bytes, bool is_send) override;
  void on_region(std::string_view name, bool enter) override;

  const std::vector<CommEvent>& events() const noexcept { return events_; }
  const std::vector<std::string>& region_names() const noexcept {
    return region_names_;
  }
  Rank rank() const noexcept { return rank_; }

 private:
  std::uint16_t current_region() const noexcept {
    return stack_.empty() ? 0 : stack_.back();
  }

  Rank rank_;
  std::uint64_t next_op_ = 0;
  std::vector<CommEvent> events_;
  std::vector<std::string> region_names_{""};
  std::vector<std::uint16_t> stack_;
};

/// A whole job's merged trace.
class Trace {
 public:
  Trace() = default;
  Trace(int nranks, std::vector<CommEvent> events,
        std::vector<std::string> region_names);

  /// Merge per-rank recorders (region name tables are re-interned so ids are
  /// globally consistent).
  static Trace merge(std::span<const TraceRecorder* const> recorders);

  int nranks() const noexcept { return nranks_; }
  const std::vector<CommEvent>& events() const noexcept { return events_; }
  const std::vector<std::string>& region_names() const noexcept {
    return region_names_;
  }

  /// Events of one rank, in issue order.
  std::vector<CommEvent> rank_events(Rank r) const;

  /// Keep only events recorded in the named region ("" keeps everything).
  Trace filter_region(std::string_view region) const;

  /// Keep only point-to-point events (drop collectives).
  Trace point_to_point_only() const;

  std::uint64_t total_ptp_bytes() const;

  /// Line-oriented text serialization (stable, diffable).
  void save_text(std::ostream& os) const;
  static Trace load_text(std::istream& is);

 private:
  int nranks_ = 0;
  std::vector<CommEvent> events_;  // sorted by (rank, op_index)
  std::vector<std::string> region_names_{""};
};

}  // namespace hfast::trace
