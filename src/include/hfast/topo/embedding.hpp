#pragma once
/// \file embedding.hpp
/// Mapping an application communication graph onto a fixed direct topology
/// — the job-placement problem the paper argues fixed networks make hard
/// (§1). Quality is measured by dilation (hops per byte) and congestion
/// (hot-link load), computed under each topology's deterministic routing.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "hfast/graph/comm_graph.hpp"
#include "hfast/topo/topology.hpp"
#include "hfast/util/random.hpp"

namespace hfast::topo {

/// task -> node assignment (a permutation when sizes match).
struct Embedding {
  std::vector<Node> node_of_task;

  Node operator()(graph::Node task) const {
    return node_of_task[static_cast<std::size_t>(task)];
  }
};

struct EmbeddingQuality {
  double avg_dilation = 0.0;  ///< mean hops weighted by bytes
  int max_dilation = 0;       ///< worst hop count over edges
  std::uint64_t max_link_load = 0;   ///< bytes on the hottest link
  double avg_link_load = 0.0;        ///< mean bytes over used links
  std::uint64_t total_byte_hops = 0; ///< sum over edges of bytes*hops
};

/// Identity placement (task i on node i).
Embedding identity_embedding(int num_tasks);

/// Uniform random placement (the pessimal scheduler the paper worries
/// about when topology is unknown at job launch).
Embedding random_embedding(int num_tasks, int num_nodes, util::Rng& rng);

/// Greedy traffic-aware placement: tasks in decreasing traffic order, each
/// placed on the free node minimizing byte-weighted distance to already
/// placed partners.
Embedding greedy_embedding(const graph::CommGraph& g, const DirectTopology& topo);

/// Same, restricted to a subset of usable nodes (e.g. the healthy nodes of
/// a DegradedTopology, or the free nodes of a partially occupied machine).
Embedding greedy_embedding(const graph::CommGraph& g,
                           const DirectTopology& topo,
                           const std::vector<Node>& allowed_nodes);

/// Evaluate an embedding under the topology's deterministic routing.
EmbeddingQuality evaluate_embedding(const graph::CommGraph& g,
                                    const DirectTopology& topo,
                                    const Embedding& emb);

}  // namespace hfast::topo
