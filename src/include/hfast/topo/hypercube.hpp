#pragma once
/// \file hypercube.hpp
/// Binary hypercube: P = 2^d nodes, neighbors differ in one bit. One of the
/// regular topologies the paper cites for which bounded contractions are
/// findable algorithmically (§2.2).

#include "hfast/topo/topology.hpp"

namespace hfast::topo {

class Hypercube final : public DirectTopology {
 public:
  explicit Hypercube(int dimensions);

  std::string name() const override;
  int num_nodes() const override { return 1 << dims_; }
  std::vector<Node> neighbors(Node u) const override;
  int distance(Node u, Node v) const override;  // Hamming distance
  std::vector<Node> route(Node u, Node v) const override;  // fix bits LSB-first

  int dimensions() const noexcept { return dims_; }

 private:
  int dims_;
};

}  // namespace hfast::topo
