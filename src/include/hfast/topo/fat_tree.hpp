#pragma once
/// \file fat_tree.hpp
/// Analytic fat-tree model exactly as the paper's §5.3 accounting:
/// L layers of N-port switches give a fully connected network for
/// P = 2*(N/2)^L processors; switch ports per processor grow as
/// 1 + 2(L-1); a worst-case message traverses 2L-1 packet switches.
/// (The paper's prose quotes "21 layers" for L=6 where the formula gives
///  11; we follow the formula, see EXPERIMENTS.md.)

#include <cstdint>
#include <string>

#include "hfast/topo/topology.hpp"

namespace hfast::topo {

class FatTree {
 public:
  /// Smallest fat-tree of N-port switches covering `num_procs` endpoints.
  FatTree(int num_procs, int radix);

  std::string name() const;

  int num_procs() const noexcept { return procs_; }
  int radix() const noexcept { return radix_; }
  int levels() const noexcept { return levels_; }

  /// Endpoint capacity 2*(N/2)^L of the constructed tree (>= num_procs).
  std::uint64_t capacity() const noexcept { return capacity_; }

  /// The paper's per-processor switch-port growth rate: 1 + 2(L-1).
  int ports_per_processor() const noexcept { return 1 + 2 * (levels_ - 1); }

  std::uint64_t total_switch_ports() const noexcept {
    return static_cast<std::uint64_t>(procs_) *
           static_cast<std::uint64_t>(ports_per_processor());
  }

  std::uint64_t num_switches() const noexcept {
    return (total_switch_ports() + static_cast<std::uint64_t>(radix_) - 1) /
           static_cast<std::uint64_t>(radix_);
  }

  /// Packet switches traversed by a message from u to v: 2l-1 where l is
  /// the lowest level whose subtree contains both endpoints.
  int switch_traversals(Node u, Node v) const;

  int worst_case_traversals() const noexcept { return 2 * levels_ - 1; }

  /// Level-l subtree endpoint capacity: (N/2)^l below the top, full
  /// capacity at the top.
  std::uint64_t subtree_size(int level) const;

  /// Smallest L with num_procs <= 2*(N/2)^L.
  static int required_levels(int num_procs, int radix);

 private:
  int procs_;
  int radix_;
  int levels_;
  std::uint64_t capacity_;
};

}  // namespace hfast::topo
