#pragma once
/// \file degraded.hpp
/// Failure modeling for direct networks (paper §1): "individual link or
/// node failures in a lower-degree interconnection network are far more
/// disruptive than they are to a fully-interconnected topology". This
/// wrapper removes failed nodes/links from a base topology's wiring;
/// routing falls back to BFS around the damage, so dilation and congestion
/// under failure are measurable with the existing embedding machinery.

#include <set>
#include <utility>
#include <vector>

#include "hfast/topo/topology.hpp"

namespace hfast::topo {

class DegradedTopology final : public DirectTopology {
 public:
  explicit DegradedTopology(const DirectTopology& base) : base_(base) {}

  /// Mark a node failed: all its links go down. Traffic endpoints at the
  /// failed node become unroutable (route() throws), matching the paper's
  /// point that a mesh failure leaves a hole other traffic must skirt.
  void fail_node(Node u);

  /// Take down one bidirectional link.
  void fail_link(Node u, Node v);

  bool node_failed(Node u) const {
    return failed_nodes_.count(u) != 0;
  }
  int num_failed_nodes() const { return static_cast<int>(failed_nodes_.size()); }

  /// Healthy nodes, in id order (for placing jobs around the damage).
  std::vector<Node> healthy_nodes() const;

  std::string name() const override { return base_.name() + "+faults"; }
  int num_nodes() const override { return base_.num_nodes(); }
  std::vector<Node> neighbors(Node u) const override;
  // distance()/route() inherit the BFS fallback, which is exactly what a
  // fault-tolerant router must do: no analytic shortcut survives damage.

 private:
  const DirectTopology& base_;
  std::set<Node> failed_nodes_;
  std::set<std::pair<Node, Node>> failed_links_;
};

}  // namespace hfast::topo
