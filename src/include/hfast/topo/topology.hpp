#pragma once
/// \file topology.hpp
/// Direct (node-to-node) network topologies: the fixed-degree baselines the
/// paper compares HFAST against (meshes/torii as in BlueGene/L, RedStorm,
/// X1; hypercubes; and the fully-connected ideal).

#include <memory>
#include <string>
#include <vector>

#include "hfast/util/assert.hpp"

namespace hfast::topo {

using Node = int;

class DirectTopology {
 public:
  virtual ~DirectTopology() = default;

  virtual std::string name() const = 0;
  virtual int num_nodes() const = 0;

  /// Distinct direct neighbors of u (the wiring, not the traffic).
  virtual std::vector<Node> neighbors(Node u) const = 0;

  /// Hop distance between u and v. Default: BFS over neighbors().
  virtual int distance(Node u, Node v) const;

  /// A shortest route from u to v inclusive of endpoints.
  /// Default: BFS parent-chasing (deterministic: lowest-id expansion).
  virtual std::vector<Node> route(Node u, Node v) const;

  /// Per-node link count (radix) of the wiring; used by the cost model.
  virtual int max_degree() const;

  /// Total directed link count.
  std::size_t num_links() const;

 protected:
  void check_node(Node u) const {
    HFAST_EXPECTS(u >= 0 && u < num_nodes());
  }
};

}  // namespace hfast::topo
