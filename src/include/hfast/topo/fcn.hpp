#pragma once
/// \file fcn.hpp
/// Fully-connected network: every pair one hop apart. The idealized crossbar
/// endpoint of the paper's comparison (what fat-trees approximate).

#include "hfast/topo/topology.hpp"

namespace hfast::topo {

class FullyConnected final : public DirectTopology {
 public:
  explicit FullyConnected(int num_nodes) : n_(num_nodes) {
    HFAST_EXPECTS(num_nodes >= 1);
  }

  std::string name() const override {
    return "fcn(" + std::to_string(n_) + ")";
  }
  int num_nodes() const override { return n_; }

  std::vector<Node> neighbors(Node u) const override {
    check_node(u);
    std::vector<Node> out;
    out.reserve(static_cast<std::size_t>(n_ - 1));
    for (Node v = 0; v < n_; ++v) {
      if (v != u) out.push_back(v);
    }
    return out;
  }

  int distance(Node u, Node v) const override {
    check_node(u);
    check_node(v);
    return u == v ? 0 : 1;
  }

  std::vector<Node> route(Node u, Node v) const override {
    check_node(u);
    check_node(v);
    if (u == v) return {u};
    return {u, v};
  }

 private:
  int n_;
};

}  // namespace hfast::topo
