#pragma once
/// \file anneal.hpp
/// Simulated-annealing refinement of task-to-node embeddings. The paper's
/// §6 points at search-based optimization (it cites the genetic approach
/// used for Flat Neighborhood Networks) for improving topology mappings;
/// annealing over pairwise swaps is the classic, deterministic-under-seed
/// variant. Objective: byte-weighted hop count (total_byte_hops), the same
/// quantity evaluate_embedding reports.

#include <cstdint>

#include "hfast/topo/embedding.hpp"

namespace hfast::topo {

struct AnnealParams {
  std::uint64_t seed = 0xA11EA1ULL;
  int iterations = 20000;
  double initial_temperature = 0.0;  ///< 0 = auto (scaled to edge weight)
  double cooling = 0.999;            ///< geometric temperature decay per step
};

struct AnnealResult {
  Embedding embedding;
  std::uint64_t initial_cost = 0;  ///< byte*hops before refinement
  std::uint64_t final_cost = 0;
  int accepted_moves = 0;
  int improving_moves = 0;
};

/// Refine `start` by annealed pairwise swaps of node assignments.
/// Uses topo.distance() (analytic for mesh/torus/hypercube), so the cost of
/// one move is O(degree of the two swapped tasks).
AnnealResult anneal_embedding(const graph::CommGraph& g,
                              const DirectTopology& topo, Embedding start,
                              const AnnealParams& params = {});

}  // namespace hfast::topo
