#pragma once
/// \file mesh.hpp
/// k-ary n-dimensional mesh / torus with lexicographic node labeling and
/// analytic (dimension-ordered) routing.

#include <vector>

#include "hfast/topo/topology.hpp"

namespace hfast::topo {

class MeshTorus final : public DirectTopology {
 public:
  /// dims: extent per dimension (e.g. {8,8,4} = 8x8x4 grid).
  /// wraparound: torus links between first and last coordinate.
  MeshTorus(std::vector<int> dims, bool wraparound);

  std::string name() const override;
  int num_nodes() const override { return n_; }
  std::vector<Node> neighbors(Node u) const override;
  int distance(Node u, Node v) const override;
  /// Dimension-order (e-cube) route: resolve dimension 0 first, then 1, ...
  std::vector<Node> route(Node u, Node v) const override;

  bool is_torus() const noexcept { return wrap_; }
  const std::vector<int>& dims() const noexcept { return dims_; }

  std::vector<int> coords(Node u) const;
  Node node_at(const std::vector<int>& coords) const;

  /// Most-cubic shape for p nodes in `ndims` dimensions (greedy
  /// factorization); used when embedding arbitrary jobs.
  static std::vector<int> balanced_dims(int p, int ndims);

 private:
  std::vector<int> dims_;
  bool wrap_;
  int n_;
};

}  // namespace hfast::topo
