#include "hfast/core/provision.hpp"

#include <algorithm>
#include <map>

#include "hfast/graph/clique.hpp"

namespace hfast::core {

namespace {

/// A node-or-clique's chain of blocks. `remaining` counts trunk endpoints
/// this chain still has to supply; the invariant maintained by
/// choose_block() is that the active block has a free port whenever
/// remaining >= 1.
struct Group {
  std::vector<int> blocks;  // chain order; blocks[0] hosts the NIC(s)
  std::size_t active = 0;
  int remaining = 0;
};

/// Pick (and if necessary grow) the block that supplies this group's next
/// trunk endpoint. Returns (block id, index in chain).
std::pair<int, int> choose_block(Fabric& fabric, Group& g) {
  HFAST_ASSERT_MSG(g.remaining >= 1, "group has no outstanding demand");
  int b = g.blocks[g.active];
  const int free = fabric.block(b).num_free();
  HFAST_ASSERT_MSG(free >= 1, "group invariant violated: active block full");
  if (free == 1 && g.remaining > 1) {
    // Spend the last port on a chain link so later edges have somewhere
    // to land, then serve this edge from the new block.
    const int nb = fabric.add_block();
    fabric.connect_trunk(b, nb);
    g.blocks.push_back(nb);
    ++g.active;
    b = nb;
  }
  --g.remaining;
  return {b, static_cast<int>(g.active)};
}

struct EdgeRef {
  int u, v;
};

ProvisionStats wire_edges(Fabric& fabric, std::vector<Group>& group_of_node,
                          const std::vector<int>& group_index,
                          const std::vector<EdgeRef>& edges) {
  ProvisionStats stats;
  double sum_traversals = 0.0;
  double sum_hops = 0.0;

  for (const EdgeRef& e : edges) {
    const int gu = group_index[static_cast<std::size_t>(e.u)];
    const int gv = group_index[static_cast<std::size_t>(e.v)];
    int hops = 0;
    if (gu == gv) {
      // Same home block: the edge rides the block's internal crossbar.
      ++stats.internal_edges;
      hops = 1;
    } else {
      const auto [bu, iu] = choose_block(fabric, group_of_node[static_cast<std::size_t>(gu)]);
      const auto [bv, iv] = choose_block(fabric, group_of_node[static_cast<std::size_t>(gv)]);
      fabric.connect_trunk(bu, bv);
      // Path: u -> chain blocks down to iu -> trunk -> chain up from iv -> v.
      hops = (iu + 1) + (iv + 1);
    }
    const int traversals = hops + 1;
    ++stats.edges_provisioned;
    sum_hops += hops;
    sum_traversals += traversals;
    stats.max_switch_hops = std::max(stats.max_switch_hops, hops);
    stats.max_circuit_traversals =
        std::max(stats.max_circuit_traversals, traversals);
  }

  if (stats.edges_provisioned > 0) {
    sum_hops /= stats.edges_provisioned;
    sum_traversals /= stats.edges_provisioned;
  }
  stats.avg_switch_hops = sum_hops;
  stats.avg_circuit_traversals = sum_traversals;
  stats.num_blocks = fabric.num_blocks();
  stats.num_trunks = fabric.total_trunk_ports() / 2;
  return stats;
}

std::vector<EdgeRef> surviving_edges(const graph::CommGraph& g,
                                     std::uint64_t cutoff) {
  std::vector<EdgeRef> out;
  for (const auto& [uv, es] : g.edges()) {
    if (es.max_message < cutoff) continue;
    out.push_back({uv.first, uv.second});
  }
  return out;
}

Provisioned provision_greedy_impl(const graph::CommGraph& g,
                                  const ProvisionParams& params) {
  Fabric fabric(g.num_nodes(), params.block_size);
  const auto edges = surviving_edges(g, params.cutoff);

  std::vector<int> degree(static_cast<std::size_t>(g.num_nodes()), 0);
  for (const EdgeRef& e : edges) {
    ++degree[static_cast<std::size_t>(e.u)];
    ++degree[static_cast<std::size_t>(e.v)];
  }

  // One group (initially one block) per node; chains grow on demand and end
  // up matching greedy_blocks_for_degree (asserted in tests).
  std::vector<Group> groups(static_cast<std::size_t>(g.num_nodes()));
  std::vector<int> group_index(static_cast<std::size_t>(g.num_nodes()));
  for (int n = 0; n < g.num_nodes(); ++n) {
    const int b = fabric.add_block();
    fabric.attach_host(n, b);
    groups[static_cast<std::size_t>(n)].blocks = {b};
    groups[static_cast<std::size_t>(n)].remaining =
        degree[static_cast<std::size_t>(n)];
    group_index[static_cast<std::size_t>(n)] = n;
  }

  ProvisionStats stats = wire_edges(fabric, groups, group_index, edges);
  return Provisioned{std::move(fabric), stats};
}

Provisioned provision_clique_impl(const graph::CommGraph& g,
                                  const ProvisionParams& params) {
  Fabric fabric(g.num_nodes(), params.block_size);
  const auto tg = g.thresholded(params.cutoff);
  const std::size_t max_clique =
      params.max_clique > 0
          ? std::min<std::size_t>(params.max_clique,
                                  static_cast<std::size_t>(params.block_size - 1))
          : static_cast<std::size_t>(params.block_size - 1);

  auto cover = graph::greedy_edge_clique_cover(tg, max_clique);
  std::sort(cover.begin(), cover.end(),
            [](const graph::Clique& a, const graph::Clique& b) {
              if (a.members.size() != b.members.size()) {
                return a.members.size() > b.members.size();
              }
              return a.members < b.members;  // deterministic tie-break
            });

  // Home assignment: biggest cliques first; members not yet homed share the
  // clique's block.
  std::vector<int> group_index(static_cast<std::size_t>(g.num_nodes()), -1);
  std::vector<Group> groups;
  for (const graph::Clique& c : cover) {
    std::vector<int> unhomed;
    for (int n : c.members) {
      if (group_index[static_cast<std::size_t>(n)] == -1) unhomed.push_back(n);
    }
    if (unhomed.empty()) continue;
    const int b = fabric.add_block();
    const int gi = static_cast<int>(groups.size());
    groups.push_back(Group{{b}, 0, 0});
    for (int n : unhomed) {
      fabric.attach_host(n, b);
      group_index[static_cast<std::size_t>(n)] = gi;
    }
  }
  // Isolated nodes (no surviving edges) still get connectivity.
  for (int n = 0; n < g.num_nodes(); ++n) {
    if (group_index[static_cast<std::size_t>(n)] != -1) continue;
    const int b = fabric.add_block();
    const int gi = static_cast<int>(groups.size());
    groups.push_back(Group{{b}, 0, 0});
    fabric.attach_host(n, b);
    group_index[static_cast<std::size_t>(n)] = gi;
  }

  const auto edges = surviving_edges(g, params.cutoff);
  for (const EdgeRef& e : edges) {
    const int gu = group_index[static_cast<std::size_t>(e.u)];
    const int gv = group_index[static_cast<std::size_t>(e.v)];
    if (gu != gv) {
      ++groups[static_cast<std::size_t>(gu)].remaining;
      ++groups[static_cast<std::size_t>(gv)].remaining;
    }
  }

  ProvisionStats stats = wire_edges(fabric, groups, group_index, edges);
  return Provisioned{std::move(fabric), stats};
}

}  // namespace

int greedy_blocks_for_degree(int degree, int block_size) {
  HFAST_EXPECTS(degree >= 0 && block_size >= 3);
  if (degree <= block_size - 1) return 1;
  const int usable = block_size - 2;  // per extra block in a chain
  return (degree - 1 + usable - 1) / usable;
}

Provisioned provision(const graph::CommGraph& g, const ProvisionParams& params,
                      ProvisionStrategy strategy) {
  HFAST_EXPECTS(params.block_size >= 4);
  switch (strategy) {
    case ProvisionStrategy::kGreedyPerNode:
      return provision_greedy_impl(g, params);
    case ProvisionStrategy::kCliqueShared:
      return provision_clique_impl(g, params);
  }
  throw ContractViolation("unknown provisioning strategy");
}

}  // namespace hfast::core
