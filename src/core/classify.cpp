#include "hfast/core/classify.hpp"

#include "hfast/graph/metrics.hpp"

namespace hfast::core {

std::string to_string(CommCase c) {
  switch (c) {
    case CommCase::kCaseI:   return "case i (regular, bounded: mesh/torus sufficient)";
    case CommCase::kCaseII:  return "case ii (irregular, bounded: ICN/HFAST)";
    case CommCase::kCaseIII: return "case iii (bounded avg, high/scaling max: HFAST)";
    case CommCase::kCaseIV:  return "case iv (TDC ~ P: FCN required)";
  }
  return "unknown";
}

namespace {

Classification classify_impl(const graph::CommGraph* small,
                             const graph::CommGraph& large,
                             const ClassifyParams& params) {
  Classification out;
  out.tdc = graph::tdc(large, params.cutoff);
  out.fcn_utilization = graph::fcn_utilization(large, params.cutoff);
  out.mesh_embeddable = graph::embeds_in_mesh(large, params.cutoff);
  out.isotropic = graph::is_isotropic(large, params.cutoff);

  if (small != nullptr && small->num_nodes() >= 2) {
    const auto t_small = graph::tdc(*small, params.cutoff);
    if (t_small.avg > 0.0) {
      out.degree_scales_with_p =
          out.tdc.avg / t_small.avg >= params.scaling_ratio_threshold;
    }
  }

  if (out.fcn_utilization >= params.full_utilization_threshold) {
    out.comm_case = CommCase::kCaseIV;
    out.rationale = "average TDC approaches P-1: full bisection required";
    return out;
  }
  if (out.tdc.avg > 0.0 &&
      static_cast<double>(out.tdc.max) >
          params.max_over_avg_threshold * out.tdc.avg) {
    out.comm_case = CommCase::kCaseIII;
    out.rationale =
        "maximum TDC far exceeds the average: flexible packet-switch "
        "assignment pays off";
    return out;
  }
  if (out.degree_scales_with_p) {
    out.comm_case = CommCase::kCaseIII;
    out.rationale = "TDC grows with concurrency: fixed-degree networks "
                    "cannot track it";
    return out;
  }
  if (out.mesh_embeddable) {
    out.comm_case = CommCase::kCaseI;
    out.rationale = "pattern embeds isomorphically in a regular mesh/torus";
    return out;
  }
  out.comm_case = CommCase::kCaseII;
  out.rationale = "bounded degree but no mesh embedding: needs an adaptive "
                  "topology";
  return out;
}

}  // namespace

Classification classify(const graph::CommGraph& g,
                        const ClassifyParams& params) {
  return classify_impl(nullptr, g, params);
}

Classification classify(const graph::CommGraph& small,
                        const graph::CommGraph& large,
                        const ClassifyParams& params) {
  HFAST_EXPECTS_MSG(small.num_nodes() <= large.num_nodes(),
                    "pass the smaller concurrency first");
  return classify_impl(&small, large, params);
}

}  // namespace hfast::core
