#include "hfast/core/fabric.hpp"

#include <algorithm>
#include <queue>

namespace hfast::core {

Fabric::Fabric(int num_nodes, int block_size)
    : num_nodes_(num_nodes), block_size_(block_size) {
  HFAST_EXPECTS(num_nodes >= 1);
  HFAST_EXPECTS_MSG(block_size >= 3,
                    "a useful block needs a host port and two trunk ports");
  home_.assign(static_cast<std::size_t>(num_nodes), -1);
}

int Fabric::add_block() {
  const int id = num_blocks();
  blocks_.emplace_back(id, block_size_);
  block_adj_.emplace_back();
  return id;
}

SwitchBlock& Fabric::block(int id) {
  HFAST_EXPECTS(id >= 0 && id < num_blocks());
  return blocks_[static_cast<std::size_t>(id)];
}

const SwitchBlock& Fabric::block(int id) const {
  HFAST_EXPECTS(id >= 0 && id < num_blocks());
  return blocks_[static_cast<std::size_t>(id)];
}

void Fabric::attach_host(int node, int block_id) {
  HFAST_EXPECTS(node >= 0 && node < num_nodes_);
  HFAST_EXPECTS_MSG(home_[static_cast<std::size_t>(node)] == -1,
                    "node NIC already attached");
  block(block_id).attach_host(node);
  home_[static_cast<std::size_t>(node)] = block_id;
}

void Fabric::connect_trunk(int block_a, int block_b) {
  SwitchBlock& a = block(block_a);
  SwitchBlock& b = block(block_b);
  const int pa = a.attach_trunk({});
  const int pb = b.attach_trunk({block_a, pa});
  a.set_trunk_peer(pa, {block_b, pb});
  block_adj_[static_cast<std::size_t>(block_a)].push_back(block_b);
  block_adj_[static_cast<std::size_t>(block_b)].push_back(block_a);
  const auto key = block_a < block_b ? std::pair{block_a, block_b}
                                     : std::pair{block_b, block_a};
  ++trunk_count_[key];
}

int Fabric::home_block(int node) const {
  HFAST_EXPECTS(node >= 0 && node < num_nodes_);
  return home_[static_cast<std::size_t>(node)];
}

FabricRoute Fabric::route(int u, int v) const {
  HFAST_EXPECTS(u >= 0 && u < num_nodes_ && v >= 0 && v < num_nodes_);
  HFAST_EXPECTS(u != v);
  const int src = home_block(u);
  const int dst = home_block(v);
  if (src == -1 || dst == -1) {
    throw Error("fabric: route endpoint has no home block");
  }
  if (src == dst) return FabricRoute{{src}};

  std::vector<int> parent(static_cast<std::size_t>(num_blocks()), -1);
  std::queue<int> q;
  parent[static_cast<std::size_t>(src)] = src;
  q.push(src);
  while (!q.empty()) {
    const int b = q.front();
    q.pop();
    if (b == dst) break;
    auto nbrs = block_adj_[static_cast<std::size_t>(b)];
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
    for (int n : nbrs) {
      if (parent[static_cast<std::size_t>(n)] == -1) {
        parent[static_cast<std::size_t>(n)] = b;
        q.push(n);
      }
    }
  }
  if (parent[static_cast<std::size_t>(dst)] == -1) {
    throw Error("fabric: no trunk path between home blocks");
  }
  FabricRoute r;
  for (int b = dst; b != src; b = parent[static_cast<std::size_t>(b)]) {
    r.blocks.push_back(b);
  }
  r.blocks.push_back(src);
  std::reverse(r.blocks.begin(), r.blocks.end());
  return r;
}

bool Fabric::reachable(int u, int v) const {
  try {
    (void)route(u, v);
    return true;
  } catch (const Error&) {
    return false;
  }
}

bool Fabric::serves(const graph::CommGraph& g, std::uint64_t cutoff) const {
  for (const auto& [uv, stats] : g.edges()) {
    if (stats.max_message < cutoff) continue;
    if (!reachable(uv.first, uv.second)) return false;
  }
  return true;
}

int Fabric::trunks_between(int block_a, int block_b) const {
  const auto key = block_a < block_b ? std::pair{block_a, block_b}
                                     : std::pair{block_b, block_a};
  const auto it = trunk_count_.find(key);
  return it == trunk_count_.end() ? 0 : it->second;
}

int Fabric::total_host_ports() const {
  int n = 0;
  for (const auto& b : blocks_) n += b.num_host();
  return n;
}

int Fabric::total_trunk_ports() const {
  int n = 0;
  for (const auto& b : blocks_) n += b.num_trunk();
  return n;
}

int Fabric::total_free_ports() const {
  int n = 0;
  for (const auto& b : blocks_) n += b.num_free();
  return n;
}

void Fabric::validate() const {
  // Host links agree with the home table, one NIC per node.
  std::vector<int> seen_home(static_cast<std::size_t>(num_nodes_), -1);
  for (const auto& b : blocks_) {
    for (int p = 0; p < b.num_ports(); ++p) {
      const Port& port = b.port(p);
      if (port.use == PortUse::kHost) {
        const int node = port.host_node;
        HFAST_ASSERT_MSG(node >= 0 && node < num_nodes_, "bad host node");
        HFAST_ASSERT_MSG(seen_home[static_cast<std::size_t>(node)] == -1,
                         "node hosted on two ports");
        seen_home[static_cast<std::size_t>(node)] = b.id();
      } else if (port.use == PortUse::kTrunk) {
        HFAST_ASSERT_MSG(port.peer.valid(), "dangling trunk");
        const Port& peer = block(port.peer.block).port(port.peer.port);
        HFAST_ASSERT_MSG(peer.use == PortUse::kTrunk, "trunk peer not trunk");
        HFAST_ASSERT_MSG((peer.peer == PortRef{b.id(), p}),
                         "asymmetric trunk wiring");
      }
    }
  }
  for (int n = 0; n < num_nodes_; ++n) {
    HFAST_ASSERT_MSG(seen_home[static_cast<std::size_t>(n)] ==
                         home_[static_cast<std::size_t>(n)],
                     "home table out of sync with block ports");
  }
}

}  // namespace hfast::core
