#include "hfast/core/smp.hpp"

#include <string>

#include "hfast/util/assert.hpp"

namespace hfast::core {

std::string_view packing_name(SmpPacking packing) noexcept {
  switch (packing) {
    case SmpPacking::kRankOrder:
      return "rank-order";
    case SmpPacking::kAffinity:
      return "affinity";
  }
  return "unknown";
}

SmpPacking parse_packing(std::string_view name) {
  if (name == "rank-order") return SmpPacking::kRankOrder;
  if (name == "affinity") return SmpPacking::kAffinity;
  throw Error("unknown SMP packing: " + std::string(name) +
              " (expected rank-order|affinity)");
}

}  // namespace hfast::core
