#include "hfast/core/reconfigure.hpp"

#include <algorithm>
#include <map>

#include "hfast/util/assert.hpp"

namespace hfast::core {

ReconfigReport plan_reconfigurations(
    const std::vector<graph::CommGraph>& windows, const ReconfigParams& params) {
  HFAST_EXPECTS(params.hysteresis_windows >= 0);
  ReconfigReport report;

  using Edge = std::pair<int, int>;
  std::map<Edge, std::size_t> last_used;  // edge -> last window with traffic
  std::set<Edge> active;
  std::set<Edge> union_edges;

  for (std::size_t w = 0; w < windows.size(); ++w) {
    // Circuits demanded by this window.
    std::set<Edge> demanded;
    for (const auto& [uv, stats] : windows[w].edges()) {
      if (stats.max_message < params.cutoff) continue;
      demanded.insert(uv);
      last_used[uv] = w;
      union_edges.insert(uv);
    }

    WindowDelta delta;
    delta.window = w;

    for (const Edge& e : demanded) {
      if (active.insert(e).second) ++delta.circuits_added;
    }
    // Tear down circuits idle beyond the hysteresis horizon.
    for (auto it = active.begin(); it != active.end();) {
      const auto used_it = last_used.find(*it);
      HFAST_ASSERT(used_it != last_used.end());
      if (w >= used_it->second + static_cast<std::size_t>(
                                     params.hysteresis_windows) + 1) {
        it = active.erase(it);
        ++delta.circuits_removed;
      } else {
        ++it;
      }
    }

    delta.circuits_active = static_cast<int>(active.size());
    delta.reconfigured = delta.circuits_added > 0 || delta.circuits_removed > 0;
    // The initial window's patching is setup, not a runtime reconfiguration.
    if (w == 0) delta.reconfigured = false;

    report.total_added += delta.circuits_added;
    report.total_removed += delta.circuits_removed;
    if (delta.reconfigured) ++report.total_reconfigurations;
    report.peak_circuits = std::max(report.peak_circuits, delta.circuits_active);
    report.deltas.push_back(delta);
  }

  report.reconfig_time_seconds =
      params.reconfig_seconds * report.total_reconfigurations;
  report.static_circuits = static_cast<int>(union_edges.size());
  return report;
}

}  // namespace hfast::core
