#include "hfast/core/cost_model.hpp"

namespace hfast::core {

std::uint64_t collective_tree_ports(int nodes) {
  HFAST_EXPECTS(nodes >= 1);
  if (nodes == 1) return 0;
  // P NIC links + (P-1) internal 3-port combine elements.
  return static_cast<std::uint64_t>(nodes) +
         3ULL * (static_cast<std::uint64_t>(nodes) - 1);
}

CostBreakdown hfast_cost(int nodes, int num_blocks, const CostParams& params) {
  HFAST_EXPECTS(nodes >= 1 && num_blocks >= 0);
  CostBreakdown c;
  c.network = "HFAST";
  c.packet_ports = static_cast<std::uint64_t>(num_blocks) *
                   static_cast<std::uint64_t>(params.block_size);
  c.circuit_ports = static_cast<std::uint64_t>(nodes) + c.packet_ports;
  c.collective_ports = collective_tree_ports(nodes);
  c.active_cost = static_cast<double>(c.packet_ports) * params.packet_port_cost;
  c.passive_cost =
      static_cast<double>(c.circuit_ports) * params.circuit_port_cost;
  c.collective_cost =
      static_cast<double>(c.collective_ports) * params.collective_port_cost;
  return c;
}

CostBreakdown fat_tree_cost(int nodes, const CostParams& params,
                            bool include_collective_tree) {
  const topo::FatTree ft(nodes, params.fat_tree_radix);
  CostBreakdown c;
  c.network = ft.name();
  c.packet_ports = ft.total_switch_ports();
  c.active_cost = static_cast<double>(c.packet_ports) * params.packet_port_cost;
  if (include_collective_tree) {
    c.collective_ports = collective_tree_ports(nodes);
    c.collective_cost =
        static_cast<double>(c.collective_ports) * params.collective_port_cost;
  }
  return c;
}

CostBreakdown mesh_cost(int nodes, int ndims, const CostParams& params) {
  HFAST_EXPECTS(nodes >= 1 && ndims >= 1);
  CostBreakdown c;
  c.network = std::to_string(ndims) + "D-mesh";
  // Per node: 2*ndims router ports + 1 NIC port into the router.
  c.packet_ports = static_cast<std::uint64_t>(nodes) *
                   (2ULL * static_cast<std::uint64_t>(ndims) + 1ULL);
  c.collective_ports = collective_tree_ports(nodes);
  c.active_cost = static_cast<double>(c.packet_ports) * params.packet_port_cost;
  c.collective_cost =
      static_cast<double>(c.collective_ports) * params.collective_port_cost;
  return c;
}

CostBreakdown icn_cost(int nodes, int k, const CostParams& params) {
  HFAST_EXPECTS(nodes >= 1 && k >= 1);
  CostBreakdown c;
  c.network = "ICN(k=" + std::to_string(k) + ")";
  const std::uint64_t blocks =
      (static_cast<std::uint64_t>(nodes) + static_cast<std::uint64_t>(k) - 1) /
      static_cast<std::uint64_t>(k);
  // Each block: k host ports + k external ports on its mini-crossbar.
  c.packet_ports = blocks * 2ULL * static_cast<std::uint64_t>(k);
  // The external side plugs into a circuit switch with one port per link.
  c.circuit_ports = blocks * static_cast<std::uint64_t>(k);
  c.collective_ports = collective_tree_ports(nodes);
  c.active_cost = static_cast<double>(c.packet_ports) * params.packet_port_cost;
  c.passive_cost =
      static_cast<double>(c.circuit_ports) * params.circuit_port_cost;
  c.collective_cost =
      static_cast<double>(c.collective_ports) * params.collective_port_cost;
  return c;
}

}  // namespace hfast::core
