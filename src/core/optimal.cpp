#include "hfast/core/optimal.hpp"

#include <algorithm>

#include "hfast/util/assert.hpp"

namespace hfast::core {

namespace {

/// Feasibility of one group under the single-block model.
bool group_feasible(const graph::CommGraph& g, std::uint64_t cutoff,
                    const std::vector<int>& block_of, int block,
                    const std::vector<graph::Node>& members, int block_size) {
  int ports = static_cast<int>(members.size());  // host links
  for (graph::Node u : members) {
    for (graph::Node v : g.partners(u, cutoff)) {
      if (block_of[static_cast<std::size_t>(v)] != block) ++ports;
    }
  }
  return ports <= block_size;
}

struct SearchState {
  const graph::CommGraph* g;
  std::uint64_t cutoff;
  int block_size;
  int n;
  std::vector<int> block_of;           // node -> block (-1 unassigned)
  std::vector<std::vector<graph::Node>> groups;
  int best = 0;                        // best block count found
  std::vector<int> best_assignment;
};

/// Restricted-growth enumeration of set partitions with branch & bound:
/// node `u` joins an existing group or opens a new one. Port feasibility is
/// only fully checkable once all nodes are placed (external edges can turn
/// internal later), so prune on the optimistic bound (group count) and
/// validate at the leaves.
void search(SearchState& st, int u) {
  if (static_cast<int>(st.groups.size()) >= st.best) return;  // bound
  if (u == st.n) {
    for (std::size_t b = 0; b < st.groups.size(); ++b) {
      if (!group_feasible(*st.g, st.cutoff, st.block_of, static_cast<int>(b),
                          st.groups[b], st.block_size)) {
        return;
      }
    }
    st.best = static_cast<int>(st.groups.size());
    st.best_assignment = st.block_of;
    return;
  }
  for (std::size_t b = 0; b <= st.groups.size(); ++b) {
    if (b == st.groups.size()) {
      st.groups.emplace_back();
    } else if (static_cast<int>(st.groups[b].size()) >= st.block_size) {
      continue;  // host links alone already fill the block
    }
    st.groups[b].push_back(u);
    st.block_of[static_cast<std::size_t>(u)] = static_cast<int>(b);
    search(st, u + 1);
    st.block_of[static_cast<std::size_t>(u)] = -1;
    st.groups[b].pop_back();
    if (st.groups.back().empty()) st.groups.pop_back();
  }
}

}  // namespace

std::optional<OptimalProvision> optimal_blocks(const graph::CommGraph& g,
                                               int block_size,
                                               std::uint64_t cutoff,
                                               int max_nodes) {
  HFAST_EXPECTS(block_size >= 2);
  if (g.num_nodes() > max_nodes) {
    throw Error("optimal_blocks: graph too large for exhaustive search (" +
                std::to_string(g.num_nodes()) + " nodes, limit " +
                std::to_string(max_nodes) + ")");
  }
  // Chains required? Then the single-block model has no solution.
  for (const int d : g.degrees(cutoff)) {
    if (d > block_size - 1) return std::nullopt;
  }

  SearchState st;
  st.g = &g;
  st.cutoff = cutoff;
  st.block_size = block_size;
  st.n = g.num_nodes();
  st.block_of.assign(static_cast<std::size_t>(st.n), -1);
  st.best = st.n + 1;  // worse than all-singletons (always feasible here)
  search(st, 0);
  HFAST_ASSERT_MSG(st.best <= st.n, "all-singleton partition must be feasible");

  OptimalProvision out;
  out.num_blocks = st.best;
  out.block_of_node = st.best_assignment;
  for (const auto& [uv, stats] : g.edges()) {
    if (stats.max_message < cutoff) continue;
    if (out.block_of_node[static_cast<std::size_t>(uv.first)] ==
        out.block_of_node[static_cast<std::size_t>(uv.second)]) {
      ++out.internal_edges;
    }
  }
  return out;
}

}  // namespace hfast::core
