#include "hfast/store/codec.hpp"

#include <bit>
#include <utility>

#include "hfast/store/fields.hpp"
#include "hfast/util/assert.hpp"
#include "hfast/util/hash.hpp"

namespace hfast::store {

// --- Encoder ---------------------------------------------------------------

void Encoder::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void Encoder::u32(std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    u8(static_cast<std::uint8_t>(v >> shift));
  }
}

void Encoder::u64(std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    u8(static_cast<std::uint8_t>(v >> shift));
  }
}

void Encoder::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void Encoder::str(std::string_view v) {
  HFAST_EXPECTS_MSG(v.size() <= UINT32_MAX, "string too long to encode");
  u32(static_cast<std::uint32_t>(v.size()));
  for (char c : v) buf_.push_back(static_cast<std::byte>(c));
}

// --- Decoder ---------------------------------------------------------------

std::span<const std::byte> Decoder::take(std::size_t n) {
  if (n > remaining()) {
    throw Error("store codec: truncated payload (wanted " + std::to_string(n) +
                " bytes, " + std::to_string(remaining()) + " remain)");
  }
  auto out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

std::uint8_t Decoder::u8() { return static_cast<std::uint8_t>(take(1)[0]); }

std::uint16_t Decoder::u16() {
  const auto b = take(2);
  return static_cast<std::uint16_t>(static_cast<std::uint16_t>(b[0]) |
                                    static_cast<std::uint16_t>(b[1]) << 8);
}

std::uint32_t Decoder::u32() {
  const auto b = take(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(b[static_cast<std::size_t>(i)]) << (8 * i);
  }
  return v;
}

std::uint64_t Decoder::u64() {
  const auto b = take(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(b[static_cast<std::size_t>(i)]) << (8 * i);
  }
  return v;
}

double Decoder::f64() { return std::bit_cast<double>(u64()); }

bool Decoder::boolean() {
  const std::uint8_t v = u8();
  if (v > 1) throw Error("store codec: malformed boolean");
  return v == 1;
}

std::string Decoder::str() {
  const std::uint32_t len = u32();
  const auto b = take(len);
  std::string out(len, '\0');
  for (std::size_t i = 0; i < b.size(); ++i) {
    out[i] = static_cast<char>(b[i]);
  }
  return out;
}

void Decoder::expect_backing(std::uint64_t count,
                             std::size_t min_bytes_each) const {
  if (count > remaining() / (min_bytes_each == 0 ? 1 : min_bytes_each)) {
    throw Error("store codec: count field exceeds remaining payload");
  }
}

// --- config ----------------------------------------------------------------

namespace {

struct EncodeField {
  Encoder& enc;
  void operator()(const char*, const std::string& v) { enc.str(v); }
  void operator()(const char*, const int& v) { enc.i64(v); }
  void operator()(const char*, const bool& v) { enc.boolean(v); }
  void operator()(const char*, const std::uint64_t& v) { enc.u64(v); }
  void operator()(const char*, const mpisim::EngineKind& v) {
    enc.u8(static_cast<std::uint8_t>(v));
  }
  void operator()(const char*, const core::SmpPacking& v) {
    enc.u8(static_cast<std::uint8_t>(v));
  }
};

struct DecodeField {
  Decoder& dec;
  void operator()(const char*, std::string& v) { v = dec.str(); }
  void operator()(const char*, int& v) {
    v = static_cast<int>(dec.i64());
  }
  void operator()(const char*, bool& v) { v = dec.boolean(); }
  void operator()(const char*, std::uint64_t& v) { v = dec.u64(); }
  void operator()(const char*, mpisim::EngineKind& v) {
    const std::uint8_t raw = dec.u8();
    if (raw > static_cast<std::uint8_t>(mpisim::EngineKind::kFibers)) {
      throw Error("store codec: unknown engine kind " + std::to_string(raw));
    }
    v = static_cast<mpisim::EngineKind>(raw);
  }
  void operator()(const char*, core::SmpPacking& v) {
    const std::uint8_t raw = dec.u8();
    if (raw > static_cast<std::uint8_t>(core::SmpPacking::kAffinity)) {
      throw Error("store codec: unknown SMP packing " + std::to_string(raw));
    }
    v = static_cast<core::SmpPacking>(raw);
  }
};

void encode_histogram(Encoder& enc, const util::LogHistogram& h) {
  enc.u32(static_cast<std::uint32_t>(h.raw().size()));
  for (const auto& [size, count] : h.raw()) {
    enc.u64(size);
    enc.u64(count);
  }
}

util::LogHistogram decode_histogram(Decoder& dec) {
  const std::uint32_t n = dec.u32();
  dec.expect_backing(n, 16);
  util::LogHistogram h;
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint64_t size = dec.u64();
    const std::uint64_t count = dec.u64();
    h.add(size, count);
  }
  return h;
}

void encode_profile(Encoder& enc, const ipm::WorkloadProfile& profile) {
  const auto snap = profile.snapshot();
  enc.i32(snap.nranks);
  enc.u64(snap.total_calls);
  enc.u64(snap.dropped);
  enc.u32(static_cast<std::uint32_t>(snap.counts.size()));
  for (std::uint64_t c : snap.counts) enc.u64(c);
  for (double t : snap.times) enc.f64(t);
  encode_histogram(enc, snap.ptp_buffers);
  encode_histogram(enc, snap.collective_buffers);
  for (const auto& per_rank : snap.sent) {
    enc.u32(static_cast<std::uint32_t>(per_rank.size()));
    for (const auto& [peer_bytes, count] : per_rank) {
      enc.i32(peer_bytes.first);
      enc.u64(peer_bytes.second);
      enc.u64(count);
    }
  }
}

ipm::WorkloadProfile decode_profile(Decoder& dec) {
  ipm::WorkloadProfile::Snapshot snap;
  snap.nranks = dec.i32();
  snap.total_calls = dec.u64();
  snap.dropped = dec.u64();
  const std::uint32_t ntypes = dec.u32();
  if (ntypes != static_cast<std::uint32_t>(mpisim::kNumCallTypes)) {
    throw Error("store codec: call taxonomy size mismatch (payload has " +
                std::to_string(ntypes) + ", library has " +
                std::to_string(mpisim::kNumCallTypes) + ")");
  }
  dec.expect_backing(ntypes, 16);  // one u64 count + one f64 time each
  snap.counts.resize(ntypes);
  for (auto& c : snap.counts) c = dec.u64();
  snap.times.resize(ntypes);
  for (auto& t : snap.times) t = dec.f64();
  snap.ptp_buffers = decode_histogram(dec);
  snap.collective_buffers = decode_histogram(dec);
  if (snap.nranks < 0) throw Error("store codec: negative rank count");
  dec.expect_backing(static_cast<std::uint64_t>(snap.nranks), 4);
  snap.sent.resize(static_cast<std::size_t>(snap.nranks));
  for (auto& per_rank : snap.sent) {
    const std::uint32_t n = dec.u32();
    dec.expect_backing(n, 20);
    for (std::uint32_t i = 0; i < n; ++i) {
      const mpisim::Rank peer = dec.i32();
      const std::uint64_t bytes = dec.u64();
      per_rank[{peer, bytes}] = dec.u64();
    }
  }
  return ipm::WorkloadProfile::from_snapshot(std::move(snap));
}

void encode_graph(Encoder& enc, const graph::CommGraph& g) {
  enc.i32(g.num_nodes());
  enc.u64(g.num_edges());
  for (const auto& [uv, stats] : g.edges()) {
    enc.i32(uv.first);
    enc.i32(uv.second);
    enc.u64(stats.messages);
    enc.u64(stats.bytes);
    enc.u64(stats.max_message);
  }
}

graph::CommGraph decode_graph(Decoder& dec) {
  const int n = dec.i32();
  if (n < 0) throw Error("store codec: negative graph size");
  const std::uint64_t nedges = dec.u64();
  dec.expect_backing(nedges, 32);
  graph::CommGraph g(n);
  for (std::uint64_t e = 0; e < nedges; ++e) {
    const graph::Node u = dec.i32();
    const graph::Node v = dec.i32();
    graph::EdgeStats stats;
    stats.messages = dec.u64();
    stats.bytes = dec.u64();
    stats.max_message = dec.u64();
    if (u < 0 || u >= n || v < 0 || v >= n || u == v) {
      throw Error("store codec: graph edge endpoints out of range");
    }
    g.add_edge_stats(u, v, stats);
  }
  return g;
}

void encode_trace(Encoder& enc, const trace::Trace& t) {
  enc.i32(t.nranks());
  enc.u32(static_cast<std::uint32_t>(t.region_names().size()));
  for (const auto& name : t.region_names()) enc.str(name);
  enc.u64(t.events().size());
  for (const trace::CommEvent& ev : t.events()) {
    enc.i32(ev.rank);
    enc.u64(ev.op_index);
    enc.u8(static_cast<std::uint8_t>(ev.kind));
    enc.u8(static_cast<std::uint8_t>(ev.call));
    enc.i32(ev.peer);
    enc.u64(ev.bytes);
    enc.u16(ev.region);
  }
}

trace::Trace decode_trace(Decoder& dec) {
  const int nranks = dec.i32();
  if (nranks < 0) throw Error("store codec: negative trace rank count");
  const std::uint32_t nregions = dec.u32();
  dec.expect_backing(nregions, 4);
  std::vector<std::string> regions;
  regions.reserve(nregions);
  for (std::uint32_t i = 0; i < nregions; ++i) regions.push_back(dec.str());
  if (regions.empty()) {
    throw Error("store codec: trace missing the implicit global region");
  }
  const std::uint64_t nevents = dec.u64();
  dec.expect_backing(nevents, 28);
  std::vector<trace::CommEvent> events;
  events.reserve(nevents);
  for (std::uint64_t i = 0; i < nevents; ++i) {
    trace::CommEvent ev;
    ev.rank = dec.i32();
    ev.op_index = dec.u64();
    const std::uint8_t kind = dec.u8();
    if (kind > static_cast<std::uint8_t>(trace::EventKind::kCollective)) {
      throw Error("store codec: unknown trace event kind");
    }
    ev.kind = static_cast<trace::EventKind>(kind);
    const std::uint8_t call = dec.u8();
    if (call >= static_cast<std::uint8_t>(mpisim::CallType::kCount)) {
      throw Error("store codec: unknown call type in trace");
    }
    ev.call = static_cast<mpisim::CallType>(call);
    ev.peer = dec.i32();
    ev.bytes = dec.u64();
    ev.region = dec.u16();
    if (ev.region >= regions.size()) {
      throw Error("store codec: trace event region out of range");
    }
    events.push_back(ev);
  }
  return trace::Trace(nranks, std::move(events), std::move(regions));
}

void encode_provision_stats(Encoder& enc, const core::ProvisionStats& s) {
  enc.i32(s.num_blocks);
  enc.i32(s.num_trunks);
  enc.i32(s.edges_provisioned);
  enc.i32(s.internal_edges);
  enc.f64(s.avg_circuit_traversals);
  enc.i32(s.max_circuit_traversals);
  enc.f64(s.avg_switch_hops);
  enc.i32(s.max_switch_hops);
}

core::ProvisionStats decode_provision_stats(Decoder& dec) {
  core::ProvisionStats s;
  s.num_blocks = dec.i32();
  s.num_trunks = dec.i32();
  s.edges_provisioned = dec.i32();
  s.internal_edges = dec.i32();
  s.avg_circuit_traversals = dec.f64();
  s.max_circuit_traversals = dec.i32();
  s.avg_switch_hops = dec.f64();
  s.max_switch_hops = dec.i32();
  return s;
}

void encode_smp(Encoder& enc, const analysis::SmpArtifacts& smp) {
  enc.i32(smp.num_nodes);
  enc.u64(smp.backplane_bytes);
  enc.i32(smp.node_tdc_max);
  enc.f64(smp.node_tdc_avg);
  enc.i32(smp.block_size);
  enc.u32(static_cast<std::uint32_t>(smp.node_of_task.size()));
  for (int node : smp.node_of_task) enc.i32(node);
  encode_graph(enc, smp.node_graph);
  encode_provision_stats(enc, smp.provision);
}

analysis::SmpArtifacts decode_smp(Decoder& dec) {
  analysis::SmpArtifacts smp;
  smp.num_nodes = dec.i32();
  if (smp.num_nodes < 0) throw Error("store codec: negative SMP node count");
  smp.backplane_bytes = dec.u64();
  smp.node_tdc_max = dec.i32();
  smp.node_tdc_avg = dec.f64();
  smp.block_size = dec.i32();
  const std::uint32_t ntasks = dec.u32();
  dec.expect_backing(ntasks, 4);
  smp.node_of_task.reserve(ntasks);
  for (std::uint32_t i = 0; i < ntasks; ++i) {
    const int node = dec.i32();
    if (node < 0 || node >= smp.num_nodes) {
      throw Error("store codec: SMP task mapped outside its node range");
    }
    smp.node_of_task.push_back(node);
  }
  smp.node_graph = decode_graph(dec);
  smp.provision = decode_provision_stats(dec);
  return smp;
}

}  // namespace

void encode_config(Encoder& enc, const analysis::ExperimentConfig& config) {
  EncodeField visit{enc};
  visit_config_fields(config, visit);
}

analysis::ExperimentConfig decode_config(Decoder& dec) {
  analysis::ExperimentConfig config;
  DecodeField visit{dec};
  visit_config_fields(config, visit);
  return config;
}

void encode_result(Encoder& enc, const analysis::ExperimentResult& result) {
  encode_config(enc, result.config);
  enc.f64(result.wall_seconds);
  encode_profile(enc, result.steady);
  encode_profile(enc, result.all_regions);
  encode_graph(enc, result.comm_graph);
  encode_graph(enc, result.comm_graph_all);
  encode_trace(enc, result.trace);
  encode_smp(enc, result.smp);
}

analysis::ExperimentResult decode_result(Decoder& dec) {
  analysis::ExperimentResult result;
  result.config = decode_config(dec);
  result.wall_seconds = dec.f64();
  result.steady = decode_profile(dec);
  result.all_regions = decode_profile(dec);
  result.comm_graph = decode_graph(dec);
  result.comm_graph_all = decode_graph(dec);
  result.trace = decode_trace(dec);
  result.smp = decode_smp(dec);
  if (!dec.done()) {
    throw Error("store codec: trailing bytes after result payload");
  }
  return result;
}

std::uint64_t config_key(const analysis::ExperimentConfig& config) {
  Encoder enc;
  enc.u32(kFormatVersion);
  encode_config(enc, config);
  return util::fnv1a64(enc.bytes());
}

}  // namespace hfast::store
