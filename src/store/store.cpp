#include "hfast/store/store.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <system_error>

#if defined(__unix__) || defined(__APPLE__)
#define HFAST_STORE_POSIX 1
#include <fcntl.h>
#include <unistd.h>
#endif

#include "hfast/util/assert.hpp"
#include "hfast/util/hash.hpp"

namespace hfast::store {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[4] = {'H', 'F', 'S', 'T'};
constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 8;  // magic, version, key, len
constexpr std::size_t kFooterBytes = 4;              // CRC32
constexpr const char* kEntrySuffix = ".hfe";
constexpr const char* kTempPrefix = ".tmp-";

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Whole-file read; nullopt when the file cannot be opened (absent entry).
std::optional<std::vector<std::byte>> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::vector<std::byte> bytes;
  in.seekg(0, std::ios::end);
  const auto end = in.tellg();
  if (end < 0) return std::nullopt;
  bytes.resize(static_cast<std::size_t>(end));
  in.seekg(0, std::ios::beg);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  if (!in) return std::nullopt;
  return bytes;
}

/// Durably write `bytes` to `path` (fsync before returning true).
bool write_file_synced(const fs::path& path,
                       const std::vector<std::byte>& bytes) {
#ifdef HFAST_STORE_POSIX
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, reinterpret_cast<const char*>(bytes.data()) + off,
                              bytes.size() - off);
    if (n < 0) {
      ::close(fd);
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  const bool synced = ::fsync(fd) == 0;
  return (::close(fd) == 0) && synced;
#else
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.flush();
  return static_cast<bool>(out);
#endif
}

/// fsync the directory so a just-renamed entry survives power loss.
void sync_dir(const fs::path& dir) {
#ifdef HFAST_STORE_POSIX
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    (void)::fsync(fd);
    (void)::close(fd);
  }
#else
  (void)dir;
#endif
}

/// Frame `payload` into a complete entry file image.
std::vector<std::byte> frame_entry(std::uint64_t key,
                                   const std::vector<std::byte>& payload) {
  Encoder enc;
  for (char c : kMagic) enc.u8(static_cast<std::uint8_t>(c));
  enc.u32(kFormatVersion);
  enc.u64(key);
  enc.u64(payload.size());
  std::vector<std::byte> out = enc.take();
  out.insert(out.end(), payload.begin(), payload.end());
  Encoder footer;
  footer.u32(util::crc32(payload));
  const auto& f = footer.bytes();
  out.insert(out.end(), f.begin(), f.end());
  return out;
}

/// Validate an entry file image and return its payload span.
/// Throws hfast::Error describing the first defect found.
std::span<const std::byte> unframe_entry(std::uint64_t expected_key,
                                         std::span<const std::byte> file) {
  if (file.size() < kHeaderBytes + kFooterBytes) {
    throw Error("store: entry truncated before header");
  }
  Decoder dec(file);
  for (char c : kMagic) {
    if (dec.u8() != static_cast<std::uint8_t>(c)) {
      throw Error("store: bad magic");
    }
  }
  const std::uint32_t version = dec.u32();
  if (version != kFormatVersion) {
    throw Error("store: format version " + std::to_string(version) +
                " != " + std::to_string(kFormatVersion));
  }
  const std::uint64_t key = dec.u64();
  if (key != expected_key) {
    throw Error("store: header key does not match entry name");
  }
  const std::uint64_t payload_len = dec.u64();
  if (payload_len != file.size() - kHeaderBytes - kFooterBytes) {
    throw Error("store: entry truncated (payload length mismatch)");
  }
  const auto payload = file.subspan(kHeaderBytes, payload_len);
  Decoder footer(file.subspan(kHeaderBytes + payload_len));
  const std::uint32_t want_crc = footer.u32();
  if (util::crc32(payload) != want_crc) {
    throw Error("store: payload CRC mismatch");
  }
  return payload;
}

std::vector<std::byte> canonical_config_bytes(
    const analysis::ExperimentConfig& config) {
  Encoder enc;
  encode_config(enc, config);
  return enc.take();
}

}  // namespace

ResultStore::ResultStore(fs::path dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec || !fs::is_directory(dir_)) {
    throw Error("store: cannot open directory " + dir_.string() +
                (ec ? " (" + ec.message() + ")" : ""));
  }
  // Sweep temp files orphaned by a crash mid-save; their final entries
  // were never renamed into place, so they are pure garbage.
  for (const auto& e : fs::directory_iterator(dir_, ec)) {
    if (e.path().filename().string().rfind(kTempPrefix, 0) == 0) {
      fs::remove(e.path(), ec);
    }
  }
}

std::string ResultStore::entry_filename(std::uint64_t key) {
  return hex16(key) + kEntrySuffix;
}

fs::path ResultStore::entry_path(
    const analysis::ExperimentConfig& config) const {
  return dir_ / entry_filename(key(config));
}

std::optional<analysis::ExperimentResult> ResultStore::load(
    const analysis::ExperimentConfig& config) {
  const std::uint64_t k = key(config);
  const fs::path path = dir_ / entry_filename(k);

  const auto file = read_file(path);
  if (!file) {
    std::lock_guard lock(mutex_);
    ++counters_.misses;
    return std::nullopt;
  }

  try {
    const auto payload = unframe_entry(k, *file);
    Decoder dec(payload);
    analysis::ExperimentResult result = decode_result(dec);
    // Key-collision guard: the stored config must be byte-identical to the
    // requested one, not merely hash-equal.
    if (canonical_config_bytes(result.config) !=
        canonical_config_bytes(config)) {
      throw Error("store: key collision (stored config differs)");
    }
    std::lock_guard lock(mutex_);
    ++counters_.hits;
    return result;
  } catch (const std::exception&) {
    // Torn, corrupt, stale-format, or colliding entry: by contract this is
    // a miss — the caller recomputes and save() overwrites the bad entry.
    std::lock_guard lock(mutex_);
    ++counters_.misses;
    ++counters_.corrupt_misses;
    return std::nullopt;
  }
}

bool ResultStore::save(const analysis::ExperimentResult& result) {
  const std::uint64_t k = key(result.config);

  Encoder enc;
  encode_result(enc, result);
  const std::vector<std::byte> image = frame_entry(k, enc.bytes());

  std::uint64_t seq;
  {
    std::lock_guard lock(mutex_);
    seq = ++temp_seq_;
  }
  const fs::path tmp =
      dir_ / (std::string(kTempPrefix) + hex16(k) + "-" + std::to_string(seq));
  const fs::path final_path = dir_ / entry_filename(k);

  bool ok = write_file_synced(tmp, image);
  if (ok) {
    std::error_code ec;
    fs::rename(tmp, final_path, ec);  // atomic within one directory (POSIX)
    ok = !ec;
    if (ok) {
      sync_dir(dir_);
    } else {
      fs::remove(tmp, ec);
    }
  } else {
    std::error_code ec;
    fs::remove(tmp, ec);
  }

  std::lock_guard lock(mutex_);
  if (ok) {
    ++counters_.stores;
  } else {
    ++counters_.store_failures;
  }
  return ok;
}

CacheCounters ResultStore::counters() const {
  std::lock_guard lock(mutex_);
  return counters_;
}

EntryInfo ResultStore::inspect_entry(const fs::path& path) const {
  EntryInfo info;
  info.path = path;
  std::error_code ec;
  info.file_bytes = fs::file_size(path, ec);
  if (ec) info.file_bytes = 0;

  // The filename carries the key; a malformed name is itself a defect.
  const std::string stem = path.stem().string();
  char* end = nullptr;
  info.key = std::strtoull(stem.c_str(), &end, 16);
  if (stem.size() != 16 || end == nullptr || *end != '\0') {
    info.error = "malformed entry filename";
    return info;
  }

  const auto file = read_file(path);
  if (!file) {
    info.error = "unreadable";
    return info;
  }
  try {
    const auto payload = unframe_entry(info.key, *file);
    Decoder dec(payload);
    analysis::ExperimentResult result = decode_result(dec);
    if (config_key(result.config) != info.key) {
      throw Error("store: stored config does not hash to entry key");
    }
    info.config = std::move(result.config);
    info.valid = true;
  } catch (const std::exception& e) {
    info.error = e.what();
  }
  return info;
}

std::vector<EntryInfo> ResultStore::list() const {
  std::vector<fs::path> paths;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(dir_, ec)) {
    if (e.path().extension() == kEntrySuffix) paths.push_back(e.path());
  }
  std::sort(paths.begin(), paths.end());
  std::vector<EntryInfo> out;
  out.reserve(paths.size());
  for (const auto& p : paths) out.push_back(inspect_entry(p));
  return out;
}

StoreStats ResultStore::stats() const {
  StoreStats s;
  for (const EntryInfo& e : list()) {
    ++s.entries;
    s.total_bytes += e.file_bytes;
    if (e.valid) {
      ++s.valid;
    } else {
      ++s.corrupt;
    }
  }
  return s;
}

bool ResultStore::evict(std::uint64_t key) {
  std::error_code ec;
  return fs::remove(dir_ / entry_filename(key), ec) && !ec;
}

std::size_t ResultStore::evict_all() {
  std::size_t removed = 0;
  std::error_code ec;
  std::vector<fs::path> paths;
  for (const auto& e : fs::directory_iterator(dir_, ec)) {
    if (e.path().extension() == kEntrySuffix) paths.push_back(e.path());
  }
  for (const auto& p : paths) {
    if (fs::remove(p, ec) && !ec) ++removed;
  }
  return removed;
}

VerifyReport ResultStore::verify(bool evict_corrupt) {
  VerifyReport report;
  for (EntryInfo& e : list()) {
    ++report.checked;
    if (e.valid) {
      ++report.ok;
      continue;
    }
    if (evict_corrupt) {
      std::error_code ec;
      if (fs::remove(e.path, ec) && !ec) ++report.evicted;
    }
    report.corrupt.push_back(std::move(e));
  }
  return report;
}

}  // namespace hfast::store
