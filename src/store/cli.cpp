#include "hfast/store/cli.hpp"

#include <cstring>
#include <ostream>

#include "hfast/util/assert.hpp"

namespace hfast::store {

bool CacheCli::consume(int argc, char** argv, int& i) {
  if (std::strcmp(argv[i], "--cache-dir") == 0) {
    if (i + 1 >= argc) throw Error("--cache-dir requires a directory");
    cache_dir = argv[++i];
    return true;
  }
  if (std::strcmp(argv[i], "--no-cache") == 0) {
    no_cache = true;
    return true;
  }
  if (std::strcmp(argv[i], "--cache-verify") == 0) {
    verify = true;
    return true;
  }
  return false;
}

const char* CacheCli::help() {
  return "  --cache-dir DIR  persist completed experiments to DIR; re-runs\n"
         "                   load matching entries instead of recomputing\n"
         "  --no-cache       ignore --cache-dir\n"
         "  --cache-verify   validate all entries before the run, evicting\n"
         "                   corrupt ones\n";
}

std::unique_ptr<ResultStore> CacheCli::open(std::ostream& diag) const {
  if (cache_dir.empty() || no_cache) return nullptr;
  auto cache_store = std::make_unique<ResultStore>(cache_dir);
  if (verify) {
    const VerifyReport report = cache_store->verify(/*evict_corrupt=*/true);
    diag << "cache: verified " << report.checked << " entries, " << report.ok
         << " ok, " << report.corrupt.size() << " corrupt ("
         << report.evicted << " evicted)\n";
  }
  return cache_store;
}

void CacheCli::report(std::ostream& os, const ResultStore* cache_store) {
  if (cache_store == nullptr) return;
  const CacheCounters c = cache_store->counters();
  const StoreStats s = cache_store->stats();
  os << "cache: " << c.hits << " hits, " << c.misses << " misses ("
     << c.corrupt_misses << " corrupt), " << c.stores << " stored";
  if (c.store_failures > 0) os << ", " << c.store_failures << " store failures";
  os << "; " << cache_store->dir().string() << ": " << s.entries
     << " entries, " << s.total_bytes << " bytes\n";
}

}  // namespace hfast::store
