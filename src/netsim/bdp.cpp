#include "hfast/netsim/bdp.hpp"

#include "hfast/util/assert.hpp"

namespace hfast::netsim {

std::vector<InterconnectSpec> table1_specs() {
  // Values exactly as the paper's Table 1 (per-CPU unidirectional peak).
  return {
      {"SGI Altix", "Numalink-4", 1.1e-6, 1.9e9},
      {"Cray X1", "Cray Custom", 7.3e-6, 6.3e9},
      {"NEC Earth Simulator", "NEC Custom", 5.6e-6, 1.5e9},
      {"Myrinet Cluster", "Myrinet 2000", 5.7e-6, 500e6},
      {"Cray XD1", "RapidArray/IB4x", 1.7e-6, 2e9},
  };
}

double bandwidth_delay_product(const InterconnectSpec& spec) {
  return spec.mpi_latency_s * spec.peak_bandwidth_bps;
}

double effective_bandwidth(const InterconnectSpec& spec, std::uint64_t bytes) {
  if (bytes == 0) return 0.0;
  const double t = spec.mpi_latency_s +
                   static_cast<double>(bytes) / spec.peak_bandwidth_bps;
  return static_cast<double>(bytes) / t;
}

double saturation_size(const InterconnectSpec& spec, double fraction) {
  HFAST_EXPECTS(fraction > 0.0 && fraction < 1.0);
  return fraction / (1.0 - fraction) * bandwidth_delay_product(spec);
}

std::uint64_t paper_threshold_bytes() { return 2048; }

}  // namespace hfast::netsim
