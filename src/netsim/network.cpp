#include "hfast/netsim/network.hpp"

#include <algorithm>
#include <limits>

#include "hfast/util/assert.hpp"

namespace hfast::netsim {

// --- LinkNetwork --------------------------------------------------------------

void LinkNetwork::reset() { free_at_.assign(links_.size(), 0.0); }

double LinkNetwork::min_transfer_latency_s() const {
  double lo = std::numeric_limits<double>::infinity();
  for (const Link& l : links_) {
    lo = std::min(lo, l.params.latency_s + l.params.switch_overhead_s);
  }
  // Every transfer between distinct endpoints crosses at least one link;
  // serialization only adds on top. A linkless network bounds nothing.
  return links_.empty() ? 0.0 : lo;
}

int LinkNetwork::add_directed_link(int from, int to, const LinkParams& params) {
  const int id = static_cast<int>(links_.size());
  links_.push_back({from, to, params});
  link_index_.try_emplace({from, to}, id);
  return id;
}

int LinkNetwork::add_duplex_link(int a, int b, const LinkParams& params) {
  HFAST_EXPECTS(a >= 0 && a < num_vertices_ && b >= 0 && b < num_vertices_);
  // First link added between a pair wins the index (parallel trunks share
  // the cache entry only for route lookup; occupancy is still per-link).
  const int fwd = add_directed_link(a, b, params);
  (void)add_directed_link(b, a, params);
  return fwd;
}

int LinkNetwork::link_between(int a, int b) const {
  const auto it = link_index_.find({a, b});
  HFAST_ASSERT_MSG(it != link_index_.end(), "no link between vertices");
  return it->second;
}

double LinkNetwork::traverse(const std::vector<int>& link_path,
                             std::uint64_t bytes, double start) {
  HFAST_EXPECTS(!link_path.empty());
  if (free_at_.size() != links_.size()) free_at_.resize(links_.size(), 0.0);
  double head = start;
  double last_ser = 0.0;
  for (int id : link_path) {
    const Link& l = links_[static_cast<std::size_t>(id)];
    double& free_at = free_at_[static_cast<std::size_t>(id)];
    head = std::max(head, free_at);
    const double ser = static_cast<double>(bytes) / l.params.bandwidth_bps;
    free_at = head + ser;  // link streams this message until the tail passes
    head += l.params.latency_s + l.params.switch_overhead_s;
    last_ser = ser;
  }
  return head + last_ser;  // tail arrival behind the head on the final link
}

// --- DirectNetwork ------------------------------------------------------------

DirectNetwork::DirectNetwork(const topo::DirectTopology& topo,
                             const LinkParams& params)
    : topo_(topo) {
  for (int i = 0; i < topo.num_nodes(); ++i) {
    const int v = add_vertex();
    HFAST_ASSERT(v == i);
  }
  for (int u = 0; u < topo.num_nodes(); ++u) {
    for (int v : topo.neighbors(u)) {
      if (v > u) add_duplex_link(u, v, params);
    }
  }
}

const std::vector<int>& DirectNetwork::path_links(int src, int dst) {
  const auto key = std::pair{src, dst};
  auto it = route_cache_.find(key);
  if (it != route_cache_.end()) return it->second;
  const auto nodes = topo_.route(src, dst);
  std::vector<int> path;
  path.reserve(nodes.size());
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    path.push_back(link_between(nodes[i], nodes[i + 1]));
  }
  return route_cache_.emplace(key, std::move(path)).first->second;
}

void DirectNetwork::prewarm_route(int src, int dst) {
  (void)path_links(src, dst);
}

double DirectNetwork::transfer(int src, int dst, std::uint64_t bytes,
                               double start) {
  HFAST_EXPECTS(src != dst);
  return traverse(path_links(src, dst), bytes, start);
}

int DirectNetwork::switch_hops(int src, int dst) const {
  // Each intermediate router plus the destination router makes a switching
  // decision; source injection does not.
  return topo_.distance(src, dst);
}

// --- FabricNetwork ------------------------------------------------------------

FabricNetwork::FabricNetwork(const core::Fabric& fabric,
                             const LinkParams& circuit, double block_overhead_s)
    : fabric_(fabric) {
  // Vertices: [0, nodes) endpoints, [nodes, nodes+blocks) switch blocks.
  for (int i = 0; i < fabric.num_nodes() + fabric.num_blocks(); ++i) {
    (void)add_vertex();
  }
  // Entering any block pays the packet-switching overhead; circuit hops
  // themselves add propagation only.
  LinkParams into_block = circuit;
  into_block.switch_overhead_s = block_overhead_s;

  for (int b = 0; b < fabric.num_blocks(); ++b) {
    const auto& blk = fabric.block(b);
    for (int p = 0; p < blk.num_ports(); ++p) {
      const auto& port = blk.port(p);
      if (port.use == core::PortUse::kHost) {
        // node -> block pays switch overhead; block -> node does not.
        const int node = port.host_node;
        (void)add_directed_link(node, block_vertex(b), into_block);
        (void)add_directed_link(block_vertex(b), node, circuit);
      } else if (port.use == core::PortUse::kTrunk && port.peer.block > b) {
        const int a = block_vertex(b);
        const int c = block_vertex(port.peer.block);
        (void)add_directed_link(a, c, into_block);
        (void)add_directed_link(c, a, into_block);
      }
    }
  }
}

const FabricNetwork::RouteEntry& FabricNetwork::route_entry(int src, int dst) {
  const auto key = std::pair{src, dst};
  auto it = route_cache_.find(key);
  if (it != route_cache_.end()) return it->second;
  const core::FabricRoute r = fabric_.route(src, dst);
  RouteEntry entry;
  entry.hops = r.switch_hops();
  entry.links.reserve(r.blocks.size() + 1);
  int prev = src;
  for (int b : r.blocks) {
    entry.links.push_back(link_between(prev, block_vertex(b)));
    prev = block_vertex(b);
  }
  entry.links.push_back(link_between(prev, dst));
  return route_cache_.emplace(key, std::move(entry)).first->second;
}

void FabricNetwork::prewarm_route(int src, int dst) {
  (void)route_entry(src, dst);
}

double FabricNetwork::transfer(int src, int dst, std::uint64_t bytes,
                               double start) {
  HFAST_EXPECTS(src != dst);
  return traverse(route_entry(src, dst).links, bytes, start);
}

int FabricNetwork::switch_hops(int src, int dst) const {
  const auto it = route_cache_.find({src, dst});
  if (it != route_cache_.end()) return it->second.hops;
  // Not prewarmed: recompute instead of memoizing, so the const query path
  // stays read-only (and therefore safe under concurrent readers). Replay
  // prewarms every pair it will touch, so this path is cold by design.
  return fabric_.route(src, dst).switch_hops();
}

// --- FatTreeNetwork -----------------------------------------------------------

FatTreeNetwork::FatTreeNetwork(const topo::FatTree& tree,
                               const LinkParams& params)
    : tree_(tree), params_(params) {
  // One interior vertex stands in for the non-blocking core.
  const int core = tree_.num_procs();  // vertex id after endpoints
  for (int i = 0; i <= tree_.num_procs(); ++i) (void)add_vertex();
  inject_.resize(static_cast<std::size_t>(tree_.num_procs()));
  eject_.resize(static_cast<std::size_t>(tree_.num_procs()));
  // Interior latency/overhead is applied per traversal analytically in
  // transfer(); endpoint links only carry serialization + first-hop cost.
  LinkParams endpoint = params;
  endpoint.switch_overhead_s = 0.0;
  endpoint.latency_s = 0.0;
  for (int n = 0; n < tree_.num_procs(); ++n) {
    const int fwd = add_duplex_link(n, core, endpoint);
    inject_[static_cast<std::size_t>(n)] = fwd;
    eject_[static_cast<std::size_t>(n)] = fwd + 1;
  }
}

double FatTreeNetwork::transfer(int src, int dst, std::uint64_t bytes,
                                double start) {
  HFAST_EXPECTS(src != dst);
  const int hops = tree_.switch_traversals(src, dst);
  // Contend on the two endpoint links; the interior is non-blocking.
  double t = traverse({inject_[static_cast<std::size_t>(src)],
                       eject_[static_cast<std::size_t>(dst)]},
                      bytes, start);
  t += static_cast<double>(hops) *
       (params_.latency_s + params_.switch_overhead_s);
  return t;
}

}  // namespace hfast::netsim
