#include "hfast/netsim/network.hpp"

#include <algorithm>

#include "hfast/util/assert.hpp"

namespace hfast::netsim {

// --- LinkNetwork --------------------------------------------------------------

void LinkNetwork::reset() {
  for (Link& l : links_) l.free_at = 0.0;
}

int LinkNetwork::add_duplex_link(int a, int b, const LinkParams& params) {
  HFAST_EXPECTS(a >= 0 && a < num_vertices_ && b >= 0 && b < num_vertices_);
  const int fwd = static_cast<int>(links_.size());
  links_.push_back({a, b, params, 0.0});
  links_.push_back({b, a, params, 0.0});
  // First link added between a pair wins the index (parallel trunks share
  // the cache entry only for route lookup; occupancy is still per-link).
  link_index_.try_emplace({a, b}, fwd);
  link_index_.try_emplace({b, a}, fwd + 1);
  return fwd;
}

int LinkNetwork::link_between(int a, int b) const {
  const auto it = link_index_.find({a, b});
  HFAST_ASSERT_MSG(it != link_index_.end(), "no link between vertices");
  return it->second;
}

double LinkNetwork::traverse(const std::vector<int>& link_path,
                             std::uint64_t bytes, double start) {
  HFAST_EXPECTS(!link_path.empty());
  double head = start;
  double last_ser = 0.0;
  for (int id : link_path) {
    Link& l = links_[static_cast<std::size_t>(id)];
    head = std::max(head, l.free_at);
    const double ser = static_cast<double>(bytes) / l.params.bandwidth_bps;
    l.free_at = head + ser;  // link streams this message until the tail passes
    head += l.params.latency_s + l.params.switch_overhead_s;
    last_ser = ser;
  }
  return head + last_ser;  // tail arrival behind the head on the final link
}

// --- DirectNetwork ------------------------------------------------------------

DirectNetwork::DirectNetwork(const topo::DirectTopology& topo,
                             const LinkParams& params)
    : topo_(topo) {
  for (int i = 0; i < topo.num_nodes(); ++i) {
    const int v = add_vertex();
    HFAST_ASSERT(v == i);
  }
  for (int u = 0; u < topo.num_nodes(); ++u) {
    for (int v : topo.neighbors(u)) {
      if (v > u) add_duplex_link(u, v, params);
    }
  }
}

const std::vector<int>& DirectNetwork::path_links(int src, int dst) {
  const auto key = std::pair{src, dst};
  auto it = route_cache_.find(key);
  if (it != route_cache_.end()) return it->second;
  const auto nodes = topo_.route(src, dst);
  std::vector<int> path;
  path.reserve(nodes.size());
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    path.push_back(link_between(nodes[i], nodes[i + 1]));
  }
  return route_cache_.emplace(key, std::move(path)).first->second;
}

double DirectNetwork::transfer(int src, int dst, std::uint64_t bytes,
                               double start) {
  HFAST_EXPECTS(src != dst);
  return traverse(path_links(src, dst), bytes, start);
}

int DirectNetwork::switch_hops(int src, int dst) const {
  // Each intermediate router plus the destination router makes a switching
  // decision; source injection does not.
  return topo_.distance(src, dst);
}

// --- FabricNetwork ------------------------------------------------------------

FabricNetwork::FabricNetwork(const core::Fabric& fabric,
                             const LinkParams& circuit, double block_overhead_s)
    : fabric_(fabric) {
  // Vertices: [0, nodes) endpoints, [nodes, nodes+blocks) switch blocks.
  for (int i = 0; i < fabric.num_nodes() + fabric.num_blocks(); ++i) {
    (void)add_vertex();
  }
  // Entering any block pays the packet-switching overhead; circuit hops
  // themselves add propagation only.
  LinkParams into_block = circuit;
  into_block.switch_overhead_s = block_overhead_s;

  for (int b = 0; b < fabric.num_blocks(); ++b) {
    const auto& blk = fabric.block(b);
    for (int p = 0; p < blk.num_ports(); ++p) {
      const auto& port = blk.port(p);
      if (port.use == core::PortUse::kHost) {
        // node -> block pays switch overhead; block -> node does not.
        const int node = port.host_node;
        links_.push_back({node, block_vertex(b), into_block, 0.0});
        link_index_.try_emplace({node, block_vertex(b)},
                                static_cast<int>(links_.size()) - 1);
        links_.push_back({block_vertex(b), node, circuit, 0.0});
        link_index_.try_emplace({block_vertex(b), node},
                                static_cast<int>(links_.size()) - 1);
      } else if (port.use == core::PortUse::kTrunk && port.peer.block > b) {
        const int a = block_vertex(b);
        const int c = block_vertex(port.peer.block);
        links_.push_back({a, c, into_block, 0.0});
        link_index_.try_emplace({a, c}, static_cast<int>(links_.size()) - 1);
        links_.push_back({c, a, into_block, 0.0});
        link_index_.try_emplace({c, a}, static_cast<int>(links_.size()) - 1);
      }
    }
  }
}

const std::vector<int>& FabricNetwork::path_links(int src, int dst) {
  const auto key = std::pair{src, dst};
  auto it = route_cache_.find(key);
  if (it != route_cache_.end()) return it->second;
  const core::FabricRoute r = fabric_.route(src, dst);
  std::vector<int> path;
  path.reserve(r.blocks.size() + 1);
  int prev = src;
  for (int b : r.blocks) {
    path.push_back(link_between(prev, block_vertex(b)));
    prev = block_vertex(b);
  }
  path.push_back(link_between(prev, dst));
  route_hops_[key] = r.switch_hops();
  return route_cache_.emplace(key, std::move(path)).first->second;
}

double FabricNetwork::transfer(int src, int dst, std::uint64_t bytes,
                               double start) {
  HFAST_EXPECTS(src != dst);
  return traverse(path_links(src, dst), bytes, start);
}

int FabricNetwork::switch_hops(int src, int dst) const {
  const auto key = std::pair{src, dst};
  const auto it = route_hops_.find(key);
  if (it != route_hops_.end()) return it->second;
  // Memoize the fallback too: replay asks for hops per message, and
  // recomputing fabric_.route() on every pre-transfer query is O(route)
  // each time for a value that never changes.
  const int hops = fabric_.route(src, dst).switch_hops();
  route_hops_.emplace(key, hops);
  return hops;
}

// --- FatTreeNetwork -----------------------------------------------------------

FatTreeNetwork::FatTreeNetwork(const topo::FatTree& tree,
                               const LinkParams& params)
    : tree_(tree), params_(params) {
  // One interior vertex stands in for the non-blocking core.
  const int core = tree_.num_procs();  // vertex id after endpoints
  for (int i = 0; i <= tree_.num_procs(); ++i) (void)add_vertex();
  inject_.resize(static_cast<std::size_t>(tree_.num_procs()));
  eject_.resize(static_cast<std::size_t>(tree_.num_procs()));
  // Interior latency/overhead is applied per traversal analytically in
  // transfer(); endpoint links only carry serialization + first-hop cost.
  LinkParams endpoint = params;
  endpoint.switch_overhead_s = 0.0;
  endpoint.latency_s = 0.0;
  for (int n = 0; n < tree_.num_procs(); ++n) {
    const int fwd = add_duplex_link(n, core, endpoint);
    inject_[static_cast<std::size_t>(n)] = fwd;
    eject_[static_cast<std::size_t>(n)] = fwd + 1;
  }
}

double FatTreeNetwork::transfer(int src, int dst, std::uint64_t bytes,
                                double start) {
  HFAST_EXPECTS(src != dst);
  const int hops = tree_.switch_traversals(src, dst);
  // Contend on the two endpoint links; the interior is non-blocking.
  double t = traverse({inject_[static_cast<std::size_t>(src)],
                       eject_[static_cast<std::size_t>(dst)]},
                      bytes, start);
  t += static_cast<double>(hops) *
       (params_.latency_s + params_.switch_overhead_s);
  return t;
}

}  // namespace hfast::netsim
