#include "hfast/netsim/smp_network.hpp"

#include <utility>

#include "hfast/util/assert.hpp"

namespace hfast::netsim {

SmpFabricNetwork::SmpFabricNetwork(const core::Fabric& fabric,
                                   std::vector<int> node_of_task,
                                   const LinkParams& circuit,
                                   const LinkParams& backplane,
                                   double block_overhead_s)
    : fabric_(fabric), node_of_task_(std::move(node_of_task)) {
  const int ntasks = static_cast<int>(node_of_task_.size());
  const int nnodes = fabric.num_nodes();
  HFAST_EXPECTS_MSG(ntasks >= 1, "smp network needs at least one task");

  std::vector<int> occupancy(static_cast<std::size_t>(nnodes), 0);
  for (int node : node_of_task_) {
    HFAST_EXPECTS_MSG(node >= 0 && node < nnodes,
                      "task mapped outside the fabric's nodes");
    ++occupancy[static_cast<std::size_t>(node)];
  }

  // Vertices: [0, T) tasks, then one backplane hub per multi-occupancy
  // node, then switch blocks. With every node single-occupancy (the
  // cores_per_node = 1 case) no hubs exist, vertex ids coincide with
  // FabricNetwork's node-then-block layout, and the link table built below
  // is identical to FabricNetwork's — the structural half of the parity
  // contract.
  for (int t = 0; t < ntasks; ++t) (void)add_vertex();
  hub_of_node_.assign(static_cast<std::size_t>(nnodes), -1);
  task_of_node_.assign(static_cast<std::size_t>(nnodes), -1);
  for (int t = 0; t < ntasks; ++t) {
    const int node = node_of_task_[static_cast<std::size_t>(t)];
    if (occupancy[static_cast<std::size_t>(node)] == 1) {
      task_of_node_[static_cast<std::size_t>(node)] = t;
    }
  }
  for (int n = 0; n < nnodes; ++n) {
    if (occupancy[static_cast<std::size_t>(n)] > 1) {
      hub_of_node_[static_cast<std::size_t>(n)] = add_vertex();
    } else {
      HFAST_EXPECTS_MSG(occupancy[static_cast<std::size_t>(n)] == 1,
                        "fabric node hosts no task");
    }
  }
  first_block_vertex_ = num_vertices_;
  for (int b = 0; b < fabric.num_blocks(); ++b) (void)add_vertex();

  // Backplane tier: each co-resident task attaches to its node's hub.
  for (int t = 0; t < ntasks; ++t) {
    const int hub = hub_of_node_[static_cast<std::size_t>(
        node_of_task_[static_cast<std::size_t>(t)])];
    if (hub != -1) (void)add_duplex_link(t, hub, backplane);
  }

  // Fabric tier, mirroring FabricNetwork link for link with the node
  // endpoint replaced by node_vertex(): entering any block pays the
  // packet-switching overhead; circuit hops add propagation only.
  LinkParams into_block = circuit;
  into_block.switch_overhead_s = block_overhead_s;
  for (int b = 0; b < fabric.num_blocks(); ++b) {
    const auto& blk = fabric.block(b);
    for (int p = 0; p < blk.num_ports(); ++p) {
      const auto& port = blk.port(p);
      if (port.use == core::PortUse::kHost) {
        const int nv = node_vertex(port.host_node);
        (void)add_directed_link(nv, block_vertex(b), into_block);
        (void)add_directed_link(block_vertex(b), nv, circuit);
      } else if (port.use == core::PortUse::kTrunk && port.peer.block > b) {
        const int a = block_vertex(b);
        const int c = block_vertex(port.peer.block);
        (void)add_directed_link(a, c, into_block);
        (void)add_directed_link(c, a, into_block);
      }
    }
  }
}

int SmpFabricNetwork::node_vertex(int node) const {
  const int hub = hub_of_node_[static_cast<std::size_t>(node)];
  return hub != -1 ? hub : task_of_node_[static_cast<std::size_t>(node)];
}

int SmpFabricNetwork::block_vertex(int block_id) const {
  return first_block_vertex_ + block_id;
}

const SmpFabricNetwork::RouteEntry& SmpFabricNetwork::route_entry(int src,
                                                                  int dst) {
  const auto key = std::pair{src, dst};
  auto it = route_cache_.find(key);
  if (it != route_cache_.end()) return it->second;

  const int a = node_of_task(src);
  const int b = node_of_task(dst);
  RouteEntry entry;
  if (a == b) {
    // Co-resident tasks: src -> hub -> dst on the backplane, zero switch
    // hops. Two distinct tasks sharing a node implies a hub exists.
    const int hub = hub_of_node_[static_cast<std::size_t>(a)];
    entry.links = {link_between(src, hub), link_between(hub, dst)};
    entry.hops = 0;
  } else {
    const core::FabricRoute r = fabric_.route(a, b);
    entry.hops = r.switch_hops();
    entry.links.reserve(r.blocks.size() + 3);
    if (hub_of_node_[static_cast<std::size_t>(a)] != -1) {
      entry.links.push_back(
          link_between(src, hub_of_node_[static_cast<std::size_t>(a)]));
    }
    int prev = node_vertex(a);
    for (int blk : r.blocks) {
      entry.links.push_back(link_between(prev, block_vertex(blk)));
      prev = block_vertex(blk);
    }
    entry.links.push_back(link_between(prev, node_vertex(b)));
    if (hub_of_node_[static_cast<std::size_t>(b)] != -1) {
      entry.links.push_back(
          link_between(hub_of_node_[static_cast<std::size_t>(b)], dst));
    }
  }
  return route_cache_.emplace(key, std::move(entry)).first->second;
}

void SmpFabricNetwork::prewarm_route(int src, int dst) {
  (void)route_entry(src, dst);
}

double SmpFabricNetwork::transfer(int src, int dst, std::uint64_t bytes,
                                  double start) {
  HFAST_EXPECTS(src != dst);
  return traverse(route_entry(src, dst).links, bytes, start);
}

int SmpFabricNetwork::switch_hops(int src, int dst) const {
  const auto it = route_cache_.find({src, dst});
  if (it != route_cache_.end()) return it->second.hops;
  // Not prewarmed: recompute instead of memoizing so the const query path
  // stays read-only under concurrent readers (as in FabricNetwork).
  const int a = node_of_task(src);
  const int b = node_of_task(dst);
  return a == b ? 0 : fabric_.route(a, b).switch_hops();
}

}  // namespace hfast::netsim
