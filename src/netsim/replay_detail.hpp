#pragma once
/// \file replay_detail.hpp
/// Internals shared between the serial replay and the partitioned-clock
/// parallel replay. The two are contractually bit-identical, so every cost
/// or validation rule they both apply must live here as the single
/// implementation — a copy that drifts by one rounding step breaks parity.

#include <cmath>
#include <string>

#include "hfast/netsim/network.hpp"
#include "hfast/netsim/replay.hpp"
#include "hfast/trace/trace.hpp"

namespace hfast::netsim::detail {

/// Per-rank execution state. Both replays advance a rank through its event
/// stream with exactly the same statements; `recv_wait` accumulates
/// rank-locally in event order and is reduced over ranks at the end, so
/// the float sum never depends on how ranks interleave.
struct RankState {
  std::vector<trace::CommEvent> ops;
  std::size_t pos = 0;
  double clock = 0.0;
  double recv_wait = 0.0;
  bool blocked = false;
};

/// Arrival-time FIFO backed by a flat vector with a consumed-prefix index:
/// no per-node allocation (unlike std::deque), and an empty channel costs
/// nothing but the struct itself. The consumed prefix is reclaimed whenever
/// it outgrows the live tail, keeping memory proportional to in-flight
/// messages.
struct ChannelFifo {
  std::vector<double> arrivals;
  std::size_t head = 0;

  bool empty() const noexcept { return head == arrivals.size(); }
  void push(double t) { arrivals.push_back(t); }
  double pop() {
    const double t = arrivals[head++];
    if (head > 64 && head * 2 > arrivals.size()) {
      arrivals.erase(arrivals.begin(),
                     arrivals.begin() + static_cast<std::ptrdiff_t>(head));
      head = 0;
    }
    return t;
  }
};

/// Collective cost on the dedicated tree network (paper §2.4): up the
/// log2(P)-depth combine tree and back down, plus payload serialization at
/// tree bandwidth.
inline double collective_cost(std::uint64_t bytes, int nranks,
                              const ReplayParams& params) {
  const int levels =
      nranks <= 1 ? 0 : static_cast<int>(std::ceil(std::log2(nranks)));
  return 2.0 * levels * params.tree_hop_latency_s +
         static_cast<double>(bytes) / params.tree_bandwidth_bps;
}

/// Reject events that index outside the trace's rank space. Traces are
/// runtime data — possibly a hand-edited load_text file — so a malformed
/// event is an Error, not a caller contract violation.
inline void validate_events(const trace::Trace& trace) {
  const int n = trace.nranks();
  for (const trace::CommEvent& e : trace.events()) {
    if (e.rank < 0 || e.rank >= n) {
      throw Error("replay: event rank " + std::to_string(e.rank) +
                  " outside [0, " + std::to_string(n) + ")");
    }
    if (e.kind != trace::EventKind::kCollective &&
        (e.peer < 0 || e.peer >= n)) {
      throw Error("replay: point-to-point peer " + std::to_string(e.peer) +
                  " outside [0, " + std::to_string(n) + ") on rank " +
                  std::to_string(e.rank));
    }
  }
}

/// Populate the network's route caches for every ordered pair the trace
/// sends on, so replay-time transfer()/switch_hops() queries are pure
/// lookups. The parallel replay requires this (shards share one network
/// for read-only hop queries); the serial replay does it too so both paths
/// exercise the same network state.
inline void prewarm_routes(const trace::Trace& trace, Network& net) {
  for (const trace::CommEvent& e : trace.events()) {
    if (e.kind == trace::EventKind::kSend && e.peer != e.rank && e.peer >= 0) {
      net.prewarm_route(e.rank, e.peer);
    }
  }
}

}  // namespace hfast::netsim::detail
