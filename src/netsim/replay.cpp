#include "hfast/netsim/replay.hpp"

#include <algorithm>
#include <queue>

#include "hfast/util/assert.hpp"
#include "replay_detail.hpp"

namespace hfast::netsim {

namespace {

using detail::ChannelFifo;
using detail::RankState;
using trace::CommEvent;
using trace::EventKind;

struct QueueEntry {
  double clock;
  int rank;
  /// (clock, rank) lexicographic. Breaking equal-clock ties by rank pins
  /// the schedule — and therefore every float accumulation order — to a
  /// total order no stdlib heap layout can perturb, which is also the
  /// order the parallel replay's sequencer reproduces.
  bool operator>(const QueueEntry& o) const {
    if (clock != o.clock) return clock > o.clock;
    return rank > o.rank;
  }
};

}  // namespace

ReplayResult replay(const trace::Trace& trace, Network& net,
                    const ReplayParams& params) {
  HFAST_EXPECTS_MSG(trace.nranks() <= net.num_endpoints(),
                    "network too small for the trace");
  detail::validate_events(trace);
  net.reset();
  detail::prewarm_routes(trace, net);

  const int n = trace.nranks();
  std::vector<RankState> ranks(static_cast<std::size_t>(n));
  for (const CommEvent& e : trace.events()) {
    ranks[static_cast<std::size_t>(e.rank)].ops.push_back(e);
  }

  // FIFO per-channel arrival queues, flat-indexed receiver*n+sender so the
  // hot send/recv paths are one array access instead of a map lookup. A
  // channel's only possible waiter is its receiver, so `waiting` is a flat
  // flag array over the same index.
  const auto chan = [n](int receiver, int sender) -> std::size_t {
    return static_cast<std::size_t>(receiver) * static_cast<std::size_t>(n) +
           static_cast<std::size_t>(sender);
  };
  std::vector<ChannelFifo> channel(static_cast<std::size_t>(n) *
                                   static_cast<std::size_t>(n));
  std::vector<char> waiting(channel.size(), 0);

  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> pq;
  for (int r = 0; r < n; ++r) {
    if (!ranks[static_cast<std::size_t>(r)].ops.empty()) {
      pq.push({0.0, r});
    }
  }

  ReplayResult result;
  double sum_latency = 0.0;
  double sum_hops = 0.0;
  std::size_t finished = 0;
  for (int r = 0; r < n; ++r) {
    if (ranks[static_cast<std::size_t>(r)].ops.empty()) ++finished;
  }

  while (!pq.empty()) {
    const auto [clock, r] = pq.top();
    pq.pop();
    RankState& rs = ranks[static_cast<std::size_t>(r)];
    if (rs.blocked || rs.pos >= rs.ops.size() || clock != rs.clock) {
      continue;  // stale queue entry
    }

    const CommEvent& e = rs.ops[rs.pos];
    switch (e.kind) {
      case EventKind::kSend: {
        rs.clock += params.send_overhead_s;
        double arrival = rs.clock;
        if (e.peer != e.rank && e.peer >= 0) {
          arrival = net.transfer(e.rank, e.peer, e.bytes, rs.clock);
          const double latency = arrival - rs.clock;
          sum_latency += latency;
          result.max_message_latency_s =
              std::max(result.max_message_latency_s, latency);
          const int hops = net.switch_hops(e.rank, e.peer);
          sum_hops += hops;
          result.max_switch_hops = std::max(result.max_switch_hops, hops);
          ++result.messages;
          result.bytes += e.bytes;
        }
        const std::size_t c = chan(e.peer, e.rank);
        channel[c].push(arrival);
        // Wake the receiver if it is blocked on this channel.
        if (waiting[c]) {
          waiting[c] = 0;
          const int woken = e.peer;
          ranks[static_cast<std::size_t>(woken)].blocked = false;
          pq.push({ranks[static_cast<std::size_t>(woken)].clock, woken});
        }
        ++rs.pos;
        break;
      }
      case EventKind::kRecv: {
        // Our channel key is (dst_of_send, src_of_send) = (this rank's view).
        ChannelFifo& q = channel[chan(e.rank, e.peer)];
        if (q.empty()) {
          rs.blocked = true;
          waiting[chan(e.rank, e.peer)] = 1;
          continue;  // re-queued on wake
        }
        const double arrival = q.pop();
        if (arrival > rs.clock) {
          rs.recv_wait += arrival - rs.clock;
          rs.clock = arrival;
        }
        rs.clock += params.recv_overhead_s;
        ++rs.pos;
        break;
      }
      case EventKind::kCollective: {
        rs.clock += params.send_overhead_s +
                    detail::collective_cost(e.bytes, n, params);
        ++rs.pos;
        break;
      }
    }

    if (rs.pos >= rs.ops.size()) {
      ++finished;
    } else if (!rs.blocked) {
      pq.push({rs.clock, r});
    }
  }

  if (finished != static_cast<std::size_t>(n)) {
    throw Error("replay: trace stalled — receive without a matching send");
  }
  // Rank clocks are monotone, so the per-rank final clock is that rank's
  // completion time; both finalizations run in rank order on both paths.
  for (const RankState& rs : ranks) {
    result.makespan_s = std::max(result.makespan_s, rs.clock);
    result.total_recv_wait_s += rs.recv_wait;
  }
  if (result.messages > 0) {
    result.avg_message_latency_s =
        sum_latency / static_cast<double>(result.messages);
    result.avg_switch_hops = sum_hops / static_cast<double>(result.messages);
  }
  return result;
}

}  // namespace hfast::netsim
