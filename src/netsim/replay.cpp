#include "hfast/netsim/replay.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "hfast/util/assert.hpp"

namespace hfast::netsim {

namespace {

using trace::CommEvent;
using trace::EventKind;

struct RankState {
  std::vector<CommEvent> ops;
  std::size_t pos = 0;
  double clock = 0.0;
  bool blocked = false;
};

/// Arrival-time FIFO backed by a flat vector with a consumed-prefix index:
/// no per-node allocation (unlike std::deque), and an empty channel costs
/// nothing but the struct itself. The consumed prefix is reclaimed whenever
/// it outgrows the live tail, keeping memory proportional to in-flight
/// messages.
struct ChannelFifo {
  std::vector<double> arrivals;
  std::size_t head = 0;

  bool empty() const noexcept { return head == arrivals.size(); }
  void push(double t) { arrivals.push_back(t); }
  double pop() {
    const double t = arrivals[head++];
    if (head > 64 && head * 2 > arrivals.size()) {
      arrivals.erase(arrivals.begin(),
                     arrivals.begin() + static_cast<std::ptrdiff_t>(head));
      head = 0;
    }
    return t;
  }
};

struct QueueEntry {
  double clock;
  int rank;
  bool operator>(const QueueEntry& o) const { return clock > o.clock; }
};

double collective_cost(const CommEvent& e, int nranks,
                       const ReplayParams& params) {
  const int levels =
      nranks <= 1 ? 0
                  : static_cast<int>(std::ceil(std::log2(nranks)));
  // Up the combine tree and back down, plus payload at tree bandwidth.
  return 2.0 * levels * params.tree_hop_latency_s +
         static_cast<double>(e.bytes) / params.tree_bandwidth_bps;
}

}  // namespace

ReplayResult replay(const trace::Trace& trace, Network& net,
                    const ReplayParams& params) {
  HFAST_EXPECTS_MSG(trace.nranks() <= net.num_endpoints(),
                    "network too small for the trace");
  net.reset();

  const int n = trace.nranks();
  std::vector<RankState> ranks(static_cast<std::size_t>(n));
  for (const CommEvent& e : trace.events()) {
    if (e.kind != EventKind::kCollective) {
      HFAST_EXPECTS_MSG(e.peer >= 0 && e.peer < n,
                        "replay: point-to-point event peer out of range");
    }
    ranks[static_cast<std::size_t>(e.rank)].ops.push_back(e);
  }

  // FIFO per-channel arrival queues, flat-indexed receiver*n+sender so the
  // hot send/recv paths are one array access instead of a map lookup. A
  // channel's only possible waiter is its receiver, so `waiting` is a flat
  // flag array over the same index.
  const auto chan = [n](int receiver, int sender) -> std::size_t {
    return static_cast<std::size_t>(receiver) * static_cast<std::size_t>(n) +
           static_cast<std::size_t>(sender);
  };
  std::vector<ChannelFifo> channel(static_cast<std::size_t>(n) *
                                   static_cast<std::size_t>(n));
  std::vector<char> waiting(channel.size(), 0);

  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> pq;
  for (int r = 0; r < n; ++r) {
    if (!ranks[static_cast<std::size_t>(r)].ops.empty()) {
      pq.push({0.0, r});
    }
  }

  ReplayResult result;
  double sum_latency = 0.0;
  double sum_hops = 0.0;
  std::size_t finished = 0;
  for (int r = 0; r < n; ++r) {
    if (ranks[static_cast<std::size_t>(r)].ops.empty()) ++finished;
  }

  while (!pq.empty()) {
    const auto [clock, r] = pq.top();
    pq.pop();
    RankState& rs = ranks[static_cast<std::size_t>(r)];
    if (rs.blocked || rs.pos >= rs.ops.size() || clock != rs.clock) {
      continue;  // stale queue entry
    }

    const CommEvent& e = rs.ops[rs.pos];
    switch (e.kind) {
      case EventKind::kSend: {
        rs.clock += params.send_overhead_s;
        double arrival = rs.clock;
        if (e.peer != e.rank && e.peer >= 0) {
          arrival = net.transfer(e.rank, e.peer, e.bytes, rs.clock);
          const double latency = arrival - rs.clock;
          sum_latency += latency;
          result.max_message_latency_s =
              std::max(result.max_message_latency_s, latency);
          const int hops = net.switch_hops(e.rank, e.peer);
          sum_hops += hops;
          result.max_switch_hops = std::max(result.max_switch_hops, hops);
          ++result.messages;
          result.bytes += e.bytes;
        }
        const std::size_t c = chan(e.peer, e.rank);
        channel[c].push(arrival);
        // Wake the receiver if it is blocked on this channel.
        if (waiting[c]) {
          waiting[c] = 0;
          const int woken = e.peer;
          ranks[static_cast<std::size_t>(woken)].blocked = false;
          pq.push({ranks[static_cast<std::size_t>(woken)].clock, woken});
        }
        ++rs.pos;
        break;
      }
      case EventKind::kRecv: {
        // Our channel key is (dst_of_send, src_of_send) = (this rank's view).
        ChannelFifo& q = channel[chan(e.rank, e.peer)];
        if (q.empty()) {
          rs.blocked = true;
          waiting[chan(e.rank, e.peer)] = 1;
          continue;  // re-queued on wake
        }
        const double arrival = q.pop();
        if (arrival > rs.clock) {
          result.total_recv_wait_s += arrival - rs.clock;
          rs.clock = arrival;
        }
        rs.clock += params.recv_overhead_s;
        ++rs.pos;
        break;
      }
      case EventKind::kCollective: {
        rs.clock += params.send_overhead_s + collective_cost(e, n, params);
        ++rs.pos;
        break;
      }
    }

    if (rs.pos >= rs.ops.size()) {
      ++finished;
    } else if (!rs.blocked) {
      pq.push({rs.clock, r});
    }
    result.makespan_s = std::max(result.makespan_s, rs.clock);
  }

  if (finished != static_cast<std::size_t>(n)) {
    throw Error("replay: trace stalled — receive without a matching send");
  }
  if (result.messages > 0) {
    result.avg_message_latency_s =
        sum_latency / static_cast<double>(result.messages);
    result.avg_switch_hops = sum_hops / static_cast<double>(result.messages);
  }
  return result;
}

}  // namespace hfast::netsim
