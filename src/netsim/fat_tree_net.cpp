#include "hfast/netsim/fat_tree_net.hpp"

#include <sstream>

#include "hfast/util/assert.hpp"

namespace hfast::netsim {

int StructuralFatTree::digit(int value, int digit_index, int k) {
  for (int i = 0; i < digit_index; ++i) value /= k;
  return value % k;
}

int StructuralFatTree::replace_digit(int pos, int digit_index, int value,
                                     int k) {
  int scale = 1;
  for (int i = 0; i < digit_index; ++i) scale *= k;
  const int old = (pos / scale) % k;
  return pos + (value - old) * scale;
}

StructuralFatTree::StructuralFatTree(int num_endpoints, int radix,
                                     const LinkParams& params)
    : endpoints_(num_endpoints) {
  HFAST_EXPECTS(num_endpoints >= 2);
  HFAST_EXPECTS_MSG(radix >= 4 && radix % 2 == 0,
                    "fat-tree radix must be an even number >= 4");
  k_ = radix / 2;
  levels_ = 1;
  std::int64_t capacity = k_;
  while (capacity < num_endpoints) {
    capacity *= k_;
    ++levels_;
    HFAST_ASSERT_MSG(levels_ <= 12, "fat-tree depth overflow");
  }
  positions_ = 1;
  for (int l = 1; l < levels_; ++l) positions_ *= k_;

  // Vertices: endpoints, then switches level-major.
  for (int i = 0; i < endpoints_ + levels_ * positions_; ++i) {
    (void)add_vertex();
  }
  // Endpoint <-> leaf links.
  for (int e = 0; e < endpoints_; ++e) {
    add_duplex_link(e, switch_vertex(1, e / k_), params);
  }
  // Inter-level links: (l, w) <-> (l+1, u) iff w and u differ at most in
  // position digit l-1. Enumerate once per upper switch: its k down
  // neighbors are u with digit l-1 replaced by each j.
  for (int l = 1; l < levels_; ++l) {
    for (int u = 0; u < positions_; ++u) {
      for (int j = 0; j < k_; ++j) {
        const int w = replace_digit(u, l - 1, j, k_);
        add_duplex_link(switch_vertex(l, w), switch_vertex(l + 1, u), params);
      }
    }
  }
}

std::string StructuralFatTree::name() const {
  std::ostringstream os;
  os << "fat-tree-structural(k=" << k_ << ",n=" << levels_ << ')';
  return os.str();
}

int StructuralFatTree::common_level(int src, int dst) const {
  HFAST_EXPECTS(src >= 0 && src < endpoints_ && dst >= 0 && dst < endpoints_);
  int level = 1;
  int s = src / k_;
  int d = dst / k_;
  while (s != d) {
    s /= k_;
    d /= k_;
    ++level;
  }
  return level;
}

std::vector<int> StructuralFatTree::route_links(int src, int dst) const {
  const int m = common_level(src, dst);
  std::vector<int> path;
  path.reserve(static_cast<std::size_t>(2 * m));

  int w = src / k_;  // leaf position of the source
  int prev = src;
  int cur = switch_vertex(1, w);
  path.push_back(link_between(prev, cur));

  // Climb, rewriting each freed digit to the destination's (D-mod-k).
  for (int l = 1; l < m; ++l) {
    const int next_w = replace_digit(w, l - 1, digit(dst, l, k_) , k_);
    // Position digit l-1 corresponds to endpoint digit l.
    const int next = switch_vertex(l + 1, next_w);
    path.push_back(link_between(cur, next));
    w = next_w;
    cur = next;
  }
  // After the climb, w equals the destination leaf's canonical position in
  // all digits; descend straight down.
  for (int l = m - 1; l >= 1; --l) {
    const int next = switch_vertex(l, w);
    path.push_back(link_between(cur, next));
    cur = next;
  }
  path.push_back(link_between(cur, dst));
  return path;
}

double StructuralFatTree::transfer(int src, int dst, std::uint64_t bytes,
                                   double start) {
  HFAST_EXPECTS(src != dst);
  return traverse(route_links(src, dst), bytes, start);
}

int StructuralFatTree::switch_hops(int src, int dst) const {
  if (src == dst) return 0;
  return 2 * common_level(src, dst) - 1;
}

}  // namespace hfast::netsim
