#include "hfast/netsim/replay_parallel.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "hfast/util/assert.hpp"
#include "replay_detail.hpp"

namespace hfast::netsim {

namespace {

using detail::ChannelFifo;
using detail::RankState;
using trace::CommEvent;
using trace::EventKind;

/// One cross-rank message awaiting sequencing: the sender already advanced
/// past it (its only local effect is the send overhead); the sequencer
/// owes the network a transfer() at `start` and the receiver an arrival.
struct PendingTransfer {
  double start = 0.0;  ///< injection time (sender clock after send overhead)
  int src = -1;
  int dst = -1;
  std::uint64_t bytes = 0;
  std::uint64_t seq = 0;  ///< sender-local op position, for stable ties

  /// The serial replay's transfer order: (injection, rank, op).
  bool operator<(const PendingTransfer& o) const {
    if (start != o.start) return start < o.start;
    if (src != o.src) return src < o.src;
    return seq < o.seq;
  }
};

/// A sequenced arrival headed back to the receiver's shard.
struct Delivery {
  int receiver = -1;
  int sender = -1;
  double arrival = 0.0;
};

/// Bounded SPSC submission queue, one per worker shard (the sequencer is
/// the single consumer of all of them). push() blocks on capacity —
/// backpressure, not loss — which is deadlock-free because the sequencer
/// drains concurrently with worker execution and never blocks on a full
/// queue itself.
class TransferQueue {
 public:
  explicit TransferQueue(std::size_t capacity) : capacity_(capacity) {}

  void push(const PendingTransfer& t) {
    std::unique_lock lk(m_);
    not_full_.wait(lk, [&] { return buf_.size() < capacity_; });
    buf_.push_back(t);
    lk.unlock();
    not_empty_.notify_one();
  }

  /// Producer: this round's submissions are complete.
  void producer_done() {
    {
      std::lock_guard lk(m_);
      done_ = true;
    }
    not_empty_.notify_one();
  }

  /// Consumer: re-arm for the next round (call between rounds only —
  /// i.e. while the producer is parked at the round gate).
  void reset_round() {
    std::lock_guard lk(m_);
    done_ = false;
  }

  /// Consumer: block until submissions are available or the round is
  /// complete; append whatever is there. Returns false once the producer
  /// finished the round and the queue is empty.
  bool drain(std::vector<PendingTransfer>& out) {
    std::unique_lock lk(m_);
    not_empty_.wait(lk, [&] { return !buf_.empty() || done_; });
    if (buf_.empty()) return false;
    out.insert(out.end(), buf_.begin(), buf_.end());
    buf_.clear();
    lk.unlock();
    not_full_.notify_all();
    return true;
  }

 private:
  std::mutex m_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::vector<PendingTransfer> buf_;
  std::size_t capacity_;
  bool done_ = false;
};

/// Round barrier: workers park here after quiescing; the sequencer
/// releases the next round (or tells everyone to exit). The gate's mutex
/// is also the happens-before edge that publishes the inboxes the
/// sequencer filled to the workers that read them.
class RoundGate {
 public:
  /// Worker side: wait for a generation newer than `seen`, adopt it.
  /// Returns false when the sequencer ordered shutdown.
  bool await(std::uint64_t& seen) {
    std::unique_lock lk(m_);
    cv_.wait(lk, [&] { return generation_ > seen || exit_; });
    seen = generation_;
    return !exit_;
  }

  /// Sequencer side: start the next round, or shut the workers down.
  void release(bool exit) {
    {
      std::lock_guard lk(m_);
      if (exit) {
        exit_ = true;
      } else {
        ++generation_;
      }
    }
    cv_.notify_all();
  }

 private:
  std::mutex m_;
  std::condition_variable cv_;
  std::uint64_t generation_ = 0;
  bool exit_ = false;
};

struct ChannelSlot {
  ChannelFifo fifo;
  bool waiting = false;  ///< the receiver is blocked on exactly this channel
};

/// One shard: a contiguous rank range [first, last) with its rank states
/// and receive channels. Channels are sparse maps keyed by sender — at
/// P=4096 a flat P^2 table would dwarf the trace itself, and the paper's
/// whole point is that each rank talks to a few dozen partners (TDC << P).
class Shard {
 public:
  void init(int first, int last) {
    first_ = first;
    ranks_.resize(static_cast<std::size_t>(last - first));
    channels_.resize(ranks_.size());
  }

  RankState& rank(int global) {
    return ranks_[static_cast<std::size_t>(global - first_)];
  }
  const std::vector<RankState>& ranks() const { return ranks_; }
  std::vector<Delivery>& inbox() { return inbox_; }
  int finished_ranks() const { return finished_; }

  /// Run one round: fold in the deliveries the sequencer routed to us,
  /// then advance every runnable rank until it blocks or finishes. Ranks
  /// only interact through sequenced transfers, so a single in-order pass
  /// reaches shard-wide quiescence.
  template <typename Submit>
  void run_round(int nranks, const ReplayParams& params,
                 const Submit& submit) {
    for (const Delivery& d : inbox_) {
      ChannelSlot& slot = channel(d.receiver, d.sender);
      slot.fifo.push(d.arrival);
      if (slot.waiting) {
        slot.waiting = false;
        rank(d.receiver).blocked = false;
      }
    }
    inbox_.clear();

    finished_ = 0;
    for (std::size_t i = 0; i < ranks_.size(); ++i) {
      RankState& rs = ranks_[i];
      if (!rs.blocked) run_rank(rs, nranks, params, submit);
      if (rs.pos >= rs.ops.size()) ++finished_;
    }
  }

 private:
  ChannelSlot& channel(int receiver, int sender) {
    return channels_[static_cast<std::size_t>(receiver - first_)][sender];
  }

  /// Advance one rank to quiescence. Statement-for-statement the serial
  /// replay's event handling, except that a cross-rank send submits a
  /// PendingTransfer instead of touching the network: the sender's clock
  /// never depends on its own transfer result, so it can run ahead.
  template <typename Submit>
  void run_rank(RankState& rs, int nranks, const ReplayParams& params,
                const Submit& submit) {
    while (rs.pos < rs.ops.size()) {
      const CommEvent& e = rs.ops[rs.pos];
      switch (e.kind) {
        case EventKind::kSend: {
          rs.clock += params.send_overhead_s;
          if (e.peer != e.rank && e.peer >= 0) {
            submit(PendingTransfer{rs.clock, e.rank, e.peer, e.bytes,
                                   static_cast<std::uint64_t>(rs.pos)});
          } else {
            // Self-send: arrival is the injection time, no network
            // traversal, no message stats — exactly the serial path.
            channel(e.rank, e.rank).fifo.push(rs.clock);
          }
          ++rs.pos;
          break;
        }
        case EventKind::kRecv: {
          ChannelSlot& slot = channel(e.rank, e.peer);
          if (slot.fifo.empty()) {
            rs.blocked = true;
            slot.waiting = true;
            return;
          }
          const double arrival = slot.fifo.pop();
          if (arrival > rs.clock) {
            rs.recv_wait += arrival - rs.clock;
            rs.clock = arrival;
          }
          rs.clock += params.recv_overhead_s;
          ++rs.pos;
          break;
        }
        case EventKind::kCollective: {
          rs.clock += params.send_overhead_s +
                      detail::collective_cost(e.bytes, nranks, params);
          ++rs.pos;
          break;
        }
      }
    }
  }

  int first_ = 0;
  std::vector<RankState> ranks_;
  std::vector<std::map<int, ChannelSlot>> channels_;
  std::vector<Delivery> inbox_;
  int finished_ = 0;
};

}  // namespace

ReplayResult parallel_replay(const trace::Trace& trace, Network& net,
                             const ReplayParams& params,
                             const ParallelReplayOptions& options) {
  HFAST_EXPECTS_MSG(trace.nranks() <= net.num_endpoints(),
                    "network too small for the trace");
  HFAST_EXPECTS_MSG(options.shards >= 0,
                    "parallel_replay: negative shard count");
  HFAST_EXPECTS_MSG(options.channel_capacity > 0,
                    "parallel_replay: channel capacity must be positive");
  detail::validate_events(trace);

  // Conservative lookahead: a transfer injected at t cannot deliver before
  // t + min link latency, and the woken receiver cannot inject a new
  // transfer before paying the send overhead on top. With zero lookahead
  // the window never admits more than the front event and ordering ties at
  // equal times cannot be ruled out, so conservative partitioning cannot
  // run ahead of the sequencer — use the serial algorithm directly.
  const double lookahead =
      net.min_transfer_latency_s() + params.send_overhead_s;
  if (lookahead <= 0.0) return replay(trace, net, params);

  net.reset();
  detail::prewarm_routes(trace, net);

  const int n = trace.nranks();
  int nshards = options.shards;
  if (nshards == 0) {
    nshards = static_cast<int>(std::thread::hardware_concurrency());
  }
  nshards = std::clamp(nshards, 1, std::max(1, n));

  std::vector<Shard> shards(static_cast<std::size_t>(nshards));
  std::vector<int> shard_of(static_cast<std::size_t>(n));
  for (int s = 0; s < nshards; ++s) {
    const int first = static_cast<int>(static_cast<long long>(s) * n / nshards);
    const int last =
        static_cast<int>(static_cast<long long>(s + 1) * n / nshards);
    shards[static_cast<std::size_t>(s)].init(first, last);
    for (int r = first; r < last; ++r) {
      shard_of[static_cast<std::size_t>(r)] = s;
    }
  }
  for (const CommEvent& e : trace.events()) {
    shards[static_cast<std::size_t>(shard_of[static_cast<std::size_t>(e.rank)])]
        .rank(e.rank)
        .ops.push_back(e);
  }

  // Shard 0 runs on this thread, interleaved with sequencing; its
  // submissions land in a plain vector. Shards 1..K-1 get a thread and a
  // bounded queue each.
  std::vector<std::unique_ptr<TransferQueue>> queues;
  for (int s = 1; s < nshards; ++s) {
    queues.push_back(std::make_unique<TransferQueue>(options.channel_capacity));
  }
  RoundGate gate;
  std::vector<std::exception_ptr> worker_errors(
      static_cast<std::size_t>(nshards > 0 ? nshards - 1 : 0));
  std::vector<std::thread> workers;
  workers.reserve(queues.size());
  for (int s = 1; s < nshards; ++s) {
    Shard& shard = shards[static_cast<std::size_t>(s)];
    TransferQueue& queue = *queues[static_cast<std::size_t>(s - 1)];
    std::exception_ptr& error = worker_errors[static_cast<std::size_t>(s - 1)];
    workers.emplace_back([&shard, &queue, &gate, &error, n, &params] {
      std::uint64_t seen = 0;
      try {
        for (;;) {
          shard.run_round(n, params,
                          [&queue](const PendingTransfer& t) { queue.push(t); });
          queue.producer_done();
          if (!gate.await(seen)) return;
        }
      } catch (...) {
        // Keep the round protocol alive so the sequencer never hangs on a
        // dead producer; it will notice the stored error and shut down.
        error = std::current_exception();
        queue.producer_done();
        while (gate.await(seen)) queue.producer_done();
      }
    });
  }

  ReplayResult result;
  double sum_latency = 0.0;
  double sum_hops = 0.0;
  std::vector<PendingTransfer> withheld;  // sorted, beyond past windows
  std::vector<PendingTransfer> pending;
  std::vector<PendingTransfer> merged;
  bool stalled = false;
  std::exception_ptr failure;

  const auto apply_transfer = [&](const PendingTransfer& t) {
    // Mirrors the serial send path bit for bit: same transfer call, same
    // stat statements, applied in the same global order.
    const double arrival = net.transfer(t.src, t.dst, t.bytes, t.start);
    const double latency = arrival - t.start;
    sum_latency += latency;
    result.max_message_latency_s =
        std::max(result.max_message_latency_s, latency);
    const int hops = net.switch_hops(t.src, t.dst);
    sum_hops += hops;
    result.max_switch_hops = std::max(result.max_switch_hops, hops);
    ++result.messages;
    result.bytes += t.bytes;
    return arrival;
  };

  for (;;) {
    // Run our own shard to quiescence, then collect every other shard's
    // submissions. Draining while workers still run is what makes the
    // bounded queues deadlock-free.
    pending.clear();
    shards[0].run_round(
        n, params, [&pending](const PendingTransfer& t) { pending.push_back(t); });
    for (auto& q : queues) {
      while (q->drain(pending)) {
      }
    }
    for (std::exception_ptr& e : worker_errors) {
      if (e) failure = e;
    }
    if (failure) break;

    std::sort(pending.begin(), pending.end());
    merged.clear();
    merged.reserve(withheld.size() + pending.size());
    std::merge(withheld.begin(), withheld.end(), pending.begin(),
               pending.end(), std::back_inserter(merged));
    withheld.swap(merged);

    int finished = 0;
    for (const Shard& s : shards) finished += s.finished_ranks();
    if (finished == n) break;  // remaining withheld transfers flush below
    if (withheld.empty()) {
      stalled = true;
      break;
    }

    // Conservative window: every transfer not yet submitted is downstream
    // of some withheld delivery, so it starts no earlier than the current
    // minimum start plus the lookahead. Everything strictly inside the
    // window is final and can be sequenced.
    const double window_end = withheld.front().start + lookahead;
    std::size_t applied = 0;
    while (applied < withheld.size() && withheld[applied].start < window_end) {
      const PendingTransfer& t = withheld[applied];
      const double arrival = apply_transfer(t);
      shards[static_cast<std::size_t>(
                 shard_of[static_cast<std::size_t>(t.dst)])]
          .inbox()
          .push_back({t.dst, t.src, arrival});
      ++applied;
    }
    withheld.erase(withheld.begin(),
                   withheld.begin() + static_cast<std::ptrdiff_t>(applied));

    for (auto& q : queues) q->reset_round();
    gate.release(/*exit=*/false);
  }

  gate.release(/*exit=*/true);
  for (std::thread& w : workers) w.join();
  if (failure) std::rethrow_exception(failure);
  if (stalled) {
    throw Error("replay: trace stalled — receive without a matching send");
  }

  // Unmatched sends: every rank finished but their transfers still owe the
  // network (and the stats) their traversal, just as in the serial replay.
  // No rank is left to wake, so deliveries are dropped.
  for (const PendingTransfer& t : withheld) (void)apply_transfer(t);

  for (const Shard& s : shards) {
    for (const RankState& rs : s.ranks()) {
      result.makespan_s = std::max(result.makespan_s, rs.clock);
      result.total_recv_wait_s += rs.recv_wait;
    }
  }
  if (result.messages > 0) {
    result.avg_message_latency_s =
        sum_latency / static_cast<double>(result.messages);
    result.avg_switch_hops = sum_hops / static_cast<double>(result.messages);
  }
  return result;
}

}  // namespace hfast::netsim
