#include "hfast/apps/app.hpp"

#include <vector>

#include "hfast/topo/mesh.hpp"
#include "hfast/util/assert.hpp"

namespace hfast::apps {

/// Cactus (paper Fig. 6): a 3D regular-grid finite-difference code. Ranks
/// form a non-periodic 3D block decomposition; every iteration exchanges
/// ~300 KB ghost-zone faces with up to 6 axis neighbors via nonblocking
/// pairs, waits receives individually, and reduces an 8-byte residual
/// occasionally. Max TDC 6 regardless of P (avg ~5 with boundary effects),
/// insensitive to thresholding — the paper's case i.
void run_cactus(mpisim::RankContext& ctx, const AppParams& params) {
  using mpisim::Request;

  const int p = ctx.nranks();
  const auto dims = topo::MeshTorus::balanced_dims(p, 3);
  const topo::MeshTorus grid(dims, /*wraparound=*/false);

  // ~195^2 face of doubles: the ~300 KB ghost plane of Table 3.
  constexpr std::uint64_t kFaceBytes = 195ULL * 195ULL * 8ULL;

  const auto neighbors = grid.neighbors(ctx.rank());

  {
    mpisim::RankContext::Region init(ctx, kInitRegion);
    // Parameter broadcast + initial-data consistency check.
    ctx.bcast(0, 512);
    ctx.barrier();
  }

  mpisim::RankContext::Region steady(ctx, kSteadyRegion);
  for (int iter = 0; iter < params.iterations; ++iter) {
    std::vector<Request> recvs;
    std::vector<Request> sends;
    recvs.reserve(neighbors.size());
    sends.reserve(neighbors.size());
    for (int nbr : neighbors) {
      recvs.push_back(ctx.irecv(nbr, kFaceBytes, /*tag=*/iter));
    }
    for (int nbr : neighbors) {
      sends.push_back(ctx.isend(nbr, kFaceBytes, /*tag=*/iter));
    }
    // Receives are consumed one face at a time as the stencil sweeps;
    // half the sends are retired individually, the rest in one waitall —
    // reproducing Cactus's measured wait/waitall mix (Figure 2).
    for (Request& r : recvs) ctx.wait(r);
    std::size_t half = sends.size() / 2;
    for (std::size_t i = 0; i < half; ++i) ctx.wait(sends[i]);
    std::vector<Request> rest(sends.begin() + static_cast<std::ptrdiff_t>(half),
                              sends.end());
    if (!rest.empty()) ctx.waitall(rest);

    // Residual norm for the time-step controller, every few iterations.
    if (iter % 8 == 7) ctx.allreduce(8);
  }
}

}  // namespace hfast::apps
