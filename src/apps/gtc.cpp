#include "hfast/apps/app.hpp"

#include <vector>

#include "hfast/util/assert.hpp"

namespace hfast::apps {

namespace {

/// GTC's toroidal grid extent: the 1D domain decomposition has 64 poloidal
/// planes (the paper's production configuration); concurrency beyond 64
/// comes from the particle decomposition within each plane.
constexpr int kToroidalExtent = 64;

}  // namespace

/// GTC (paper Fig. 5): particle-in-cell fusion code. A 1D toroidal
/// decomposition gives every rank two 128 KB sendrecv partners; the
/// particle decomposition adds MPI_Gather-dominated collectives inside each
/// plane plus moderate (4 KB) particle-redistribution traffic from plane
/// leaders into neighboring planes — so the maximum TDC (10 at P=256 after
/// thresholding) far exceeds the average (~4): the paper's case iii.
/// Sub-2KB diagnostic messages raise the raw max TDC further (~17) but are
/// removed by the bandwidth-delay-product threshold.
void run_gtc(mpisim::RankContext& ctx, const AppParams& params) {
  const int p = ctx.nranks();
  const int planes = std::min(p, kToroidalExtent);
  HFAST_EXPECTS_MSG(p % planes == 0, "gtc needs a multiple of the toroidal extent");
  const int ranks_per_plane = p / planes;

  // Layout: rank = particle_index * planes + plane, so the toroidal ring
  // for one particle slot is a contiguous stride-1 band (diagonal structure
  // in the paper's volume plot).
  const int plane = ctx.rank() % planes;
  const int pidx = ctx.rank() / planes;
  auto rank_of = [planes](int pl, int pi) {
    return pi * planes + ((pl % planes) + planes) % planes;
  };

  constexpr std::uint64_t kShiftBytes = 128ULL * 1024ULL;  // toroidal shift
  constexpr std::uint64_t kRedistributeBytes = 4096;       // particle spill
  constexpr std::uint64_t kDiagnosticBytes = 100;          // sub-threshold
  constexpr std::uint64_t kGatherBytes = 100;              // Table 3 median

  mpisim::Communicator plane_comm;
  {
    mpisim::RankContext::Region init(ctx, kInitRegion);
    plane_comm = ctx.split(ctx.world(), /*color=*/plane, /*key=*/pidx);
    ctx.bcast(0, 256);
    ctx.barrier();
  }
  HFAST_ASSERT(plane_comm.size() == ranks_per_plane);

  // Plane "leaders" on even planes scatter spilled particles into both
  // neighboring planes; this is what inflates the max TDC beyond the ring.
  const bool scatter_leader =
      pidx == 0 && plane % 2 == 0 && ranks_per_plane > 1;

  mpisim::RankContext::Region steady(ctx, kSteadyRegion);
  for (int iter = 0; iter < params.iterations; ++iter) {
    // Toroidal particle shift, both directions (ring sendrecvs).
    const int left = rank_of(plane - 1, pidx);
    const int right = rank_of(plane + 1, pidx);
    ctx.sendrecv(right, kShiftBytes, left, kShiftBytes, /*tag=*/2 * iter);
    ctx.sendrecv(left, kShiftBytes, right, kShiftBytes, /*tag=*/2 * iter + 1);

    // Charge deposition and field solve: gathers to the plane master —
    // per-cell moments (100 B) and the coarse field slice (1 KB).
    ctx.gather(plane_comm, /*root=*/0, kGatherBytes);
    ctx.gather(plane_comm, /*root=*/0, 1024);
    if (iter % 2 == 0) ctx.allreduce(8);
    // Periodic full-grid snapshot collection (the small >2KB collective
    // tail visible in the paper's Figure 3).
    if (iter % 4 == 2) ctx.gather(plane_comm, /*root=*/0, 4096);

    // Particle redistribution: every 4th step, even-plane leaders push
    // 4 KB to the non-leader ranks of both neighboring planes and exchange
    // with leaders two planes away.
    if (iter % 4 == 0 && ranks_per_plane > 1) {
      const int tag = 1000 + iter;
      if (scatter_leader) {
        for (int d : {-1, +1}) {
          for (int pi = 1; pi < ranks_per_plane; ++pi) {
            ctx.send(rank_of(plane + d, pi), kRedistributeBytes, tag);
          }
        }
        for (int d : {-2, +2}) {
          ctx.send(rank_of(plane + d, 0), kRedistributeBytes, tag);
        }
        for (int d : {-2, +2}) {
          (void)ctx.recv(rank_of(plane + d, 0), kRedistributeBytes, tag);
        }
      } else if (pidx > 0) {
        // Non-leaders receive from the even-plane leaders next door.
        for (int d : {-1, +1}) {
          const int src_plane = ((plane + d) % planes + planes) % planes;
          if (src_plane % 2 == 0) {
            (void)ctx.recv(rank_of(plane + d, 0), kRedistributeBytes, tag);
          }
        }
      }
    }

    // Sub-threshold diagnostics: even-plane leaders probe leaders up to
    // +-3 planes away and one far plane, lifting the *raw* max TDC to ~17
    // without affecting the 2 KB-thresholded topology.
    if (iter % 8 == 0 && scatter_leader) {
      const int tag = 2000 + iter;
      // Even-distance offsets so every target is itself an even-plane
      // leader and posts the matching receive. The offset set is symmetric
      // (planes/2 is its own inverse), so each leader receives exactly as
      // many probes as it sends. Raw leader TDC: 2 (ring) + 6 (spill) +
      // 2 (leaders +-2) + 7 (probes) = 17, the paper's Figure 5 maximum.
      for (int d : {-4, +4, -6, +6, -8, +8, planes / 2}) {
        ctx.send(rank_of(plane + d, 0), kDiagnosticBytes, tag);
      }
      for (int i = 0; i < 7; ++i) {
        (void)ctx.recv(mpisim::kAnySource, kDiagnosticBytes, tag);
      }
    }
  }
}

}  // namespace hfast::apps
