#include "hfast/apps/app.hpp"

#include <array>
#include <vector>

#include "hfast/util/assert.hpp"

namespace hfast::apps {

namespace {

/// Panel-data message sizes cycle through a spread (SuperLU's buffer-size
/// distribution is wide — paper Figure 4); all are above the 2 KB cutoff.
constexpr std::array<std::uint64_t, 3> kPanelBytes = {4096, 16384, 65536};
constexpr std::uint64_t kPivotBytes = 64;  ///< tiny control notifications
constexpr std::uint64_t kBcastBytes = 24;
constexpr std::uint64_t kInitChunkBytes = 1024ULL * 1024ULL;

}  // namespace

/// SuperLU_DIST (paper Fig. 8): sparse LU on a sqrt(P) x sqrt(P) process
/// grid. Factorization panels move >2KB data along process rows and
/// columns (thresholded TDC = 2(sqrt(P)-1): 14 at P=64, 30 at P=256),
/// while tiny pivot/structure notifications eventually touch every rank
/// (raw TDC = P-1). Initialization distributes the input matrix from rank
/// 0 to everyone — point-to-point traffic the paper explicitly excludes
/// via IPM regioning, reproduced here in the "init" region.
void run_superlu(mpisim::RankContext& ctx, const AppParams& params) {
  using mpisim::Request;

  const int p = ctx.nranks();
  const int me = ctx.rank();
  int side = 1;
  while (side * side < p) ++side;
  HFAST_EXPECTS_MSG(side * side == p, "superlu needs a square process count");
  HFAST_EXPECTS_MSG(side >= 2, "superlu needs at least a 2x2 grid");

  const int row = me / side;
  const int col = me % side;

  {
    mpisim::RankContext::Region init(ctx, kInitRegion);
    // Input matrix scatter: large point-to-point transfers from rank 0.
    if (me == 0) {
      for (int r = 1; r < p; ++r) ctx.send(r, kInitChunkBytes, /*tag=*/0);
    } else {
      (void)ctx.recv(0, kInitChunkBytes, /*tag=*/0);
    }
    ctx.barrier();
  }

  // Per iteration: 6 row-panel + 6 column-panel nonblocking exchanges with
  // rotating offsets (the union over iterations covers the whole row and
  // column), 12 tiny blocking sends sweeping all ranks, and 4 bcasts —
  // reproducing SuperLU's measured call mix (Figure 2: Wait 30.6%,
  // Isend 16.4%, Irecv 15.7%, Recv 15.4%, Send 14.7%, Bcast 5.3%).
  constexpr int kPanelsPerIter = 6;
  constexpr int kPivotsPerIter = 12;

  mpisim::RankContext::Region steady(ctx, kSteadyRegion);
  for (int iter = 0; iter < params.iterations; ++iter) {
    std::vector<Request> reqs;
    reqs.reserve(4 * kPanelsPerIter);

    // Row and column panel exchanges: symmetric offset rotation, so every
    // send has a matching posted receive (I send to +o, receive from -o).
    const int tag = iter;
    for (int j = 0; j < kPanelsPerIter; ++j) {
      const int o = 1 + (iter * kPanelsPerIter + j) % (side - 1);
      const std::uint64_t bytes = kPanelBytes[static_cast<std::size_t>(j) %
                                              kPanelBytes.size()];
      const int row_dst = row * side + (col + o) % side;
      const int row_src = row * side + (col - o + side) % side;
      reqs.push_back(ctx.irecv(row_src, bytes, tag));
      reqs.push_back(ctx.isend(row_dst, bytes, tag));
      const int col_dst = ((row + o) % side) * side + col;
      const int col_src = ((row - o + side) % side) * side + col;
      reqs.push_back(ctx.irecv(col_src, bytes, tag));
      reqs.push_back(ctx.isend(col_dst, bytes, tag));
    }
    for (Request& r : reqs) ctx.wait(r);

    // Pivot notifications: tiny blocking sends sweeping all other ranks
    // over the course of the run (raw connectivity = P). Every 6th is a
    // zero-byte "nothing for you" send, as the paper notes for SuperLU.
    const int pivot_tag = 50000 + iter;
    for (int k = 0; k < kPivotsPerIter; ++k) {
      const int q = 1 + (iter * kPivotsPerIter + k) % (p - 1);
      const std::uint64_t bytes = (k % 6 == 5) ? 0 : kPivotBytes;
      ctx.send((me + q) % p, bytes, pivot_tag);
    }
    for (int k = 0; k < kPivotsPerIter; ++k) {
      (void)ctx.recv(mpisim::kAnySource, kPivotBytes, pivot_tag);
    }

    // Panel-structure broadcasts from the rotating diagonal owner: two tiny
    // descriptors, one medium row-structure block, and (every other step) a
    // full supernode map above the 2 KB threshold — reproducing the spread
    // of collective payloads in the paper's Figure 3.
    ctx.bcast(iter % p, kBcastBytes);
    ctx.bcast((iter + 1) % p, kBcastBytes);
    ctx.bcast((iter + 2) % p, 480);
    ctx.bcast((iter + 3) % p, iter % 2 == 1 ? 8192 : kBcastBytes);
  }
}

}  // namespace hfast::apps
