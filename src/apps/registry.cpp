#include "hfast/apps/app.hpp"

#include "hfast/util/assert.hpp"

namespace hfast::apps {

mpisim::RankProgram App::program(AppParams params) const {
  if (params.iterations == 0) {
    params.iterations = default_iterations(params.nranks);
  }
  auto body = run;
  return [body, params](mpisim::RankContext& ctx) { body(ctx, params); };
}

const std::vector<App>& registry() {
  static const std::vector<App> apps = [] {
    std::vector<App> v;
    v.push_back({{"cactus", 84000, "Astrophysics",
                  "Einstein's Theory of GR via Finite Differencing", "Grid"},
                 run_cactus,
                 [](int) { return 8; }});
    v.push_back({{"lbmhd", 1500, "Plasma Physics",
                  "Magneto-Hydrodynamics via Lattice Boltzmann",
                  "Lattice/Grid"},
                 run_lbmhd,
                 [](int) { return 8; }});
    v.push_back({{"gtc", 5000, "Magnetic Fusion",
                  "Vlasov-Poisson Equation via Particle in Cell",
                  "Particle/Grid"},
                 run_gtc,
                 [](int) { return 8; }});
    v.push_back({{"superlu", 42000, "Linear Algebra",
                  "Sparse Solve via LU Decomposition", "Sparse Matrix"},
                 run_superlu,
                 // Tiny pivot notifications rotate over all peers; give the
                 // rotation time to cover P-1 targets at 12 per iteration.
                 [](int nranks) { return (nranks - 1 + 11) / 12 + 1; }});
    v.push_back({{"pmemd", 37000, "Life Sciences",
                  "Molecular Dynamics via Particle Mesh Ewald", "Particle"},
                 run_pmemd,
                 [](int) { return 4; }});
    v.push_back({{"paratec", 50000, "Material Science",
                  "Density Functional Theory via FFT", "Fourier/Grid"},
                 run_paratec,
                 [](int nranks) { return nranks > 128 ? 2 : 4; }});
    return v;
  }();
  return apps;
}

const App& find(std::string_view name) {
  for (const App& a : registry()) {
    if (a.info.name == name) return a;
  }
  throw Error("unknown application kernel: " + std::string(name));
}

bool valid_concurrency(const App& app, int nranks) {
  if (nranks < 4) return false;
  if (app.info.name == "lbmhd" || app.info.name == "superlu") {
    // Square process grids; LBMHD's distance-2 offsets need >= 5x5.
    int r = 1;
    while (r * r < nranks) ++r;
    if (r * r != nranks) return false;
    return app.info.name == "superlu" || r >= 5;
  }
  if (app.info.name == "gtc") {
    // Concurrency is a multiple of the toroidal extent (64) or divides it.
    return nranks % 64 == 0 || 64 % nranks == 0;
  }
  return true;
}

}  // namespace hfast::apps
