#include "hfast/apps/app.hpp"

#include <cmath>
#include <vector>

#include "hfast/util/assert.hpp"

namespace hfast::apps {

namespace {

/// Pairwise exchange volume for the spatial decomposition: data transferred
/// between two tasks drops off with the distance between their spatial
/// regions (paper §4.4, Figure 9). The constant scales with the per-rank
/// share of the molecule, so at P=64 every pair is above the 2 KB
/// threshold while at P=256 only ~55 near neighbors survive it.
std::uint64_t pair_bytes(int u, int v, int p) {
  const int raw = std::abs(u - v);
  const int d = std::min(raw, p - raw);  // periodic spatial wrap
  const double c = 2.48e7 / std::sqrt(static_cast<double>(p));
  double bytes = c / (static_cast<double>(d) * static_cast<double>(d));
  bytes = std::min(bytes, 1024.0 * 1024.0);  // single-message cap
  if (bytes < 64.0) return 0;  // partner expects a message anyway (paper note)
  return static_cast<std::uint64_t>(bytes);
}

constexpr std::uint64_t kMasterBytes = 4096;  // energy collection floor

}  // namespace

/// PMEMD (paper Fig. 9): particle-mesh Ewald molecular dynamics. Every rank
/// exchanges with every other (raw TDC = P-1) but volume decays with
/// spatial distance, so the 2 KB threshold leaves ~55 partners at P=256 —
/// except rank 0, the energy-collection master, whose every pair stays
/// above threshold (max TDC = P-1). The paper's case iii with a wide
/// max/avg split. Nonblocking sweeps retired with MPI_Waitany (Figure 2).
void run_pmemd(mpisim::RankContext& ctx, const AppParams& params) {
  using mpisim::Request;

  const int p = ctx.nranks();
  const int me = ctx.rank();

  {
    mpisim::RankContext::Region init(ctx, kInitRegion);
    ctx.bcast(0, 1024);  // coordinates + parameters
    ctx.barrier();
  }

  auto bytes_to = [&](int peer) {
    std::uint64_t b = pair_bytes(me, peer, p);
    if (me == 0 || peer == 0) b = std::max(b, kMasterBytes);
    return b;
  };

  mpisim::RankContext::Region steady(ctx, kSteadyRegion);
  for (int iter = 0; iter < params.iterations; ++iter) {
    // Force exchange sweep: all sends first (so no rank waits on a partner
    // that has not posted yet), then the receive pool drained via waitany
    // as force contributions arrive.
    std::vector<Request> recvs;
    recvs.reserve(static_cast<std::size_t>(p - 1));
    for (int peer = 0; peer < p; ++peer) {
      if (peer == me) continue;
      (void)ctx.isend(peer, bytes_to(peer), /*tag=*/iter);
    }
    for (int peer = 0; peer < p; ++peer) {
      if (peer == me) continue;
      recvs.push_back(ctx.irecv(peer, bytes_to(peer), /*tag=*/iter));
    }
    std::size_t outstanding = recvs.size();
    while (outstanding > 0) {
      (void)ctx.waitany(recvs);
      --outstanding;
    }

    // Energy reduction each step; virial reduction every other step.
    ctx.allreduce(768);
    if (iter % 2 == 1) ctx.allreduce(768);
    // Periodic coordinate collection on the dedicated tree (a >2KB
    // collective: the small tail visible above the BDP line in Figure 3).
    if (iter % 4 == 3) ctx.allgather(3072);
  }
}

}  // namespace hfast::apps
