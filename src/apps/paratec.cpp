#include "hfast/apps/app.hpp"

#include <vector>

#include "hfast/util/assert.hpp"

namespace hfast::apps {

/// PARATEC (paper Fig. 10): plane-wave DFT. The 3D FFTs require two global
/// transpose stages per step, implemented (as in the production code) with
/// nonblocking point-to-point: stage one moves ~32 KB between *every* pair
/// of ranks, stage two moves many small 64-byte packets between band
/// neighbors. Maximum and average TDC equal P-1 and are insensitive to
/// thresholding until the cutoff passes 32 KB — the paper's case iv, the
/// one class HFAST cannot serve better than an FCN.
void run_paratec(mpisim::RankContext& ctx, const AppParams& params) {
  using mpisim::Request;

  const int p = ctx.nranks();
  const int me = ctx.rank();

  constexpr std::uint64_t kTransposeBytes = 32ULL * 1024ULL;
  constexpr std::uint64_t kBandBytes = 64;
  constexpr int kBandHalo = 4;       // +-4 band neighbors
  constexpr int kBandPackets = 40;   // small packets per neighbor per step

  {
    mpisim::RankContext::Region init(ctx, kInitRegion);
    ctx.bcast(0, 2048);  // pseudopotential tables
    ctx.barrier();
  }

  mpisim::RankContext::Region steady(ctx, kSteadyRegion);
  for (int iter = 0; iter < params.iterations; ++iter) {
    // Stage 1: global transpose — isend/irecv to every rank, each request
    // retired individually with MPI_Wait (Figure 2: ~50% MPI_Wait).
    {
      std::vector<Request> reqs;
      reqs.reserve(2 * static_cast<std::size_t>(p - 1));
      for (int peer = 0; peer < p; ++peer) {
        if (peer == me) continue;
        reqs.push_back(ctx.irecv(peer, kTransposeBytes, /*tag=*/iter));
      }
      for (int peer = 0; peer < p; ++peer) {
        if (peer == me) continue;
        reqs.push_back(ctx.isend(peer, kTransposeBytes, /*tag=*/iter));
      }
      for (Request& r : reqs) ctx.wait(r);
    }

    // Stage 2: the second transpose only touches neighboring processor
    // bands, with many small packets (this is what pins the median PTP
    // buffer at 64 bytes).
    {
      std::vector<Request> reqs;
      reqs.reserve(4 * kBandHalo * kBandPackets);
      const int tag = 100000 + iter;
      for (int d = 1; d <= kBandHalo; ++d) {
        const int up = (me + d) % p;
        const int dn = (me - d + p) % p;
        for (int k = 0; k < kBandPackets; ++k) {
          reqs.push_back(ctx.irecv(up, kBandBytes, tag));
          reqs.push_back(ctx.irecv(dn, kBandBytes, tag));
        }
      }
      for (int d = 1; d <= kBandHalo; ++d) {
        const int up = (me + d) % p;
        const int dn = (me - d + p) % p;
        for (int k = 0; k < kBandPackets; ++k) {
          reqs.push_back(ctx.isend(up, kBandBytes, tag));
          reqs.push_back(ctx.isend(dn, kBandBytes, tag));
        }
      }
      for (Request& r : reqs) ctx.wait(r);
    }

    // Subspace diagonalization residual.
    if (iter % 2 == 1) ctx.allreduce(8);
  }
}

}  // namespace hfast::apps
