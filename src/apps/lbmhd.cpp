#include "hfast/apps/app.hpp"

#include <array>
#include <cmath>
#include <vector>

#include "hfast/util/assert.hpp"

namespace hfast::apps {

namespace {

/// The 12 interpolation partners of LBMHD (paper Fig. 7): the diagonal
/// streaming lattice does not align with the underlying structured grid, so
/// exchanges are "scattered" — diagonal and distance-2 offsets on a
/// periodic 2D process grid, never the nearest axis neighbors. The offset
/// set is closed under negation, so the pattern is symmetric.
constexpr std::array<std::pair<int, int>, 12> kOffsets = {{
    {+1, +1}, {+1, -1}, {-1, +1}, {-1, -1},  // diagonal streaming
    {+1, +2}, {-1, -2}, {+2, +1}, {-2, -1},  // skewed interpolation taps
    {+1, -2}, {-1, +2}, {+2, -1}, {-2, +1},
}};

}  // namespace

/// LBMHD: lattice Boltzmann magneto-hydrodynamics. Bounded TDC of 12 with
/// large (~811 KB) messages, pattern isotropic but *not* isomorphic to a
/// mesh — the paper's case ii.
void run_lbmhd(mpisim::RankContext& ctx, const AppParams& params) {
  using mpisim::Request;

  const int p = ctx.nranks();
  int side = 1;
  while (side * side < p) ++side;
  HFAST_EXPECTS_MSG(side * side == p, "lbmhd needs a square process count");
  HFAST_EXPECTS_MSG(side >= 5, "lbmhd offsets need a >=5x5 process grid");

  const int row = ctx.rank() / side;
  const int col = ctx.rank() % side;
  auto rank_at = [side](int r, int c) {
    const int rr = ((r % side) + side) % side;
    const int cc = ((c % side) + side) % side;
    return rr * side + cc;
  };

  // ~811 KB lattice-component face (Table 3 median).
  constexpr std::uint64_t kMsgBytes = 811ULL * 1024ULL;

  std::vector<int> partners;
  partners.reserve(kOffsets.size());
  for (const auto& [dr, dc] : kOffsets) {
    partners.push_back(rank_at(row + dr, col + dc));
  }

  {
    mpisim::RankContext::Region init(ctx, kInitRegion);
    ctx.bcast(0, 256);
    ctx.barrier();
  }

  mpisim::RankContext::Region steady(ctx, kSteadyRegion);
  for (int iter = 0; iter < params.iterations; ++iter) {
    // Streaming step: all 12 sends are posted up front (so no direction
    // group ever waits on a partner that has not issued its sends yet);
    // receives are then retired in 6 direction pairs, one waitall per pair
    // (Figure 2: isend 40%, irecv 40%, waitall 20%).
    std::vector<Request> sends;
    sends.reserve(partners.size());
    for (int nbr : partners) {
      sends.push_back(ctx.isend(nbr, kMsgBytes, iter));
    }
    for (std::size_t pair = 0; pair < kOffsets.size(); pair += 2) {
      std::array<Request, 4> reqs = {
          ctx.irecv(partners[pair], kMsgBytes, iter),
          ctx.irecv(partners[pair + 1], kMsgBytes, iter),
          sends[pair],
          sends[pair + 1],
      };
      ctx.waitall(reqs);
    }
    // Divergence check.
    if (iter % 4 == 3) ctx.allreduce(8);
  }
}

}  // namespace hfast::apps
