#include "hfast/util/json.hpp"

#include <cmath>
#include <cstdio>

#include "hfast/util/assert.hpp"

namespace hfast::util {

void JsonWriter::separate() {
  if (stack_.empty()) return;
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already wrote its comma and indentation
  }
  if (has_elems_.back()) os_ << ',';
  os_ << '\n';
  indent();
  has_elems_.back() = true;
}

void JsonWriter::indent() {
  for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
}

void JsonWriter::write_escaped(std::string_view s) {
  os_ << '"';
  for (char c : s) {
    switch (c) {
      case '"': os_ << "\\\""; break;
      case '\\': os_ << "\\\\"; break;
      case '\n': os_ << "\\n"; break;
      case '\r': os_ << "\\r"; break;
      case '\t': os_ << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os_ << buf;
        } else {
          os_ << c;
        }
    }
  }
  os_ << '"';
}

void JsonWriter::begin_object() {
  separate();
  os_ << '{';
  stack_.push_back(Frame::kObject);
  has_elems_.push_back(false);
}

void JsonWriter::end_object() {
  HFAST_EXPECTS_MSG(!stack_.empty() && stack_.back() == Frame::kObject,
                    "json: end_object without matching begin_object");
  const bool had = has_elems_.back();
  stack_.pop_back();
  has_elems_.pop_back();
  if (had) {
    os_ << '\n';
    indent();
  }
  os_ << '}';
}

void JsonWriter::begin_array() {
  separate();
  os_ << '[';
  stack_.push_back(Frame::kArray);
  has_elems_.push_back(false);
}

void JsonWriter::end_array() {
  HFAST_EXPECTS_MSG(!stack_.empty() && stack_.back() == Frame::kArray,
                    "json: end_array without matching begin_array");
  const bool had = has_elems_.back();
  stack_.pop_back();
  has_elems_.pop_back();
  if (had) {
    os_ << '\n';
    indent();
  }
  os_ << ']';
}

void JsonWriter::key(std::string_view name) {
  HFAST_EXPECTS_MSG(!stack_.empty() && stack_.back() == Frame::kObject,
                    "json: key outside an object");
  separate();
  write_escaped(name);
  os_ << ": ";
  pending_key_ = true;
}

void JsonWriter::value(std::string_view v) {
  separate();
  write_escaped(v);
}

void JsonWriter::value(bool v) {
  separate();
  os_ << (v ? "true" : "false");
}

void JsonWriter::value(double v) {
  separate();
  if (!std::isfinite(v)) {
    os_ << "null";  // JSON has no Inf/NaN
    return;
  }
  // Shortest round-trippable form keeps artifacts diffable.
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  double back = 0.0;
  std::sscanf(buf, "%lg", &back);
  for (int prec = 1; prec < 17; ++prec) {
    char cand[32];
    std::snprintf(cand, sizeof cand, "%.*g", prec, v);
    std::sscanf(cand, "%lg", &back);
    if (back == v) {
      os_ << cand;
      return;
    }
  }
  os_ << buf;
}

void JsonWriter::value(std::int64_t v) {
  separate();
  os_ << v;
}

void JsonWriter::value(std::uint64_t v) {
  separate();
  os_ << v;
}

void JsonWriter::finish() {
  if (finished_) return;
  while (!stack_.empty()) {
    if (stack_.back() == Frame::kObject) {
      end_object();
    } else {
      end_array();
    }
  }
  os_ << '\n';
  finished_ = true;
}

}  // namespace hfast::util
