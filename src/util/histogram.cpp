#include "hfast/util/histogram.hpp"

#include <bit>

#include "hfast/util/assert.hpp"
#include "hfast/util/stats.hpp"

namespace hfast::util {

void LogHistogram::merge(const LogHistogram& other) {
  for (const auto& [size, n] : other.counts_) {
    counts_[size] += n;
  }
  total_ += other.total_;
}

std::vector<CdfPoint> LogHistogram::cdf() const {
  std::vector<CdfPoint> out;
  out.reserve(counts_.size());
  std::uint64_t seen = 0;
  for (const auto& [size, n] : counts_) {
    seen += n;
    out.push_back({size, 100.0 * static_cast<double>(seen) /
                             static_cast<double>(total_)});
  }
  return out;
}

double LogHistogram::percent_at_or_below(std::uint64_t threshold) const {
  if (total_ == 0) return 0.0;
  std::uint64_t seen = 0;
  for (const auto& [size, n] : counts_) {
    if (size > threshold) break;
    seen += n;
  }
  return 100.0 * static_cast<double>(seen) / static_cast<double>(total_);
}

std::uint64_t LogHistogram::median() const { return weighted_median(counts_); }

std::uint64_t LogHistogram::min_size() const {
  HFAST_EXPECTS(!counts_.empty());
  return counts_.begin()->first;
}

std::uint64_t LogHistogram::max_size() const {
  HFAST_EXPECTS(!counts_.empty());
  return counts_.rbegin()->first;
}

std::uint64_t LogHistogram::total_bytes() const {
  std::uint64_t sum = 0;
  for (const auto& [size, n] : counts_) sum += size * n;
  return sum;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>>
LogHistogram::pow2_buckets() const {
  std::map<std::uint64_t, std::uint64_t> buckets;
  for (const auto& [size, n] : counts_) {
    const std::uint64_t bound = size == 0 ? 0 : std::bit_ceil(size);
    buckets[bound] += n;
  }
  return {buckets.begin(), buckets.end()};
}

}  // namespace hfast::util
