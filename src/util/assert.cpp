#include "hfast/util/assert.hpp"

#include <sstream>

namespace hfast::detail {

void contract_fail(const char* kind, const char* expr, const char* file,
                   int line, const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) {
    os << " — " << msg;
  }
  throw ContractViolation(os.str());
}

}  // namespace hfast::detail
