#include "hfast/util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "hfast/util/assert.hpp"

namespace hfast::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  HFAST_EXPECTS(!headers_.empty());
}

Table& Table::row() {
  if (!rows_.empty()) {
    HFAST_EXPECTS_MSG(rows_.back().size() == headers_.size(),
                      "previous row is incomplete");
  }
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::add(const std::string& cell) {
  HFAST_EXPECTS_MSG(!rows_.empty(), "call row() before add()");
  HFAST_EXPECTS_MSG(rows_.back().size() < headers_.size(), "row overflow");
  rows_.back().push_back(cell);
  return *this;
}

Table& Table::add(const char* cell) { return add(std::string(cell)); }

Table& Table::add(std::int64_t v) { return add(std::to_string(v)); }

Table& Table::add(std::uint64_t v) { return add(std::to_string(v)); }

Table& Table::add(double v, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << v;
  return add(os.str());
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      os << (c == 0 ? "" : "  ") << std::left << std::setw(static_cast<int>(widths[c]))
         << cell;
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit_row(r);
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(cells[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& r : rows_) emit(r);
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace hfast::util
