#include "hfast/util/random.hpp"

#include <algorithm>
#include <unordered_set>

namespace hfast::util {

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  HFAST_EXPECTS(k <= n);
  if (k == 0) return {};
  // For dense samples, shuffle-and-truncate; for sparse ones, rejection.
  if (k * 3 >= n) {
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    shuffle(all);
    all.resize(k);
    std::sort(all.begin(), all.end());
    return all;
  }
  std::unordered_set<std::size_t> chosen;
  chosen.reserve(k * 2);
  while (chosen.size() < k) {
    chosen.insert(static_cast<std::size_t>(uniform(n)));
  }
  std::vector<std::size_t> out(chosen.begin(), chosen.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace hfast::util
