#include "hfast/util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "hfast/util/assert.hpp"

namespace hfast::util {

namespace {
constexpr char kGlyphs[] = {'*', 'o', '+', 'x', '#', '@', '%', '&'};
constexpr char kRamp[] = {' ', '.', ':', '-', '=', '+', '*', '#', '@'};
}  // namespace

std::string line_chart(const std::string& title,
                       const std::vector<std::string>& x_labels,
                       const std::vector<Series>& series, int height) {
  HFAST_EXPECTS(height >= 4);
  HFAST_EXPECTS(!x_labels.empty());
  for (const auto& s : series) {
    HFAST_EXPECTS_MSG(s.y.size() == x_labels.size(),
                      "series length must match x_labels");
  }

  double ymax = 0.0;
  for (const auto& s : series) {
    for (double v : s.y) ymax = std::max(ymax, v);
  }
  if (ymax <= 0.0) ymax = 1.0;

  const int cols = static_cast<int>(x_labels.size());
  const int col_width = 4;  // one glyph cell per tick, padded for readability
  std::vector<std::string> grid(
      static_cast<std::size_t>(height),
      std::string(static_cast<std::size_t>(cols * col_width), ' '));

  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph = kGlyphs[si % sizeof(kGlyphs)];
    for (int xi = 0; xi < cols; ++xi) {
      const double v = series[si].y[static_cast<std::size_t>(xi)];
      int row = static_cast<int>(
          std::lround(v / ymax * static_cast<double>(height - 1)));
      row = std::clamp(row, 0, height - 1);
      // Grid row 0 is the top of the chart.
      auto& line = grid[static_cast<std::size_t>(height - 1 - row)];
      const auto pos = static_cast<std::size_t>(xi * col_width + 1);
      // When two series coincide, keep the earlier glyph and mark overlap.
      line[pos] = line[pos] == ' ' ? glyph : '?';
    }
  }

  std::ostringstream os;
  os << title << "  (ymax=" << std::fixed << std::setprecision(1) << ymax
     << ")\n";
  for (int r = 0; r < height; ++r) {
    const double yval =
        ymax * static_cast<double>(height - 1 - r) / static_cast<double>(height - 1);
    os << std::setw(7) << std::fixed << std::setprecision(1) << yval << " |"
       << grid[static_cast<std::size_t>(r)] << '\n';
  }
  os << std::string(8, ' ') << '+'
     << std::string(static_cast<std::size_t>(cols * col_width), '-') << '\n';
  os << std::string(9, ' ');
  for (const auto& lbl : x_labels) {
    std::string t = lbl.size() > 3 ? lbl.substr(0, 3) : lbl;
    os << std::left << std::setw(col_width) << t;
  }
  os << '\n';
  os << "  legend:";
  for (std::size_t si = 0; si < series.size(); ++si) {
    os << "  [" << kGlyphs[si % sizeof(kGlyphs)] << "] " << series[si].name;
  }
  os << "  ('?' = overlap)\n";
  return os.str();
}

std::string heatmap(const std::string& title,
                    const std::vector<std::vector<double>>& matrix,
                    int cells) {
  HFAST_EXPECTS(cells >= 4);
  const std::size_t n = matrix.size();
  if (n == 0) return title + "\n(empty)\n";
  for (const auto& row : matrix) {
    HFAST_EXPECTS_MSG(row.size() == n, "heatmap requires a square matrix");
  }

  const std::size_t out =
      std::min<std::size_t>(n, static_cast<std::size_t>(cells));
  double vmax = 0.0;
  for (const auto& row : matrix) {
    for (double v : row) vmax = std::max(vmax, v);
  }
  if (vmax <= 0.0) vmax = 1.0;

  std::ostringstream os;
  os << title << "  (" << n << "x" << n << ", max=" << std::scientific
     << std::setprecision(2) << vmax << ")\n";
  const std::size_t ramp_n = sizeof(kRamp) - 1;  // last index
  for (std::size_t r = 0; r < out; ++r) {
    os << "  ";
    for (std::size_t c = 0; c < out; ++c) {
      // Max-pool the block [r0,r1) x [c0,c1).
      const std::size_t r0 = r * n / out, r1 = std::max(r0 + 1, (r + 1) * n / out);
      const std::size_t c0 = c * n / out, c1 = std::max(c0 + 1, (c + 1) * n / out);
      double v = 0.0;
      for (std::size_t i = r0; i < r1 && i < n; ++i) {
        for (std::size_t j = c0; j < c1 && j < n; ++j) {
          v = std::max(v, matrix[i][j]);
        }
      }
      // Log-compress so small-but-present traffic is visible next to the max.
      const double t = v <= 0.0 ? 0.0 : std::log1p(v) / std::log1p(vmax);
      const auto idx = static_cast<std::size_t>(
          std::lround(t * static_cast<double>(ramp_n)));
      os << kRamp[std::min(idx, ramp_n)];
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace hfast::util
