#include "hfast/util/format.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>

namespace hfast::util {

std::string size_label(std::uint64_t bytes) {
  if (bytes < 1024) return std::to_string(bytes);
  if (bytes % (1024ULL * 1024ULL) == 0) {
    return std::to_string(bytes / (1024ULL * 1024ULL)) + "MB";
  }
  if (bytes % 1024ULL == 0) return std::to_string(bytes / 1024ULL) + "k";
  std::ostringstream os;
  os << std::fixed << std::setprecision(1)
     << static_cast<double>(bytes) / 1024.0 << "k";
  return os.str();
}

namespace {
std::string with_unit(double v, const char* unit) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(v < 10 ? 1 : 0) << v << ' ' << unit;
  return os.str();
}
}  // namespace

std::string rate_label(double bytes_per_second) {
  const double gb = 1e9;
  const double mb = 1e6;
  if (bytes_per_second >= gb) return with_unit(bytes_per_second / gb, "GB/s");
  if (bytes_per_second >= mb) return with_unit(bytes_per_second / mb, "MB/s");
  return with_unit(bytes_per_second / 1e3, "KB/s");
}

std::string bytes_label(double bytes) {
  if (bytes >= 1024.0 * 1024.0) return with_unit(bytes / (1024.0 * 1024.0), "MB");
  if (bytes >= 1024.0) return with_unit(bytes / 1024.0, "KB");
  return with_unit(bytes, "B");
}

std::string percent_label(double percent, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << percent << '%';
  return os.str();
}

std::string time_label(double seconds) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1);
  if (seconds < 1e-6) {
    os << seconds * 1e9 << "ns";
  } else if (seconds < 1e-3) {
    os << seconds * 1e6 << "us";
  } else if (seconds < 1.0) {
    os << seconds * 1e3 << "ms";
  } else {
    os << seconds << "s";
  }
  return os.str();
}

}  // namespace hfast::util
