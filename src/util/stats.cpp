#include "hfast/util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "hfast/util/assert.hpp"

namespace hfast::util {

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double stddev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(v.size() - 1));
}

double percentile(std::vector<double> v, double q) {
  HFAST_EXPECTS(q >= 0.0 && q <= 100.0);
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  if (v.size() == 1) return v[0];
  const double rank = q / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= v.size()) return v.back();
  return v[lo] * (1.0 - frac) + v[lo + 1] * frac;
}

double median(std::vector<double> v) { return percentile(std::move(v), 50.0); }

std::uint64_t weighted_median(
    const std::map<std::uint64_t, std::uint64_t>& counts) {
  std::uint64_t total = 0;
  for (const auto& [value, n] : counts) total += n;
  if (total == 0) return 0;
  const std::uint64_t target = (total + 1) / 2;  // lower median rank
  std::uint64_t seen = 0;
  for (const auto& [value, n] : counts) {
    seen += n;
    if (seen >= target) return value;
  }
  return counts.rbegin()->first;
}

}  // namespace hfast::util
