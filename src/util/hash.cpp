#include "hfast/util/hash.hpp"

#include <array>

namespace hfast::util {

namespace {

/// The 256-entry CRC-32 (IEEE, reflected 0xEDB88320) table, computed once
/// at static-init time; constexpr so the table lives in rodata.
constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kCrcTable = make_crc_table();

}  // namespace

std::uint32_t crc32(std::span<const std::byte> bytes,
                    std::uint32_t crc) noexcept {
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  for (std::byte b : bytes) {
    c = kCrcTable[(c ^ static_cast<std::uint32_t>(b)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace hfast::util
