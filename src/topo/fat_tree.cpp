#include "hfast/topo/fat_tree.hpp"

#include <sstream>

namespace hfast::topo {

int FatTree::required_levels(int num_procs, int radix) {
  HFAST_EXPECTS_MSG(radix >= 4 && radix % 2 == 0,
                    "fat-tree radix must be an even number >= 4");
  HFAST_EXPECTS(num_procs >= 1);
  const auto half = static_cast<std::uint64_t>(radix / 2);
  std::uint64_t cap = 2 * half;  // L = 1
  int levels = 1;
  while (cap < static_cast<std::uint64_t>(num_procs)) {
    cap *= half;
    ++levels;
    HFAST_ASSERT_MSG(levels <= 32, "fat-tree depth overflow");
  }
  return levels;
}

FatTree::FatTree(int num_procs, int radix)
    : procs_(num_procs),
      radix_(radix),
      levels_(required_levels(num_procs, radix)) {
  const auto half = static_cast<std::uint64_t>(radix_ / 2);
  capacity_ = 2;
  for (int l = 0; l < levels_; ++l) capacity_ *= half;
}

std::string FatTree::name() const {
  std::ostringstream os;
  os << "fat-tree(P=" << procs_ << ",N=" << radix_ << ",L=" << levels_ << ')';
  return os.str();
}

std::uint64_t FatTree::subtree_size(int level) const {
  HFAST_EXPECTS(level >= 1 && level <= levels_);
  if (level == levels_) return capacity_;
  const auto half = static_cast<std::uint64_t>(radix_ / 2);
  std::uint64_t size = 1;
  for (int l = 0; l < level; ++l) size *= half;
  return size;
}

int FatTree::switch_traversals(Node u, Node v) const {
  HFAST_EXPECTS(u >= 0 && u < procs_ && v >= 0 && v < procs_);
  if (u == v) return 0;
  for (int l = 1; l <= levels_; ++l) {
    const std::uint64_t size = subtree_size(l);
    if (static_cast<std::uint64_t>(u) / size ==
        static_cast<std::uint64_t>(v) / size) {
      return 2 * l - 1;
    }
  }
  return worst_case_traversals();
}

}  // namespace hfast::topo
