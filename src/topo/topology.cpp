#include "hfast/topo/topology.hpp"

#include <algorithm>
#include <queue>

namespace hfast::topo {

namespace {

/// BFS parents from src; parent[src] = src.
std::vector<Node> bfs_parents(const DirectTopology& t, Node src) {
  std::vector<Node> parent(static_cast<std::size_t>(t.num_nodes()), -1);
  std::queue<Node> q;
  parent[static_cast<std::size_t>(src)] = src;
  q.push(src);
  while (!q.empty()) {
    const Node u = q.front();
    q.pop();
    auto nbrs = t.neighbors(u);
    std::sort(nbrs.begin(), nbrs.end());
    for (Node v : nbrs) {
      if (parent[static_cast<std::size_t>(v)] == -1) {
        parent[static_cast<std::size_t>(v)] = u;
        q.push(v);
      }
    }
  }
  return parent;
}

}  // namespace

int DirectTopology::distance(Node u, Node v) const {
  check_node(u);
  check_node(v);
  if (u == v) return 0;
  const auto path = route(u, v);
  return static_cast<int>(path.size()) - 1;
}

std::vector<Node> DirectTopology::route(Node u, Node v) const {
  check_node(u);
  check_node(v);
  if (u == v) return {u};
  const auto parent = bfs_parents(*this, u);
  HFAST_ASSERT_MSG(parent[static_cast<std::size_t>(v)] != -1,
                   "topology is disconnected");
  std::vector<Node> path;
  for (Node cur = v; cur != u; cur = parent[static_cast<std::size_t>(cur)]) {
    path.push_back(cur);
  }
  path.push_back(u);
  std::reverse(path.begin(), path.end());
  return path;
}

int DirectTopology::max_degree() const {
  int deg = 0;
  for (Node u = 0; u < num_nodes(); ++u) {
    deg = std::max(deg, static_cast<int>(neighbors(u).size()));
  }
  return deg;
}

std::size_t DirectTopology::num_links() const {
  std::size_t links = 0;
  for (Node u = 0; u < num_nodes(); ++u) {
    links += neighbors(u).size();
  }
  return links;
}

}  // namespace hfast::topo
