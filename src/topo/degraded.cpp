#include "hfast/topo/degraded.hpp"

#include <algorithm>

namespace hfast::topo {

void DegradedTopology::fail_node(Node u) {
  check_node(u);
  failed_nodes_.insert(u);
}

void DegradedTopology::fail_link(Node u, Node v) {
  check_node(u);
  check_node(v);
  HFAST_EXPECTS(u != v);
  failed_links_.insert(u < v ? std::pair{u, v} : std::pair{v, u});
}

std::vector<Node> DegradedTopology::healthy_nodes() const {
  std::vector<Node> out;
  out.reserve(static_cast<std::size_t>(num_nodes()));
  for (Node u = 0; u < num_nodes(); ++u) {
    if (failed_nodes_.count(u) == 0) out.push_back(u);
  }
  return out;
}

std::vector<Node> DegradedTopology::neighbors(Node u) const {
  if (failed_nodes_.count(u) != 0) return {};
  std::vector<Node> out;
  for (Node v : base_.neighbors(u)) {
    if (failed_nodes_.count(v) != 0) continue;
    const auto key = u < v ? std::pair{u, v} : std::pair{v, u};
    if (failed_links_.count(key) != 0) continue;
    out.push_back(v);
  }
  return out;
}

}  // namespace hfast::topo
