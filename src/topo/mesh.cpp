#include "hfast/topo/mesh.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace hfast::topo {

MeshTorus::MeshTorus(std::vector<int> dims, bool wraparound)
    : dims_(std::move(dims)), wrap_(wraparound) {
  HFAST_EXPECTS_MSG(!dims_.empty(), "at least one dimension required");
  n_ = 1;
  for (int d : dims_) {
    HFAST_EXPECTS_MSG(d >= 1, "dimension extents must be positive");
    n_ *= d;
  }
}

std::string MeshTorus::name() const {
  std::ostringstream os;
  os << (wrap_ ? "torus" : "mesh");
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    os << (i == 0 ? '(' : 'x') << dims_[i];
  }
  os << ')';
  return os.str();
}

std::vector<int> MeshTorus::coords(Node u) const {
  check_node(u);
  std::vector<int> c(dims_.size());
  for (std::size_t d = dims_.size(); d-- > 0;) {
    c[d] = u % dims_[d];
    u /= dims_[d];
  }
  return c;
}

Node MeshTorus::node_at(const std::vector<int>& coords) const {
  HFAST_EXPECTS(coords.size() == dims_.size());
  Node u = 0;
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    HFAST_EXPECTS(coords[d] >= 0 && coords[d] < dims_[d]);
    u = u * dims_[d] + coords[d];
  }
  return u;
}

std::vector<Node> MeshTorus::neighbors(Node u) const {
  const auto c = coords(u);
  std::vector<Node> out;
  out.reserve(dims_.size() * 2);
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    if (dims_[d] == 1) continue;
    for (int step : {-1, +1}) {
      auto nc = c;
      nc[d] += step;
      if (nc[d] < 0 || nc[d] >= dims_[d]) {
        if (!wrap_ || dims_[d] == 2) continue;  // avoid duplicate wrap link
        nc[d] = (nc[d] + dims_[d]) % dims_[d];
      }
      out.push_back(node_at(nc));
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

int MeshTorus::distance(Node u, Node v) const {
  const auto cu = coords(u);
  const auto cv = coords(v);
  int dist = 0;
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    int delta = std::abs(cu[d] - cv[d]);
    if (wrap_) delta = std::min(delta, dims_[d] - delta);
    dist += delta;
  }
  return dist;
}

std::vector<Node> MeshTorus::route(Node u, Node v) const {
  auto cur = coords(u);
  const auto target = coords(v);
  std::vector<Node> path{u};
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    while (cur[d] != target[d]) {
      int step;
      const int fwd = (target[d] - cur[d] + dims_[d]) % dims_[d];
      if (wrap_) {
        step = fwd <= dims_[d] - fwd ? +1 : -1;
      } else {
        step = target[d] > cur[d] ? +1 : -1;
      }
      cur[d] = (cur[d] + step + dims_[d]) % dims_[d];
      path.push_back(node_at(cur));
    }
  }
  return path;
}

std::vector<int> MeshTorus::balanced_dims(int p, int ndims) {
  HFAST_EXPECTS(p >= 1 && ndims >= 1);
  // Greedy: repeatedly peel the factor closest to the ideal d-th root.
  std::vector<int> dims;
  int rest = p;
  for (int d = ndims; d >= 1; --d) {
    if (d == 1) {
      dims.push_back(rest);
      break;
    }
    const double ideal = std::pow(static_cast<double>(rest), 1.0 / d);
    int best = 1;
    for (int f = 1; f <= rest; ++f) {
      if (rest % f != 0) continue;
      if (std::abs(f - ideal) < std::abs(best - ideal)) best = f;
    }
    dims.push_back(best);
    rest /= best;
  }
  std::sort(dims.begin(), dims.end(), std::greater<>());
  return dims;
}

}  // namespace hfast::topo
