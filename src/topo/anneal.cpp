#include "hfast/topo/anneal.hpp"

#include <cmath>

#include "hfast/util/random.hpp"

namespace hfast::topo {

namespace {

/// Byte-weighted hop cost of all edges incident to `task` under `emb`.
std::uint64_t incident_cost(const graph::CommGraph& g,
                            const DirectTopology& topo, const Embedding& emb,
                            graph::Node task) {
  std::uint64_t cost = 0;
  for (graph::Node p : g.partners(task)) {
    const auto* e = g.edge(task, p);
    cost += e->bytes * static_cast<std::uint64_t>(
                           topo.distance(emb(task), emb(p)));
  }
  return cost;
}

std::uint64_t total_cost(const graph::CommGraph& g, const DirectTopology& topo,
                         const Embedding& emb) {
  std::uint64_t cost = 0;
  for (const auto& [uv, stats] : g.edges()) {
    cost += stats.bytes * static_cast<std::uint64_t>(
                              topo.distance(emb(uv.first), emb(uv.second)));
  }
  return cost;
}

}  // namespace

AnnealResult anneal_embedding(const graph::CommGraph& g,
                              const DirectTopology& topo, Embedding start,
                              const AnnealParams& params) {
  HFAST_EXPECTS(start.node_of_task.size() ==
                static_cast<std::size_t>(g.num_nodes()));
  HFAST_EXPECTS(params.iterations >= 0 && params.cooling > 0.0 &&
                params.cooling < 1.0);
  const int n = g.num_nodes();

  AnnealResult result;
  result.embedding = std::move(start);
  result.initial_cost = total_cost(g, topo, result.embedding);

  if (n < 2 || params.iterations == 0) {
    result.final_cost = result.initial_cost;
    return result;
  }

  util::Rng rng(params.seed);
  double temperature = params.initial_temperature;
  if (temperature <= 0.0) {
    // Auto-scale: a temperature where a move costing ~1% of the total is
    // accepted with probability ~1/e.
    temperature = std::max(1.0, static_cast<double>(result.initial_cost) * 0.01);
  }

  std::uint64_t current = result.initial_cost;
  for (int it = 0; it < params.iterations; ++it) {
    const auto a = static_cast<graph::Node>(rng.uniform(static_cast<std::uint64_t>(n)));
    auto b = static_cast<graph::Node>(rng.uniform(static_cast<std::uint64_t>(n)));
    if (a == b) b = (b + 1) % n;

    // Delta via incident edges only (the a-b edge, if any, is counted once
    // from each side both before and after, so the difference is exact).
    const std::uint64_t before = incident_cost(g, topo, result.embedding, a) +
                                 incident_cost(g, topo, result.embedding, b);
    std::swap(result.embedding.node_of_task[static_cast<std::size_t>(a)],
              result.embedding.node_of_task[static_cast<std::size_t>(b)]);
    const std::uint64_t after = incident_cost(g, topo, result.embedding, a) +
                                incident_cost(g, topo, result.embedding, b);

    const double delta = static_cast<double>(after) - static_cast<double>(before);
    bool accept = delta <= 0.0;
    if (!accept && temperature > 1e-9) {
      accept = rng.uniform01() < std::exp(-delta / temperature);
    }
    if (accept) {
      ++result.accepted_moves;
      if (delta < 0.0) ++result.improving_moves;
      current = static_cast<std::uint64_t>(
          static_cast<double>(current) + delta);
    } else {
      std::swap(result.embedding.node_of_task[static_cast<std::size_t>(a)],
                result.embedding.node_of_task[static_cast<std::size_t>(b)]);
    }
    temperature *= params.cooling;
  }

  result.final_cost = total_cost(g, topo, result.embedding);
  HFAST_ENSURES(result.final_cost == current);
  return result;
}

}  // namespace hfast::topo
