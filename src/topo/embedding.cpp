#include "hfast/topo/embedding.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace hfast::topo {

Embedding identity_embedding(int num_tasks) {
  Embedding e;
  e.node_of_task.resize(static_cast<std::size_t>(num_tasks));
  std::iota(e.node_of_task.begin(), e.node_of_task.end(), 0);
  return e;
}

Embedding random_embedding(int num_tasks, int num_nodes, util::Rng& rng) {
  HFAST_EXPECTS(num_tasks <= num_nodes);
  std::vector<Node> nodes(static_cast<std::size_t>(num_nodes));
  std::iota(nodes.begin(), nodes.end(), 0);
  rng.shuffle(nodes);
  nodes.resize(static_cast<std::size_t>(num_tasks));
  return Embedding{std::move(nodes)};
}

Embedding greedy_embedding(const graph::CommGraph& g,
                           const DirectTopology& topo) {
  std::vector<Node> all(static_cast<std::size_t>(topo.num_nodes()));
  std::iota(all.begin(), all.end(), 0);
  return greedy_embedding(g, topo, all);
}

Embedding greedy_embedding(const graph::CommGraph& g,
                           const DirectTopology& topo,
                           const std::vector<Node>& allowed_nodes) {
  const int n = g.num_nodes();
  HFAST_EXPECTS(n <= static_cast<int>(allowed_nodes.size()));
  for (Node a : allowed_nodes) {
    HFAST_EXPECTS(a >= 0 && a < topo.num_nodes());
  }

  // Order tasks by total traffic, heaviest first.
  std::vector<std::uint64_t> traffic(static_cast<std::size_t>(n), 0);
  for (const auto& [uv, stats] : g.edges()) {
    traffic[static_cast<std::size_t>(uv.first)] += stats.bytes;
    traffic[static_cast<std::size_t>(uv.second)] += stats.bytes;
  }
  std::vector<graph::Node> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return traffic[static_cast<std::size_t>(a)] >
           traffic[static_cast<std::size_t>(b)];
  });

  Embedding emb;
  emb.node_of_task.assign(static_cast<std::size_t>(n), -1);
  std::vector<bool> taken(static_cast<std::size_t>(topo.num_nodes()), true);
  for (Node a : allowed_nodes) taken[static_cast<std::size_t>(a)] = false;

  for (graph::Node task : order) {
    // Cost of a candidate node: byte-weighted distance to placed partners.
    Node best = -1;
    double best_cost = std::numeric_limits<double>::max();
    bool has_placed_partner = false;
    for (graph::Node p : g.partners(task)) {
      if (emb.node_of_task[static_cast<std::size_t>(p)] != -1) {
        has_placed_partner = true;
        break;
      }
    }
    for (Node cand : allowed_nodes) {
      if (taken[static_cast<std::size_t>(cand)]) continue;
      if (!has_placed_partner) {
        best = cand;  // first free node (deterministic)
        break;
      }
      double cost = 0.0;
      for (graph::Node p : g.partners(task)) {
        const Node pn = emb.node_of_task[static_cast<std::size_t>(p)];
        if (pn == -1) continue;
        const auto* e = g.edge(task, p);
        cost += static_cast<double>(e->bytes) * topo.distance(cand, pn);
      }
      if (cost < best_cost) {
        best_cost = cost;
        best = cand;
      }
    }
    HFAST_ASSERT(best != -1);
    emb.node_of_task[static_cast<std::size_t>(task)] = best;
    taken[static_cast<std::size_t>(best)] = true;
  }
  return emb;
}

EmbeddingQuality evaluate_embedding(const graph::CommGraph& g,
                                    const DirectTopology& topo,
                                    const Embedding& emb) {
  HFAST_EXPECTS(emb.node_of_task.size() ==
                static_cast<std::size_t>(g.num_nodes()));
  EmbeddingQuality q;
  std::map<std::pair<Node, Node>, std::uint64_t> link_load;
  std::uint64_t total_bytes = 0;

  for (const auto& [uv, stats] : g.edges()) {
    const Node a = emb(uv.first);
    const Node b = emb(uv.second);
    const auto path = topo.route(a, b);
    const int hops = static_cast<int>(path.size()) - 1;
    q.max_dilation = std::max(q.max_dilation, hops);
    q.total_byte_hops += stats.bytes * static_cast<std::uint64_t>(hops);
    total_bytes += stats.bytes;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const Node x = std::min(path[i], path[i + 1]);
      const Node y = std::max(path[i], path[i + 1]);
      link_load[{x, y}] += stats.bytes;
    }
  }

  if (total_bytes > 0) {
    q.avg_dilation = static_cast<double>(q.total_byte_hops) /
                     static_cast<double>(total_bytes);
  }
  std::uint64_t sum_load = 0;
  for (const auto& [link, load] : link_load) {
    (void)link;
    q.max_link_load = std::max(q.max_link_load, load);
    sum_load += load;
  }
  if (!link_load.empty()) {
    q.avg_link_load =
        static_cast<double>(sum_load) / static_cast<double>(link_load.size());
  }
  return q;
}

}  // namespace hfast::topo
