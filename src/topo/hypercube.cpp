#include "hfast/topo/hypercube.hpp"

#include <bit>

namespace hfast::topo {

Hypercube::Hypercube(int dimensions) : dims_(dimensions) {
  HFAST_EXPECTS_MSG(dimensions >= 0 && dimensions <= 30,
                    "hypercube dimension out of range");
}

std::string Hypercube::name() const {
  return "hypercube(d=" + std::to_string(dims_) + ")";
}

std::vector<Node> Hypercube::neighbors(Node u) const {
  check_node(u);
  std::vector<Node> out;
  out.reserve(static_cast<std::size_t>(dims_));
  for (int b = 0; b < dims_; ++b) {
    out.push_back(u ^ (1 << b));
  }
  return out;
}

int Hypercube::distance(Node u, Node v) const {
  check_node(u);
  check_node(v);
  return std::popcount(static_cast<unsigned>(u ^ v));
}

std::vector<Node> Hypercube::route(Node u, Node v) const {
  check_node(u);
  check_node(v);
  std::vector<Node> path{u};
  Node cur = u;
  for (int b = 0; b < dims_; ++b) {
    if (((cur ^ v) >> b) & 1) {
      cur ^= (1 << b);
      path.push_back(cur);
    }
  }
  return path;
}

}  // namespace hfast::topo
