#include "hfast/ipm/profile.hpp"

#include <algorithm>
#include <bit>

#include "hfast/util/assert.hpp"
#include "hfast/util/random.hpp"

namespace hfast::ipm {

namespace {
std::uint64_t hash_key(CallType call, Rank peer, std::uint64_t bytes,
                       RegionId region) noexcept {
  std::uint64_t h = static_cast<std::uint64_t>(call);
  h = h * 0x100000001b3ULL ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(peer));
  h = h * 0x100000001b3ULL ^ bytes;
  h = h * 0x100000001b3ULL ^ region;
  // Finalize with splitmix to spread low-entropy keys across the table.
  return util::splitmix64(h);
}
}  // namespace

CallTable::CallTable(std::size_t capacity_pow2) {
  HFAST_EXPECTS_MSG(capacity_pow2 >= 16 && std::has_single_bit(capacity_pow2),
                    "capacity must be a power of two >= 16");
  slots_.resize(capacity_pow2);
}

void CallTable::record(CallType call, Rank peer, std::uint64_t bytes,
                       RegionId region, double seconds) {
  const std::size_t mask = slots_.size() - 1;
  std::size_t idx = hash_key(call, peer, bytes, region) & mask;
  for (std::size_t probes = 0; probes < slots_.size(); ++probes) {
    Slot& s = slots_[idx];
    if (!s.used) {
      // Keep one slot of headroom so lookups always terminate.
      if (used_ + 1 >= slots_.size()) {
        ++dropped_;
        return;
      }
      s.used = true;
      s.call = call;
      s.peer = peer;
      s.bytes = bytes;
      s.region = region;
      s.count = 1;
      s.time_total = seconds;
      s.time_min = seconds;
      s.time_max = seconds;
      ++used_;
      return;
    }
    if (s.call == call && s.peer == peer && s.bytes == bytes &&
        s.region == region) {
      ++s.count;
      s.time_total += seconds;
      s.time_min = std::min(s.time_min, seconds);
      s.time_max = std::max(s.time_max, seconds);
      return;
    }
    idx = (idx + 1) & mask;
  }
  ++dropped_;
}

std::vector<CallRecord> CallTable::records() const {
  std::vector<CallRecord> out;
  out.reserve(used_);
  for (const Slot& s : slots_) {
    if (!s.used) continue;
    out.push_back({s.call, s.peer, s.bytes, s.region, s.count, s.time_total,
                   s.time_min, s.time_max});
  }
  return out;
}

RankProfile::RankProfile(Rank rank, std::size_t table_capacity)
    : rank_(rank), table_(table_capacity) {}

void RankProfile::on_call(CallType call, Rank peer, std::uint64_t bytes,
                          double seconds) {
  table_.record(call, peer, bytes, current_region(), seconds);
}

void RankProfile::on_message(Rank peer_world, std::uint64_t bytes,
                             bool is_send) {
  if (!is_send) return;  // transfers attributed once, at the sender
  ++sent_[MsgKey{current_region(), peer_world, bytes}];
}

void RankProfile::on_region(std::string_view name, bool enter) {
  if (enter) {
    region_stack_.push_back(intern_region(name));
  } else {
    HFAST_EXPECTS_MSG(!region_stack_.empty(), "region_end without begin");
    HFAST_EXPECTS_MSG(
        region_names_[region_stack_.back()] == name,
        "region_end does not match the innermost open region");
    region_stack_.pop_back();
  }
}

RegionId RankProfile::intern_region(std::string_view name) {
  for (std::size_t i = 0; i < region_names_.size(); ++i) {
    if (region_names_[i] == name) return static_cast<RegionId>(i);
  }
  region_names_.emplace_back(name);
  return static_cast<RegionId>(region_names_.size() - 1);
}

bool RankProfile::find_region(std::string_view name, RegionId& out) const {
  for (std::size_t i = 0; i < region_names_.size(); ++i) {
    if (region_names_[i] == name) {
      out = static_cast<RegionId>(i);
      return true;
    }
  }
  return false;
}

}  // namespace hfast::ipm
