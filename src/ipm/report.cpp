#include "hfast/ipm/report.hpp"

#include <algorithm>

#include "hfast/util/assert.hpp"

namespace hfast::ipm {

WorkloadProfile WorkloadProfile::merge(
    std::span<const RankProfile* const> ranks, std::string_view region) {
  WorkloadProfile out;
  out.nranks_ = static_cast<int>(ranks.size());
  out.sent_.resize(ranks.size());

  for (std::size_t i = 0; i < ranks.size(); ++i) {
    const RankProfile* rp = ranks[i];
    HFAST_EXPECTS(rp != nullptr);

    // Resolve the region filter in this rank's interning table. A rank that
    // never entered the region contributes nothing from it.
    bool filter = !region.empty();
    RegionId want = kGlobalRegion;
    const bool region_known = !filter || rp->find_region(region, want);

    out.dropped_ += rp->calls().dropped();

    for (const CallRecord& rec : rp->call_records()) {
      if (filter && (!region_known || rec.region != want)) continue;
      const auto idx = static_cast<std::size_t>(rec.call);
      out.counts_[idx] += rec.count;
      out.times_[idx] += rec.time_total;
      out.total_calls_ += rec.count;
      if (mpisim::carries_buffer(rec.call)) {
        if (mpisim::is_point_to_point(rec.call)) {
          out.ptp_buffers_.add(rec.bytes, rec.count);
        } else {
          out.coll_buffers_.add(rec.bytes, rec.count);
        }
      }
    }

    for (const auto& [key, count] : rp->sent_messages()) {
      if (filter && (!region_known || key.region != want)) continue;
      out.sent_[i][{key.peer, key.bytes}] += count;
    }
  }
  return out;
}

WorkloadProfile::Snapshot WorkloadProfile::snapshot() const {
  Snapshot s;
  s.nranks = nranks_;
  s.total_calls = total_calls_;
  s.dropped = dropped_;
  s.counts = counts_;
  s.times = times_;
  s.ptp_buffers = ptp_buffers_;
  s.collective_buffers = coll_buffers_;
  s.sent = sent_;
  return s;
}

WorkloadProfile WorkloadProfile::from_snapshot(Snapshot snap) {
  if (snap.counts.size() != static_cast<std::size_t>(mpisim::kNumCallTypes) ||
      snap.times.size() != static_cast<std::size_t>(mpisim::kNumCallTypes)) {
    throw Error("WorkloadProfile snapshot does not cover the call taxonomy");
  }
  if (snap.nranks < 0 ||
      snap.sent.size() != static_cast<std::size_t>(snap.nranks)) {
    throw Error("WorkloadProfile snapshot sent/nranks mismatch");
  }
  WorkloadProfile out;
  out.nranks_ = snap.nranks;
  out.total_calls_ = snap.total_calls;
  out.dropped_ = snap.dropped;
  out.counts_ = std::move(snap.counts);
  out.times_ = std::move(snap.times);
  out.ptp_buffers_ = std::move(snap.ptp_buffers);
  out.coll_buffers_ = std::move(snap.collective_buffers);
  out.sent_ = std::move(snap.sent);
  return out;
}

std::uint64_t WorkloadProfile::calls_of(CallType call) const {
  return counts_[static_cast<std::size_t>(call)];
}

double WorkloadProfile::time_of(CallType call) const {
  return times_[static_cast<std::size_t>(call)];
}

std::vector<CallBreakdownEntry> WorkloadProfile::call_breakdown(
    double min_percent) const {
  std::vector<CallBreakdownEntry> entries;
  if (total_calls_ == 0) return entries;
  std::uint64_t other = 0;
  for (int c = 0; c < mpisim::kNumCallTypes; ++c) {
    const std::uint64_t n = counts_[static_cast<std::size_t>(c)];
    if (n == 0) continue;
    const double pct =
        100.0 * static_cast<double>(n) / static_cast<double>(total_calls_);
    if (pct < min_percent) {
      other += n;
    } else {
      entries.push_back({static_cast<CallType>(c), n, pct});
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.count > b.count; });
  if (other > 0) {
    entries.push_back({CallType::kCount, other,
                       100.0 * static_cast<double>(other) /
                           static_cast<double>(total_calls_)});
  }
  return entries;
}

double WorkloadProfile::ptp_call_percent() const {
  if (total_calls_ == 0) return 0.0;
  std::uint64_t ptp = 0;
  for (int c = 0; c < mpisim::kNumCallTypes; ++c) {
    if (mpisim::is_point_to_point(static_cast<CallType>(c))) {
      ptp += counts_[static_cast<std::size_t>(c)];
    }
  }
  return 100.0 * static_cast<double>(ptp) / static_cast<double>(total_calls_);
}

double WorkloadProfile::collective_call_percent() const {
  if (total_calls_ == 0) return 0.0;
  return 100.0 - ptp_call_percent();
}

}  // namespace hfast::ipm
