#include "hfast/ipm/text_report.hpp"

#include <algorithm>
#include <ostream>
#include <set>

#include "hfast/util/format.hpp"
#include "hfast/util/table.hpp"

namespace hfast::ipm {

void write_workload_section(std::ostream& os, const WorkloadProfile& workload,
                            const std::string& title,
                            const TextReportOptions& options) {
  util::print_banner(os, title);
  if (workload.total_calls() == 0) {
    os << "(no communication recorded)\n";
    return;
  }

  util::Table t({"call", "count", "% calls", "time (s)"});
  for (const auto& entry :
       workload.call_breakdown(options.min_call_percent)) {
    const bool other = entry.call == mpisim::CallType::kCount;
    t.row()
        .add(other ? "(other)" : std::string(mpisim::call_name(entry.call)))
        .add(entry.count)
        .add(util::percent_label(entry.percent))
        .add(other ? 0.0 : workload.time_of(entry.call), 4);
  }
  t.print(os);

  os << "point-to-point: " << util::percent_label(workload.ptp_call_percent())
     << " of calls";
  if (!workload.ptp_buffers().empty()) {
    os << ", median buffer "
       << util::size_label(workload.median_ptp_buffer()) << ", total "
       << util::bytes_label(
              static_cast<double>(workload.ptp_buffers().total_bytes()));
  }
  os << '\n';
  os << "collectives:    "
     << util::percent_label(workload.collective_call_percent()) << " of calls";
  if (!workload.collective_buffers().empty()) {
    os << ", median buffer "
       << util::size_label(workload.median_collective_buffer());
  }
  os << '\n';
  if (workload.dropped() > 0) {
    os << "WARNING: " << workload.dropped()
       << " call signatures dropped (fixed-footprint hash overflow)\n";
  }
}

void write_text_report(std::ostream& os,
                       std::span<const RankProfile* const> ranks,
                       const TextReportOptions& options) {
  os << "##IPMv0-model################################################\n";
  os << "# job: " << options.job_name << "  ranks: " << ranks.size() << '\n';

  // Hash-table health across ranks.
  std::size_t entries = 0, capacity = 0;
  std::uint64_t dropped = 0;
  for (const RankProfile* r : ranks) {
    entries += r->calls().size();
    capacity += r->calls().capacity();
    dropped += r->calls().dropped();
  }
  os << "# hash: " << entries << '/' << capacity << " slots used";
  if (dropped > 0) os << ", " << dropped << " dropped";
  os << '\n';

  const auto whole = WorkloadProfile::merge(ranks, "");
  write_workload_section(os, whole, "whole job", options);

  if (options.per_region) {
    std::set<std::string> regions;
    for (const RankProfile* r : ranks) {
      for (const std::string& name : r->region_names()) {
        if (!name.empty()) regions.insert(name);
      }
    }
    for (const std::string& region : regions) {
      const auto filtered = WorkloadProfile::merge(ranks, region);
      write_workload_section(os, filtered, "region: " + region, options);
    }
  }
  os << "#############################################################\n";
}

}  // namespace hfast::ipm
