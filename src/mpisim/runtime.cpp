#include "hfast/mpisim/runtime.hpp"

#include <chrono>
#include <exception>
#include <mutex>
#include <sstream>
#include <thread>

#include "hfast/util/assert.hpp"

namespace hfast::mpisim {

Runtime::Runtime(RuntimeConfig cfg) : cfg_(cfg) {
  HFAST_EXPECTS_MSG(cfg_.nranks >= 1, "nranks must be positive");
}

Runtime::~Runtime() = default;

Mailbox& Runtime::mailbox(Rank r) {
  HFAST_EXPECTS(r >= 0 && r < nranks());
  HFAST_ASSERT_MSG(!mailboxes_.empty(), "mailbox access outside run()");
  return *mailboxes_[static_cast<std::size_t>(r)];
}

RunResult Runtime::run(const RankProgram& program,
                       const ObserverFactory& observers) {
  HFAST_EXPECTS_MSG(program != nullptr, "run() requires a program");

  abort_.store(false);
  next_comm_id_.store(1);
  if (mailboxes_.size() == static_cast<std::size_t>(cfg_.nranks)) {
    // Reuse the bucket arrays (and their capacity) from the previous run.
    for (auto& mb : mailboxes_) mb->reset();
  } else {
    mailboxes_.clear();
    mailboxes_.reserve(static_cast<std::size_t>(cfg_.nranks));
    for (int r = 0; r < cfg_.nranks; ++r) {
      mailboxes_.push_back(
          std::make_unique<Mailbox>(&abort_, cfg_.watchdog, cfg_.nranks));
    }
  }

  std::mutex error_mutex;
  std::exception_ptr first_error;

  const auto start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(cfg_.nranks));
    for (int r = 0; r < cfg_.nranks; ++r) {
      threads.emplace_back([&, r] {
        CommObserver* obs = observers ? observers(r) : nullptr;
        RankContext ctx(*this, r, obs);
        try {
          program(ctx);
        } catch (...) {
          {
            std::lock_guard lock(error_mutex);
            if (!first_error) first_error = std::current_exception();
          }
          abort_.store(true);
          for (auto& mb : mailboxes_) mb->interrupt();
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  if (first_error) {
    mailboxes_.clear();
    std::rethrow_exception(first_error);
  }

  if (cfg_.check_leaks) {
    std::ostringstream leaks;
    bool any = false;
    for (int r = 0; r < cfg_.nranks; ++r) {
      const std::size_t n = mailboxes_[static_cast<std::size_t>(r)]->pending();
      if (n > 0) {
        leaks << " rank " << r << ": " << n;
        any = true;
      }
    }
    if (any) {
      mailboxes_.clear();
      throw Error("mpisim: unmatched messages left in mailboxes —" +
                  leaks.str());
    }
  }
  // Mailboxes are kept for the next run (reset() reuses their buckets).

  return RunResult{wall};
}

}  // namespace hfast::mpisim
