#include "hfast/mpisim/runtime.hpp"

#include <chrono>
#include <exception>
#include <sstream>

#include "hfast/util/assert.hpp"

namespace hfast::mpisim {

Runtime::Runtime(RuntimeConfig cfg) : cfg_(cfg) {
  HFAST_EXPECTS_MSG(cfg_.nranks >= 1, "nranks must be positive");
}

Runtime::~Runtime() = default;

Mailbox& Runtime::mailbox(Rank r) {
  HFAST_EXPECTS(r >= 0 && r < nranks());
  HFAST_ASSERT_MSG(!mailboxes_.empty(), "mailbox access outside run()");
  return *mailboxes_[static_cast<std::size_t>(r)];
}

int Runtime::allocate_comm_id(std::span<const Rank> member_world_ranks) {
  const int id = next_comm_id_.fetch_add(1);
  // Pre-size the members' buckets for the new communicator right here, off
  // the delivery hot path. Only comm rank 0 of a split executes this, so
  // under the threaded engine it can race with concurrent deliveries — which
  // is exactly why reserve_comm locks (or runs single-owner lock-free under
  // the fiber engine).
  for (const Rank r : member_world_ranks) {
    mailbox(r).reserve_comm(id, member_world_ranks.size());
  }
  return id;
}

RunResult Runtime::run(const RankProgram& program,
                       const ObserverFactory& observers) {
  HFAST_EXPECTS_MSG(program != nullptr, "run() requires a program");
  HFAST_EXPECTS_MSG(engine_ == nullptr, "run() is not reentrant");

  abort_.store(false);
  next_comm_id_.store(1);
  if (mailboxes_.size() == static_cast<std::size_t>(cfg_.nranks)) {
    // Reuse the bucket arrays (and their capacity) from the previous run.
    for (auto& mb : mailboxes_) mb->reset();
  } else {
    mailboxes_.clear();
    mailboxes_.reserve(static_cast<std::size_t>(cfg_.nranks));
    for (int r = 0; r < cfg_.nranks; ++r) {
      mailboxes_.push_back(
          std::make_unique<Mailbox>(&abort_, cfg_.watchdog, cfg_.nranks));
    }
  }

  engine_ = make_engine(*this);
  for (int r = 0; r < cfg_.nranks; ++r) {
    mailboxes_[static_cast<std::size_t>(r)]->bind_scheduler(
        &engine_->scheduler(), r);
  }

  const auto start = std::chrono::steady_clock::now();
  const std::exception_ptr first_error =
      engine_->execute([&](Rank r) {
        CommObserver* obs = observers ? observers(r) : nullptr;
        RankContext ctx(*this, r, obs);
        program(ctx);
      });
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  for (auto& mb : mailboxes_) mb->bind_scheduler(nullptr, -1);
  engine_.reset();

  if (first_error) {
    mailboxes_.clear();
    std::rethrow_exception(first_error);
  }

  if (cfg_.check_leaks) {
    std::ostringstream leaks;
    bool any = false;
    for (int r = 0; r < cfg_.nranks; ++r) {
      const std::size_t n = mailboxes_[static_cast<std::size_t>(r)]->pending();
      if (n > 0) {
        leaks << " rank " << r << ": " << n;
        any = true;
      }
    }
    if (any) {
      mailboxes_.clear();
      throw Error("mpisim: unmatched messages left in mailboxes —" +
                  leaks.str());
    }
  }
  // Mailboxes are kept for the next run (reset() reuses their buckets).

  return RunResult{wall};
}

}  // namespace hfast::mpisim
