#include "hfast/mpisim/types.hpp"

namespace hfast::mpisim {

std::string_view call_name(CallType call) noexcept {
  switch (call) {
    case CallType::kSend:      return "MPI_Send";
    case CallType::kIsend:     return "MPI_Isend";
    case CallType::kRecv:      return "MPI_Recv";
    case CallType::kIrecv:     return "MPI_Irecv";
    case CallType::kSendrecv:  return "MPI_Sendrecv";
    case CallType::kWait:      return "MPI_Wait";
    case CallType::kWaitall:   return "MPI_Waitall";
    case CallType::kWaitany:   return "MPI_Waitany";
    case CallType::kBarrier:   return "MPI_Barrier";
    case CallType::kBcast:     return "MPI_Bcast";
    case CallType::kReduce:    return "MPI_Reduce";
    case CallType::kAllreduce: return "MPI_Allreduce";
    case CallType::kGather:    return "MPI_Gather";
    case CallType::kAllgather: return "MPI_Allgather";
    case CallType::kScatter:   return "MPI_Scatter";
    case CallType::kAlltoall:  return "MPI_Alltoall";
    case CallType::kAlltoallv: return "MPI_Alltoallv";
    case CallType::kReduceScatter: return "MPI_Reduce_scatter";
    case CallType::kScan:      return "MPI_Scan";
    case CallType::kCommSplit: return "MPI_Comm_split";
    case CallType::kTest:      return "MPI_Test";
    case CallType::kIprobe:    return "MPI_Iprobe";
    case CallType::kCount:     break;
  }
  return "MPI_Unknown";
}

bool is_point_to_point(CallType call) noexcept {
  switch (call) {
    case CallType::kSend:
    case CallType::kIsend:
    case CallType::kRecv:
    case CallType::kIrecv:
    case CallType::kSendrecv:
    case CallType::kWait:
    case CallType::kWaitall:
    case CallType::kWaitany:
    case CallType::kTest:
    case CallType::kIprobe:
      return true;
    default:
      return false;
  }
}

bool is_collective(CallType call) noexcept {
  switch (call) {
    case CallType::kBarrier:
    case CallType::kBcast:
    case CallType::kReduce:
    case CallType::kAllreduce:
    case CallType::kGather:
    case CallType::kAllgather:
    case CallType::kScatter:
    case CallType::kAlltoall:
    case CallType::kAlltoallv:
    case CallType::kReduceScatter:
    case CallType::kScan:
    case CallType::kCommSplit:
      return true;
    default:
      return false;
  }
}

bool carries_buffer(CallType call) noexcept {
  switch (call) {
    case CallType::kSend:
    case CallType::kIsend:
    case CallType::kRecv:
    case CallType::kIrecv:
    case CallType::kSendrecv:
    case CallType::kBcast:
    case CallType::kReduce:
    case CallType::kAllreduce:
    case CallType::kGather:
    case CallType::kAllgather:
    case CallType::kScatter:
    case CallType::kAlltoall:
    case CallType::kAlltoallv:
    case CallType::kReduceScatter:
    case CallType::kScan:
      return true;
    default:
      return false;
  }
}

}  // namespace hfast::mpisim
