#include "hfast/mpisim/engine.hpp"

#include <mutex>
#include <thread>
#include <vector>

#include "hfast/mpisim/mailbox.hpp"
#include "hfast/mpisim/runtime.hpp"
#include "hfast/util/assert.hpp"

namespace hfast::mpisim {

std::string_view engine_name(EngineKind kind) noexcept {
  switch (kind) {
    case EngineKind::kThreads:
      return "threads";
    case EngineKind::kFibers:
      return "fibers";
  }
  return "unknown";
}

EngineKind parse_engine(std::string_view name) {
  if (name == "threads") return EngineKind::kThreads;
  if (name == "fibers") return EngineKind::kFibers;
  throw Error("mpisim: unknown engine '" + std::string(name) +
              "' (expected 'threads' or 'fibers')");
}

namespace {

/// One preemptive OS thread per rank. Blocking parks the thread on the
/// mailbox condition variable; the OS scheduler provides progress, and the
/// per-wait watchdog provides deadlock diagnosis.
class ThreadEngine final : public ExecutionEngine, public Scheduler {
 public:
  explicit ThreadEngine(Runtime& rt) : rt_(rt) {}

  EngineKind kind() const noexcept override { return EngineKind::kThreads; }
  Scheduler& scheduler() noexcept override { return *this; }

  // --- Scheduler -----------------------------------------------------------
  bool single_threaded() const noexcept override { return false; }

  void wait_for_delivery(Mailbox& mb, std::uint64_t seen,
                         const WaitDesc& why) override {
    mb.preemptive_wait(seen, why);
  }

  void notify_delivery(Mailbox&) override {
    // Never reached: the mailbox only routes delivery wakeups through the
    // scheduler on the single-owner fast path.
  }

  void yield() override {
    // Preemption makes explicit scheduling points unnecessary.
  }

  void note_call(CallType) override {
    // Cross-thread "last call" bookkeeping would need synchronization on the
    // per-call hot path; the threaded watchdog diagnoses from the blocked
    // receive pattern instead.
  }

  // --- ExecutionEngine -----------------------------------------------------
  std::exception_ptr execute(
      const std::function<void(Rank)>& rank_body) override {
    const int nranks = rt_.nranks();
    std::mutex error_mutex;
    std::exception_ptr first_error;

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
      threads.emplace_back([&, r] {
        try {
          rank_body(r);
        } catch (...) {
          {
            std::lock_guard lock(error_mutex);
            if (!first_error) first_error = std::current_exception();
          }
          rt_.abort_flag().store(true);
          for (int i = 0; i < nranks; ++i) rt_.mailbox(i).interrupt();
        }
      });
    }
    for (auto& t : threads) t.join();
    return first_error;
  }

 private:
  Runtime& rt_;
};

}  // namespace

std::unique_ptr<ExecutionEngine> make_thread_engine(Runtime& rt) {
  return std::make_unique<ThreadEngine>(rt);
}

std::unique_ptr<ExecutionEngine> make_engine(Runtime& rt) {
  switch (rt.config().engine) {
    case EngineKind::kThreads:
      return make_thread_engine(rt);
    case EngineKind::kFibers:
      if (!fibers_supported()) {
        throw Error(
            "mpisim: fiber engine unavailable in this build "
            "(ThreadSanitizer or non-POSIX host); use engine=threads");
      }
      return make_fiber_engine(rt);
  }
  throw Error("mpisim: invalid engine kind");
}

}  // namespace hfast::mpisim
