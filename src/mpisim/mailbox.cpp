#include "hfast/mpisim/mailbox.hpp"

#include <algorithm>
#include <sstream>

#include "hfast/util/assert.hpp"

namespace hfast::mpisim {

std::deque<Mailbox::Arrived>& Mailbox::bucket_for_locked(int comm_id,
                                                         bool internal,
                                                         Rank src) {
  SourceBuckets& v = buckets_[{comm_id, internal}];
  const auto need = static_cast<std::size_t>(src) + 1;
  if (v.size() < need) {
    v.resize(std::max(need, nranks_hint_));
  }
  auto& slot = v[static_cast<std::size_t>(src)];
  if (slot == nullptr) slot = std::make_unique<std::deque<Arrived>>();
  return *slot;
}

void Mailbox::reserve_comm(int comm_id, std::size_t sources) {
  OptLock lock(lock_target());
  // resize() only ever grows: shrinking would drop queued messages.
  for (const bool internal : {false, true}) {
    SourceBuckets& v = buckets_[{comm_id, internal}];
    if (v.size() < sources) v.resize(sources);
  }
}

bool Mailbox::has_comm_buckets(int comm_id) const {
  OptLock lock(lock_target());
  return buckets_.count(CommKey{comm_id, false}) != 0 &&
         buckets_.count(CommKey{comm_id, true}) != 0;
}

void Mailbox::deliver(Message m) {
  if (single_owner_) {
    // Single-owner fast path: every rank of the job shares this OS thread,
    // so the enqueue is plain sequential code and the wakeup is a direct
    // scheduler call instead of a condition-variable broadcast.
    HFAST_ASSERT_MSG(m.src_comm >= 0, "delivery without a source rank");
    auto& q = bucket_for_locked(m.comm_id, m.internal, m.src_comm);
    q.push_back({std::move(m), next_arrival_++});
    ++pending_;
    ++version_;
    sched_->notify_delivery(*this);
    return;
  }
  {
    std::lock_guard lock(mutex_);
    HFAST_ASSERT_MSG(m.src_comm >= 0, "delivery without a source rank");
    auto& q = bucket_for_locked(m.comm_id, m.internal, m.src_comm);
    q.push_back({std::move(m), next_arrival_++});
    ++pending_;
    ++version_;
  }
  cv_.notify_all();
}

bool Mailbox::match_locked(int comm_id, Rank src, Tag tag, bool internal,
                           Message& out) {
  const auto bit = buckets_.find(CommKey{comm_id, internal});
  if (bit == buckets_.end()) return false;
  SourceBuckets& srcs = bit->second;

  auto take = [&](std::deque<Arrived>& q,
                  std::deque<Arrived>::iterator it) {
    out = std::move(it->msg);
    q.erase(it);
    --pending_;
    return true;
  };
  auto find_tag = [&](std::deque<Arrived>& q) {
    // FIFO within the channel; tag selection respects arrival order.
    return std::find_if(q.begin(), q.end(), [&](const Arrived& a) {
      return tag == kAnyTag || a.msg.tag == tag;
    });
  };

  if (src != kAnySource) {
    if (static_cast<std::size_t>(src) >= srcs.size()) return false;
    const auto& slot = srcs[static_cast<std::size_t>(src)];
    if (slot == nullptr) return false;
    std::deque<Arrived>& q = *slot;
    const auto it = find_tag(q);
    if (it == q.end()) return false;
    return take(q, it);
  }

  // Wildcard source: earliest-arrived matching message across this
  // communicator's source buckets.
  std::deque<Arrived>* best_q = nullptr;
  std::deque<Arrived>::iterator best_it;
  std::uint64_t best_arrival = ~0ULL;
  for (auto& slot : srcs) {
    if (slot == nullptr || slot->empty()) continue;
    std::deque<Arrived>& q = *slot;
    const auto it = find_tag(q);
    if (it != q.end() && it->arrival < best_arrival) {
      best_arrival = it->arrival;
      best_q = &q;
      best_it = it;
    }
  }
  if (best_q == nullptr) return false;
  return take(*best_q, best_it);
}

bool Mailbox::try_match(int comm_id, Rank src, Tag tag, bool internal,
                        Message& out) {
  OptLock lock(lock_target());
  return match_locked(comm_id, src, tag, internal, out);
}

bool Mailbox::peek(int comm_id, Rank src, Tag tag, bool internal,
                   Rank& src_out, std::uint64_t& bytes_out) const {
  OptLock lock(lock_target());
  const auto bit = buckets_.find(CommKey{comm_id, internal});
  if (bit == buckets_.end()) return false;
  const SourceBuckets& srcs = bit->second;

  const Arrived* best = nullptr;
  auto consider = [&](const std::deque<Arrived>& q) {
    const auto it =
        std::find_if(q.begin(), q.end(), [&](const Arrived& a) {
          return tag == kAnyTag || a.msg.tag == tag;
        });
    if (it != q.end() && (best == nullptr || it->arrival < best->arrival)) {
      best = &*it;
    }
  };
  if (src != kAnySource) {
    if (static_cast<std::size_t>(src) < srcs.size() &&
        srcs[static_cast<std::size_t>(src)] != nullptr) {
      consider(*srcs[static_cast<std::size_t>(src)]);
    }
  } else {
    for (const auto& slot : srcs) {
      if (slot != nullptr && !slot->empty()) consider(*slot);
    }
  }
  if (best == nullptr) return false;
  src_out = best->msg.src_comm;
  bytes_out = best->msg.bytes;
  return true;
}

void Mailbox::check_abort_locked() const {
  if (abort_flag_ != nullptr && abort_flag_->load(std::memory_order_relaxed)) {
    throw Error("mpisim: job aborted by another rank's failure");
  }
}

std::string Mailbox::watchdog_message_locked(const WaitDesc& why) const {
  if (why.kind == WaitDesc::Kind::kWaitany) {
    return "mpisim: waitany watchdog expired — likely deadlock";
  }
  std::ostringstream os;
  os << "mpisim: receive watchdog expired (comm=" << why.comm_id
     << " src=" << why.src << " tag=" << why.tag
     << " internal=" << why.internal << ", " << pending_
     << " unmatched messages queued)"
     << " — likely application deadlock";
  return os.str();
}

void Mailbox::wait_for_delivery(std::uint64_t seen, const WaitDesc& why) {
  if (sched_ != nullptr) {
    sched_->wait_for_delivery(*this, seen, why);
  } else {
    preemptive_wait(seen, why);
  }
}

void Mailbox::preemptive_wait(std::uint64_t seen, const WaitDesc& why) {
  std::unique_lock lock(mutex_);
  const auto deadline = std::chrono::steady_clock::now() + timeout_;
  while (version_ == seen) {
    check_abort_locked();
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      check_abort_locked();
      throw Error(watchdog_message_locked(why));
    }
  }
}

Message Mailbox::match_blocking(int comm_id, Rank src, Tag tag, bool internal) {
  const WaitDesc why{WaitDesc::Kind::kRecv, comm_id, src, tag, internal};
  for (;;) {
    std::uint64_t seen;
    {
      OptLock lock(lock_target());
      check_abort_locked();
      Message out;
      if (match_locked(comm_id, src, tag, internal, out)) return out;
      seen = version_;
    }
    wait_for_delivery(seen, why);
  }
}

std::uint64_t Mailbox::version() const {
  OptLock lock(lock_target());
  return version_;
}

void Mailbox::wait_version_change(std::uint64_t seen) {
  const WaitDesc why{WaitDesc::Kind::kWaitany, 0, kAnySource, kAnyTag, false};
  for (;;) {
    {
      OptLock lock(lock_target());
      check_abort_locked();
      if (version_ != seen) return;
    }
    wait_for_delivery(seen, why);
  }
}

void Mailbox::interrupt() {
  // Notify under the mutex: a bare notify_all can fire in the window
  // between a waiter's check_abort_locked() and its cv_.wait_until(), in
  // which case the wakeup is lost and the waiter stalls until the watchdog
  // expires. Holding the lock serializes against that window — the waiter
  // either still holds the mutex (and will observe the abort flag on its
  // next check) or is already parked in wait_until and receives the signal.
  std::lock_guard lock(mutex_);
  cv_.notify_all();
}

void Mailbox::reset() {
  OptLock lock(lock_target());
  for (auto& [key, srcs] : buckets_) {
    for (auto& slot : srcs) {
      if (slot != nullptr) slot->clear();
    }
  }
  next_arrival_ = 0;
  pending_ = 0;
  version_ = 0;
}

std::size_t Mailbox::pending() const {
  OptLock lock(lock_target());
  return pending_;
}

}  // namespace hfast::mpisim
