#include "hfast/mpisim/mailbox.hpp"

#include <algorithm>
#include <sstream>

#include "hfast/util/assert.hpp"

namespace hfast::mpisim {

void Mailbox::deliver(Message m) {
  {
    std::lock_guard lock(mutex_);
    const BucketKey key{m.comm_id, m.internal, m.src_comm};
    buckets_[key].push_back({std::move(m), next_arrival_++});
    ++pending_;
    ++version_;
  }
  cv_.notify_all();
}

bool Mailbox::match_locked(int comm_id, Rank src, Tag tag, bool internal,
                           Message& out) {
  auto take = [&](std::deque<Arrived>& q,
                  std::deque<Arrived>::iterator it) {
    out = std::move(it->msg);
    q.erase(it);
    --pending_;
    return true;
  };

  if (src != kAnySource) {
    const auto bit = buckets_.find(BucketKey{comm_id, internal, src});
    if (bit == buckets_.end()) return false;
    auto& q = bit->second;
    // FIFO within the channel; tag selection respects arrival order.
    const auto it =
        std::find_if(q.begin(), q.end(), [&](const Arrived& a) {
          return tag == kAnyTag || a.msg.tag == tag;
        });
    if (it == q.end()) return false;
    return take(q, it);
  }

  // Wildcard source: earliest-arrived matching message across this
  // communicator's buckets.
  std::deque<Arrived>* best_q = nullptr;
  std::deque<Arrived>::iterator best_it;
  std::uint64_t best_arrival = ~0ULL;
  const BucketKey lo{comm_id, internal, kAnySource};  // kAnySource = -1 < ranks
  for (auto bit = buckets_.lower_bound(lo);
       bit != buckets_.end() && std::get<0>(bit->first) == comm_id &&
       std::get<1>(bit->first) == internal;
       ++bit) {
    auto& q = bit->second;
    const auto it =
        std::find_if(q.begin(), q.end(), [&](const Arrived& a) {
          return tag == kAnyTag || a.msg.tag == tag;
        });
    if (it != q.end() && it->arrival < best_arrival) {
      best_arrival = it->arrival;
      best_q = &q;
      best_it = it;
    }
  }
  if (best_q == nullptr) return false;
  return take(*best_q, best_it);
}

bool Mailbox::try_match(int comm_id, Rank src, Tag tag, bool internal,
                        Message& out) {
  std::lock_guard lock(mutex_);
  return match_locked(comm_id, src, tag, internal, out);
}

bool Mailbox::peek(int comm_id, Rank src, Tag tag, bool internal,
                   Rank& src_out, std::uint64_t& bytes_out) const {
  std::lock_guard lock(mutex_);
  const Arrived* best = nullptr;
  auto consider = [&](const std::deque<Arrived>& q) {
    const auto it =
        std::find_if(q.begin(), q.end(), [&](const Arrived& a) {
          return tag == kAnyTag || a.msg.tag == tag;
        });
    if (it != q.end() && (best == nullptr || it->arrival < best->arrival)) {
      best = &*it;
    }
  };
  if (src != kAnySource) {
    const auto bit = buckets_.find(BucketKey{comm_id, internal, src});
    if (bit != buckets_.end()) consider(bit->second);
  } else {
    const BucketKey lo{comm_id, internal, kAnySource};
    for (auto bit = buckets_.lower_bound(lo);
         bit != buckets_.end() && std::get<0>(bit->first) == comm_id &&
         std::get<1>(bit->first) == internal;
         ++bit) {
      consider(bit->second);
    }
  }
  if (best == nullptr) return false;
  src_out = best->msg.src_comm;
  bytes_out = best->msg.bytes;
  return true;
}

void Mailbox::check_abort_locked() const {
  if (abort_flag_ != nullptr && abort_flag_->load(std::memory_order_relaxed)) {
    throw Error("mpisim: job aborted by another rank's failure");
  }
}

Message Mailbox::match_blocking(int comm_id, Rank src, Tag tag, bool internal) {
  std::unique_lock lock(mutex_);
  const auto deadline = std::chrono::steady_clock::now() + timeout_;
  for (;;) {
    check_abort_locked();
    Message out;
    if (match_locked(comm_id, src, tag, internal, out)) return out;
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      check_abort_locked();
      std::ostringstream os;
      os << "mpisim: receive watchdog expired (comm=" << comm_id
         << " src=" << src << " tag=" << tag << " internal=" << internal
         << ", " << pending_ << " unmatched messages queued)"
         << " — likely application deadlock";
      throw Error(os.str());
    }
  }
}

std::uint64_t Mailbox::version() const {
  std::lock_guard lock(mutex_);
  return version_;
}

void Mailbox::wait_version_change(std::uint64_t seen) {
  std::unique_lock lock(mutex_);
  const auto deadline = std::chrono::steady_clock::now() + timeout_;
  while (version_ == seen) {
    check_abort_locked();
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      check_abort_locked();
      throw Error("mpisim: waitany watchdog expired — likely deadlock");
    }
  }
}

void Mailbox::interrupt() { cv_.notify_all(); }

std::size_t Mailbox::pending() const {
  std::lock_guard lock(mutex_);
  return pending_;
}

}  // namespace hfast::mpisim
