#include "hfast/mpisim/mailbox.hpp"

#include <algorithm>
#include <sstream>

#include "hfast/util/assert.hpp"

namespace hfast::mpisim {

Mailbox::SourceBuckets& Mailbox::bucket_for_locked(int comm_id, bool internal,
                                                   Rank src) {
  SourceBuckets& v = buckets_[{comm_id, internal}];
  const auto need = static_cast<std::size_t>(src) + 1;
  if (v.size() < need) {
    v.resize(std::max(need, nranks_hint_));
  }
  return v;
}

void Mailbox::deliver(Message m) {
  {
    std::lock_guard lock(mutex_);
    HFAST_ASSERT_MSG(m.src_comm >= 0, "delivery without a source rank");
    SourceBuckets& v = bucket_for_locked(m.comm_id, m.internal, m.src_comm);
    v[static_cast<std::size_t>(m.src_comm)].push_back(
        {std::move(m), next_arrival_++});
    ++pending_;
    ++version_;
  }
  cv_.notify_all();
}

bool Mailbox::match_locked(int comm_id, Rank src, Tag tag, bool internal,
                           Message& out) {
  const auto bit = buckets_.find(CommKey{comm_id, internal});
  if (bit == buckets_.end()) return false;
  SourceBuckets& srcs = bit->second;

  auto take = [&](std::deque<Arrived>& q,
                  std::deque<Arrived>::iterator it) {
    out = std::move(it->msg);
    q.erase(it);
    --pending_;
    return true;
  };
  auto find_tag = [&](std::deque<Arrived>& q) {
    // FIFO within the channel; tag selection respects arrival order.
    return std::find_if(q.begin(), q.end(), [&](const Arrived& a) {
      return tag == kAnyTag || a.msg.tag == tag;
    });
  };

  if (src != kAnySource) {
    if (static_cast<std::size_t>(src) >= srcs.size()) return false;
    auto& q = srcs[static_cast<std::size_t>(src)];
    const auto it = find_tag(q);
    if (it == q.end()) return false;
    return take(q, it);
  }

  // Wildcard source: earliest-arrived matching message across this
  // communicator's source buckets.
  std::deque<Arrived>* best_q = nullptr;
  std::deque<Arrived>::iterator best_it;
  std::uint64_t best_arrival = ~0ULL;
  for (auto& q : srcs) {
    if (q.empty()) continue;
    const auto it = find_tag(q);
    if (it != q.end() && it->arrival < best_arrival) {
      best_arrival = it->arrival;
      best_q = &q;
      best_it = it;
    }
  }
  if (best_q == nullptr) return false;
  return take(*best_q, best_it);
}

bool Mailbox::try_match(int comm_id, Rank src, Tag tag, bool internal,
                        Message& out) {
  std::lock_guard lock(mutex_);
  return match_locked(comm_id, src, tag, internal, out);
}

bool Mailbox::peek(int comm_id, Rank src, Tag tag, bool internal,
                   Rank& src_out, std::uint64_t& bytes_out) const {
  std::lock_guard lock(mutex_);
  const auto bit = buckets_.find(CommKey{comm_id, internal});
  if (bit == buckets_.end()) return false;
  const SourceBuckets& srcs = bit->second;

  const Arrived* best = nullptr;
  auto consider = [&](const std::deque<Arrived>& q) {
    const auto it =
        std::find_if(q.begin(), q.end(), [&](const Arrived& a) {
          return tag == kAnyTag || a.msg.tag == tag;
        });
    if (it != q.end() && (best == nullptr || it->arrival < best->arrival)) {
      best = &*it;
    }
  };
  if (src != kAnySource) {
    if (static_cast<std::size_t>(src) < srcs.size()) {
      consider(srcs[static_cast<std::size_t>(src)]);
    }
  } else {
    for (const auto& q : srcs) {
      if (!q.empty()) consider(q);
    }
  }
  if (best == nullptr) return false;
  src_out = best->msg.src_comm;
  bytes_out = best->msg.bytes;
  return true;
}

void Mailbox::check_abort_locked() const {
  if (abort_flag_ != nullptr && abort_flag_->load(std::memory_order_relaxed)) {
    throw Error("mpisim: job aborted by another rank's failure");
  }
}

Message Mailbox::match_blocking(int comm_id, Rank src, Tag tag, bool internal) {
  std::unique_lock lock(mutex_);
  const auto deadline = std::chrono::steady_clock::now() + timeout_;
  for (;;) {
    check_abort_locked();
    Message out;
    if (match_locked(comm_id, src, tag, internal, out)) return out;
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      check_abort_locked();
      std::ostringstream os;
      os << "mpisim: receive watchdog expired (comm=" << comm_id
         << " src=" << src << " tag=" << tag << " internal=" << internal
         << ", " << pending_ << " unmatched messages queued)"
         << " — likely application deadlock";
      throw Error(os.str());
    }
  }
}

std::uint64_t Mailbox::version() const {
  std::lock_guard lock(mutex_);
  return version_;
}

void Mailbox::wait_version_change(std::uint64_t seen) {
  std::unique_lock lock(mutex_);
  const auto deadline = std::chrono::steady_clock::now() + timeout_;
  while (version_ == seen) {
    check_abort_locked();
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      check_abort_locked();
      throw Error("mpisim: waitany watchdog expired — likely deadlock");
    }
  }
}

void Mailbox::interrupt() {
  // Notify under the mutex: a bare notify_all can fire in the window
  // between a waiter's check_abort_locked() and its cv_.wait_until(), in
  // which case the wakeup is lost and the waiter stalls until the watchdog
  // expires. Holding the lock serializes against that window — the waiter
  // either still holds the mutex (and will observe the abort flag on its
  // next check) or is already parked in wait_until and receives the signal.
  std::lock_guard lock(mutex_);
  cv_.notify_all();
}

void Mailbox::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [key, srcs] : buckets_) {
    for (auto& q : srcs) q.clear();
  }
  next_arrival_ = 0;
  pending_ = 0;
  version_ = 0;
}

std::size_t Mailbox::pending() const {
  std::lock_guard lock(mutex_);
  return pending_;
}

}  // namespace hfast::mpisim
