/// \file engine_fibers.cpp
/// The cooperative fiber engine: every rank of one job runs as a ucontext
/// stackful fiber on a single OS thread. Blocking MPI calls switch fibers
/// instead of parking threads, a seeded policy picks the next runnable rank
/// (making wildcard-receive match order reproducible run-to-run), and the
/// scheduler loop doubles as a deadlock detector — an empty ready queue with
/// live fibers is diagnosed instantly, and a poll loop that yields without
/// ever seeing a delivery trips a wall-clock progress check.

#include "hfast/mpisim/engine.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define HFAST_FIBERS_POSIX 1
#endif

#if defined(__SANITIZE_THREAD__)
#define HFAST_FIBERS_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HFAST_FIBERS_TSAN 1
#endif
#endif

#ifdef HFAST_FIBERS_POSIX
#include <sys/mman.h>
#include <ucontext.h>
#include <unistd.h>
#endif

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <sstream>
#include <vector>

#include "hfast/mpisim/mailbox.hpp"
#include "hfast/mpisim/runtime.hpp"
#include "hfast/util/assert.hpp"
#include "hfast/util/random.hpp"

namespace hfast::mpisim {

bool fibers_supported() noexcept {
#if defined(HFAST_FIBERS_POSIX) && !defined(HFAST_FIBERS_TSAN)
  return true;
#else
  // ThreadSanitizer cannot follow swapcontext and reports false positives;
  // non-POSIX hosts have no ucontext at all.
  return false;
#endif
}

#ifdef HFAST_FIBERS_POSIX

namespace {

/// Process-wide recycling pool for fiber stacks (ROADMAP memory-ceiling
/// item). An engine tearing down returns its mapped stacks here instead of
/// munmapping them; the next job's prepare_fiber reuses a mapping of the
/// same size — guard page already protected — skipping the mmap + mprotect
/// pair per fiber. Pooled bytes are capped so a one-off P=4096 job cannot
/// pin ~1 GB of stacks forever: releases beyond the cap unmap immediately.
class StackPool {
 public:
  static StackPool& instance() {
    static StackPool pool;
    return pool;
  }

  /// A previously mapped base for exactly `map_bytes`, or nullptr.
  void* acquire(std::size_t map_bytes) {
    std::lock_guard lock(m_);
    auto it = free_.find(map_bytes);
    if (it == free_.end() || it->second.empty()) return nullptr;
    void* base = it->second.back();
    it->second.pop_back();
    pooled_bytes_ -= map_bytes;
    --pooled_;
    ++reused_;
    return base;
  }

  void note_mapped() {
    std::lock_guard lock(m_);
    ++mapped_;
  }

  /// Pool the mapping if under the byte cap, otherwise unmap it now.
  void release(void* base, std::size_t map_bytes) {
    {
      std::lock_guard lock(m_);
      if (pooled_bytes_ + map_bytes <= kMaxPooledBytes) {
        free_[map_bytes].push_back(base);
        pooled_bytes_ += map_bytes;
        ++pooled_;
        return;
      }
      ++unmapped_;
    }
    (void)munmap(base, map_bytes);
  }

  std::size_t trim() {
    std::map<std::size_t, std::vector<void*>> victims;
    std::size_t n = 0;
    {
      std::lock_guard lock(m_);
      victims.swap(free_);
      for (const auto& [bytes, bases] : victims) {
        (void)bytes;
        n += bases.size();
      }
      pooled_ = 0;
      pooled_bytes_ = 0;
      unmapped_ += n;
    }
    for (const auto& [bytes, bases] : victims) {
      for (void* base : bases) (void)munmap(base, bytes);
    }
    return n;
  }

  FiberStackPoolStats stats() const {
    std::lock_guard lock(m_);
    FiberStackPoolStats s;
    s.mapped = mapped_;
    s.reused = reused_;
    s.unmapped = unmapped_;
    s.pooled = pooled_;
    s.pooled_bytes = pooled_bytes_;
    return s;
  }

 private:
  /// Generous enough to keep one P=4096 job's stacks (4096 x ~260 KB ~=
  /// 1.04 GiB) hot across a sweep, small enough to bound idle footprint.
  static constexpr std::size_t kMaxPooledBytes = std::size_t{1280} << 20;

  mutable std::mutex m_;
  std::map<std::size_t, std::vector<void*>> free_;  // map_bytes -> bases
  std::uint64_t mapped_ = 0;
  std::uint64_t reused_ = 0;
  std::uint64_t unmapped_ = 0;
  std::uint64_t pooled_ = 0;
  std::size_t pooled_bytes_ = 0;
};

class FiberEngine final : public ExecutionEngine, public Scheduler {
 public:
  explicit FiberEngine(Runtime& rt) : rt_(rt) {
    // Scheduling stream: sched_seed when given, otherwise derived from the
    // app seed through one splitmix step so the two streams never collide.
    std::uint64_t s = rt_.config().sched_seed;
    if (s == 0) {
      std::uint64_t mix = rt_.config().seed ^ 0x5c4ed01e5eedULL;
      s = util::splitmix64(mix);
    }
    rng_.reseed(s);
  }

  ~FiberEngine() override { release_stacks(); }

  EngineKind kind() const noexcept override { return EngineKind::kFibers; }
  Scheduler& scheduler() noexcept override { return *this; }

  // --- Scheduler -----------------------------------------------------------
  bool single_threaded() const noexcept override { return true; }

  void wait_for_delivery(Mailbox& mb, std::uint64_t seen,
                         const WaitDesc& why) override {
    Fiber& f = fibers_[static_cast<std::size_t>(current_)];
    while (mb.version() == seen) {
      f.state = State::kBlocked;
      f.wait_mb = &mb;
      f.wait_why = why;
      switch_to_scheduler(f);
      f.wait_mb = nullptr;
      check_abort();
    }
    check_abort();
  }

  void notify_delivery(Mailbox& mb) override {
    ++progress_;
    const Rank owner = mb.owner();
    if (owner < 0) return;
    Fiber& f = fibers_[static_cast<std::size_t>(owner)];
    if (f.state == State::kBlocked && f.wait_mb == &mb) {
      f.state = State::kReady;
      ready_.push_back(owner);
    }
  }

  void yield() override {
    // Always switch back, even when no peer is ready: the scheduler loop is
    // where livelock (a rank spinning on test/iprobe with nothing in
    // flight) gets diagnosed, so a polling fiber must not monopolize the
    // thread.
    Fiber& f = fibers_[static_cast<std::size_t>(current_)];
    f.state = State::kReady;
    f.polling = true;
    ready_.push_back(current_);
    switch_to_scheduler(f);
    f.polling = false;
    check_abort();
  }

  void note_call(CallType call) override {
    fibers_[static_cast<std::size_t>(current_)].last_call = call;
  }

  // --- ExecutionEngine -----------------------------------------------------
  std::exception_ptr execute(
      const std::function<void(Rank)>& rank_body) override {
    const int nranks = rt_.nranks();
    body_ = &rank_body;
    first_error_ = nullptr;
    progress_ = 0;

    fibers_.clear();
    fibers_.resize(static_cast<std::size_t>(nranks));
    ready_.clear();
    ready_.reserve(static_cast<std::size_t>(nranks));
    for (Rank r = 0; r < nranks; ++r) {
      prepare_fiber(r);
      ready_.push_back(r);
    }

    int remaining = nranks;
    std::uint64_t switches = 0;
    std::uint64_t progress_at_deadline = progress_;
    auto deadline = std::chrono::steady_clock::now() + rt_.config().watchdog;

    while (remaining > 0) {
      if (ready_.empty()) {
        diagnose_deadlock(nranks);
        continue;  // wake-all refilled the ready queue
      }
      const std::size_t pick =
          ready_.size() == 1
              ? 0
              : static_cast<std::size_t>(
                    rng_.uniform(static_cast<std::uint64_t>(ready_.size())));
      const Rank r = ready_[pick];
      ready_[pick] = ready_.back();
      ready_.pop_back();
      Fiber& f = fibers_[static_cast<std::size_t>(r)];
      HFAST_ASSERT_MSG(f.state == State::kReady, "scheduling a parked fiber");
      f.state = State::kRunning;
      current_ = r;
      swapcontext(&main_ctx_, &f.ctx);
      current_ = -1;

      if (f.state == State::kDone) {
        --remaining;
        ++progress_;
        if (f.error) {
          if (!first_error_) first_error_ = f.error;
          raise_abort_and_wake();
        }
      }

      if ((++switches & 1023u) == 0u) {
        if (progress_ != progress_at_deadline) {
          progress_at_deadline = progress_;
          deadline = std::chrono::steady_clock::now() + rt_.config().watchdog;
        } else if (!rt_.abort_flag().load(std::memory_order_relaxed) &&
                   std::chrono::steady_clock::now() >= deadline) {
          diagnose_livelock(r, nranks);
        }
      }
    }

    body_ = nullptr;
    release_stacks();
    return first_error_;
  }

 private:
  enum class State : std::uint8_t { kReady, kRunning, kBlocked, kDone };

  struct Fiber {
    ucontext_t ctx{};
    void* map_base = nullptr;
    std::size_t map_bytes = 0;
    State state = State::kReady;
    Mailbox* wait_mb = nullptr;
    WaitDesc wait_why{};
    CallType last_call = CallType::kCount;  // kCount = no call completed yet
    bool polling = false;
    std::exception_ptr error;
  };

  static std::size_t page_size() {
    const long p = sysconf(_SC_PAGESIZE);
    return p > 0 ? static_cast<std::size_t>(p) : 4096;
  }

  void prepare_fiber(Rank r) {
    Fiber& f = fibers_[static_cast<std::size_t>(r)];
    const std::size_t page = page_size();
    std::size_t usable = rt_.config().fiber_stack_bytes;
    if (usable < 4 * page) usable = 4 * page;
    usable = (usable + page - 1) / page * page;
    f.map_bytes = usable + page;  // + one guard page below the stack
    // Recycled stacks arrive guard page intact; only a fresh mapping pays
    // the mmap + mprotect pair.
    f.map_base = StackPool::instance().acquire(f.map_bytes);
    if (f.map_base == nullptr) {
      f.map_base = mmap(nullptr, f.map_bytes, PROT_READ | PROT_WRITE,
                        MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
      if (f.map_base == MAP_FAILED) {
        f.map_base = nullptr;
        throw Error("mpisim: fiber stack mmap failed");
      }
      StackPool::instance().note_mapped();
      // Stacks grow down: the lowest page faults on overflow instead of
      // silently corrupting the neighbouring fiber's stack.
      (void)mprotect(f.map_base, page, PROT_NONE);
    }

    if (getcontext(&f.ctx) != 0) {
      throw Error("mpisim: getcontext failed for fiber stack setup");
    }
    f.ctx.uc_stack.ss_sp = static_cast<char*>(f.map_base) + page;
    f.ctx.uc_stack.ss_size = usable;
    f.ctx.uc_link = &main_ctx_;  // trampoline return resumes the scheduler
    const auto self = reinterpret_cast<std::uintptr_t>(this);
    // makecontext's entry point is variadic over ints; the engine pointer
    // travels as two 32-bit halves through the only portable channel it has.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wcast-function-type"
    makecontext(&f.ctx, reinterpret_cast<void (*)()>(&FiberEngine::trampoline),
                2, static_cast<int>(static_cast<std::uint32_t>(self >> 32)),
                static_cast<int>(static_cast<std::uint32_t>(self)));
#pragma GCC diagnostic pop
  }

  static void trampoline(unsigned hi, unsigned lo) {
    auto* self = reinterpret_cast<FiberEngine*>(
        (static_cast<std::uintptr_t>(hi) << 32) |
        static_cast<std::uintptr_t>(lo));
    self->run_current();
    // Returning resumes main_ctx_ via uc_link; exceptions never cross the
    // context switch (run_current catches everything).
  }

  void run_current() {
    Fiber& f = fibers_[static_cast<std::size_t>(current_)];
    try {
      (*body_)(current_);
    } catch (...) {
      f.error = std::current_exception();
    }
    f.state = State::kDone;
  }

  void switch_to_scheduler(Fiber& f) { swapcontext(&f.ctx, &main_ctx_); }

  void check_abort() const {
    if (rt_.abort_flag().load(std::memory_order_relaxed)) {
      throw Error("mpisim: job aborted by another rank's failure");
    }
  }

  /// Raise the global abort flag and move every blocked fiber back to the
  /// ready queue; each resumes inside its wait, observes the flag, throws,
  /// and unwinds its own stack (running destructors) before going Done.
  void raise_abort_and_wake() {
    rt_.abort_flag().store(true);
    for (std::size_t i = 0; i < fibers_.size(); ++i) {
      Fiber& f = fibers_[i];
      if (f.state == State::kBlocked) {
        f.state = State::kReady;
        ready_.push_back(static_cast<Rank>(i));
      }
    }
  }

  std::string last_call_name(const Fiber& f) const {
    return f.last_call == CallType::kCount
               ? std::string("<none>")
               : std::string(call_name(f.last_call));
  }

  /// Ready queue empty with live fibers: every remaining rank is parked in a
  /// blocking wait that no peer can satisfy. No timer needed — this is a
  /// deadlock by construction. Mirrors the threaded watchdog's diagnosis,
  /// plus the stuck rank's id and last completed call.
  void diagnose_deadlock(int nranks) {
    int stuck = -1;
    int blocked = 0;
    for (std::size_t i = 0; i < fibers_.size(); ++i) {
      if (fibers_[i].state == State::kBlocked) {
        ++blocked;
        if (stuck < 0) stuck = static_cast<int>(i);
      }
    }
    HFAST_ASSERT_MSG(stuck >= 0, "empty ready queue with no blocked fibers");
    if (!first_error_) {
      const Fiber& f = fibers_[static_cast<std::size_t>(stuck)];
      std::ostringstream os;
      os << "mpisim: fiber scheduler detected deadlock — rank " << stuck;
      if (f.wait_why.kind == WaitDesc::Kind::kWaitany) {
        os << " blocked in waitany";
      } else {
        os << " blocked in receive (comm=" << f.wait_why.comm_id
           << " src=" << f.wait_why.src << " tag=" << f.wait_why.tag
           << " internal=" << f.wait_why.internal;
        if (f.wait_mb != nullptr) {
          os << ", " << f.wait_mb->pending() << " unmatched messages queued";
        }
        os << ")";
      }
      os << ", last completed call " << last_call_name(f) << "; " << blocked
         << " of " << nranks
         << " ranks blocked with none runnable — likely application deadlock";
      first_error_ = std::make_exception_ptr(Error(os.str()));
    }
    raise_abort_and_wake();
  }

  /// The watchdog interval elapsed with scheduler switches but zero
  /// deliveries or completions: some rank is spinning on test/iprobe for a
  /// message that will never arrive.
  void diagnose_livelock(Rank last_resumed, int nranks) {
    Rank stuck = last_resumed;
    for (std::size_t i = 0; i < fibers_.size(); ++i) {
      if (fibers_[i].state == State::kReady && fibers_[i].polling) {
        stuck = static_cast<Rank>(i);
        break;
      }
    }
    if (!first_error_) {
      const Fiber& f = fibers_[static_cast<std::size_t>(stuck)];
      std::ostringstream os;
      os << "mpisim: fiber scheduler watchdog expired — no delivery progress "
            "for "
         << rt_.config().watchdog.count() << " ms; rank " << stuck
         << " still polling, last completed call " << last_call_name(f)
         << " (" << nranks
         << "-rank job) — likely application deadlock";
      first_error_ = std::make_exception_ptr(Error(os.str()));
    }
    raise_abort_and_wake();
  }

  void release_stacks() {
    for (Fiber& f : fibers_) {
      if (f.map_base != nullptr) {
        StackPool::instance().release(f.map_base, f.map_bytes);
        f.map_base = nullptr;
        f.map_bytes = 0;
      }
    }
  }

  Runtime& rt_;
  util::Rng rng_;
  const std::function<void(Rank)>* body_ = nullptr;
  std::vector<Fiber> fibers_;
  std::vector<Rank> ready_;
  ucontext_t main_ctx_{};
  Rank current_ = -1;
  std::uint64_t progress_ = 0;
  std::exception_ptr first_error_;
};

}  // namespace

std::unique_ptr<ExecutionEngine> make_fiber_engine(Runtime& rt) {
  return std::make_unique<FiberEngine>(rt);
}

FiberStackPoolStats fiber_stack_pool_stats() noexcept {
  return StackPool::instance().stats();
}

std::size_t trim_fiber_stack_pool() noexcept {
  return StackPool::instance().trim();
}

#else  // !HFAST_FIBERS_POSIX

std::unique_ptr<ExecutionEngine> make_fiber_engine(Runtime&) {
  throw Error("mpisim: fiber engine requires a POSIX host (ucontext)");
}

FiberStackPoolStats fiber_stack_pool_stats() noexcept { return {}; }

std::size_t trim_fiber_stack_pool() noexcept { return 0; }

#endif

}  // namespace hfast::mpisim
