#include "hfast/mpisim/rank_context.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>
#include <sstream>

#include "hfast/mpisim/runtime.hpp"

namespace hfast::mpisim {

namespace {

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double elapsed() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

std::shared_ptr<const std::vector<std::byte>> pack_i64(
    const std::vector<std::int64_t>& values) {
  auto buf = std::make_shared<std::vector<std::byte>>(values.size() * 8);
  std::memcpy(buf->data(), values.data(), buf->size());
  return buf;
}

std::vector<std::int64_t> unpack_i64(const Message& m) {
  HFAST_ASSERT(m.payload != nullptr && m.payload->size() % 8 == 0);
  std::vector<std::int64_t> values(m.payload->size() / 8);
  std::memcpy(values.data(), m.payload->data(), m.payload->size());
  return values;
}

std::shared_ptr<const std::vector<std::byte>> pack_f64(double v) {
  auto buf = std::make_shared<std::vector<std::byte>>(8);
  std::memcpy(buf->data(), &v, 8);
  return buf;
}

double unpack_f64(const Message& m) {
  HFAST_ASSERT(m.payload != nullptr && m.payload->size() == 8);
  double v = 0.0;
  std::memcpy(&v, m.payload->data(), 8);
  return v;
}

}  // namespace

RankContext::RankContext(Runtime& rt, Rank rank, CommObserver* observer)
    : rt_(rt), rank_(rank), observer_(observer), rng_(0) {
  std::vector<Rank> members(static_cast<std::size_t>(rt.nranks()));
  for (int r = 0; r < rt.nranks(); ++r) members[static_cast<std::size_t>(r)] = r;
  world_ = Communicator(0, std::move(members), rank);
  // Distinct deterministic stream per rank, stable across runs.
  std::uint64_t s = rt.config().seed;
  rng_.reseed(util::splitmix64(s) ^ (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(rank) + 1)));
}

int RankContext::nranks() const noexcept { return rt_.nranks(); }

void RankContext::record_call(CallType call, Rank peer, std::uint64_t bytes,
                              double seconds) {
  if (observer_ != nullptr) observer_->on_call(call, peer, bytes, seconds);
  if (Scheduler* s = rt_.scheduler()) s->note_call(call);
}

void RankContext::record_message(Rank peer_world, std::uint64_t bytes,
                                 bool is_send) {
  if (observer_ != nullptr) observer_->on_message(peer_world, bytes, is_send);
}

void RankContext::deliver_to(Rank dst_world, Message m) {
  rt_.mailbox(dst_world).deliver(std::move(m));
}

Message RankContext::make_message(
    const Communicator& comm, Rank dst, Tag tag, std::uint64_t bytes,
    bool internal, std::shared_ptr<const std::vector<std::byte>> payload) {
  HFAST_EXPECTS_MSG(dst >= 0 && dst < comm.size(), "destination out of range");
  Message m;
  m.comm_id = comm.id();
  m.src_world = rank_;
  m.dst_world = comm.world_rank(dst);
  m.src_comm = comm.rank();
  m.tag = tag;
  m.internal = internal;
  m.bytes = bytes;
  m.seq = send_seq_++;
  if (payload != nullptr) {
    m.payload = std::move(payload);
  } else if (!internal && rt_.config().capture_payload && bytes > 0) {
    auto buf = std::make_shared<std::vector<std::byte>>(bytes);
    for (std::uint64_t i = 0; i < bytes; ++i) {
      (*buf)[i] = static_cast<std::byte>((i + m.seq) & 0xff);
    }
    m.payload = std::move(buf);
  }
  return m;
}

// --- point-to-point ----------------------------------------------------------

void RankContext::send(const Communicator& comm, Rank dst, std::uint64_t bytes,
                       Tag tag) {
  Timer t;
  Message m = make_message(comm, dst, tag, bytes, /*internal=*/false, nullptr);
  const Rank dst_world = m.dst_world;
  deliver_to(dst_world, std::move(m));
  record_message(dst_world, bytes, /*is_send=*/true);
  record_call(CallType::kSend, dst, bytes, t.elapsed());
}

void RankContext::send_bytes(const Communicator& comm, Rank dst,
                             std::vector<std::byte> data, Tag tag) {
  Timer t;
  const std::uint64_t bytes = data.size();
  auto payload =
      std::make_shared<const std::vector<std::byte>>(std::move(data));
  Message m = make_message(comm, dst, tag, bytes, /*internal=*/false, payload);
  const Rank dst_world = m.dst_world;
  deliver_to(dst_world, std::move(m));
  record_message(dst_world, bytes, /*is_send=*/true);
  record_call(CallType::kSend, dst, bytes, t.elapsed());
}

Request RankContext::isend(const Communicator& comm, Rank dst,
                           std::uint64_t bytes, Tag tag) {
  Timer t;
  Message m = make_message(comm, dst, tag, bytes, /*internal=*/false, nullptr);
  const Rank dst_world = m.dst_world;
  deliver_to(dst_world, std::move(m));
  record_message(dst_world, bytes, /*is_send=*/true);
  auto st = std::make_shared<RequestState>();
  st->is_send = true;
  st->done = true;  // eager completion
  st->comm_id = comm.id();
  st->peer_comm = dst;
  st->tag = tag;
  st->posted_bytes = bytes;
  record_call(CallType::kIsend, dst, bytes, t.elapsed());
  return Request(std::move(st));
}

Message RankContext::recv(const Communicator& comm, Rank src,
                          std::uint64_t bytes, Tag tag) {
  Timer t;
  Message m = rt_.mailbox(rank_).match_blocking(comm.id(), src, tag,
                                                /*internal=*/false);
  record_message(m.src_world, m.bytes, /*is_send=*/false);
  record_call(CallType::kRecv, src, bytes, t.elapsed());
  return m;
}

Request RankContext::irecv(const Communicator& comm, Rank src,
                           std::uint64_t bytes, Tag tag) {
  Timer t;
  auto st = std::make_shared<RequestState>();
  st->is_send = false;
  st->done = false;
  st->comm_id = comm.id();
  st->peer_comm = src;
  st->tag = tag;
  st->posted_bytes = bytes;
  record_call(CallType::kIrecv, src, bytes, t.elapsed());
  return Request(std::move(st));
}

void RankContext::complete_recv(RequestState& st) {
  HFAST_ASSERT(!st.is_send && !st.done);
  st.matched = rt_.mailbox(rank_).match_blocking(st.comm_id, st.peer_comm,
                                                 st.tag, /*internal=*/false);
  st.done = true;
  record_message(st.matched.src_world, st.matched.bytes, /*is_send=*/false);
}

void RankContext::wait(Request& req) {
  Timer t;
  HFAST_EXPECTS_MSG(req.valid(), "wait on an empty request");
  RequestState& st = req.state();
  if (!st.done && !st.consumed) complete_recv(st);
  st.consumed = true;  // further waits are no-ops (MPI_REQUEST_NULL)
  record_call(CallType::kWait, kNoPeer, 0, t.elapsed());
}

void RankContext::waitall(std::span<Request> reqs) {
  Timer t;
  for (Request& r : reqs) {
    HFAST_EXPECTS_MSG(r.valid(), "waitall on an empty request");
    RequestState& st = r.state();
    if (!st.done && !st.consumed) complete_recv(st);
    st.consumed = true;
  }
  record_call(CallType::kWaitall, kNoPeer, 0, t.elapsed());
}

std::size_t RankContext::waitany(std::span<Request> reqs) {
  Timer t;
  HFAST_EXPECTS_MSG(!reqs.empty(), "waitany on an empty request list");
  Mailbox& mb = rt_.mailbox(rank_);
  for (;;) {
    const std::uint64_t version = mb.version();
    bool any_active = false;
    // A completed-but-unconsumed request (eager sends, receives finished by
    // an earlier probe) satisfies waitany immediately.
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      HFAST_EXPECTS_MSG(reqs[i].valid(), "waitany on an empty request");
      RequestState& st = reqs[i].state();
      if (st.consumed) continue;
      any_active = true;
      if (st.done) {
        st.consumed = true;
        record_call(CallType::kWaitany, kNoPeer, 0, t.elapsed());
        return i;
      }
    }
    HFAST_EXPECTS_MSG(any_active, "waitany with no active requests");
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      RequestState& st = reqs[i].state();
      if (st.consumed || st.done) continue;
      if (mb.try_match(st.comm_id, st.peer_comm, st.tag, /*internal=*/false,
                       st.matched)) {
        st.done = true;
        st.consumed = true;
        record_message(st.matched.src_world, st.matched.bytes,
                       /*is_send=*/false);
        record_call(CallType::kWaitany, kNoPeer, 0, t.elapsed());
        return i;
      }
    }
    mb.wait_version_change(version);
  }
}

Message RankContext::sendrecv(const Communicator& comm, Rank dst,
                              std::uint64_t send_bytes, Rank src,
                              std::uint64_t recv_bytes, Tag tag) {
  Timer t;
  Message out = make_message(comm, dst, tag, send_bytes, /*internal=*/false,
                             nullptr);
  const Rank dst_world = out.dst_world;
  deliver_to(dst_world, std::move(out));
  record_message(dst_world, send_bytes, /*is_send=*/true);
  Message in = rt_.mailbox(rank_).match_blocking(comm.id(), src, tag,
                                                 /*internal=*/false);
  // MPI truncation semantics: a matched message larger than the posted
  // receive buffer is an error (MPI_ERR_TRUNCATE), not a silent clip.
  if (in.bytes > recv_bytes) {
    std::ostringstream os;
    os << "mpisim: sendrecv truncation — matched message of " << in.bytes
       << " bytes from comm rank " << in.src_comm << " exceeds the posted "
       << recv_bytes << "-byte receive (comm=" << comm.id() << " tag=" << tag
       << ")";
    throw Error(os.str());
  }
  // Receive side of the combined call: attributed at message level with the
  // matched (validated) size, like recv(); the single kSendrecv call record
  // keeps the paper's call-mix accounting unchanged.
  record_message(in.src_world, in.bytes, /*is_send=*/false);
  record_call(CallType::kSendrecv, dst, send_bytes, t.elapsed());
  return in;
}

bool RankContext::test(Request& req) {
  Timer t;
  HFAST_EXPECTS_MSG(req.valid(), "test on an empty request");
  RequestState& st = req.state();
  bool complete = false;
  if (st.consumed) {
    complete = true;  // MPI_REQUEST_NULL: flag=true, no-op
  } else if (st.done) {
    st.consumed = true;
    complete = true;
  } else if (rt_.mailbox(rank_).try_match(st.comm_id, st.peer_comm, st.tag,
                                          /*internal=*/false, st.matched)) {
    st.done = true;
    st.consumed = true;
    record_message(st.matched.src_world, st.matched.bytes, /*is_send=*/false);
    complete = true;
  }
  record_call(CallType::kTest, kNoPeer, 0, t.elapsed());
  // Scheduling point: a rank polling test() in a loop must let peers run so
  // the awaited message can actually be delivered (cooperative engines).
  if (Scheduler* s = rt_.scheduler()) s->yield();
  return complete;
}

bool RankContext::iprobe(const Communicator& comm, Rank src, Tag tag,
                         Rank* src_out, std::uint64_t* bytes_out) {
  Timer t;
  Rank s = kAnySource;
  std::uint64_t b = 0;
  const bool found =
      rt_.mailbox(rank_).peek(comm.id(), src, tag, /*internal=*/false, s, b);
  if (found) {
    if (src_out != nullptr) *src_out = s;
    if (bytes_out != nullptr) *bytes_out = b;
  }
  record_call(CallType::kIprobe, src, 0, t.elapsed());
  if (Scheduler* s = rt_.scheduler()) s->yield();
  return found;
}

// --- collective plumbing ------------------------------------------------------

Tag RankContext::next_collective_tag(const Communicator& comm) {
  return collective_seq_[comm.id()]++;
}

void RankContext::internal_send(
    const Communicator& comm, Rank dst, Tag tag, std::uint64_t bytes,
    std::shared_ptr<const std::vector<std::byte>> payload) {
  Message m =
      make_message(comm, dst, tag, bytes, /*internal=*/true, std::move(payload));
  deliver_to(m.dst_world, std::move(m));
}

Message RankContext::internal_recv(const Communicator& comm, Rank src, Tag tag) {
  return rt_.mailbox(rank_).match_blocking(comm.id(), src, tag,
                                           /*internal=*/true);
}

namespace {
// Fan-in / fan-out shapes shared by all collectives. Kept free so the
// collective bodies below read as their communication pattern.
}  // namespace

void RankContext::barrier(const Communicator& comm) {
  Timer t;
  const Tag tag = next_collective_tag(comm);
  const int me = comm.rank();
  if (me == 0) {
    for (int i = 1; i < comm.size(); ++i) {
      (void)internal_recv(comm, kAnySource, tag);
    }
    for (int i = 1; i < comm.size(); ++i) {
      internal_send(comm, i, tag, 0, nullptr);
    }
  } else {
    internal_send(comm, 0, tag, 0, nullptr);
    (void)internal_recv(comm, 0, tag);
  }
  record_call(CallType::kBarrier, kNoPeer, 0, t.elapsed());
}

void RankContext::bcast(const Communicator& comm, int root, std::uint64_t bytes) {
  Timer t;
  HFAST_EXPECTS(root >= 0 && root < comm.size());
  const Tag tag = next_collective_tag(comm);
  if (comm.rank() == root) {
    for (int i = 0; i < comm.size(); ++i) {
      if (i != root) internal_send(comm, i, tag, bytes, nullptr);
    }
  } else {
    (void)internal_recv(comm, root, tag);
  }
  record_call(CallType::kBcast, kNoPeer, bytes, t.elapsed());
}

void RankContext::reduce(const Communicator& comm, int root, std::uint64_t bytes) {
  Timer t;
  HFAST_EXPECTS(root >= 0 && root < comm.size());
  const Tag tag = next_collective_tag(comm);
  if (comm.rank() == root) {
    for (int i = 1; i < comm.size(); ++i) {
      (void)internal_recv(comm, kAnySource, tag);
    }
  } else {
    internal_send(comm, root, tag, bytes, nullptr);
  }
  record_call(CallType::kReduce, kNoPeer, bytes, t.elapsed());
}

void RankContext::allreduce(const Communicator& comm, std::uint64_t bytes) {
  Timer t;
  const Tag tag = next_collective_tag(comm);
  if (comm.rank() == 0) {
    for (int i = 1; i < comm.size(); ++i) {
      (void)internal_recv(comm, kAnySource, tag);
    }
    for (int i = 1; i < comm.size(); ++i) {
      internal_send(comm, i, tag, bytes, nullptr);
    }
  } else {
    internal_send(comm, 0, tag, bytes, nullptr);
    (void)internal_recv(comm, 0, tag);
  }
  record_call(CallType::kAllreduce, kNoPeer, bytes, t.elapsed());
}

void RankContext::gather(const Communicator& comm, int root, std::uint64_t bytes) {
  Timer t;
  HFAST_EXPECTS(root >= 0 && root < comm.size());
  const Tag tag = next_collective_tag(comm);
  if (comm.rank() == root) {
    for (int i = 1; i < comm.size(); ++i) {
      (void)internal_recv(comm, kAnySource, tag);
    }
  } else {
    internal_send(comm, root, tag, bytes, nullptr);
  }
  record_call(CallType::kGather, kNoPeer, bytes, t.elapsed());
}

void RankContext::allgather(const Communicator& comm, std::uint64_t bytes) {
  Timer t;
  const Tag tag = next_collective_tag(comm);
  const auto total =
      bytes * static_cast<std::uint64_t>(comm.size());
  if (comm.rank() == 0) {
    for (int i = 1; i < comm.size(); ++i) {
      (void)internal_recv(comm, kAnySource, tag);
    }
    for (int i = 1; i < comm.size(); ++i) {
      internal_send(comm, i, tag, total, nullptr);
    }
  } else {
    internal_send(comm, 0, tag, bytes, nullptr);
    (void)internal_recv(comm, 0, tag);
  }
  record_call(CallType::kAllgather, kNoPeer, bytes, t.elapsed());
}

void RankContext::scatter(const Communicator& comm, int root, std::uint64_t bytes) {
  Timer t;
  HFAST_EXPECTS(root >= 0 && root < comm.size());
  const Tag tag = next_collective_tag(comm);
  if (comm.rank() == root) {
    for (int i = 0; i < comm.size(); ++i) {
      if (i != root) internal_send(comm, i, tag, bytes, nullptr);
    }
  } else {
    (void)internal_recv(comm, root, tag);
  }
  record_call(CallType::kScatter, kNoPeer, bytes, t.elapsed());
}

void RankContext::alltoall(const Communicator& comm, std::uint64_t bytes) {
  Timer t;
  const Tag tag = next_collective_tag(comm);
  for (int i = 0; i < comm.size(); ++i) {
    if (i != comm.rank()) internal_send(comm, i, tag, bytes, nullptr);
  }
  for (int i = 0; i < comm.size(); ++i) {
    if (i != comm.rank()) (void)internal_recv(comm, kAnySource, tag);
  }
  record_call(CallType::kAlltoall, kNoPeer, bytes, t.elapsed());
}

void RankContext::alltoallv(const Communicator& comm,
                            const std::vector<std::uint64_t>& counts) {
  Timer t;
  HFAST_EXPECTS_MSG(counts.size() == static_cast<std::size_t>(comm.size()),
                    "alltoallv counts must have one entry per comm rank");
  const Tag tag = next_collective_tag(comm);
  std::uint64_t total = 0;
  for (int i = 0; i < comm.size(); ++i) {
    total += counts[static_cast<std::size_t>(i)];
    if (i != comm.rank()) {
      internal_send(comm, i, tag, counts[static_cast<std::size_t>(i)], nullptr);
    }
  }
  for (int i = 0; i < comm.size(); ++i) {
    if (i != comm.rank()) (void)internal_recv(comm, kAnySource, tag);
  }
  record_call(CallType::kAlltoallv, kNoPeer, total, t.elapsed());
}

void RankContext::reduce_scatter(const Communicator& comm,
                                 std::uint64_t bytes_per_rank) {
  Timer t;
  const Tag tag = next_collective_tag(comm);
  // Combine at comm rank 0 (fan-in of the full vector), then scatter each
  // rank its share.
  const auto total =
      bytes_per_rank * static_cast<std::uint64_t>(comm.size());
  if (comm.rank() == 0) {
    for (int i = 1; i < comm.size(); ++i) {
      (void)internal_recv(comm, kAnySource, tag);
    }
    for (int i = 1; i < comm.size(); ++i) {
      internal_send(comm, i, tag, bytes_per_rank, nullptr);
    }
  } else {
    internal_send(comm, 0, tag, total, nullptr);
    (void)internal_recv(comm, 0, tag);
  }
  record_call(CallType::kReduceScatter, kNoPeer, bytes_per_rank, t.elapsed());
}

void RankContext::scan(const Communicator& comm, std::uint64_t bytes) {
  Timer t;
  const Tag tag = next_collective_tag(comm);
  // Inclusive prefix: a chain along comm rank order.
  if (comm.rank() > 0) {
    (void)internal_recv(comm, comm.rank() - 1, tag);
  }
  if (comm.rank() + 1 < comm.size()) {
    internal_send(comm, comm.rank() + 1, tag, bytes, nullptr);
  }
  record_call(CallType::kScan, kNoPeer, bytes, t.elapsed());
}

double RankContext::allreduce_sum(const Communicator& comm, double value) {
  Timer t;
  const Tag tag = next_collective_tag(comm);
  double result = value;
  if (comm.rank() == 0) {
    for (int i = 1; i < comm.size(); ++i) {
      result += unpack_f64(internal_recv(comm, kAnySource, tag));
    }
    for (int i = 1; i < comm.size(); ++i) {
      internal_send(comm, i, tag, 8, pack_f64(result));
    }
  } else {
    internal_send(comm, 0, tag, 8, pack_f64(value));
    result = unpack_f64(internal_recv(comm, 0, tag));
  }
  record_call(CallType::kAllreduce, kNoPeer, 8, t.elapsed());
  return result;
}

std::vector<double> RankContext::gather_values(const Communicator& comm,
                                               int root, double value) {
  Timer t;
  HFAST_EXPECTS(root >= 0 && root < comm.size());
  const Tag tag = next_collective_tag(comm);
  std::vector<double> out;
  if (comm.rank() == root) {
    out.assign(static_cast<std::size_t>(comm.size()), 0.0);
    out[static_cast<std::size_t>(root)] = value;
    for (int i = 1; i < comm.size(); ++i) {
      Message m = internal_recv(comm, kAnySource, tag);
      out[static_cast<std::size_t>(m.src_comm)] = unpack_f64(m);
    }
  } else {
    internal_send(comm, root, tag, 8, pack_f64(value));
  }
  record_call(CallType::kGather, kNoPeer, 8, t.elapsed());
  return out;
}

double RankContext::bcast_value(const Communicator& comm, int root, double value) {
  Timer t;
  HFAST_EXPECTS(root >= 0 && root < comm.size());
  const Tag tag = next_collective_tag(comm);
  double result = value;
  if (comm.rank() == root) {
    for (int i = 0; i < comm.size(); ++i) {
      if (i != root) internal_send(comm, i, tag, 8, pack_f64(value));
    }
  } else {
    result = unpack_f64(internal_recv(comm, root, tag));
  }
  record_call(CallType::kBcast, kNoPeer, 8, t.elapsed());
  return result;
}

Communicator RankContext::split(const Communicator& comm, int color, int key) {
  Timer t;
  const Tag tag = next_collective_tag(comm);
  Communicator result;
  if (comm.rank() == 0) {
    // (color, key, world, comm_rank) for every member, own entry included.
    struct Entry {
      std::int64_t color, key, world, comm_rank;
    };
    std::vector<Entry> entries;
    entries.push_back({color, key, rank_, comm.rank()});
    for (int i = 1; i < comm.size(); ++i) {
      Message m = internal_recv(comm, kAnySource, tag);
      auto vals = unpack_i64(m);
      HFAST_ASSERT(vals.size() == 2);
      entries.push_back({vals[0], vals[1], m.src_world, m.src_comm});
    }
    std::map<std::int64_t, std::vector<Entry>> groups;
    for (const auto& e : entries) groups[e.color].push_back(e);
    for (auto& [c, group] : groups) {
      std::sort(group.begin(), group.end(), [](const Entry& a, const Entry& b) {
        return std::tie(a.key, a.world) < std::tie(b.key, b.world);
      });
      std::vector<Rank> world_members;
      world_members.reserve(group.size());
      for (const auto& e : group) {
        world_members.push_back(static_cast<Rank>(e.world));
      }
      const int new_id = rt_.allocate_comm_id(world_members);
      std::vector<std::int64_t> reply;
      reply.push_back(new_id);
      for (const auto& e : group) reply.push_back(e.world);
      for (const auto& e : group) {
        if (e.comm_rank == comm.rank()) continue;  // self handled locally
        internal_send(comm, static_cast<Rank>(e.comm_rank), tag,
                      reply.size() * 8, pack_i64(reply));
      }
      if (c == color) {
        std::vector<Rank> members;
        members.reserve(group.size());
        int my_index = 0;
        for (std::size_t i = 0; i < group.size(); ++i) {
          members.push_back(static_cast<Rank>(group[i].world));
          if (group[i].world == rank_) my_index = static_cast<int>(i);
        }
        result = Communicator(new_id, std::move(members), my_index);
      }
    }
  } else {
    internal_send(comm, 0, tag, 16, pack_i64({color, key}));
    Message m = internal_recv(comm, 0, tag);
    auto vals = unpack_i64(m);
    HFAST_ASSERT(vals.size() >= 2);
    const int new_id = static_cast<int>(vals[0]);
    std::vector<Rank> members;
    members.reserve(vals.size() - 1);
    int my_index = -1;
    for (std::size_t i = 1; i < vals.size(); ++i) {
      members.push_back(static_cast<Rank>(vals[i]));
      if (vals[i] == rank_) my_index = static_cast<int>(i - 1);
    }
    HFAST_ASSERT(my_index >= 0);
    result = Communicator(new_id, std::move(members), my_index);
  }
  record_call(CallType::kCommSplit, kNoPeer, 0, t.elapsed());
  return result;
}

void RankContext::region_begin(const std::string& name) {
  if (observer_ != nullptr) observer_->on_region(name, /*enter=*/true);
}

void RankContext::region_end(const std::string& name) {
  if (observer_ != nullptr) observer_->on_region(name, /*enter=*/false);
}

}  // namespace hfast::mpisim
